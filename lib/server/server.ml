(* Simulated origin servers, derived from the same app specs that drive
   code generation.  Each app gets a handler that matches incoming requests
   against its endpoint templates, enforces the access-control rules the
   paper observed (Kayak's User-Agent gating), and produces responses with
   both the fields the app reads and the ones it ignores — so traffic
   keyword counts exceed signature keyword counts exactly as in §5.1. *)

module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml
module Strsig = Extr_siglang.Strsig
module Spec = Extr_corpus.Spec
module Metrics = Extr_telemetry.Metrics

let m_requests =
  Metrics.counter ~help:"origin-server requests served (app, status)"
    "server.requests"

(** Deterministic concrete value for a request source (what the runtime
    will actually send for user input / counters / gps). *)
let concrete_vsrc (app : Spec.app) (src : Spec.vsrc) : string =
  match src with
  | Spec.Sconst s -> s
  | Spec.Sres id -> Option.value (List.assoc_opt id app.Spec.a_resources) ~default:""
  | Spec.Suser -> "2024070612345678"
  | Spec.Scounter -> "2024070612345678"
  | Spec.Sgps -> "37.5665350"
  | Spec.Sresp (ep, path) -> Printf.sprintf "tok_%s_%s" ep (String.concat "_" path)
  | Spec.Sdb (table, col) -> Printf.sprintf "db_%s_%s" table col

(** The token value the server issues for a response leaf — matched by
    [concrete_vsrc] for [Sresp] so dependency chains round-trip. *)
let token_value ep_id path = Printf.sprintf "tok_%s_%s" ep_id (String.concat "_" path)

(** The concrete URL of an endpoint, with all variables instantiated —
    used for [Ufollow] links embedded in responses. *)
let concrete_uri (app : Spec.app) (e : Spec.endpoint) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (e.Spec.e_scheme ^ "://" ^ e.Spec.e_host);
  let rec segs = function
    | [] -> ()
    | Spec.Lit s :: rest ->
        Buffer.add_string buf s;
        segs rest
    | Spec.Var src :: rest ->
        Buffer.add_string buf (concrete_vsrc app src);
        segs rest
    | Spec.Salt (first :: _) :: rest ->
        segs first;
        segs rest
    | Spec.Salt [] :: rest -> segs rest
  in
  segs e.Spec.e_path;
  List.iteri
    (fun i (k, src) ->
      Buffer.add_string buf (if i = 0 then "?" else "&");
      Buffer.add_string buf (k ^ "=" ^ Uri.percent_encode (concrete_vsrc app src)))
    e.Spec.e_query;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* URI templates                                                      *)
(* ------------------------------------------------------------------ *)

(** Signature of an endpoint's URI as the spec declares it (ground truth
    and request matching). *)
let uri_signature (app : Spec.app) (e : Spec.endpoint) : Strsig.t =
  let rec seg_sig = function
    | Spec.Lit s -> Strsig.lit s
    | Spec.Var (Spec.Sconst s) -> Strsig.lit s
    | Spec.Var (Spec.Sres id) ->
        Strsig.lit
          (Option.value (List.assoc_opt id app.Spec.a_resources) ~default:"")
    | Spec.Var Spec.Scounter -> Strsig.num
    | Spec.Var (Spec.Suser | Spec.Sgps | Spec.Sresp _ | Spec.Sdb _) ->
        Strsig.unknown
    | Spec.Salt branches ->
        Strsig.alt (List.map (fun b -> Strsig.concat (List.map seg_sig b)) branches)
  in
  let path = Strsig.concat (List.map seg_sig e.Spec.e_path) in
  let query =
    List.concat
      (List.mapi
         (fun i (k, src) ->
           [
             Strsig.lit ((if i = 0 then "?" else "&") ^ k ^ "=");
             seg_sig (Spec.Var src);
           ])
         e.Spec.e_query)
  in
  Strsig.concat
    (Strsig.lit (e.Spec.e_scheme ^ "://" ^ e.Spec.e_host) :: path :: query)

(** Does a concrete request match the endpoint template? *)
let request_matches_endpoint (app : Spec.app) (e : Spec.endpoint)
    (req : Http.request) =
  e.Spec.e_meth = req.Http.req_meth
  && req.Http.req_uri.Uri.host = e.Spec.e_host
  && Strsig.matches (uri_signature app e) (Uri.to_string req.Http.req_uri)

(* ------------------------------------------------------------------ *)
(* Response generation                                                *)
(* ------------------------------------------------------------------ *)

let rec json_of_fields (app : Spec.app) (e : Spec.endpoint) path
    (fields : Spec.rfield list) : (string * Json.t) list =
  List.map
    (fun f ->
      match f with
      | Spec.Rleaf { key; kind; use; _ } ->
          let path' = path @ [ key ] in
          let v : Json.t =
            match use with
            | Some Spec.Uheap -> Json.Str (token_value e.Spec.e_id path')
            | Some (Spec.Ufollow child_id) -> (
                match Spec.find_endpoint app child_id with
                | Some child -> Json.Str (concrete_uri app child)
                | None -> Json.Str "")
            | Some (Spec.Udb _) | Some Spec.Uui | None -> (
                match kind with
                | Spec.Kstr ->
                    (* Realistic payload sizes: values dominate keys. *)
                    Json.Str
                      (Printf.sprintf "The quick brown %s jumped over %d lazy dogs"
                         key
                         (17 + String.length key))
                | Spec.Knum -> Json.Int (1700042 + String.length key)
                | Spec.Kbool -> Json.Bool true)
          in
          (key, v)
      | Spec.Robj { key; fields; _ } ->
          (key, Json.Obj (json_of_fields app e (path @ [ key ]) fields))
      | Spec.Rarr { key; elem; _ } ->
          let item =
            Json.Obj (json_of_fields app e (path @ [ key; "[]" ]) elem)
          in
          (key, Json.List [ item; item ]))
    fields

let rec xml_of_fields (app : Spec.app) (e : Spec.endpoint) path
    (fields : Spec.rfield list) : Xml.node list * (string * string) list =
  List.fold_left
    (fun (nodes, attrs) f ->
      match f with
      | Spec.Rleaf { key; kind; use; _ } ->
          let path' = path @ [ key ] in
          let text =
            match use with
            | Some Spec.Uheap -> token_value e.Spec.e_id path'
            | Some (Spec.Ufollow child_id) -> (
                match Spec.find_endpoint app child_id with
                | Some child -> concrete_uri app child
                | None -> "")
            | Some (Spec.Udb _) | Some Spec.Uui | None -> (
                match kind with
                | Spec.Kstr ->
                    Printf.sprintf "The slow green %s crawled under %d eager cats"
                      key
                      (13 + String.length key)
                | Spec.Knum -> string_of_int (1300042 + String.length key)
                | Spec.Kbool -> "true")
          in
          if String.length key > 0 && key.[0] = '@' then
            (nodes, attrs @ [ (String.sub key 1 (String.length key - 1), text) ])
          else (nodes @ [ Xml.Elem (Xml.element key [ Xml.Text text ]) ], attrs)
      | Spec.Robj { key; fields; _ } ->
          let children, cattrs = xml_of_fields app e (path @ [ key ]) fields in
          (nodes @ [ Xml.Elem { Xml.tag = key; attrs = cattrs; children } ], attrs)
      | Spec.Rarr { key; elem; _ } ->
          let children, cattrs = xml_of_fields app e (path @ [ key; "[]" ]) elem in
          let item = { Xml.tag = key; attrs = cattrs; children } in
          (nodes @ [ Xml.Elem item; Xml.Elem item ], attrs))
    ([], []) fields

let response_body (app : Spec.app) (e : Spec.endpoint) : Http.body =
  match e.Spec.e_resp with
  | Spec.Rnone -> Http.No_body
  | Spec.Rtext -> Http.Text ("ok:" ^ e.Spec.e_id)
  | Spec.Rmedia -> Http.Binary (String.init 64 (fun i -> Char.chr (32 + (i mod 64))))
  | Spec.Rjson fields -> Http.Json (Json.Obj (json_of_fields app e [] fields))
  | Spec.Rxml (root, fields) ->
      let children, attrs = xml_of_fields app e [] fields in
      Http.Xml { Xml.tag = root; attrs; children }

(* ------------------------------------------------------------------ *)
(* The handler                                                        *)
(* ------------------------------------------------------------------ *)

(** Access control: endpoints that declare a constant User-Agent header
    reject requests without it (Kayak, §5.3). *)
let access_allowed (app : Spec.app) (e : Spec.endpoint) (req : Http.request) =
  List.for_all
    (fun (k, src) ->
      match src with
      | Spec.Sconst expected when String.lowercase_ascii k = "user-agent" -> (
          match Http.header "User-Agent" req.Http.req_headers with
          | Some got -> got = expected
          | None -> false)
      | _ -> true)
    (app.Spec.a_endpoints
    |> List.find_opt (fun e' -> e'.Spec.e_id = e.Spec.e_id)
    |> Option.map (fun e' -> e'.Spec.e_headers)
    |> Option.value ~default:[])

(** Build the origin server for an app.  The response carries an
    [x-endpoint] header identifying the matched endpoint — the analogue of
    knowing, during evaluation, which API a captured flow belongs to. *)
let literal_weight (app : Spec.app) (e : Spec.endpoint) =
  String.length (String.concat "" (Strsig.literals (uri_signature app e)))

let make (app : Spec.app) : Http.request -> Http.response =
  let by_specificity =
    List.sort
      (fun a b -> compare (literal_weight app b) (literal_weight app a))
      app.Spec.a_endpoints
  in
  fun req ->
    let resp =
      match
        List.find_opt (fun e -> request_matches_endpoint app e req) by_specificity
      with
      | None ->
          Http.response ~status:404 ~headers:[ ("x-endpoint", "?") ]
            (Http.Text "not found")
      | Some e ->
          if not (access_allowed app e req) then
            Http.response ~status:403
              ~headers:[ ("x-endpoint", e.Spec.e_id) ]
              (Http.Text "forbidden")
          else
            Http.response ~status:200
              ~headers:[ ("x-endpoint", e.Spec.e_id) ]
              (response_body app e)
    in
    (* Guarded so the disabled path allocates no label list per request. *)
    if Metrics.is_enabled Metrics.default then
      Metrics.incr m_requests
        ~labels:
          [
            ("app", app.Spec.a_name);
            ("status", string_of_int resp.Http.resp_status);
          ];
    resp
