(* Degrade-and-retry ladder.  See the .mli for the policy semantics. *)

module Clock = Extr_telemetry.Clock
module Metrics = Extr_telemetry.Metrics
module Budget = Resilience.Budget
module Barrier = Resilience.Barrier

let src = Logs.Src.create "extractocol.retry" ~doc:"Degrade-and-retry ladder"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = {
  rp_max_attempts : int;
  rp_crash_retries : int;
  rp_backoff_s : float;
  rp_escalate_steps : int;
  rp_escalate_depth : int;
  rp_escalate_deadline : float;
}

let default_policy =
  {
    rp_max_attempts = 3;
    rp_crash_retries = 1;
    rp_backoff_s = 0.05;
    rp_escalate_steps = 4;
    rp_escalate_depth = 8;
    rp_escalate_deadline = 2.0;
  }

let no_retry =
  {
    rp_max_attempts = 1;
    rp_crash_retries = 0;
    rp_backoff_s = 0.0;
    rp_escalate_steps = 1;
    rp_escalate_depth = 0;
    rp_escalate_deadline = 1.0;
  }

let fingerprint p =
  Printf.sprintf "retry=%d/%d;backoff=%g;escalate=%dx/+%d/%gx" p.rp_max_attempts
    p.rp_crash_retries p.rp_backoff_s p.rp_escalate_steps p.rp_escalate_depth
    p.rp_escalate_deadline

let sat_mul a b = if a > max_int / b then max_int else a * b
let sat_add a b = if a > max_int - b then max_int else a + b

let escalate p (l : Budget.limits) =
  {
    Budget.bl_max_steps = sat_mul l.Budget.bl_max_steps p.rp_escalate_steps;
    bl_max_depth = sat_add l.Budget.bl_max_depth p.rp_escalate_depth;
    bl_deadline_s =
      Option.map (fun d -> d *. p.rp_escalate_deadline) l.Budget.bl_deadline_s;
  }

type 'a verdict = Clean of 'a | Degraded of 'a

type 'a outcome =
  | Succeeded of 'a * int
  | Still_degraded of 'a * int
  | Quarantined of Barrier.crash * int

let m_attempts =
  Metrics.counter ~help:"extra per-app attempts taken by the retry ladder (reason)"
    "retry.attempts"

let run ?(sleep = Clock.sleep_wall) ?(on_retry = fun ~attempt:_ ~reason:_ -> ())
    policy ~limits ~attempt =
  let backoff n =
    (* Deterministic exponential backoff before attempt n+1. *)
    let d = policy.rp_backoff_s *. (2.0 ** float_of_int (n - 1)) in
    if d > 0.0 then sleep d
  in
  let retry ~n ~reason =
    if Metrics.is_enabled Metrics.default then
      Metrics.incr m_attempts ~labels:[ ("reason", reason) ];
    Log.info (fun m -> m "retrying (attempt %d): %s" (n + 1) reason);
    backoff n;
    on_retry ~attempt:(n + 1) ~reason
  in
  let rec go ~n ~crashes limits =
    match attempt ~attempt:n limits with
    | Ok (Clean v) -> Succeeded (v, n)
    | Ok (Degraded v) ->
        if n >= policy.rp_max_attempts then Still_degraded (v, n)
        else begin
          retry ~n ~reason:"budget-exhausted";
          go ~n:(n + 1) ~crashes (escalate policy limits)
        end
    | Error crash ->
        if crashes >= policy.rp_crash_retries then Quarantined (crash, n)
        else begin
          retry ~n ~reason:("crash:" ^ crash.Barrier.cr_phase);
          (* Same limits: a crash is not a budget problem. *)
          go ~n:(n + 1) ~crashes:(crashes + 1) limits
        end
  in
  go ~n:1 ~crashes:0 limits
