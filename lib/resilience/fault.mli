(** Environment fault injection — the system-level analog of
    [--crash-at].

    Where the kill-point simulates the {e process} dying at a pipeline
    phase boundary, the fault plan simulates the {e environment}
    misbehaving at a named site: a write that hits ENOSPC, a journal
    record torn mid-file, a cache entry rotting on disk, a worker pipe
    delivering half a frame, a worker spinning forever.  Sites are
    consulted by production code paths
    ({!Extr_telemetry.Export.write_file} via a hook, {!Journal.append},
    [Store] reads/writes, the pool's framing layer and its worker
    wrapper), so an armed plan exercises exactly the code a real fault
    would.

    The plan is deterministic: an entry [SITE\@N:MODE] fires on the
    [N]th matching hit of [SITE] in this process and then disarms
    (forked workers inherit the coordinator's un-fired plan, so a
    requeued task re-encounters the same fault in its replacement
    worker).  [MODE] selects the failure flavor and is interpreted by
    the site ([enospc], [short], [orphan] for [export.write]; [torn],
    [bitflip], [drop] for [journal.append]; [bitflip], [miss] for
    [store.read]; [bitflip], [drop] for [store.write]; ignored by
    [pool.frame]).  For sites that pass an [arg] to {!fire} (the worker
    spin-hang site passes the app id), a non-empty mode is instead a
    target filter: only hits whose [arg] equals it match.

    Armed faults count into the ["fault.injected"] metric (labelled by
    site) when the registry is enabled. *)

val reset : unit -> unit
(** Disarm everything (tests). *)

val active : unit -> bool
(** Is any entry armed (fired or not)? *)

val describe : unit -> string list
(** The armed plan, one [SITE\@N:MODE] string per entry. *)

val arm : site:string -> ?occurrence:int -> ?mode:string -> unit -> unit
(** Arm one entry: fire on the [occurrence]th (default 1st) matching
    hit of [site] with the given [mode] (default [""]). *)

val parse : string -> (string * int * string, string) result
(** Parse a [SITE[\@N][:MODE]] spec into [(site, occurrence, mode)]. *)

val arm_spec : string -> (unit, string) result
(** {!parse} + {!arm}; [Error] explains a malformed spec. *)

val fire : ?arg:string -> string -> string option
(** [fire ?arg site] counts a hit at [site] and returns [Some mode]
    when an armed entry's occurrence is reached (then disarms it).
    Entries with a non-empty mode only match a hit carrying an equal
    [arg]; entries whose mode is empty match any hit.  Instrumented
    call sites must treat [None] as "no fault" at zero cost. *)

val env_var : string
(** ["EXTRACTOCOL_INJECT"]: comma-separated specs, read by
    {!init_from_env} — the override used to reach check binaries and
    forked children that never see the [--inject] flag. *)

val init_from_env : unit -> unit
(** Arm every spec in {!env_var} (if set).  Malformed specs are logged
    and skipped — an injection plan must never abort the run it is
    trying to stress. *)
