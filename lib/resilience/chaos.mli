(** Fault injection: a seeded mutator that corrupts Limple programs the
    way real-world APKs are corrupt — dangling method references,
    truncated method bodies, cyclic class hierarchies, entry-less
    manifests, adversarial string constants and branches into nowhere —
    so the crash-free invariant ([Pipeline.analyze] never raises, it
    only degrades) can be asserted over a corpus of mutants. *)

module Apk = Extr_apk.Apk

type mutation =
  | Dangling_ref  (** invokes retargeted at classes/methods that do not exist *)
  | Truncate_blocks  (** method bodies chopped mid-block, orphaning labels *)
  | Cyclic_hierarchy  (** a superclass cycle between two application classes *)
  | Drop_entries  (** entry-less manifest: no activities, no declared entries *)
  | Adversarial_strings  (** pathological constant strings *)
  | Scramble_labels  (** branch targets pointing at labels that do not exist *)

val mutation_name : mutation -> string
val all : mutation list

val hostile_strings : string list
(** The adversarial constants [Adversarial_strings] injects: oversized,
    regex-hostile, format-string-hostile, control-byte-laden, empty. *)

val mutate : seed:int -> Apk.t -> Apk.t * mutation list
(** Corrupt an APK deterministically: the seed selects one to three
    mutations and every random choice inside them.  Returns the mutant
    and the list of mutations applied. *)
