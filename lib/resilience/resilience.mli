(** Resource governance and graceful degradation.

    {!Budget} is the single meter for every abstract step the pipeline
    takes — taint worklist iterations and interpreted statements draw
    from the same fuel, calls check the same depth bound, and an
    optional wall-clock deadline (read through the telemetry injectable
    clock) covers the whole run.  {!Degrade} is the ledger every phase
    appends to when it bails, so truncated results are reported instead
    of silently shipped.  {!Barrier} isolates whole-app crashes for
    corpus runs. *)

module Clock = Extr_telemetry.Clock

module Budget : sig
  type limits = {
    bl_max_steps : int;  (** total abstract steps across all phases *)
    bl_max_depth : int;  (** call-inlining depth bound (interpreter) *)
    bl_deadline_s : float option;  (** wall-clock seconds for the run *)
  }

  val default_limits : limits
  (** 20M steps (~10x the largest corpus app), depth 24, no deadline. *)

  val unlimited : limits

  type exhaustion = Steps | Depth | Deadline

  val exhaustion_reason : exhaustion -> string
  (** Stable degradation-reason strings: ["step-budget-exhausted"],
      ["call-depth-clipped"], ["deadline-exceeded"]. *)

  type t

  val create : ?clock:Clock.t -> ?limits:limits -> unit -> t
  (** A fresh budget; the deadline is anchored at creation time. *)

  val alive : t -> bool
  (** No sticky resource (fuel, deadline) has tripped yet. *)

  val spend : t -> bool
  (** Consume one abstract step; [false] once fuel or deadline is
      exhausted.  The deadline is polled every 4096 steps. *)

  val depth_ok : t -> depth:int -> bool
  (** Is a call at [depth] within the inlining bound?  Not sticky (only
      clips that call) but remembered for {!depth_clipped}. *)

  val steps_used : t -> int
  val exhaustion : t -> exhaustion option
  val depth_clipped : t -> bool
end

module Degrade : sig
  type degradation = {
    dg_phase : string;  (** phase that bailed, e.g. ["slicing.backward"] *)
    dg_reason : string;  (** {!Budget.exhaustion_reason} string, or ["crash"] *)
    dg_detail : string;
    dg_work_left : int;  (** work items remaining at the bail point *)
  }

  type t

  val create : unit -> t

  val default : t
  (** The process-wide ledger.  Always on — degradations are results,
      not observability.  {!Extr_extractocol.Pipeline.analyze} resets it
      per app and folds it into the report. *)

  val reset : t -> unit

  val record :
    ?ledger:t ->
    phase:string ->
    reason:string ->
    ?work_left:int ->
    string ->
    unit
  (** Append a degradation (default ledger: {!default}).  Repeats of the
      same (phase, reason) coalesce into one ledger entry with the
      [work_left] values summed.  Every call still bumps the
      ["pipeline.degradations"] metric (labels [phase], [reason]) and
      records provenance evidence when those subsystems are enabled. *)

  val record_exhaustion :
    ?ledger:t -> phase:string -> ?work_left:int -> Budget.t -> string -> unit
  (** {!record} with the reason taken from the budget's exhaustion
      state; a no-op if the budget never tripped. *)

  val items : t -> degradation list
  (** Chronological order. *)

  val pp_degradation : Format.formatter -> degradation -> unit
end

module Barrier : sig
  exception Killed of int
  (** Raised by an injected kill-point ([--crash-at]); carries the exit
      code the process should die with.  Crosses {!protect}. *)

  exception Interrupted
  (** Raised from a SIGINT/SIGTERM handler to unwind a corpus run for a
      clean partial exit.  Crosses {!protect}. *)

  val set_phase : string -> unit
  (** Stamp the currently-running pipeline phase (crash attribution).
      Notifies the {!set_observer} callback, then fires the kill-point
      when one is armed for this phase. *)

  val set_observer : (string -> unit) -> unit
  (** Register a phase-transition observer (at most one).  The pool's
      worker wrapper uses it to send a heartbeat frame on every
      {!set_phase}, making phase transitions double as liveness
      signals for the coordinator's hung-worker watchdog. *)

  val clear_observer : unit -> unit

  val set_kill_point :
    phase:string -> occurrence:int -> (unit -> unit) -> unit
  (** Arm a kill-point: run the action the [occurrence]th time
      {!set_phase} enters [phase] (then disarm).  The CLI's action
      raises {!Killed}; tests can substitute their own. *)

  val clear_kill_point : unit -> unit

  val phase : unit -> string

  type crash = {
    cr_app : string;
    cr_exn : string;
    cr_phase : string;  (** pipeline phase active when it raised *)
    cr_backtrace : string;
  }

  val protect : app:string -> (unit -> 'a) -> ('a, crash) result
  (** Run behind an exception barrier: any escaped exception becomes an
      [Error crash] with its class, phase and backtrace — except the
      control exceptions {!Killed} and {!Interrupted}, which re-raise so
      they can stop the whole corpus run. *)

  val pp_crash : Format.formatter -> crash -> unit
end
