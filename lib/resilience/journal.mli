(** Write-ahead journal for corpus runs.

    [extractocol --all] appends one record per per-app state transition
    — started, retried, crashed, finished — so a killed run can be
    resumed: [--resume] replays the journal, skips every app with a
    [finished] record (restoring its result from the content-addressed
    cache when possible) and re-runs the rest.  The serialized form is
    JSONL, one record per line, with a header line carrying the
    configuration fingerprint; resuming under a different configuration
    is refused, because the journaled results would not match what the
    new configuration produces.

    Appends are O(1): the journal holds an open out-channel and each
    event is one line written at end-of-file and fsync'd before the
    append returns.  A kill mid-append can leave at most one torn
    trailing line, which {!load} tolerates (the partial line is dropped
    and the file truncated back to the last complete record).

    Every line additionally carries a content checksum (a final ["c"]
    member covering the rest of the line), so {e mid-file} corruption —
    bit rot, a tear glued to the next record, an interleaved partial
    write — is detected on every read: the corrupt record is dropped
    and reported as an {!anomaly}, never trusted and never fatal.
    Journals written before checksums existed load unverified. *)

type event =
  | Started of { ev_app : string; ev_key : string; ev_attempt : int }
      (** analysis began; [ev_key] is the result-cache address *)
  | Retried of { ev_app : string; ev_attempt : int; ev_reason : string }
      (** the retry ladder escalated ([ev_attempt] is the new attempt) *)
  | Crashed of { ev_app : string; ev_phase : string; ev_exn : string }
      (** the fault barrier caught a crash *)
  | Finished of {
      ev_app : string;
      ev_key : string;
      ev_status : string;  (** ["ok"], ["degraded"] or ["quarantined"] *)
      ev_cached : bool;  (** the result came from the cache *)
      ev_attempts : int;
      ev_txs : int;
    }

type t

type anomaly = { an_line : int;  (** 1-based line number in the file *)
                 an_reason : string }
(** One dropped record: a line that failed its checksum, did not parse,
    or carried an unrecognized event.  The benign torn {e tail} (a
    final line with no newline — a mid-append kill) is not an anomaly. *)

val pp_anomaly : Format.formatter -> anomaly -> unit

val set_integrity : bool -> unit
(** Benchmark knob: [false] writes unsealed (legacy) lines, so the
    checksum overhead can be measured differentially.  Readers accept
    both.  Default [true]. *)

val create :
  ?clock:Extr_telemetry.Clock.t -> path:string -> config:string -> unit -> t
(** Start a fresh journal at [path] (truncating any previous one) whose
    header records the [config] fingerprint.  Every record — header
    included — is stamped with the [clock]'s current time (default:
    wall clock), so an offline reader can reconstruct per-app wall time
    and the run's timeline from the file alone. *)

val load :
  ?clock:Extr_telemetry.Clock.t ->
  path:string ->
  config:string ->
  unit ->
  (t * event list * anomaly list, string) result
(** Re-open an existing journal for [--resume].  [Error] when the file
    is missing or unreadable, the header is absent or fails its
    checksum, or the header's configuration fingerprint differs from
    [config].  A truncated trailing line (a mid-append kill) is dropped
    and the file truncated back to the last complete record; corrupt or
    malformed interior lines are dropped and returned as anomalies —
    the affected apps simply re-run, so a resumed run never trusts a
    corrupt record.  The returned journal is positioned to append after
    the surviving records. *)

val read :
  path:string ->
  (string * (float option * event) list * anomaly list, string) result
(** Read-only load for offline inspection ([extractocol stats]): the
    header's configuration fingerprint and every complete record with
    its timestamp ([None] for records written before stamping existed),
    plus the anomalies for dropped mid-file records.  Unlike {!load},
    the file is not opened for appending, not truncated, and no
    configuration is required — a torn trailing line is simply skipped,
    so a journal left by a killed (or still-running) run can be
    inspected without touching it. *)

val read_lenient :
  path:string ->
  (string option * (float option * event) list * anomaly list, string) result
(** Like {!read}, but a zero-byte (or whitespace-only) journal — a run
    that died between opening the file and writing the header, the
    stale-lock shape — is [Ok (None, [], [])] rather than an error, so
    [merge] and [stats] can classify it as an empty shard.  A non-empty
    file with a malformed header is still an [Error]. *)

val header_line : ?stamp:float -> config:string -> unit -> string
(** The header record (no trailing newline) exactly as {!create} writes
    it, with an optional explicit timestamp — for offline writers (the
    [merge] subcommand) producing a journal the runner's readers accept
    verbatim. *)

val line_of_event : ?stamp:float -> event -> string
(** One event record (no trailing newline) exactly as {!append} writes
    it, with an optional explicit timestamp carried over from the source
    journal. *)

val append : t -> event -> unit
(** Record an event: one sealed JSONL line appended and fsync'd before
    this returns, so the event survives any subsequent kill.  O(1) in
    the journal size.  Consults the {!Fault} site ["journal.append"]
    (modes [torn], [bitflip], [drop]) so environment faults can be
    injected between the event and the disk. *)

val path : t -> string

val finished : event list -> (string * event) list
(** The [(app, record)] pairs for apps whose last lifecycle record is
    [Finished] — the apps [--resume] may skip.  An app that started
    again after finishing (a later [Started] record) is not included. *)

val pp_event : Format.formatter -> event -> unit
