(* Environment fault injection: a deterministic plan of named sites.
   See the .mli for the grammar and matching rules; this file is a flat
   list of armed entries consulted by instrumented call sites. *)

module Metrics = Extr_telemetry.Metrics
module Export = Extr_telemetry.Export

let src = Logs.Src.create "extractocol.fault" ~doc:"Environment fault injection"

module Log = (val Logs.src_log src : Logs.LOG)

let m_injected =
  Metrics.counter ~help:"environment faults fired by the injection plan"
    "fault.injected"

type entry = {
  fe_site : string;
  fe_occurrence : int;  (* fires on the Nth matching hit, 1-based *)
  fe_mode : string;  (* site-interpreted; "" = the site's default *)
  mutable fe_hits : int;
  mutable fe_fired : bool;  (* one-shot per process *)
}

let plan : entry list ref = ref []

let reset () = plan := []
let active () = !plan <> []

let describe () =
  List.map
    (fun e ->
      Printf.sprintf "%s@%d%s" e.fe_site e.fe_occurrence
        (if e.fe_mode = "" then "" else ":" ^ e.fe_mode))
    !plan

let fire ?arg site =
  let matches e =
    e.fe_site = site
    && (not e.fe_fired)
    &&
    match arg with
    | Some a when e.fe_mode <> "" -> e.fe_mode = a
    | _ -> true
  in
  match List.find_opt matches !plan with
  | None -> None
  | Some e ->
      e.fe_hits <- e.fe_hits + 1;
      if e.fe_hits >= e.fe_occurrence then begin
        e.fe_fired <- true;
        if Metrics.is_enabled Metrics.default then
          Metrics.incr ~labels:[ ("site", site) ] m_injected;
        Log.warn (fun m ->
            m "injecting fault at %s (hit %d%s)" site e.fe_hits
              (if e.fe_mode = "" then "" else ", mode " ^ e.fe_mode));
        Some e.fe_mode
      end
      else None

(* The export layer sits below this library, so it cannot consult the
   plan directly; it exposes a hook instead, installed on first arm.
   Idempotent — installing twice is harmless. *)
let install_export_hook () =
  Export.set_write_fault (fun _path -> fire "export.write")

let arm ~site ?(occurrence = 1) ?(mode = "") () =
  plan :=
    !plan
    @ [
        {
          fe_site = site;
          fe_occurrence = max 1 occurrence;
          fe_mode = mode;
          fe_hits = 0;
          fe_fired = false;
        };
      ];
  install_export_hook ()

(* SITE[@N][:MODE] — the mode (an app name for targeted sites) may
   itself contain '@', so the occurrence is parsed out of the part
   before the first ':'. *)
let parse spec =
  let spec = String.trim spec in
  let head, mode =
    match String.index_opt spec ':' with
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, "")
  in
  let site, occurrence =
    match String.index_opt head '@' with
    | Some i -> (
        let n = String.sub head (i + 1) (String.length head - i - 1) in
        match int_of_string_opt n with
        | Some k when k >= 1 -> (String.sub head 0 i, Result.Ok k)
        | _ -> (head, Result.Error ()))
    | None -> (head, Result.Ok 1)
  in
  match occurrence with
  | Result.Error () ->
      Result.Error
        (Printf.sprintf "--inject %s: occurrence must be a positive integer"
           spec)
  | Result.Ok _ when site = "" ->
      Result.Error (Printf.sprintf "--inject %s: empty site name" spec)
  | Result.Ok occurrence -> Result.Ok (site, occurrence, mode)

let arm_spec spec =
  match parse spec with
  | Result.Error _ as e -> e
  | Result.Ok (site, occurrence, mode) ->
      arm ~site ~occurrence ~mode ();
      Result.Ok ()

let env_var = "EXTRACTOCOL_INJECT"

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some specs ->
      List.iter
        (fun spec ->
          if String.trim spec <> "" then
            match arm_spec spec with
            | Result.Ok () -> ()
            | Result.Error msg ->
                Log.warn (fun m -> m "%s: %s (ignored)" env_var msg))
        (String.split_on_char ',' specs)
