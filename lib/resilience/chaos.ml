(* Fault injection for the analysis pipeline.

   Real APK corpora contain apps that no well-formedness assumption
   survives: dead branches into nowhere, classes whose hierarchy data is
   corrupt, half-stripped methods, obfuscated string soup.  This module
   manufactures those apps deliberately — a seeded mutator that corrupts
   generated Limple programs in targeted ways — so the crash-free
   invariant ([Pipeline.analyze] never raises, it only degrades) can be
   asserted mechanically over a corpus of mutants. *)

module Ir = Extr_ir.Types
module Apk = Extr_apk.Apk

type mutation =
  | Dangling_ref  (** invokes retargeted at classes/methods that do not exist *)
  | Truncate_blocks  (** method bodies chopped mid-block, orphaning labels *)
  | Cyclic_hierarchy  (** a superclass cycle between two application classes *)
  | Drop_entries  (** entry-less manifest: no activities, no declared entries *)
  | Adversarial_strings  (** pathological constant strings *)
  | Scramble_labels  (** branch targets pointing at labels that do not exist *)

let mutation_name = function
  | Dangling_ref -> "dangling-ref"
  | Truncate_blocks -> "truncate-blocks"
  | Cyclic_hierarchy -> "cyclic-hierarchy"
  | Drop_entries -> "drop-entries"
  | Adversarial_strings -> "adversarial-strings"
  | Scramble_labels -> "scramble-labels"

let all =
  [
    Dangling_ref;
    Truncate_blocks;
    Cyclic_hierarchy;
    Drop_entries;
    Adversarial_strings;
    Scramble_labels;
  ]

(* Strings chosen to stress every consumer downstream: the regex
   compiler (metacharacters), exporters (control bytes, quotes), URI
   parsing (embedded NULs and schemes), and widening (sheer size). *)
let hostile_strings =
  [
    String.make 4096 'A';
    "(((((.*+?[]{}|\\^$)))))";
    "%s%n%x%%";
    "\x00\xff\xfe\x01 mixed \n\r\t \"quotes\" \\backslash";
    "https://evil.example/\x00?q=((([^]&=&=&=";
    "";
  ]

(* ------------------------------------------------------------------ *)
(* Per-mutation program rewrites                                      *)
(* ------------------------------------------------------------------ *)

let map_app_classes f (p : Ir.program) =
  {
    p with
    Ir.p_classes =
      List.map (fun c -> if c.Ir.c_library then c else f c) p.Ir.p_classes;
  }

let map_methods f (p : Ir.program) =
  map_app_classes
    (fun c -> { c with Ir.c_methods = List.map f c.Ir.c_methods })
    p

let map_stmts f (p : Ir.program) =
  map_methods (fun m -> { m with Ir.m_body = Array.map f m.Ir.m_body }) p

let dangling_ref rng (p : Ir.program) =
  let ghost (i : Ir.invoke) =
    { i with Ir.iref = { i.Ir.iref with Ir.mcls = "chaos.Ghost"; mname = "phantom" } }
  in
  map_stmts
    (fun stmt ->
      if Random.State.int rng 4 <> 0 then stmt
      else
        match stmt with
        | Ir.InvokeStmt i -> Ir.InvokeStmt (ghost i)
        | Ir.Assign (l, Ir.Invoke i) -> Ir.Assign (l, Ir.Invoke (ghost i))
        | s -> s)
    p

let truncate_blocks rng (p : Ir.program) =
  map_methods
    (fun m ->
      let n = Array.length m.Ir.m_body in
      if n < 4 || Random.State.int rng 3 <> 0 then m
      else
        let keep = 1 + Random.State.int rng (n - 1) in
        { m with Ir.m_body = Array.sub m.Ir.m_body 0 keep })
    p

let cyclic_hierarchy rng (p : Ir.program) =
  let apps =
    List.filter (fun (c : Ir.cls) -> not c.Ir.c_library) p.Ir.p_classes
  in
  match apps with
  | a :: _ :: _ ->
      let b = List.nth apps (1 + Random.State.int rng (List.length apps - 1)) in
      let cycle (c : Ir.cls) =
        if c.Ir.c_name = a.Ir.c_name then { c with Ir.c_super = Some b.Ir.c_name }
        else if c.Ir.c_name = b.Ir.c_name then
          { c with Ir.c_super = Some a.Ir.c_name }
        else c
      in
      map_app_classes cycle p
  | [ a ] -> map_app_classes (fun c ->
        if c.Ir.c_name = a.Ir.c_name then { c with Ir.c_super = Some a.Ir.c_name }
        else c) p
  | [] -> p

let adversarial_strings rng (p : Ir.program) =
  let hostile () =
    List.nth hostile_strings (Random.State.int rng (List.length hostile_strings))
  in
  let value = function
    | Ir.Const (Ir.Cstr _) when Random.State.int rng 3 = 0 ->
        Ir.Const (Ir.Cstr (hostile ()))
    | v -> v
  in
  let expr = function
    | Ir.Val v -> Ir.Val (value v)
    | Ir.Binop (op, a, b) -> Ir.Binop (op, value a, value b)
    | Ir.Invoke i -> Ir.Invoke { i with Ir.iargs = List.map value i.Ir.iargs }
    | e -> e
  in
  map_stmts
    (fun stmt ->
      match stmt with
      | Ir.Assign (l, e) -> Ir.Assign (l, expr e)
      | Ir.InvokeStmt i ->
          Ir.InvokeStmt { i with Ir.iargs = List.map value i.Ir.iargs }
      | s -> s)
    p

let scramble_labels rng (p : Ir.program) =
  let nowhere () = Printf.sprintf "chaos_nowhere_%d" (Random.State.int rng 1000) in
  map_stmts
    (fun stmt ->
      if Random.State.int rng 3 <> 0 then stmt
      else
        match stmt with
        | Ir.Goto _ -> Ir.Goto (nowhere ())
        | Ir.If (v, _) -> Ir.If (v, nowhere ())
        | s -> s)
    p

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let apply rng (apk : Apk.t) = function
  | Dangling_ref -> { apk with Apk.program = dangling_ref rng apk.Apk.program }
  | Truncate_blocks ->
      { apk with Apk.program = truncate_blocks rng apk.Apk.program }
  | Cyclic_hierarchy ->
      { apk with Apk.program = cyclic_hierarchy rng apk.Apk.program }
  | Adversarial_strings ->
      { apk with Apk.program = adversarial_strings rng apk.Apk.program }
  | Scramble_labels ->
      { apk with Apk.program = scramble_labels rng apk.Apk.program }
  | Drop_entries ->
      {
        apk with
        Apk.manifest = { apk.Apk.manifest with Apk.mf_activities = [] };
        program = { apk.Apk.program with Ir.p_entries = [] };
      }

(** Corrupt an APK deterministically: the seed selects one to three
    mutations and every random choice inside them.  Returns the mutant
    and the mutations applied (for failure reports). *)
let mutate ~seed (apk : Apk.t) : Apk.t * mutation list =
  let rng = Random.State.make [| seed; 0x0c4a05 |] in
  let count = 1 + Random.State.int rng 3 in
  let picks =
    List.init count (fun _ -> List.nth all (Random.State.int rng (List.length all)))
    |> List.sort_uniq compare
  in
  (List.fold_left (apply rng) apk picks, picks)
