(** Degrade-and-retry ladder for corpus runs.

    A transiently failing app should not ship a truncated result when a
    bigger budget would finish it, and a crashing app should get exactly
    one more chance before being quarantined.  {!run} drives one app
    through that ladder:

    - a {b clean} attempt returns immediately;
    - a {b degraded} attempt (budget/deadline exhaustion) is re-run with
      escalated limits — steps and deadline multiplied, depth widened —
      until the attempt cap; the last result is returned still degraded;
    - a {b crashed} attempt is retried once with unchanged limits (the
      paper's pathological apps crash deterministically; flaky
      infrastructure does not), then {b quarantined}.

    Backoff between attempts is deterministic: [rp_backoff_s * 2^(n-1)]
    before attempt [n+1], spent through an injectable
    {!Extr_telemetry.Clock.sleep}, so the ladder unit-tests without real
    sleeps.  Every extra attempt bumps the ["retry.attempts"] metric
    (label [reason]). *)

module Clock = Extr_telemetry.Clock
module Budget = Resilience.Budget
module Barrier = Resilience.Barrier

type policy = {
  rp_max_attempts : int;  (** total attempts, first one included *)
  rp_crash_retries : int;  (** extra attempts granted after a crash *)
  rp_backoff_s : float;  (** base backoff; doubles per attempt *)
  rp_escalate_steps : int;  (** step-budget multiplier per escalation *)
  rp_escalate_depth : int;  (** depth-bound increment per escalation *)
  rp_escalate_deadline : float;  (** deadline multiplier per escalation *)
}

val default_policy : policy
(** 3 attempts, 1 crash retry, 50ms base backoff, steps x4 / depth +8 /
    deadline x2 per escalation. *)

val no_retry : policy
(** 1 attempt, 0 crash retries: the ladder disabled. *)

val fingerprint : policy -> string
(** Canonical one-line form, part of the cache key and the journal
    configuration fingerprint: a different ladder can produce different
    results for the same app. *)

val escalate : policy -> Budget.limits -> Budget.limits
(** The limits for the next rung: steps and deadline multiplied, depth
    incremented, all saturating at [max_int] / unchanged [None]. *)

type 'a verdict =
  | Clean of 'a  (** finished with no degradations *)
  | Degraded of 'a  (** finished, but a budget or deadline tripped *)

type 'a outcome =
  | Succeeded of 'a * int  (** result + attempts used *)
  | Still_degraded of 'a * int
      (** every rung degraded; the last (largest-budget) result *)
  | Quarantined of Barrier.crash * int
      (** crashed, retried, crashed again: excluded from the corpus *)

val run :
  ?sleep:Clock.sleep ->
  ?on_retry:(attempt:int -> reason:string -> unit) ->
  policy ->
  limits:Budget.limits ->
  attempt:(attempt:int -> Budget.limits -> ('a verdict, Barrier.crash) result) ->
  'a outcome
(** Drive [attempt] up the ladder.  [attempt] runs the app under the
    given limits (behind its own {!Barrier.protect}) and classifies the
    result; [on_retry] fires before each re-run (the corpus runner
    journals it).  [sleep] defaults to {!Clock.sleep_wall}. *)
