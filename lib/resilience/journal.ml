(* Write-ahead journal: true append-only JSONL on an open channel,
   fsync'd per record (see the .mli for the durability contract). *)

module Json = Extr_httpmodel.Json
module Clock = Extr_telemetry.Clock

let src = Logs.Src.create "extractocol.journal" ~doc:"Corpus-run write-ahead journal"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Started of { ev_app : string; ev_key : string; ev_attempt : int }
  | Retried of { ev_app : string; ev_attempt : int; ev_reason : string }
  | Crashed of { ev_app : string; ev_phase : string; ev_exn : string }
  | Finished of {
      ev_app : string;
      ev_key : string;
      ev_status : string;
      ev_cached : bool;
      ev_attempts : int;
      ev_txs : int;
    }

type t = {
  jn_path : string;
  jn_config : string;
  jn_oc : out_channel;  (* positioned at end-of-file, after a '\n' *)
  jn_clock : Clock.t;  (* stamps each record; injectable for tests *)
}

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let json_of_event = function
  | Started e ->
      Json.Obj
        [
          ("event", Json.Str "started");
          ("app", Json.Str e.ev_app);
          ("key", Json.Str e.ev_key);
          ("attempt", Json.Int e.ev_attempt);
        ]
  | Retried e ->
      Json.Obj
        [
          ("event", Json.Str "retried");
          ("app", Json.Str e.ev_app);
          ("attempt", Json.Int e.ev_attempt);
          ("reason", Json.Str e.ev_reason);
        ]
  | Crashed e ->
      Json.Obj
        [
          ("event", Json.Str "crashed");
          ("app", Json.Str e.ev_app);
          ("phase", Json.Str e.ev_phase);
          ("exn", Json.Str e.ev_exn);
        ]
  | Finished e ->
      Json.Obj
        [
          ("event", Json.Str "finished");
          ("app", Json.Str e.ev_app);
          ("key", Json.Str e.ev_key);
          ("status", Json.Str e.ev_status);
          ("cached", Json.Bool e.ev_cached);
          ("attempts", Json.Int e.ev_attempts);
          ("txs", Json.Int e.ev_txs);
        ]

let str k j = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
let int k j = match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let bool k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let event_of_json j =
  let ( let* ) = Option.bind in
  match str "event" j with
  | Some "started" ->
      let* ev_app = str "app" j in
      let* ev_key = str "key" j in
      let* ev_attempt = int "attempt" j in
      Some (Started { ev_app; ev_key; ev_attempt })
  | Some "retried" ->
      let* ev_app = str "app" j in
      let* ev_attempt = int "attempt" j in
      let* ev_reason = str "reason" j in
      Some (Retried { ev_app; ev_attempt; ev_reason })
  | Some "crashed" ->
      let* ev_app = str "app" j in
      let* ev_phase = str "phase" j in
      let* ev_exn = str "exn" j in
      Some (Crashed { ev_app; ev_phase; ev_exn })
  | Some "finished" ->
      let* ev_app = str "app" j in
      let* ev_key = str "key" j in
      let* ev_status = str "status" j in
      let* ev_cached = bool "cached" j in
      let* ev_attempts = int "attempts" j in
      let* ev_txs = int "txs" j in
      Some (Finished { ev_app; ev_key; ev_status; ev_cached; ev_attempts; ev_txs })
  | Some _ | None -> None

(* Each record is stamped with the journal clock when appended, so an
   offline reader ([read], the stats subcommand) can reconstruct wall
   time per app and the run's ETA from the file alone.  Readers treat
   the stamp as optional: journals written before stamping existed still
   load. *)
let timestamp_of_json j =
  match Json.member "t" j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let stamp t json =
  match json with
  | Json.Obj fields -> Json.Obj (fields @ [ ("t", Json.Float (t.jn_clock ())) ])
  | other -> other

let header config =
  Json.Obj [ ("event", Json.Str "run-started"); ("config", Json.Str config) ]

(* ------------------------------------------------------------------ *)
(* Record integrity                                                   *)
(* ------------------------------------------------------------------ *)

(* Every line is sealed with a short content checksum appended as a
   final "c" member: {...,"t":...} becomes {...,"t":...,"c":"xxxxxxxx"}
   where the digest covers the unsealed line bytes.  The scheme is
   purely textual — sealing and verification never round-trip through
   the Json value model, so float reprinting can neither weaken nor
   break it.  Unsealed lines (journals from before integrity existed)
   are accepted unverified. *)

let integrity = ref true
let set_integrity b = integrity := b

let checksum s = String.sub (Digest.to_hex (Digest.string s)) 0 8

let seal_line s =
  let n = String.length s in
  if (not !integrity) || n < 2 || s.[n - 1] <> '}' then s
  else String.sub s 0 (n - 1) ^ ",\"c\":\"" ^ checksum s ^ "\"}"

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

type seal_verdict = Sealed of string | Unsealed | Corrupt

(* The seal suffix is [,"c":"XXXXXXXX"}] — 16 bytes.  A line carrying it
   either verifies (recover the unsealed payload) or is corrupt; a line
   without it is legacy.  No schema field ends an event record with that
   shape, so legacy lines cannot be misclassified. *)
let unseal line =
  let n = String.length line in
  let suffix = 16 in
  if
    n > suffix
    && String.sub line (n - suffix) 6 = ",\"c\":\""
    && line.[n - 2] = '"'
    && line.[n - 1] = '}'
  then
    let digest = String.sub line (n - suffix + 6) 8 in
    let payload = String.sub line 0 (n - suffix) ^ "}" in
    if String.for_all is_hex digest && checksum payload = digest then
      Sealed payload
    else Corrupt
  else Unsealed

type anomaly = { an_line : int; an_reason : string }

let pp_anomaly fmt a = Fmt.pf fmt "line %d: %s" a.an_line a.an_reason

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

(* Push the channel buffer to the kernel and the kernel's to the disk.
   fsync can fail on exotic filesystems (EINVAL on pipes in tests);
   losing durability there beats aborting the run. *)
let sync oc =
  Out_channel.flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let write_line oc line =
  Out_channel.output_string oc line;
  Out_channel.output_char oc '\n';
  sync oc

let create ?(clock = Clock.wall) ~path ~config () =
  let oc = Out_channel.open_text path in
  let t = { jn_path = path; jn_config = config; jn_oc = oc; jn_clock = clock } in
  write_line oc (seal_line (Json.to_string (stamp t (header config))));
  t

let split_lines s = String.split_on_char '\n' s

(* Reposition [path] for appending after a possibly torn tail: keep
   everything up to and including the last '\n', drop the partial line
   after it, and hand back a channel at that offset. *)
let reopen_for_append path contents =
  let keep, need_nl =
    match String.rindex_opt contents '\n' with
    | Some i -> (i + 1, false)
    | None -> (String.length contents, String.length contents > 0)
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  if need_nl then Out_channel.output_char oc '\n';
  oc

(* Header line + parsed (timestamp, event) records of [path]'s complete
   lines; shared by the resuming [load] and the read-only [read].
   [Ok (None, [], [])] is a zero-byte journal: a run died between
   opening the file and writing the header (the stale-lock shape) —
   offline readers classify it as an empty run, not an error.

   Corruption never raises and never silently passes: a mid-file record
   that fails its checksum or does not parse is dropped AND reported as
   an anomaly, so callers can degrade ([merge]), warn ([--resume]) or
   audit ([stats --verify]).  The single exception is a torn tail — a
   final line the writer never finished (no trailing newline): that is
   the documented benign kill shape, dropped silently exactly as
   before. *)
let parse_journal ~path contents =
  let len = String.length contents in
  let ends_nl = len = 0 || contents.[len - 1] = '\n' in
  let raw = split_lines contents in
  let nlines = List.length raw in
  let numbered =
    List.filter (fun (_, l) -> String.trim l <> "")
      (List.mapi (fun i l -> (i + 1, l)) raw)
  in
  match numbered with
  | [] -> Ok (None, [], [])
  | (hn, hd) :: tl -> (
      let torn_tail ln = (not ends_nl) && ln = nlines in
      let header_payload =
        match unseal hd with
        | Sealed p -> Some p
        | Unsealed -> Some hd
        | Corrupt -> None
      in
      match
        Option.bind header_payload (fun p ->
            Option.bind (Json.of_string_opt p) (str "config"))
      with
      | None ->
          if header_payload = None && not (torn_tail hn) then
            Error (path ^ ": journal header failed its checksum")
          else Error (path ^ ": journal header missing or malformed")
      | Some c ->
          let anomalies = ref [] in
          let note ln reason =
            Log.warn (fun m -> m "%s: dropping journal line %d: %s" path ln reason);
            anomalies := { an_line = ln; an_reason = reason } :: !anomalies
          in
          let events =
            List.filter_map
              (fun (ln, line) ->
                let payload =
                  match unseal line with
                  | Sealed p -> Some p
                  | Unsealed -> Some line
                  | Corrupt ->
                      if not (torn_tail ln) then
                        note ln "record failed its checksum";
                      None
                in
                match payload with
                | None -> None
                | Some p -> (
                    match Json.of_string_opt p with
                    | Some j -> (
                        match event_of_json j with
                        | Some ev -> Some (timestamp_of_json j, ev)
                        | None ->
                            if not (torn_tail ln) then
                              note ln "unrecognized record";
                            None)
                    | None ->
                        if not (torn_tail ln) then
                          note ln "unparseable record";
                        None))
              tl
          in
          Ok (Some c, events, List.rev !anomalies))

let read_lenient ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> parse_journal ~path contents

let read ~path =
  match read_lenient ~path with
  | Error msg -> Error msg
  | Ok (None, _, _) -> Error (path ^ ": empty journal (no header)")
  | Ok (Some c, events, anomalies) -> Ok (c, events, anomalies)

let load ?(clock = Clock.wall) ~path ~config () =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match parse_journal ~path contents with
      | Error msg -> Error msg
      | Ok (None, _, _) -> Error (path ^ ": empty journal (no header)")
      | Ok (Some c, _, _) when c <> config ->
          Error
            (Fmt.str
               "%s: journal was written under a different configuration \
                (%s, current run %s); results would not match — remove \
                the journal or rerun without --resume"
               path c config)
      | Ok (Some _, timestamped, anomalies) -> (
          match reopen_for_append path contents with
          | exception Unix.Unix_error (e, _, _) ->
              Error (path ^ ": " ^ Unix.error_message e)
          | oc ->
              Ok
                ( { jn_path = path; jn_config = config; jn_oc = oc;
                    jn_clock = clock },
                  List.map snd timestamped,
                  anomalies )))

let append t ev =
  let line = seal_line (Json.to_string (stamp t (json_of_event ev))) in
  match Fault.fire "journal.append" with
  | Some "torn" ->
      (* Half a record and no newline: once later appends land after
         it, the tear sits mid-file glued to the next record — the
         checksum is what catches it. *)
      Out_channel.output_string t.jn_oc
        (String.sub line 0 (String.length line / 2));
      sync t.jn_oc
  | Some "bitflip" ->
      let b = Bytes.of_string line in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      write_line t.jn_oc (Bytes.to_string b)
  | Some "drop" -> ()
  | Some _ | None -> write_line t.jn_oc line

(* Offline serialization, format-identical to the live appender, so the
   merge subcommand can write a unioned journal that stats / a further
   merge read back exactly like one the runner wrote. *)
let with_stamp stamp json =
  match (stamp, json) with
  | Some t, Json.Obj fields -> Json.Obj (fields @ [ ("t", Json.Float t) ])
  | _, other -> other

let header_line ?stamp ~config () =
  seal_line (Json.to_string (with_stamp stamp (header config)))

let line_of_event ?stamp ev =
  seal_line (Json.to_string (with_stamp stamp (json_of_event ev)))

let path t = t.jn_path

let event_app = function
  | Started e -> e.ev_app
  | Retried e -> e.ev_app
  | Crashed e -> e.ev_app
  | Finished e -> e.ev_app

let finished events =
  (* Last lifecycle record per app wins: a Started after a Finished means
     the app was being re-run when the journal stopped. *)
  let last = Hashtbl.create 16 in
  List.iter (fun ev -> Hashtbl.replace last (event_app ev) ev) events;
  Hashtbl.fold
    (fun app ev acc ->
      match ev with Finished _ -> (app, ev) :: acc | _ -> acc)
    last []

let pp_event fmt = function
  | Started e -> Fmt.pf fmt "started %s (attempt %d)" e.ev_app e.ev_attempt
  | Retried e ->
      Fmt.pf fmt "retried %s (attempt %d, %s)" e.ev_app e.ev_attempt e.ev_reason
  | Crashed e -> Fmt.pf fmt "crashed %s in %s: %s" e.ev_app e.ev_phase e.ev_exn
  | Finished e ->
      Fmt.pf fmt "finished %s (%s%s, %d attempt%s, %d txs)" e.ev_app e.ev_status
        (if e.ev_cached then ", cached" else "")
        e.ev_attempts
        (if e.ev_attempts = 1 then "" else "s")
        e.ev_txs
