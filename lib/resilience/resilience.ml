(* Resource governance and graceful degradation.

   The paper's headline claim (§5, Table 1) is that static analysis
   completes on every app, including closed-source ones full of
   pathological code.  This module is how that claim stays honest at
   scale: a single {!Budget} meters every abstract step the pipeline
   takes (taint worklist iterations, interpreted statements) against
   step fuel, a call-depth bound and an optional wall-clock deadline;
   the {!Degrade} ledger records every place a phase bailed instead of
   finishing, so truncated results are reported, never silent; and
   {!Barrier} isolates whole-app crashes so one malformed app cannot
   take down a corpus run. *)

module Clock = Extr_telemetry.Clock
module Metrics = Extr_telemetry.Metrics
module Provenance = Extr_provenance.Provenance

let src = Logs.Src.create "extractocol.resilience" ~doc:"Budgets and degradation"

module Log = (val Logs.src_log src : Logs.LOG)

module Budget = struct
  type limits = {
    bl_max_steps : int;
    bl_max_depth : int;
    bl_deadline_s : float option;
  }

  (* 20M steps is ~10x the largest corpus app (Pinterest spends ~1.4M
     worklist steps + ~17k interpreted statements); generous enough never
     to trip on a well-formed app, small enough to bound a pathological
     one. *)
  let default_limits =
    { bl_max_steps = 20_000_000; bl_max_depth = 24; bl_deadline_s = None }

  let unlimited =
    { bl_max_steps = max_int; bl_max_depth = max_int; bl_deadline_s = None }

  type exhaustion = Steps | Depth | Deadline

  let exhaustion_reason = function
    | Steps -> "step-budget-exhausted"
    | Depth -> "call-depth-clipped"
    | Deadline -> "deadline-exceeded"

  type t = {
    limits : limits;
    clock : Clock.t;
    started : float;
    mutable steps : int;
    mutable tripped : exhaustion option;
        (** sticky fuel/deadline trip; [Depth] never sticks here *)
    mutable depth_clipped : bool;  (** some call exceeded the depth bound *)
  }

  let create ?(clock = Clock.wall) ?(limits = default_limits) () =
    { limits; clock; started = clock (); steps = 0; tripped = None; depth_clipped = false }

  (* Reading the clock on every step would dominate the hot loops; a
     masked check every 4096 steps bounds the overshoot to microseconds. *)
  let deadline_mask = 0xFFF

  let deadline_passed t =
    match t.limits.bl_deadline_s with
    | None -> false
    | Some d -> t.clock () -. t.started > d

  (** Is any sticky resource (fuel, deadline) still available? *)
  let alive t = t.tripped = None

  (** Consume one abstract step.  Returns [false] once the step fuel or
      the deadline is exhausted; consumers must stop doing work (and
      record a degradation) when that happens. *)
  let spend t =
    match t.tripped with
    | Some _ -> false
    | None ->
        t.steps <- t.steps + 1;
        if t.steps > t.limits.bl_max_steps then begin
          t.tripped <- Some Steps;
          false
        end
        else if t.steps land deadline_mask = 0 && deadline_passed t then begin
          t.tripped <- Some Deadline;
          false
        end
        else true

  (** Is a call at [depth] within the inlining bound?  Exceeding it is
      not sticky — it only clips that call — but it is remembered so the
      clipping can surface as a degradation. *)
  let depth_ok t ~depth =
    if depth > t.limits.bl_max_depth then begin
      t.depth_clipped <- true;
      false
    end
    else true

  let steps_used t = t.steps
  let exhaustion t = t.tripped
  let depth_clipped t = t.depth_clipped
end

(* ------------------------------------------------------------------ *)
(* Degradation ledger                                                 *)
(* ------------------------------------------------------------------ *)

module Degrade = struct
  type degradation = {
    dg_phase : string;  (** pipeline phase that bailed, e.g. "slicing.backward" *)
    dg_reason : string;  (** see {!Budget.exhaustion_reason}, or "crash" *)
    dg_detail : string;  (** where and what, human-readable *)
    dg_work_left : int;  (** work items remaining when the phase bailed *)
  }

  type t = { mutable items : degradation list (* newest first *) }

  let create () = { items = [] }

  (* One process-wide ledger, always on: degradations are results, not
     observability, so there is no enabled flag to forget. *)
  let default = create ()

  let reset t = t.items <- []

  let m_degradations =
    Metrics.counter
      ~help:"phases that bailed before finishing their work (phase, reason)"
      "pipeline.degradations"

  let record ?(ledger = default) ~phase ~reason ?(work_left = 0) detail =
    (* Each bail still bumps the metric, but the ledger coalesces repeats
       of the same (phase, reason) — an exhausted budget bails once per
       demarcation point, and a report with hundreds of identical lines
       says less than one line with the summed work left. *)
    let repeat =
      List.exists
        (fun d -> d.dg_phase = phase && d.dg_reason = reason)
        ledger.items
    in
    if repeat then
      ledger.items <-
        List.map
          (fun d ->
            if d.dg_phase = phase && d.dg_reason = reason then
              { d with dg_work_left = d.dg_work_left + work_left }
            else d)
          ledger.items
    else begin
      ledger.items <-
        {
          dg_phase = phase;
          dg_reason = reason;
          dg_detail = detail;
          dg_work_left = work_left;
        }
        :: ledger.items;
      Log.warn (fun m ->
          m "%s degraded (%s): %s [%d work items left]" phase reason detail
            work_left)
    end;
    if Metrics.is_enabled Metrics.default then
      Metrics.incr m_degradations
        ~labels:[ ("phase", phase); ("reason", reason) ];
    if Provenance.is_enabled Provenance.default then
      Provenance.record_degradation Provenance.default ~phase ~reason detail

  (** Record a budget exhaustion, if the budget actually tripped. *)
  let record_exhaustion ?ledger ~phase ?(work_left = 0) (b : Budget.t) detail =
    match Budget.exhaustion b with
    | None -> ()
    | Some e ->
        record ?ledger ~phase ~reason:(Budget.exhaustion_reason e) ~work_left
          detail

  let items t = List.rev t.items

  let pp_degradation fmt d =
    Fmt.pf fmt "%s: %s (%s)%s" d.dg_phase d.dg_reason d.dg_detail
      (if d.dg_work_left > 0 then Fmt.str " [%d work items left]" d.dg_work_left
       else "")
end

(* ------------------------------------------------------------------ *)
(* Per-app fault isolation                                            *)
(* ------------------------------------------------------------------ *)

module Barrier = struct
  exception Killed of int
  exception Interrupted

  (* The pipeline stamps its current Figure-2 phase here so a crash can
     be attributed to the stage that raised, without threading state
     through every call. *)
  let current_phase = ref "init"

  (* Injected kill-point (--crash-at): simulate the process dying at a
     phase boundary.  [Some (phase, n, action)] runs [action] the [n]th
     time [phase] is entered; the CLI's action exits the process, so a
     journaled run is cut off exactly as a kill -9 would cut it. *)
  let kill_point : (string * int * (unit -> unit)) option ref = ref None

  let set_kill_point ~phase:p ~occurrence action =
    kill_point := Some (p, occurrence, action)

  let clear_kill_point () = kill_point := None

  (* Phase observer: the pool's worker wrapper registers a heartbeat
     sender here, so every phase transition doubles as a liveness
     signal without threading a callback through the pipeline. *)
  let observer : (string -> unit) ref = ref (fun _ -> ())
  let set_observer f = observer := f
  let clear_observer () = observer := fun _ -> ()

  let set_phase p =
    current_phase := p;
    !observer p;
    match !kill_point with
    | Some (kp, n, action) when kp = p ->
        if n <= 1 then begin
          clear_kill_point ();
          action ()
        end
        else kill_point := Some (kp, n - 1, action)
    | Some _ | None -> ()

  let phase () = !current_phase

  type crash = {
    cr_app : string;
    cr_exn : string;  (** exception constructor, e.g. [Invalid_argument] *)
    cr_phase : string;  (** pipeline phase active when it raised *)
    cr_backtrace : string;
  }

  (** Run [f] behind an exception barrier.  Any exception — including
      [Stack_overflow] and [Out_of_memory] — becomes an [Error crash]
      carrying the exception class, the pipeline phase it escaped from,
      and the raw backtrace. *)
  let protect ~app (f : unit -> 'a) : ('a, crash) result =
    set_phase "init";
    let recording = Printexc.backtrace_status () in
    if not recording then Printexc.record_backtrace true;
    let restore () = if not recording then Printexc.record_backtrace false in
    match f () with
    | v ->
        restore ();
        Ok v
    (* Control exceptions cross the barrier: a kill-point or an operator
       interrupt must stop the whole corpus run, not be misreported as
       one app's crash. *)
    | exception ((Killed _ | Interrupted) as e) ->
        restore ();
        raise e
    | exception exn ->
        let bt = Printexc.get_backtrace () in
        restore ();
        Error
          {
            cr_app = app;
            cr_exn = Printexc.to_string exn;
            cr_phase = phase ();
            cr_backtrace = bt;
          }

  let pp_crash fmt c =
    Fmt.pf fmt "%s crashed in phase %s: %s" c.cr_app c.cr_phase c.cr_exn
end
