(* The evidence chain behind every analysis conclusion.  PR 1 made the
   pipeline observable in time (spans, metrics); this layer makes it
   observable in meaning: which demarcation-point statement and slice
   steps admitted each slice line (§3.1), which taint facts justified
   each worklist conclusion, which Limple statement and api_sem rule
   produced each signature fragment (§3.2), and why a request/response
   pair or a dependency edge was drawn (§3.3).

   Recording follows the telemetry discipline exactly: a recorder is a
   mutable [enabled] flag plus tables, every record function reads the
   flag first, and the default recorder is disabled — the hot path pays
   one bool load. *)

module Ir = Extr_ir.Types

(** Why a statement entered a slice (§3.1, §3.4). *)
type slice_step =
  | Dp_discovered  (** the demarcation-point invoke itself *)
  | Backward_taint  (** reached by backward (request) propagation *)
  | Forward_taint  (** reached by forward (response) propagation *)
  | Async_setter  (** heap-carrier setter the §3.4 heuristic restarted from *)
  | Augmented  (** added by object-aware slice augmentation *)

let slice_step_name = function
  | Dp_discovered -> "demarcation-point"
  | Backward_taint -> "backward-taint"
  | Forward_taint -> "forward-taint"
  | Async_setter -> "async-setter"
  | Augmented -> "augmentation"

(** A fact-derivation edge: the taint engine's transfer function at
    [fe_stmt] derived [fe_fact] (rendered), justifying the statement's
    membership in the slice. *)
type fact_edge = {
  fe_stmt : Ir.stmt_id;
  fe_dir : [ `Backward | `Forward ];
  fe_fact : string;
}

(** An api_sem rule application: the interpreter modelled the library
    call at [ru_stmt] with rule [ru_rule] (the "cls.name" it matched). *)
type rule_app = { ru_stmt : Ir.stmt_id; ru_rule : string }

(** A signature fragment's origin: transaction [fg_tx]'s part [fg_part]
    ("method" / "uri" / "header:<h>" / "body" / "query:<k>" /
    "response:<path>") was produced at [fg_stmt] by rule [fg_rule]. *)
type fragment = {
  fg_tx : int;
  fg_part : string;
  fg_rule : string;
  fg_stmt : Ir.stmt_id;
}

(** Why a request/response pair was drawn for a demarcation point: the
    divergence head owning both disjoint segments (Figure 5). *)
type pair_evidence = {
  pe_dp : Ir.stmt_id;
  pe_head : Ir.method_id;
  pe_reason : string;  (** "sole-head" or "disjoint-context" *)
}

(** Why a [Txn.dep] edge was drawn. *)
type dep_evidence = {
  de_tx : int;
  de_from_tx : int;
  de_to_field : string;
  de_reason : string;  (** "response-value heap flow" or "db-mediated via <t>" *)
}

(** A phase that bailed before finishing its work: the evidence that a
    conclusion may be incomplete, not just how it was reached. *)
type degradation_evidence = {
  dv_phase : string;
  dv_reason : string;  (** e.g. "step-budget-exhausted", "deadline-exceeded" *)
  dv_detail : string;
}

(** A result served from the content-addressed cache instead of a fresh
    pipeline run: the evidence trail must say the conclusions were
    reused, and under which address, or a cached report looks freshly
    derived. *)
type cache_evidence = { ce_app : string; ce_key : string }

type t = {
  mutable enabled : bool;
  (* Slice steps are keyed by the owning demarcation-point statement so
     the evidence tree of a transaction can replay its slice. *)
  slice_steps : (Ir.stmt_id, (Ir.stmt_id * slice_step) list ref) Hashtbl.t;
  mutable fact_edges : fact_edge list;
  mutable rules : rule_app list;
  mutable fragments : fragment list;
  mutable pairs : pair_evidence list;
  mutable deps : dep_evidence list;
  mutable degradations : degradation_evidence list;
  mutable cache_hits : cache_evidence list;
}

let create ?(enabled = false) () =
  {
    enabled;
    slice_steps = Hashtbl.create 16;
    fact_edges = [];
    rules = [];
    fragments = [];
    pairs = [];
    deps = [];
    degradations = [];
    cache_hits = [];
  }

let default = create ()
let set_enabled t b = t.enabled <- b
let is_enabled t = t.enabled

let reset t =
  Hashtbl.reset t.slice_steps;
  t.fact_edges <- [];
  t.rules <- [];
  t.fragments <- [];
  t.pairs <- [];
  t.deps <- [];
  t.degradations <- [];
  t.cache_hits <- []

(* ------------------------------------------------------------------ *)
(* Recording (every function checks [enabled] first)                   *)
(* ------------------------------------------------------------------ *)

let record_slice_step t ~dp ~stmt step =
  if t.enabled then begin
    let cell =
      match Hashtbl.find_opt t.slice_steps dp with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.slice_steps dp c;
          c
    in
    cell := (stmt, step) :: !cell
  end

let record_fact_edge t ~dir ~stmt fact =
  if t.enabled then
    t.fact_edges <- { fe_stmt = stmt; fe_dir = dir; fe_fact = fact } :: t.fact_edges

let record_rule t ~stmt rule =
  if t.enabled then t.rules <- { ru_stmt = stmt; ru_rule = rule } :: t.rules

let record_fragment t ~tx ~part ~rule ~stmt =
  if t.enabled then
    t.fragments <-
      { fg_tx = tx; fg_part = part; fg_rule = rule; fg_stmt = stmt } :: t.fragments

let record_pair t ~dp ~head ~reason =
  if t.enabled then
    t.pairs <- { pe_dp = dp; pe_head = head; pe_reason = reason } :: t.pairs

let record_dep t ~tx ~from_tx ~to_field ~reason =
  if t.enabled then
    t.deps <-
      { de_tx = tx; de_from_tx = from_tx; de_to_field = to_field; de_reason = reason }
      :: t.deps

let record_degradation t ~phase ~reason detail =
  if t.enabled then
    t.degradations <-
      { dv_phase = phase; dv_reason = reason; dv_detail = detail }
      :: t.degradations

let record_cache_hit t ~app ~key =
  if t.enabled then
    t.cache_hits <- { ce_app = app; ce_key = key } :: t.cache_hits

(* ------------------------------------------------------------------ *)
(* Queries (chronological order restored)                              *)
(* ------------------------------------------------------------------ *)

let slice_steps t ~dp =
  match Hashtbl.find_opt t.slice_steps dp with
  | Some c -> List.rev !c
  | None -> []

let fact_edges_at t (sid : Ir.stmt_id) =
  List.rev (List.filter (fun e -> Ir.Stmt_id.equal e.fe_stmt sid) t.fact_edges)

let rules t = List.rev t.rules

let rules_at t (sid : Ir.stmt_id) =
  List.rev (List.filter (fun r -> Ir.Stmt_id.equal r.ru_stmt sid) t.rules)

(** Fragments of a transaction, remapped through [aliases] (raw id →
    representative id after report dedup): fragments of any alias of
    [tx] count as evidence for the representative. *)
let fragments_of t ?(aliases = []) tx =
  let ids = tx :: List.filter_map (fun (raw, rep) -> if rep = tx then Some raw else None) aliases in
  List.rev (List.filter (fun f -> List.mem f.fg_tx ids) t.fragments)

let pairs_of t ~dp =
  List.rev (List.filter (fun p -> Ir.Stmt_id.equal p.pe_dp dp) t.pairs)

let deps_of t ?(aliases = []) tx =
  let ids = tx :: List.filter_map (fun (raw, rep) -> if rep = tx then Some raw else None) aliases in
  List.rev (List.filter (fun d -> List.mem d.de_tx ids) t.deps)

let degradations t = List.rev t.degradations
let cache_hits t = List.rev t.cache_hits
