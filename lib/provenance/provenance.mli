(** Evidence chains behind analysis conclusions.

    A recorder accumulates, per pipeline phase, the justification for
    every derived artifact: slice membership (§3.1), taint-fact
    derivations, signature fragments with their originating Limple
    statement and api_sem rule (§3.2), pairing decisions and dependency
    edges (§3.3).  Disabled by default; every record function reads one
    mutable bool first, exactly like the telemetry registry. *)

module Ir = Extr_ir.Types

type slice_step =
  | Dp_discovered
  | Backward_taint
  | Forward_taint
  | Async_setter
  | Augmented

val slice_step_name : slice_step -> string

type fact_edge = {
  fe_stmt : Ir.stmt_id;
  fe_dir : [ `Backward | `Forward ];
  fe_fact : string;
}

type rule_app = { ru_stmt : Ir.stmt_id; ru_rule : string }

type fragment = {
  fg_tx : int;
  fg_part : string;
  fg_rule : string;
  fg_stmt : Ir.stmt_id;
}

type pair_evidence = {
  pe_dp : Ir.stmt_id;
  pe_head : Ir.method_id;
  pe_reason : string;
}

type dep_evidence = {
  de_tx : int;
  de_from_tx : int;
  de_to_field : string;
  de_reason : string;
}

type degradation_evidence = {
  dv_phase : string;
  dv_reason : string;  (** e.g. "step-budget-exhausted", "deadline-exceeded" *)
  dv_detail : string;
}
(** A phase that bailed before finishing its work: evidence that a
    conclusion may be incomplete, not just how it was reached. *)

type cache_evidence = { ce_app : string; ce_key : string }
(** A result served from the content-addressed cache rather than a fresh
    pipeline run, with the cache address it was reused under. *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh recorder; [enabled] defaults to [false]. *)

val default : t
(** The global recorder the pipeline records into, disabled until
    {!set_enabled}. *)

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

val reset : t -> unit
(** Drop all recorded evidence (the enabled flag is left unchanged). *)

(** {2 Recording} — no-ops (one flag check) when disabled. *)

val record_slice_step :
  t -> dp:Ir.stmt_id -> stmt:Ir.stmt_id -> slice_step -> unit

val record_fact_edge :
  t -> dir:[ `Backward | `Forward ] -> stmt:Ir.stmt_id -> string -> unit

val record_rule : t -> stmt:Ir.stmt_id -> string -> unit

val record_fragment :
  t -> tx:int -> part:string -> rule:string -> stmt:Ir.stmt_id -> unit

val record_pair :
  t -> dp:Ir.stmt_id -> head:Ir.method_id -> reason:string -> unit

val record_dep :
  t -> tx:int -> from_tx:int -> to_field:string -> reason:string -> unit

val record_degradation : t -> phase:string -> reason:string -> string -> unit

val record_cache_hit : t -> app:string -> key:string -> unit
(** Note that [app]'s report was restored from the result cache under
    [key] instead of being derived by the pipeline. *)

(** {2 Queries} — chronological order. *)

val slice_steps : t -> dp:Ir.stmt_id -> (Ir.stmt_id * slice_step) list
val fact_edges_at : t -> Ir.stmt_id -> fact_edge list
val rules : t -> rule_app list
val rules_at : t -> Ir.stmt_id -> rule_app list

val fragments_of : t -> ?aliases:(int * int) list -> int -> fragment list
(** Fragments recorded for a transaction id; [aliases] maps raw
    transaction ids to their post-dedup representatives, so evidence
    recorded against merged duplicates reaches the representative. *)

val pairs_of : t -> dp:Ir.stmt_id -> pair_evidence list
val deps_of : t -> ?aliases:(int * int) list -> int -> dep_evidence list
val degradations : t -> degradation_evidence list
val cache_hits : t -> cache_evidence list
