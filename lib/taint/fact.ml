(* Taint facts: the data-flow abstraction tracked by both propagation
   directions.  Locals are method-scoped access paths of depth ≤ 1 (field
   sensitivity as in FlowDroid's access paths); instance fields additionally
   get a field-based global abstraction so heap flows across asynchronous
   boundaries are representable; SQLite tables are pseudo-stores so
   database-mediated dependencies (TED case study) can be tracked. *)

module Ir = Extr_ir.Types

type t =
  | Flocal of Ir.method_id * string * string list
      (** local access path: method, variable name, field chain (≤1) *)
  | Ffield of string * string  (** any-receiver instance field: class, field *)
  | Fstatic of string * string  (** static field *)
  | Fdb of string  (** SQLite table pseudo-store *)

(* Monomorphic comparison in the same order [Stdlib.compare] induces
   (constructor tag, then fields left to right; [[]] sorts before any
   cons, as immediates do before blocks) — every set operation in both
   propagation engines funnels through this, and the generic structural
   walk was a measurable constant on large fact sets. *)
let compare a b =
  match (a, b) with
  | Flocal (m1, v1, p1), Flocal (m2, v2, p2) ->
      let c = Ir.Method_id.compare m1 m2 in
      if c <> 0 then c
      else
        let c = String.compare v1 v2 in
        if c <> 0 then c else List.compare String.compare p1 p2
  | Flocal _, (Ffield _ | Fstatic _ | Fdb _) -> -1
  | (Ffield _ | Fstatic _ | Fdb _), Flocal _ -> 1
  | Ffield (c1, f1), Ffield (c2, f2) ->
      let c = String.compare c1 c2 in
      if c <> 0 then c else String.compare f1 f2
  | Ffield _, (Fstatic _ | Fdb _) -> -1
  | (Fstatic _ | Fdb _), Ffield _ -> 1
  | Fstatic (c1, f1), Fstatic (c2, f2) ->
      let c = String.compare c1 c2 in
      if c <> 0 then c else String.compare f1 f2
  | Fstatic _, Fdb _ -> -1
  | Fdb _, Fstatic _ -> 1
  | Fdb t1, Fdb t2 -> String.compare t1 t2

let pp fmt = function
  | Flocal (m, v, []) -> Format.fprintf fmt "%a:%s" Ir.Method_id.pp m v
  | Flocal (m, v, fs) ->
      Format.fprintf fmt "%a:%s.%s" Ir.Method_id.pp m v (String.concat "." fs)
  | Ffield (c, f) -> Format.fprintf fmt "<%s:%s>" c f
  | Fstatic (c, f) -> Format.fprintf fmt "<static %s:%s>" c f
  | Fdb t -> Format.fprintf fmt "<db:%s>" t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let local mid v = Flocal (mid, v.Ir.vname, [])
let local_path mid v fname = Flocal (mid, v.Ir.vname, [ fname ])

(** Is any access path rooted at (method, variable name) tainted?  Facts
    sharing a root are contiguous in the set order and the bare root
    [Flocal (mid, name, [])] is their minimum, so one ordered lookup
    replaces a whole-set scan — this predicate runs on every statement
    visit of both propagation engines. *)
let root_tainted s mid name =
  let root = Flocal (mid, name, []) in
  match Set.find_first_opt (fun f -> compare f root >= 0) s with
  | Some (Flocal (m, n, _)) -> Ir.Method_id.equal m mid && n = name
  | Some _ | None -> false

(** Is the plain local [v] (whole object) tainted in [s]? *)
let local_tainted s mid (v : Ir.var) = Set.mem (local mid v) s

(** Is any access path rooted at local [v] tainted (the object itself or
    one of its fields)? *)
let local_or_path_tainted s mid (v : Ir.var) = root_tainted s mid v.Ir.vname

(** The global (field/static/db) facts of a set.  Globals sort after
    every [Flocal], so this is an ordered split, not a filter scan. *)
let globals s =
  match Set.max_elt_opt s with
  | None | Some (Flocal _) -> Set.empty
  | Some _ ->
      let _, present, above = Set.split (Ffield ("", "")) s in
      if present then Set.add (Ffield ("", "")) above else above

(** Is the value tainted (constants never are)? *)
let value_tainted s mid = function
  | Ir.Const _ -> false
  | Ir.Local v -> local_tainted s mid v

(** Remove every fact rooted at local [v] (strong update on redefinition).
    Facts sharing a root are contiguous in the set order, so instead of a
    whole-set filter (which reallocates the set on every assignment visit)
    we fast-path the common nothing-to-kill case — returning [s] itself, so
    physical equality survives for downstream subset checks — and otherwise
    strip the at-most-handful of matching facts with ordered lookups. *)
let kill_local s mid (v : Ir.var) =
  let name = v.Ir.vname in
  let root = Flocal (mid, name, []) in
  let rec strip s =
    match Set.find_first_opt (fun f -> compare f root >= 0) s with
    | Some (Flocal (m, n, _) as f) when Ir.Method_id.equal m mid && n = name ->
        strip (Set.remove f s)
    | Some _ | None -> s
  in
  if root_tainted s mid name then strip s else s

(** Instance-field facts present in a set (used by the async heuristic to
    find heap objects that carry request parts). *)
let field_facts s =
  Set.fold
    (fun f acc ->
      match f with
      | Ffield (c, n) -> (c, n) :: acc
      | Fstatic _ | Flocal _ | Fdb _ -> acc)
    s []
