(* Backward taint propagation (§3.1): the edge directions of the control
   flow graph are flipped and the tainting rules inverted — a tainted
   left-hand side taints the right-hand side, and the taint information of
   callee arguments propagates to caller arguments.  Starting from the
   request object at a demarcation point, this computes the backward
   (request) slice: all statements contributing to the request. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience

(* Evidence chain (provenance): the facts a transfer derived at a
   statement justify its slice membership.  Rendering a fact allocates,
   so the enabled flag is read before any formatting happens. *)
let record_gen sid (gen : Fact.Set.t) =
  if Provenance.is_enabled Provenance.default then
    Fact.Set.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Backward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      gen

let m_steps =
  Metrics.counter ~help:"backward-propagation worklist iterations"
    "taint.backward.worklist_steps"

let m_facts =
  Metrics.counter ~help:"distinct facts alive after backward propagation"
    "taint.backward.facts"

type t = {
  prog : Prog.t;
  cg : Callgraph.t;
  mutable after : Fact.Set.t array Ir.Method_map.t;
      (** facts relevant after each statement (reverse-flow entry set) *)
  mutable param_relevant : (Ir.method_id * string) list;
      (** callee parameters (or "this") found relevant at method entry *)
  mutable entry_globals : Fact.Set.t Ir.Method_map.t;
      (** global facts alive at method entries, flowing back to callers *)
  mutable touched : Ir.Stmt_set.t;
  worklist : (Ir.method_id * int) Queue.t;
  preds : int list array Ir.Method_map.t;
  prof : Ir.method_id Profile.cursor;
      (** per-method cost attribution for the fixpoint loop *)
}

let create prog cg =
  let preds =
    List.fold_left
      (fun acc (m : Ir.meth) ->
        Ir.Method_map.add (Ir.method_id_of_meth m) (Extr_cfg.Cfg.stmt_predecessors m) acc)
      Ir.Method_map.empty (Prog.app_methods prog)
  in
  {
    prog;
    cg;
    after = Ir.Method_map.empty;
    param_relevant = [];
    entry_globals = Ir.Method_map.empty;
    touched = Ir.Stmt_set.empty;
    worklist = Queue.create ();
    preds;
    prof =
      Profile.cursor ~phase:"slicing.backward" ~render:Ir.Method_id.to_string
        ();
  }

let body_of t mid =
  match Prog.find_method t.prog mid with
  | Some m -> m.Ir.m_body
  | None -> [||]

let after_array t mid =
  match Ir.Method_map.find_opt mid t.after with
  | Some arr -> arr
  | None ->
      let arr = Array.make (max 1 (Array.length (body_of t mid))) Fact.Set.empty in
      t.after <- Ir.Method_map.add mid arr t.after;
      arr

let merge_at t mid idx facts =
  let body = body_of t mid in
  if idx >= 0 && idx < Array.length body && not (Fact.Set.is_empty facts) then begin
    let arr = after_array t mid in
    let merged = Fact.Set.union arr.(idx) facts in
    if not (Fact.Set.equal merged arr.(idx)) then begin
      arr.(idx) <- merged;
      (* A fact-set growth event, charged to the method the engine is
         currently transferring (the producer). *)
      Profile.add_facts t.prof 1;
      Queue.add (mid, idx) t.worklist
    end
  end

(** Inject facts as relevant at (i.e. just after) the given statement. *)
let inject_at t (sid : Ir.stmt_id) facts =
  merge_at t sid.Ir.sid_meth sid.Ir.sid_idx (Fact.Set.of_list facts)

(** Inject the given facts at every return statement of a method (the
    reverse-flow entry points). *)
let inject_at_returns t mid facts =
  match Prog.find_method t.prog mid with
  | None -> ()
  | Some m ->
      List.iter
        (fun r -> merge_at t mid r (Fact.Set.of_list facts))
        (Extr_cfg.Cfg.return_indices m)

let globals_of set =
  Fact.Set.filter
    (function Fact.Ffield _ | Fact.Fstatic _ | Fact.Fdb _ -> true | Fact.Flocal _ -> false)
    set

let value_fact mid = function
  | Ir.Const _ -> []
  | Ir.Local v -> [ Fact.local mid v ]

(** Facts generated backward from reading an expression whose result is
    relevant. *)
let expr_gen mid (e : Ir.expr) : Fact.t list =
  match e with
  | Ir.Val v | Ir.Cast (_, v) -> value_fact mid v
  | Ir.Binop (_, a, b) -> value_fact mid a @ value_fact mid b
  | Ir.New _ -> []
  | Ir.NewArr (_, n) -> value_fact mid n
  | Ir.IField (x, f) ->
      [ Fact.local_path mid x f.Ir.fname; Fact.Ffield (f.Ir.fcls, f.Ir.fname) ]
  | Ir.SField f -> [ Fact.Fstatic (f.Ir.fcls, f.Ir.fname) ]
  | Ir.AElem (a, i) -> Fact.local mid a :: value_fact mid i
  | Ir.ALen a -> [ Fact.local mid a ]
  | Ir.Invoke _ -> []

(* ------------------------------------------------------------------ *)
(* Invoke handling (inverted rules)                                   *)
(* ------------------------------------------------------------------ *)

let handle_invoke t mid set (sid : Ir.stmt_id) (i : Ir.invoke) ~def_relevant :
    Fact.Set.t * bool =
  let base_relevant =
    match i.Ir.ibase with
    | Some b -> Fact.local_or_path_tainted set mid b
    | None -> false
  in
  let sites = Callgraph.callsite_at t.cg sid in
  let app_callees = List.concat_map (fun cs -> cs.Callgraph.cs_callees) sites in
  let gen = ref Fact.Set.empty in
  let touched = ref false in
  if app_callees = [] then begin
    (* Library call, inverted semantic model: a relevant output makes all
       inputs relevant. *)
    let is = Api.invoke_is i in
    let db_arg idx =
      match List.nth_opt i.Ir.iargs idx with
      | Some (Ir.Const (Ir.Cstr s)) -> Some s
      | Some _ | None -> None
    in
    if (is ~cls:Api.sqlite_database ~name:"insert" || is ~cls:Api.sqlite_database ~name:"update")
       && match db_arg 0 with
          | Some table -> Fact.Set.mem (Fact.Fdb table) set
          | None -> false
    then begin
      (* A relevant table store makes the inserted values relevant. *)
      touched := true;
      List.iter (fun v -> List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v)) i.Ir.iargs
    end
    else if is ~cls:Api.sqlite_database ~name:"query" && def_relevant then begin
      touched := true;
      match db_arg 0 with
      | Some table -> gen := Fact.Set.add (Fact.Fdb table) !gen
      | None -> ()
    end
    else if is ~cls:Api.resources ~name:"getString" then begin
      (* Resource lookup: the result is an APK constant; keep the statement
         in the slice (the signature builder resolves the constant) but do
         not propagate into the integer id. *)
      if def_relevant then touched := true
    end
    else if def_relevant || base_relevant then begin
      touched := true;
      (match i.Ir.ibase with
      | Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
      | None -> ());
      List.iter
        (fun v -> List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v))
        i.Ir.iargs
    end
  end
  else begin
    (* Application callees. *)
    let globals = globals_of set in
    List.iter
      (fun callee_id ->
        (* A relevant call result pulls the callee's returned values into
           the backward flow; relevant globals travel with it. *)
        (if def_relevant then
           match Prog.find_method t.prog callee_id with
           | None -> ()
           | Some callee ->
               touched := true;
               List.iter
                 (fun r ->
                   match callee.Ir.m_body.(r) with
                   | Ir.Return (Some (Ir.Local rv)) ->
                       merge_at t callee_id r
                         (Fact.Set.add (Fact.local callee_id rv) globals)
                   | Ir.Return _ -> merge_at t callee_id r globals
                   | _ -> ())
                 (Extr_cfg.Cfg.return_indices callee));
        if (not def_relevant) && not (Fact.Set.is_empty globals) then
          inject_at_returns t callee_id (Fact.Set.elements globals);
        (* Parameters already known relevant in the callee make the
           corresponding caller arguments relevant. *)
        (match Prog.find_method t.prog callee_id with
        | None -> ()
        | Some callee ->
            List.iteri
              (fun k (p : Ir.var) ->
                if List.mem (callee_id, p.Ir.vname) t.param_relevant then begin
                  touched := true;
                  match List.nth_opt i.Ir.iargs k with
                  | Some v ->
                      List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v)
                  | None -> ()
                end)
              callee.Ir.m_params;
            if List.mem (callee_id, "this") t.param_relevant then begin
              touched := true;
              match i.Ir.ibase with
              | Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
              | None -> ()
            end);
        (* Globals alive at the callee entry flow back to before the call. *)
        match Ir.Method_map.find_opt callee_id t.entry_globals with
        | Some g -> gen := Fact.Set.union g !gen
        | None -> ())
      app_callees
  end;
  (!gen, !touched)

(* ------------------------------------------------------------------ *)
(* Statement transfer (reverse)                                       *)
(* ------------------------------------------------------------------ *)

let transfer t mid idx (set : Fact.Set.t) : Fact.Set.t =
  let body = body_of t mid in
  let stmt = body.(idx) in
  let sid = { Ir.sid_meth = mid; sid_idx = idx } in
  let touch () = t.touched <- Ir.Stmt_set.add sid t.touched in
  match stmt with
  | Ir.Assign (lhs, rhs) -> (
      match lhs with
      | Ir.Lvar v ->
          let def_relevant = Fact.local_or_path_tainted set mid v in
          let set', gen_from_call =
            match rhs with
            | Ir.Invoke i ->
                let gen, call_touched =
                  handle_invoke t mid set sid i ~def_relevant
                in
                if call_touched then begin
                  touch ();
                  record_gen sid gen
                end;
                (* Kill the definition after using it. *)
                let killed =
                  if def_relevant then Fact.kill_local set mid v else set
                in
                (killed, gen)
            | e ->
                if def_relevant then begin
                  touch ();
                  let gen = Fact.Set.of_list (expr_gen mid e) in
                  record_gen sid gen;
                  (Fact.kill_local set mid v, gen)
                end
                else (set, Fact.Set.empty)
          in
          Fact.Set.union set' gen_from_call
      | Ir.Lfield (x, f) ->
          let path = Fact.local_path mid x f.Ir.fname in
          let global = Fact.Ffield (f.Ir.fcls, f.Ir.fname) in
          if
            Fact.Set.mem path set || Fact.Set.mem global set
            || Fact.local_tainted set mid x
          then begin
            touch ();
            let set = Fact.Set.remove path set in
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty (* not generated by builder *)
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union set gen
          end
          else set
      | Ir.Lsfield f ->
          let global = Fact.Fstatic (f.Ir.fcls, f.Ir.fname) in
          if Fact.Set.mem global set then begin
            touch ();
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union (Fact.Set.remove global set) gen
          end
          else set
      | Ir.Lelem (a, _) ->
          if Fact.local_tainted set mid a then begin
            touch ();
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union set gen
          end
          else set)
  | Ir.InvokeStmt i ->
      let gen, call_touched = handle_invoke t mid set sid i ~def_relevant:false in
      if call_touched then begin
        touch ();
        record_gen sid gen
      end;
      Fact.Set.union set gen
  | Ir.Return _ | Ir.If _ | Ir.Goto _ | Ir.Lab _ | Ir.Nop -> set

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let record_entry t mid (out : Fact.Set.t) =
  (* Reverse flow reached the method entry: record relevant parameters and
     globals, notify callers. *)
  match Prog.find_method t.prog mid with
  | None -> ()
  | Some m ->
      let changed = ref false in
      let params =
        (if m.Ir.m_static then [] else [ "this" ])
        @ List.map (fun (p : Ir.var) -> p.Ir.vname) m.Ir.m_params
      in
      List.iter
        (fun p ->
          if
            Fact.Set.exists
              (function
                | Fact.Flocal (m', v, _) -> Ir.Method_id.equal m' mid && v = p
                | Fact.Ffield _ | Fact.Fstatic _ | Fact.Fdb _ -> false)
              out
            && not (List.mem (mid, p) t.param_relevant)
          then begin
            t.param_relevant <- (mid, p) :: t.param_relevant;
            changed := true
          end)
        params;
      let globals = globals_of out in
      let prev =
        Option.value (Ir.Method_map.find_opt mid t.entry_globals) ~default:Fact.Set.empty
      in
      let merged = Fact.Set.union prev globals in
      if not (Fact.Set.equal merged prev) then begin
        t.entry_globals <- Ir.Method_map.add mid merged t.entry_globals;
        changed := true
      end;
      if !changed then
        List.iter
          (fun sid -> Queue.add (sid.Ir.sid_meth, sid.Ir.sid_idx) t.worklist)
          (Callgraph.callers t.cg mid)

(** Union of all facts seen anywhere — used by the asynchronous-event
    heuristic to discover the heap objects that carry request parts.
    Includes the global facts that reached method entries (they have no
    predecessor statement to live at). *)
let all_facts t =
  let in_flows =
    Ir.Method_map.fold
      (fun _ arr acc -> Array.fold_left Fact.Set.union acc arr)
      t.after Fact.Set.empty
  in
  Ir.Method_map.fold
    (fun _ globals acc -> Fact.Set.union acc globals)
    t.entry_globals in_flows

(* Standalone engines (tests, direct API use) get a private fuel-only
   budget matching the historical bound; the pipeline passes its shared
   per-run budget instead. *)
let standalone_budget () =
  Resilience.Budget.create
    ~limits:
      {
        Resilience.Budget.unlimited with
        Resilience.Budget.bl_max_steps = 2_000_000;
      }
    ()

let run ?budget t =
  let budget =
    match budget with Some b -> b | None -> standalone_budget ()
  in
  let steps = ref 0 in
  while
    (not (Queue.is_empty t.worklist)) && Resilience.Budget.spend budget
  do
    incr steps;
    let mid, idx = Queue.pop t.worklist in
    Profile.visit t.prof mid;
    Profile.spend t.prof 1;
    let body = body_of t mid in
    if idx < Array.length body then begin
      let arr = after_array t mid in
      let out = transfer t mid idx arr.(idx) in
      match Ir.Method_map.find_opt mid t.preds with
      | None -> ()
      | Some pred_arr ->
          if pred_arr.(idx) = [] || idx = 0 then record_entry t mid out;
          List.iter (fun p -> merge_at t mid p out) pred_arr.(idx)
    end
  done;
  Profile.close t.prof;
  (* Exhausting the budget with work still queued used to silently
     truncate the slice; now it is a recorded degradation. *)
  if not (Queue.is_empty t.worklist) then
    Resilience.Degrade.record_exhaustion ~phase:"slicing.backward"
      ~work_left:(Queue.length t.worklist) budget
      "backward taint fixpoint stopped before the worklist drained; the \
       request slice is under-approximate";
  Metrics.incr m_steps ~by:!steps;
  (* The fact union is not free: compute it only when telemetry is on. *)
  if Metrics.is_enabled Metrics.default then
    Metrics.incr m_facts ~by:(Fact.Set.cardinal (all_facts t))

let touched_stmts t = t.touched

let facts_at t (sid : Ir.stmt_id) =
  match Ir.Method_map.find_opt sid.Ir.sid_meth t.after with
  | Some arr when sid.Ir.sid_idx < Array.length arr -> arr.(sid.Ir.sid_idx)
  | Some _ | None -> Fact.Set.empty
