(* Backward taint propagation (§3.1): the edge directions of the control
   flow graph are flipped and the tainting rules inverted — a tainted
   left-hand side taints the right-hand side, and the taint information of
   callee arguments propagates to caller arguments.  Starting from the
   request object at a demarcation point, this computes the backward
   (request) slice: all statements contributing to the request.

   The fixpoint state lives in hash tables and the worklist is
   deduplicated (a statement whose after-set grows while it is already
   queued is transferred once, against the merged set).  Chaotic
   iteration over monotone transfers reaches the same fixpoint in any
   order, so the touched set and fact sets are unchanged — only the
   step count drops.  Engines are created per demarcation point and per
   async-heuristic iteration, so constant factors here dominate the
   slicing phase. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience

(* Evidence chain (provenance): the facts a transfer derived at a
   statement justify its slice membership.  Rendering a fact allocates,
   so the enabled flag is read before any formatting happens. *)
let record_gen sid (gen : Fact.Set.t) =
  if Provenance.is_enabled Provenance.default then
    Fact.Set.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Backward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      gen

let m_steps =
  Metrics.counter ~help:"backward-propagation worklist iterations"
    "taint.backward.worklist_steps"

let m_facts =
  Metrics.counter ~help:"distinct facts alive after backward propagation"
    "taint.backward.facts"

type t = {
  prog : Prog.t;
  cg : Callgraph.t;
  after : (Ir.method_id, Fact.Set.t array) Hashtbl.t;
      (** facts relevant after each statement (reverse-flow entry set) *)
  param_relevant : (Ir.method_id * string, unit) Hashtbl.t;
      (** callee parameters (or "this") found relevant at method entry *)
  entry_globals : (Ir.method_id, Fact.Set.t) Hashtbl.t;
      (** global facts alive at method entries, flowing back to callers *)
  touched : (Ir.stmt_id, unit) Hashtbl.t;
  queue : Ir.method_id Queue.t;  (** methods with pending statements *)
  pending : (Ir.method_id, bool array) Hashtbl.t;
      (** per-statement pending flags (the deduplicated worklist) *)
  pending_count : (Ir.method_id, int ref) Hashtbl.t;
  mutable facts_acc : Fact.Set.t;
      (** running union of every fact ever merged anywhere — keeps
          [all_facts] O(1) for the async heuristic, which polls it per
          iteration per demarcation point *)
  meths : (Ir.method_id, Ir.meth option) Hashtbl.t;
      (** [Prog.find_method] memo — hit on every worklist step *)
  returns : (Ir.method_id, int list) Hashtbl.t;
      (** [Cfg.return_indices] memo — hit per app-callee invoke transfer *)
  transparent : (Ir.method_id, bool) Hashtbl.t;
      (** methods that pure-global injections pass through unchanged —
          see [globals_transparent] *)
  prof : Ir.method_id Profile.cursor;
      (** per-method cost attribution for the fixpoint loop *)
}

(* Predecessor arrays come from the call graph's shared per-method memo:
   engines are created per demarcation point (and per async iteration), so
   the old whole-program map here was rebuilt many times per app. *)
let create prog cg =
  {
    prog;
    cg;
    after = Hashtbl.create 64;
    param_relevant = Hashtbl.create 32;
    entry_globals = Hashtbl.create 32;
    touched = Hashtbl.create 128;
    queue = Queue.create ();
    facts_acc = Fact.Set.empty;
    pending = Hashtbl.create 64;
    pending_count = Hashtbl.create 64;
    meths = Hashtbl.create 64;
    returns = Hashtbl.create 32;
    transparent = Hashtbl.create 64;
    prof =
      Profile.cursor ~phase:"slicing.backward" ~render:Ir.Method_id.to_string
        ();
  }

let meth_of t mid =
  match Hashtbl.find_opt t.meths mid with
  | Some m -> m
  | None ->
      let m = Prog.find_method t.prog mid in
      Hashtbl.add t.meths mid m;
      m

let body_of t mid =
  match meth_of t mid with Some m -> m.Ir.m_body | None -> [||]

let returns_of t mid (m : Ir.meth) =
  match Hashtbl.find_opt t.returns mid with
  | Some r -> r
  | None ->
      let r = Extr_cfg.Cfg.return_indices m in
      Hashtbl.add t.returns mid r;
      r

let after_array t mid =
  match Hashtbl.find_opt t.after mid with
  | Some arr -> arr
  | None ->
      let arr = Array.make (max 1 (Array.length (body_of t mid))) Fact.Set.empty in
      Hashtbl.add t.after mid arr;
      arr

(* The worklist is a queue of methods, each with per-statement pending
   flags.  Draining a method sweeps its flags from the highest index down
   — the direction reverse flow moves — so a fact wave crosses the whole
   body in one pass instead of one growth-requeue cycle per statement. *)
let enqueue t mid idx =
  let flags =
    match Hashtbl.find_opt t.pending mid with
    | Some f -> f
    | None ->
        let f = Array.make (max 1 (Array.length (body_of t mid))) false in
        Hashtbl.add t.pending mid f;
        f
  in
  if idx < Array.length flags && not flags.(idx) then begin
    flags.(idx) <- true;
    let count =
      match Hashtbl.find_opt t.pending_count mid with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.add t.pending_count mid c;
          c
    in
    if !count = 0 then Queue.add mid t.queue;
    incr count
  end

let merge_at t mid idx facts =
  let body = body_of t mid in
  if idx >= 0 && idx < Array.length body && not (Fact.Set.is_empty facts) then begin
    let arr = after_array t mid in
    (* Subset test first: at fixpoint most merges are no-ops, and the
       union + equality pair allocated on every one of them. *)
    if not (Fact.Set.subset facts arr.(idx)) then begin
      arr.(idx) <- Fact.Set.union arr.(idx) facts;
      t.facts_acc <- Fact.Set.union t.facts_acc facts;
      (* A fact-set growth event, charged to the method the engine is
         currently transferring (the producer). *)
      Profile.add_facts t.prof 1;
      enqueue t mid idx
    end
  end

(** Inject facts as relevant at (i.e. just after) the given statement. *)
let inject_at t (sid : Ir.stmt_id) facts =
  merge_at t sid.Ir.sid_meth sid.Ir.sid_idx (Fact.Set.of_list facts)

(** Inject the given facts at every return statement of a method (the
    reverse-flow entry points). *)
let inject_at_returns t mid facts =
  match meth_of t mid with
  | None -> ()
  | Some m ->
      List.iter
        (fun r -> merge_at t mid r (Fact.Set.of_list facts))
        (returns_of t mid m)

let globals_of = Fact.globals

(* A method is transparent to pure-global injections when propagating
   Ffield/Fstatic/Fdb facts through it provably changes nothing: globals
   survive its body unchanged (no instance/static field stores kill or
   touch on them), no SQLite call can consume an Fdb fact, and no app
   callee can carry the injection deeper.  For such a method the injected
   globals flow straight back out as its (already-known) entry globals —
   zero touched statements, zero new facts — so the injection is skipped.
   Both construction modes share this test, keeping them byte-identical;
   it is what makes the filler bulk of an app (inert UI helpers) cost
   nothing during slicing. *)
let globals_transparent t callee =
  match Hashtbl.find_opt t.transparent callee with
  | Some b -> b
  | None ->
      let b =
        match meth_of t callee with
        | None -> true
        | Some m ->
            Callgraph.callsites t.cg callee = []
            && Array.for_all
                 (fun stmt ->
                   match stmt with
                   | Ir.Assign ((Ir.Lfield _ | Ir.Lsfield _), _) -> false
                   | _ -> (
                       match Ir.stmt_invoke stmt with
                       | Some i ->
                           not (String.equal i.Ir.iref.Ir.mcls Api.sqlite_database)
                       | None -> true))
                 m.Ir.m_body
      in
      Hashtbl.add t.transparent callee b;
      b

let value_fact mid = function
  | Ir.Const _ -> []
  | Ir.Local v -> [ Fact.local mid v ]

(** Facts generated backward from reading an expression whose result is
    relevant. *)
let expr_gen mid (e : Ir.expr) : Fact.t list =
  match e with
  | Ir.Val v | Ir.Cast (_, v) -> value_fact mid v
  | Ir.Binop (_, a, b) -> value_fact mid a @ value_fact mid b
  | Ir.New _ -> []
  | Ir.NewArr (_, n) -> value_fact mid n
  | Ir.IField (x, f) ->
      [ Fact.local_path mid x f.Ir.fname; Fact.Ffield (f.Ir.fcls, f.Ir.fname) ]
  | Ir.SField f -> [ Fact.Fstatic (f.Ir.fcls, f.Ir.fname) ]
  | Ir.AElem (a, i) -> Fact.local mid a :: value_fact mid i
  | Ir.ALen a -> [ Fact.local mid a ]
  | Ir.Invoke _ -> []

(* ------------------------------------------------------------------ *)
(* Invoke handling (inverted rules)                                   *)
(* ------------------------------------------------------------------ *)

let handle_invoke t mid set (sid : Ir.stmt_id) (i : Ir.invoke) ~def_relevant :
    Fact.Set.t * bool =
  let base_relevant =
    match i.Ir.ibase with
    | Some b -> Fact.local_or_path_tainted set mid b
    | None -> false
  in
  let sites = Callgraph.callsite_at t.cg sid in
  let app_callees = List.concat_map (fun cs -> cs.Callgraph.cs_callees) sites in
  let gen = ref Fact.Set.empty in
  let touched = ref false in
  if app_callees = [] then begin
    (* Library call, inverted semantic model: a relevant output makes all
       inputs relevant. *)
    let is = Api.invoke_is i in
    let db_arg idx =
      match List.nth_opt i.Ir.iargs idx with
      | Some (Ir.Const (Ir.Cstr s)) -> Some s
      | Some _ | None -> None
    in
    if (is ~cls:Api.sqlite_database ~name:"insert" || is ~cls:Api.sqlite_database ~name:"update")
       && match db_arg 0 with
          | Some table -> Fact.Set.mem (Fact.Fdb table) set
          | None -> false
    then begin
      (* A relevant table store makes the inserted values relevant. *)
      touched := true;
      List.iter (fun v -> List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v)) i.Ir.iargs
    end
    else if is ~cls:Api.sqlite_database ~name:"query" && def_relevant then begin
      touched := true;
      match db_arg 0 with
      | Some table -> gen := Fact.Set.add (Fact.Fdb table) !gen
      | None -> ()
    end
    else if is ~cls:Api.resources ~name:"getString" then begin
      (* Resource lookup: the result is an APK constant; keep the statement
         in the slice (the signature builder resolves the constant) but do
         not propagate into the integer id. *)
      if def_relevant then touched := true
    end
    else if def_relevant || base_relevant then begin
      touched := true;
      (match i.Ir.ibase with
      | Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
      | None -> ());
      List.iter
        (fun v -> List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v))
        i.Ir.iargs
    end
  end
  else begin
    (* Application callees. *)
    let globals = globals_of set in
    List.iter
      (fun callee_id ->
        (* A relevant call result pulls the callee's returned values into
           the backward flow; relevant globals travel with it. *)
        (if def_relevant then
           match meth_of t callee_id with
           | None -> ()
           | Some callee ->
               touched := true;
               List.iter
                 (fun r ->
                   match callee.Ir.m_body.(r) with
                   | Ir.Return (Some (Ir.Local rv)) ->
                       merge_at t callee_id r
                         (Fact.Set.add (Fact.local callee_id rv) globals)
                   | Ir.Return _ -> merge_at t callee_id r globals
                   | _ -> ())
                 (returns_of t callee_id callee));
        if
          (not def_relevant)
          && (not (Fact.Set.is_empty globals))
          && not (globals_transparent t callee_id)
        then inject_at_returns t callee_id (Fact.Set.elements globals);
        (* Parameters already known relevant in the callee make the
           corresponding caller arguments relevant. *)
        (match meth_of t callee_id with
        | None -> ()
        | Some callee ->
            List.iteri
              (fun k (p : Ir.var) ->
                if Hashtbl.mem t.param_relevant (callee_id, p.Ir.vname) then begin
                  touched := true;
                  match List.nth_opt i.Ir.iargs k with
                  | Some v ->
                      List.iter (fun f -> gen := Fact.Set.add f !gen) (value_fact mid v)
                  | None -> ()
                end)
              callee.Ir.m_params;
            if Hashtbl.mem t.param_relevant (callee_id, "this") then begin
              touched := true;
              match i.Ir.ibase with
              | Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
              | None -> ()
            end);
        (* Globals alive at the callee entry flow back to before the call. *)
        match Hashtbl.find_opt t.entry_globals callee_id with
        | Some g -> gen := Fact.Set.union g !gen
        | None -> ())
      app_callees
  end;
  (!gen, !touched)

(* ------------------------------------------------------------------ *)
(* Statement transfer (reverse)                                       *)
(* ------------------------------------------------------------------ *)

let transfer t mid idx (stmt : Ir.stmt) (set : Fact.Set.t) : Fact.Set.t =
  let sid = { Ir.sid_meth = mid; sid_idx = idx } in
  let touch () = Hashtbl.replace t.touched sid () in
  match stmt with
  | Ir.Assign (lhs, rhs) -> (
      match lhs with
      | Ir.Lvar v ->
          let def_relevant = Fact.local_or_path_tainted set mid v in
          let set', gen_from_call =
            match rhs with
            | Ir.Invoke i ->
                let gen, call_touched =
                  handle_invoke t mid set sid i ~def_relevant
                in
                if call_touched then begin
                  touch ();
                  record_gen sid gen
                end;
                (* Kill the definition after using it. *)
                let killed =
                  if def_relevant then Fact.kill_local set mid v else set
                in
                (killed, gen)
            | e ->
                if def_relevant then begin
                  touch ();
                  let gen = Fact.Set.of_list (expr_gen mid e) in
                  record_gen sid gen;
                  (Fact.kill_local set mid v, gen)
                end
                else (set, Fact.Set.empty)
          in
          Fact.Set.union set' gen_from_call
      | Ir.Lfield (x, f) ->
          let path = Fact.local_path mid x f.Ir.fname in
          let global = Fact.Ffield (f.Ir.fcls, f.Ir.fname) in
          if
            Fact.Set.mem path set || Fact.Set.mem global set
            || Fact.local_tainted set mid x
          then begin
            touch ();
            let set = Fact.Set.remove path set in
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty (* not generated by builder *)
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union set gen
          end
          else set
      | Ir.Lsfield f ->
          let global = Fact.Fstatic (f.Ir.fcls, f.Ir.fname) in
          if Fact.Set.mem global set then begin
            touch ();
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union (Fact.Set.remove global set) gen
          end
          else set
      | Ir.Lelem (a, _) ->
          if Fact.local_tainted set mid a then begin
            touch ();
            let gen =
              match rhs with
              | Ir.Invoke _ -> Fact.Set.empty
              | e -> Fact.Set.of_list (expr_gen mid e)
            in
            record_gen sid gen;
            Fact.Set.union set gen
          end
          else set)
  | Ir.InvokeStmt i ->
      let gen, call_touched = handle_invoke t mid set sid i ~def_relevant:false in
      if call_touched then begin
        touch ();
        record_gen sid gen
      end;
      Fact.Set.union set gen
  | Ir.Return _ | Ir.If _ | Ir.Goto _ | Ir.Lab _ | Ir.Nop -> set

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let record_entry t mid (out : Fact.Set.t) =
  (* Reverse flow reached the method entry: record relevant parameters and
     globals, notify callers. *)
  match meth_of t mid with
  | None -> ()
  | Some m ->
      let changed = ref false in
      let params =
        (if m.Ir.m_static then [] else [ "this" ])
        @ List.map (fun (p : Ir.var) -> p.Ir.vname) m.Ir.m_params
      in
      List.iter
        (fun p ->
          if
            Fact.root_tainted out mid p
            && not (Hashtbl.mem t.param_relevant (mid, p))
          then begin
            Hashtbl.add t.param_relevant (mid, p) ();
            changed := true
          end)
        params;
      let globals = globals_of out in
      let prev =
        Option.value (Hashtbl.find_opt t.entry_globals mid) ~default:Fact.Set.empty
      in
      if not (Fact.Set.subset globals prev) then begin
        Hashtbl.replace t.entry_globals mid (Fact.Set.union prev globals);
        (* Entry globals derive from a transfer's output, whose generated
           facts may never be merged into any statement (entry statements
           have no predecessors) — fold them into the running union here. *)
        t.facts_acc <- Fact.Set.union t.facts_acc globals;
        changed := true
      end;
      if !changed then
        List.iter
          (fun sid -> enqueue t sid.Ir.sid_meth sid.Ir.sid_idx)
          (Callgraph.callers t.cg mid)

(** Union of all facts seen anywhere — used by the asynchronous-event
    heuristic to discover the heap objects that carry request parts.
    Maintained incrementally at merge time (state only ever grows), so
    polling it per async iteration no longer refolds the whole state. *)
let all_facts t = t.facts_acc

(* Standalone engines (tests, direct API use) get a private fuel-only
   budget matching the historical bound; the pipeline passes its shared
   per-run budget instead. *)
let standalone_budget () =
  Resilience.Budget.create
    ~limits:
      {
        Resilience.Budget.unlimited with
        Resilience.Budget.bl_max_steps = 2_000_000;
      }
    ()

let pending_total t =
  Hashtbl.fold (fun _ c acc -> acc + !c) t.pending_count 0

let run ?budget t =
  let budget =
    match budget with Some b -> b | None -> standalone_budget ()
  in
  let steps = ref 0 in
  let stopped = ref false in
  let drain mid =
    match
      (Hashtbl.find_opt t.pending mid, Hashtbl.find_opt t.pending_count mid)
    with
    | Some flags, Some count when !count > 0 ->
        let body = body_of t mid in
        let arr = after_array t mid in
        let preds = Callgraph.stmt_preds t.cg mid in
        while !count > 0 && not !stopped do
          (* One downward sweep; facts merged below the cursor are caught
             in the same pass, merges above it start the next wave. *)
          let idx = ref (Array.length flags - 1) in
          while !idx >= 0 && not !stopped do
            (if flags.(!idx) then
               if Resilience.Budget.spend budget then begin
                 flags.(!idx) <- false;
                 decr count;
                 incr steps;
                 Profile.visit t.prof mid;
                 Profile.spend t.prof 1;
                 if !idx < Array.length body then begin
                   let out = transfer t mid !idx body.(!idx) arr.(!idx) in
                   match preds with
                   | None -> ()
                   | Some pred_arr ->
                       if pred_arr.(!idx) = [] || !idx = 0 then
                         record_entry t mid out;
                       List.iter (fun p -> merge_at t mid p out) pred_arr.(!idx)
                 end
               end
               else stopped := true);
            decr idx
          done
        done
    | _ -> ()
  in
  while (not (Queue.is_empty t.queue)) && not !stopped do
    drain (Queue.pop t.queue)
  done;
  Profile.close t.prof;
  (* Exhausting the budget with work still queued used to silently
     truncate the slice; now it is a recorded degradation. *)
  let left = pending_total t in
  if left > 0 then
    Resilience.Degrade.record_exhaustion ~phase:"slicing.backward"
      ~work_left:left budget
      "backward taint fixpoint stopped before the worklist drained; the \
       request slice is under-approximate";
  Metrics.incr m_steps ~by:!steps;
  (* The fact union is not free: compute it only when telemetry is on. *)
  if Metrics.is_enabled Metrics.default then
    Metrics.incr m_facts ~by:(Fact.Set.cardinal (all_facts t))

let touched_stmts t =
  Hashtbl.fold (fun sid () acc -> Ir.Stmt_set.add sid acc) t.touched
    Ir.Stmt_set.empty

let facts_at t (sid : Ir.stmt_id) =
  match Hashtbl.find_opt t.after sid.Ir.sid_meth with
  | Some arr when sid.Ir.sid_idx < Array.length arr -> arr.(sid.Ir.sid_idx)
  | Some _ | None -> Fact.Set.empty
