(** Backward taint propagation (§3.1): control-flow edges are flipped and
    the tainting rules inverted — a tainted left-hand side taints the
    right-hand side, and the taint information of callee arguments
    propagates to caller arguments.  Starting from the request object at a
    demarcation point, this computes the backward (request) slice. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Resilience = Extr_resilience.Resilience

type t

val create : Prog.t -> Callgraph.t -> t

val inject_at : t -> Ir.stmt_id -> Fact.t list -> unit
(** Mark facts as relevant at (just after) a statement — the demarcation
    point's request argument, or a heap-setter site added by the
    asynchronous-event heuristic. *)

val inject_at_returns : t -> Ir.method_id -> Fact.t list -> unit
(** Inject at every return statement (the reverse-flow entries). *)

val run : ?budget:Resilience.Budget.t -> t -> unit
(** Propagate to a fixed point.  Spends from [budget] (default: a private
    2M-step budget matching the historical bound); if the budget trips
    with work still queued, a [slicing.backward] degradation is recorded
    on the default ledger instead of silently truncating. *)

val touched_stmts : t -> Ir.Stmt_set.t
(** Statements contributing to the relevant values — the slice. *)

val all_facts : t -> Fact.Set.t
(** Union of every fact seen anywhere, including globals that reached
    method entries — the heap carriers the §3.4 heuristic restarts from. *)

val facts_at : t -> Ir.stmt_id -> Fact.Set.t
