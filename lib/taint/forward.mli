(** Forward taint propagation (§3.1): open-ended, flow-sensitive and
    inter-procedural.  Starting facts are injected at demarcation points
    (response objects) and the engine tracks every statement that touches
    a tainted object — the forward (response) slice. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Resilience = Extr_resilience.Resilience

type t

val create : Prog.t -> Callgraph.t -> t

val inject_at_entry : t -> Ir.method_id -> Fact.t list -> unit
(** Seed facts at a method's entry (callback-parameter response roots). *)

val inject_after : t -> Ir.stmt_id -> Fact.t list -> unit
(** Seed facts immediately after a statement (the demarcation point's
    response definition). *)

val run : ?budget:Resilience.Budget.t -> t -> unit
(** Propagate to a fixed point.  Spends from [budget] (default: a private
    2M-step budget matching the historical bound); if the budget trips
    with work still queued, a [slicing.forward] degradation is recorded
    on the default ledger instead of silently truncating. *)

val tainted_stmts : t -> Ir.Stmt_set.t
(** Statements that used or generated tainted data — the slice. *)

val facts_before : t -> Ir.stmt_id -> Fact.Set.t
val facts_after : t -> Ir.stmt_id -> Fact.Set.t
