(** Taint facts: the data-flow abstraction tracked by both propagation
    directions.  Locals are method-scoped access paths of depth ≤ 1
    (FlowDroid-style field sensitivity); instance fields also get a
    field-based global abstraction so heap flows across asynchronous
    boundaries are representable; SQLite tables are pseudo-stores so
    database-mediated dependencies (the TED case study) can be tracked. *)

module Ir = Extr_ir.Types

type t =
  | Flocal of Ir.method_id * string * string list
      (** local access path: method, variable name, field chain (≤ 1) *)
  | Ffield of string * string  (** any-receiver instance field: class, field *)
  | Fstatic of string * string  (** static field *)
  | Fdb of string  (** SQLite table pseudo-store *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

val local : Ir.method_id -> Ir.var -> t
(** Fact for a plain local. *)

val local_path : Ir.method_id -> Ir.var -> string -> t
(** Fact for [v.field]. *)

val local_tainted : Set.t -> Ir.method_id -> Ir.var -> bool
(** Is the plain local (whole object) tainted? *)

val local_or_path_tainted : Set.t -> Ir.method_id -> Ir.var -> bool
(** Is any access path rooted at the local tainted? *)

val root_tainted : Set.t -> Ir.method_id -> string -> bool
(** Same, by variable name — one ordered lookup, not a set scan. *)

val globals : Set.t -> Set.t
(** The global (field/static/db) facts — an ordered split, not a filter
    scan; both engines call this on every method-boundary transfer. *)

val value_tainted : Set.t -> Ir.method_id -> Ir.value -> bool
(** Values: constants are never tainted. *)

val kill_local : Set.t -> Ir.method_id -> Ir.var -> Set.t
(** Remove every fact rooted at the local (strong update on redefinition). *)

val field_facts : Set.t -> (string * string) list
(** The instance-field facts present — the heap objects the asynchronous-
    event heuristic (§3.4) restarts propagation from. *)
