(* Forward taint propagation (§3.1): open-ended, flow-sensitive, and
   inter-procedural.  Starting facts are injected at demarcation points
   (response objects) and the engine tracks every statement that touches a
   tainted object — the forward (response) slice.  Handled by FlowDroid's
   default tainting rules in the paper; reimplemented here over Limple. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Taint_model = Extr_semantics.Taint_model
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience

(* Evidence chain (provenance): facts the transfer derived at a statement.
   The enabled flag is read before any fact is rendered. *)
let record_new sid (facts : Fact.t list) =
  if Provenance.is_enabled Provenance.default then
    List.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Forward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      facts

let record_new_set sid (facts : Fact.Set.t) =
  if Provenance.is_enabled Provenance.default then
    Fact.Set.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Forward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      facts

let m_steps =
  Metrics.counter ~help:"forward-propagation worklist iterations"
    "taint.forward.worklist_steps"

let m_facts =
  Metrics.counter ~help:"distinct facts alive after forward propagation"
    "taint.forward.facts"

type t = {
  prog : Prog.t;
  cg : Callgraph.t;
  mutable before : Fact.Set.t array Ir.Method_map.t;
      (** facts holding before each statement *)
  mutable ret_tainted : Ir.Method_set.t;  (** methods returning tainted data *)
  mutable exit_globals : Fact.Set.t Ir.Method_map.t;
      (** global (field/static/db) facts holding at method exits *)
  mutable touched : Ir.Stmt_set.t;  (** statements touching tainted data *)
  worklist : (Ir.method_id * int) Queue.t;
  succs : int list array Ir.Method_map.t;
  prof : Ir.method_id Profile.cursor;
      (** per-method cost attribution for the fixpoint loop *)
}

let create prog cg =
  let succs =
    List.fold_left
      (fun acc (m : Ir.meth) ->
        Ir.Method_map.add (Ir.method_id_of_meth m) (Extr_cfg.Cfg.stmt_successors m) acc)
      Ir.Method_map.empty (Prog.app_methods prog)
  in
  {
    prog;
    cg;
    before = Ir.Method_map.empty;
    ret_tainted = Ir.Method_set.empty;
    exit_globals = Ir.Method_map.empty;
    touched = Ir.Stmt_set.empty;
    worklist = Queue.create ();
    succs;
    prof =
      Profile.cursor ~phase:"slicing.forward" ~render:Ir.Method_id.to_string ();
  }

let body_of t mid =
  match Prog.find_method t.prog mid with
  | Some m -> m.Ir.m_body
  | None -> [||]

let before_array t mid =
  match Ir.Method_map.find_opt mid t.before with
  | Some arr -> arr
  | None ->
      let arr = Array.make (max 1 (Array.length (body_of t mid))) Fact.Set.empty in
      t.before <- Ir.Method_map.add mid arr t.before;
      arr

(** Merge facts into the before-set of (mid, idx); enqueue on growth. *)
let merge_at t mid idx facts =
  let body = body_of t mid in
  if idx < Array.length body && not (Fact.Set.is_empty facts) then begin
    let arr = before_array t mid in
    let merged = Fact.Set.union arr.(idx) facts in
    if not (Fact.Set.equal merged arr.(idx)) then begin
      arr.(idx) <- merged;
      (* A fact-set growth event, charged to the method the engine is
         currently transferring (the producer). *)
      Profile.add_facts t.prof 1;
      Queue.add (mid, idx) t.worklist
    end
  end

let inject_at_entry t mid facts = merge_at t mid 0 (Fact.Set.of_list facts)

let inject_after t (sid : Ir.stmt_id) facts =
  match Ir.Method_map.find_opt sid.Ir.sid_meth t.succs with
  | None -> ()
  | Some succ_arr ->
      if sid.Ir.sid_idx < Array.length succ_arr then
        List.iter
          (fun s -> merge_at t sid.Ir.sid_meth s (Fact.Set.of_list facts))
          succ_arr.(sid.Ir.sid_idx)

let globals_of set =
  Fact.Set.filter
    (function Fact.Ffield _ | Fact.Fstatic _ | Fact.Fdb _ -> true | Fact.Flocal _ -> false)
    set

(* ------------------------------------------------------------------ *)
(* Expression taint                                                   *)
(* ------------------------------------------------------------------ *)

let expr_tainted t mid set (e : Ir.expr) =
  ignore t;
  match e with
  | Ir.Val v -> Fact.value_tainted set mid v
  | Ir.Binop (_, a, b) ->
      Fact.value_tainted set mid a || Fact.value_tainted set mid b
  | Ir.New _ | Ir.NewArr _ -> false
  | Ir.IField (x, f) ->
      Fact.local_tainted set mid x
      || Fact.Set.mem (Fact.local_path mid x f.Ir.fname) set
      || Fact.Set.mem (Fact.Ffield (f.Ir.fcls, f.Ir.fname)) set
  | Ir.SField f -> Fact.Set.mem (Fact.Fstatic (f.Ir.fcls, f.Ir.fname)) set
  | Ir.AElem (a, _) -> Fact.local_tainted set mid a
  | Ir.ALen a -> Fact.local_tainted set mid a
  | Ir.Cast (_, v) -> Fact.value_tainted set mid v
  | Ir.Invoke _ -> false (* calls handled separately *)

(* ------------------------------------------------------------------ *)
(* Invoke handling                                                    *)
(* ------------------------------------------------------------------ *)

(** Handle an invoke: returns whether the call's return value is tainted,
    plus extra facts generated at the call site (receiver/db effects). *)
let handle_invoke t mid set (sid : Ir.stmt_id) (i : Ir.invoke) =
  let base_tainted =
    match i.Ir.ibase with Some b -> Fact.local_or_path_tainted set mid b | None -> false
  in
  let args_tainted = List.map (Fact.value_tainted set mid) i.Ir.iargs in
  let any_input = base_tainted || List.exists Fun.id args_tainted in
  let sites = Callgraph.callsite_at t.cg sid in
  let app_callees = List.concat_map (fun cs -> cs.Callgraph.cs_callees) sites in
  if app_callees = [] then begin
    (* Library call: semantic taint model. *)
    let effect = Taint_model.transfer i ~base_tainted ~args_tainted in
    let gen = ref Fact.Set.empty in
    (match (effect.Taint_model.taint_base, i.Ir.ibase) with
    | true, Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
    | _, _ -> ());
    (match effect.Taint_model.db_write with
    | Some table -> gen := Fact.Set.add (Fact.Fdb table) !gen
    | None -> ());
    let ret_tainted =
      effect.Taint_model.taint_ret
      ||
      match effect.Taint_model.db_read with
      | Some table -> Fact.Set.mem (Fact.Fdb table) set
      | None -> false
    in
    (ret_tainted, !gen, any_input)
  end
  else begin
    (* Application callees: map arguments to parameters, propagate global
       facts into the callee, read back the return summary. *)
    let globals = globals_of set in
    let implicit_names = List.map (fun c -> c.Ir.id_name) app_callees in
    List.iter
      (fun callee_id ->
        match Prog.find_method t.prog callee_id with
        | None -> ()
        | Some callee ->
            let entry = ref [] in
            (* this-binding for virtual calls *)
            (if not callee.Ir.m_static then
               match i.Ir.ibase with
               | Some b when Fact.local_or_path_tainted set mid b ->
                   entry := Fact.Flocal (callee_id, "this", []) :: !entry
               | Some _ | None -> ());
            (* Argument → parameter mapping.  For AsyncTask's implicit
               doInBackground edge the execute() arguments are the
               callback's parameters; for framework-driven callbacks
               (onClick, run, onPostExecute) parameters come from the
               framework, not the call site. *)
            let maps_args =
              match callee_id.Ir.id_name with
              | "onPostExecute" | "onClick" | "run" | "onLocationChanged"
              | "onMessage" | "onResponse" ->
                  false
              | _ -> true
            in
            if maps_args then
              List.iteri
                (fun k tainted ->
                  if tainted then
                    match List.nth_opt callee.Ir.m_params k with
                    | Some p -> entry := Fact.local callee_id p :: !entry
                    | None -> ())
                args_tainted;
            (* AsyncTask chaining: onPostExecute(result) receives
               doInBackground's return value. *)
            (if callee_id.Ir.id_name = "onPostExecute"
               && List.mem "doInBackground" implicit_names
            then
               let dib = { callee_id with Ir.id_name = "doInBackground" } in
               if Ir.Method_set.mem dib t.ret_tainted then
                 match callee.Ir.m_params with
                 | p :: _ -> entry := Fact.local callee_id p :: !entry
                 | [] -> ());
            inject_at_entry t callee_id !entry;
            (* Globals always flow into callees. *)
            merge_at t callee_id 0 globals)
      app_callees;
    (* Return taint and global facts flowing back from callees. *)
    let ret_tainted =
      List.exists (fun c -> Ir.Method_set.mem c t.ret_tainted) app_callees
    in
    let back_globals =
      List.fold_left
        (fun acc c ->
          match Ir.Method_map.find_opt c t.exit_globals with
          | Some g -> Fact.Set.union acc g
          | None -> acc)
        Fact.Set.empty app_callees
    in
    (ret_tainted, back_globals, any_input)
  end

(* ------------------------------------------------------------------ *)
(* Statement transfer                                                 *)
(* ------------------------------------------------------------------ *)

let transfer t mid idx (set : Fact.Set.t) : Fact.Set.t =
  let body = body_of t mid in
  let stmt = body.(idx) in
  let sid = { Ir.sid_meth = mid; sid_idx = idx } in
  let touch () = t.touched <- Ir.Stmt_set.add sid t.touched in
  match stmt with
  | Ir.Assign (lhs, rhs) ->
      let rhs_tainted, extra =
        match rhs with
        | Ir.Invoke i ->
            let ret, gen, any_input = handle_invoke t mid set sid i in
            if any_input || ret then begin
              touch ();
              record_new_set sid gen
            end;
            (ret, gen)
        | e ->
            let tainted = expr_tainted t mid set e in
            (tainted, Fact.Set.empty)
      in
      let set = Fact.Set.union set extra in
      let set' =
        match lhs with
        | Ir.Lvar v ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.local mid v ];
              Fact.Set.add (Fact.local mid v) (Fact.kill_local set mid v)
            end
            else Fact.kill_local set mid v
        | Ir.Lfield (x, f) ->
            if rhs_tainted then begin
              touch ();
              record_new sid
                [
                  Fact.local_path mid x f.Ir.fname;
                  Fact.Ffield (f.Ir.fcls, f.Ir.fname);
                ];
              set
              |> Fact.Set.add (Fact.local_path mid x f.Ir.fname)
              |> Fact.Set.add (Fact.Ffield (f.Ir.fcls, f.Ir.fname))
            end
            else set
        | Ir.Lsfield f ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.Fstatic (f.Ir.fcls, f.Ir.fname) ];
              Fact.Set.add (Fact.Fstatic (f.Ir.fcls, f.Ir.fname)) set
            end
            else set
        | Ir.Lelem (a, _) ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.local mid a ];
              Fact.Set.add (Fact.local mid a) set
            end
            else set
      in
      (* Reading a tainted value puts the statement in the slice even when
         nothing new is generated. *)
      if (not rhs_tainted) && List.exists (fun v -> Fact.local_or_path_tainted set mid v) (Ir.stmt_uses stmt)
      then touch ();
      set'
  | Ir.InvokeStmt i ->
      let _ret, gen, any_input = handle_invoke t mid set sid i in
      if any_input || not (Fact.Set.is_empty gen) then begin
        touch ();
        record_new_set sid gen
      end;
      Fact.Set.union set gen
  | Ir.Return v ->
      (match v with
      | Some value when Fact.value_tainted set mid value ->
          touch ();
          if not (Ir.Method_set.mem mid t.ret_tainted) then begin
            t.ret_tainted <- Ir.Method_set.add mid t.ret_tainted;
            (* Re-examine all call sites of this method. *)
            List.iter
              (fun sid -> Queue.add (sid.Ir.sid_meth, sid.Ir.sid_idx) t.worklist)
              (Callgraph.callers t.cg mid)
          end
      | Some _ | None -> ());
      (* Record exiting globals. *)
      let globals = globals_of set in
      let prev =
        Option.value
          (Ir.Method_map.find_opt mid t.exit_globals)
          ~default:Fact.Set.empty
      in
      let merged = Fact.Set.union prev globals in
      if not (Fact.Set.equal merged prev) then begin
        t.exit_globals <- Ir.Method_map.add mid merged t.exit_globals;
        List.iter
          (fun sid -> Queue.add (sid.Ir.sid_meth, sid.Ir.sid_idx) t.worklist)
          (Callgraph.callers t.cg mid)
      end;
      set
  | Ir.If (v, _) ->
      if Fact.value_tainted set mid v then touch ();
      set
  | Ir.Goto _ | Ir.Lab _ | Ir.Nop -> set

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

(* Standalone engines (tests, direct API use) get a private fuel-only
   budget matching the historical bound; the pipeline passes its shared
   per-run budget instead. *)
let standalone_budget () =
  Resilience.Budget.create
    ~limits:
      {
        Resilience.Budget.unlimited with
        Resilience.Budget.bl_max_steps = 2_000_000;
      }
    ()

let run ?budget t =
  let budget =
    match budget with Some b -> b | None -> standalone_budget ()
  in
  let steps = ref 0 in
  while
    (not (Queue.is_empty t.worklist)) && Resilience.Budget.spend budget
  do
    incr steps;
    let mid, idx = Queue.pop t.worklist in
    Profile.visit t.prof mid;
    Profile.spend t.prof 1;
    let body = body_of t mid in
    if idx < Array.length body then begin
      let arr = before_array t mid in
      let out = transfer t mid idx arr.(idx) in
      match Ir.Method_map.find_opt mid t.succs with
      | None -> ()
      | Some succ_arr ->
          List.iter (fun s -> merge_at t mid s out) succ_arr.(idx)
    end
  done;
  Profile.close t.prof;
  (* Exhausting the budget with work still queued used to silently
     truncate the slice; now it is a recorded degradation. *)
  if not (Queue.is_empty t.worklist) then
    Resilience.Degrade.record_exhaustion ~phase:"slicing.forward"
      ~work_left:(Queue.length t.worklist) budget
      "forward taint fixpoint stopped before the worklist drained; the \
       response slice is under-approximate";
  Metrics.incr m_steps ~by:!steps;
  (* The fact union is not free: compute it only when telemetry is on. *)
  if Metrics.is_enabled Metrics.default then begin
    let facts =
      Ir.Method_map.fold
        (fun _ arr acc -> Array.fold_left Fact.Set.union acc arr)
        t.before
        (Ir.Method_map.fold
           (fun _ globals acc -> Fact.Set.union acc globals)
           t.exit_globals Fact.Set.empty)
    in
    Metrics.incr m_facts ~by:(Fact.Set.cardinal facts)
  end

let tainted_stmts t = t.touched

(** Facts holding before a given statement (empty if never reached). *)
let facts_before t (sid : Ir.stmt_id) =
  match Ir.Method_map.find_opt sid.Ir.sid_meth t.before with
  | Some arr when sid.Ir.sid_idx < Array.length arr -> arr.(sid.Ir.sid_idx)
  | Some _ | None -> Fact.Set.empty

(** Facts holding after a given statement: the transfer applied once more. *)
let facts_after t (sid : Ir.stmt_id) =
  let body = body_of t sid.Ir.sid_meth in
  if sid.Ir.sid_idx < Array.length body then
    transfer t sid.Ir.sid_meth sid.Ir.sid_idx (facts_before t sid)
  else Fact.Set.empty
