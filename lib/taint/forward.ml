(* Forward taint propagation (§3.1): open-ended, flow-sensitive, and
   inter-procedural.  Starting facts are injected at demarcation points
   (response objects) and the engine tracks every statement that touches a
   tainted object — the forward (response) slice.  Handled by FlowDroid's
   default tainting rules in the paper; reimplemented here over Limple.

   Like the backward engine, the fixpoint state lives in hash tables and
   the worklist is deduplicated: chaotic iteration over monotone
   transfers reaches the same fixpoint in any order, so only the step
   count changes. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Taint_model = Extr_semantics.Taint_model
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience

(* Evidence chain (provenance): facts the transfer derived at a statement.
   The enabled flag is read before any fact is rendered. *)
let record_new sid (facts : Fact.t list) =
  if Provenance.is_enabled Provenance.default then
    List.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Forward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      facts

let record_new_set sid (facts : Fact.Set.t) =
  if Provenance.is_enabled Provenance.default then
    Fact.Set.iter
      (fun f ->
        Provenance.record_fact_edge Provenance.default ~dir:`Forward ~stmt:sid
          (Format.asprintf "%a" Fact.pp f))
      facts

let m_steps =
  Metrics.counter ~help:"forward-propagation worklist iterations"
    "taint.forward.worklist_steps"

let m_facts =
  Metrics.counter ~help:"distinct facts alive after forward propagation"
    "taint.forward.facts"

type t = {
  prog : Prog.t;
  cg : Callgraph.t;
  before : (Ir.method_id, Fact.Set.t array) Hashtbl.t;
      (** facts holding before each statement *)
  ret_tainted : (Ir.method_id, unit) Hashtbl.t;
      (** methods returning tainted data *)
  exit_globals : (Ir.method_id, Fact.Set.t) Hashtbl.t;
      (** global (field/static/db) facts holding at method exits *)
  touched : (Ir.stmt_id, unit) Hashtbl.t;
      (** statements touching tainted data *)
  queue : Ir.method_id Queue.t;  (** methods with pending statements *)
  pending : (Ir.method_id, bool array) Hashtbl.t;
      (** per-statement pending flags (the deduplicated worklist) *)
  pending_count : (Ir.method_id, int ref) Hashtbl.t;
  meths : (Ir.method_id, Ir.meth option) Hashtbl.t;
      (** [Prog.find_method] memo — hit on every worklist step *)
  prof : Ir.method_id Profile.cursor;
      (** per-method cost attribution for the fixpoint loop *)
}

(* Successor arrays come from the call graph's shared per-method memo:
   engines are created per demarcation point, so the old whole-program map
   here was rebuilt many times per app. *)
let create prog cg =
  {
    prog;
    cg;
    before = Hashtbl.create 64;
    ret_tainted = Hashtbl.create 16;
    exit_globals = Hashtbl.create 16;
    touched = Hashtbl.create 128;
    queue = Queue.create ();
    pending = Hashtbl.create 64;
    pending_count = Hashtbl.create 64;
    meths = Hashtbl.create 64;
    prof =
      Profile.cursor ~phase:"slicing.forward" ~render:Ir.Method_id.to_string ();
  }

let meth_of t mid =
  match Hashtbl.find_opt t.meths mid with
  | Some m -> m
  | None ->
      let m = Prog.find_method t.prog mid in
      Hashtbl.add t.meths mid m;
      m

let body_of t mid =
  match meth_of t mid with Some m -> m.Ir.m_body | None -> [||]

let before_array t mid =
  match Hashtbl.find_opt t.before mid with
  | Some arr -> arr
  | None ->
      let arr = Array.make (max 1 (Array.length (body_of t mid))) Fact.Set.empty in
      Hashtbl.add t.before mid arr;
      arr

(* The worklist is a queue of methods, each with per-statement pending
   flags.  Draining a method sweeps its flags from index 0 upward — the
   direction forward flow moves — so a fact wave crosses the whole body
   in one pass instead of one growth-requeue cycle per statement. *)
let enqueue t mid idx =
  let flags =
    match Hashtbl.find_opt t.pending mid with
    | Some f -> f
    | None ->
        let f = Array.make (max 1 (Array.length (body_of t mid))) false in
        Hashtbl.add t.pending mid f;
        f
  in
  if idx < Array.length flags && not flags.(idx) then begin
    flags.(idx) <- true;
    let count =
      match Hashtbl.find_opt t.pending_count mid with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.add t.pending_count mid c;
          c
    in
    if !count = 0 then Queue.add mid t.queue;
    incr count
  end

(** Merge facts into the before-set of (mid, idx); enqueue on growth. *)
let merge_at t mid idx facts =
  let body = body_of t mid in
  if idx < Array.length body && not (Fact.Set.is_empty facts) then begin
    let arr = before_array t mid in
    (* Subset test first: at fixpoint most merges are no-ops, and the
       union + equality pair allocated on every one of them. *)
    if not (Fact.Set.subset facts arr.(idx)) then begin
      arr.(idx) <- Fact.Set.union arr.(idx) facts;
      (* A fact-set growth event, charged to the method the engine is
         currently transferring (the producer). *)
      Profile.add_facts t.prof 1;
      enqueue t mid idx
    end
  end

let inject_at_entry t mid facts = merge_at t mid 0 (Fact.Set.of_list facts)

let inject_after t (sid : Ir.stmt_id) facts =
  match Callgraph.stmt_succs t.cg sid.Ir.sid_meth with
  | None -> ()
  | Some succ_arr ->
      if sid.Ir.sid_idx < Array.length succ_arr then
        List.iter
          (fun s -> merge_at t sid.Ir.sid_meth s (Fact.Set.of_list facts))
          succ_arr.(sid.Ir.sid_idx)

let globals_of = Fact.globals

(* ------------------------------------------------------------------ *)
(* Expression taint                                                   *)
(* ------------------------------------------------------------------ *)

let expr_tainted t mid set (e : Ir.expr) =
  ignore t;
  match e with
  | Ir.Val v -> Fact.value_tainted set mid v
  | Ir.Binop (_, a, b) ->
      Fact.value_tainted set mid a || Fact.value_tainted set mid b
  | Ir.New _ | Ir.NewArr _ -> false
  | Ir.IField (x, f) ->
      Fact.local_tainted set mid x
      || Fact.Set.mem (Fact.local_path mid x f.Ir.fname) set
      || Fact.Set.mem (Fact.Ffield (f.Ir.fcls, f.Ir.fname)) set
  | Ir.SField f -> Fact.Set.mem (Fact.Fstatic (f.Ir.fcls, f.Ir.fname)) set
  | Ir.AElem (a, _) -> Fact.local_tainted set mid a
  | Ir.ALen a -> Fact.local_tainted set mid a
  | Ir.Cast (_, v) -> Fact.value_tainted set mid v
  | Ir.Invoke _ -> false (* calls handled separately *)

(* ------------------------------------------------------------------ *)
(* Invoke handling                                                    *)
(* ------------------------------------------------------------------ *)

(** Handle an invoke: returns whether the call's return value is tainted,
    plus extra facts generated at the call site (receiver/db effects). *)
let handle_invoke t mid set (sid : Ir.stmt_id) (i : Ir.invoke) =
  let base_tainted =
    match i.Ir.ibase with Some b -> Fact.local_or_path_tainted set mid b | None -> false
  in
  let args_tainted = List.map (Fact.value_tainted set mid) i.Ir.iargs in
  let any_input = base_tainted || List.exists Fun.id args_tainted in
  let sites = Callgraph.callsite_at t.cg sid in
  let app_callees = List.concat_map (fun cs -> cs.Callgraph.cs_callees) sites in
  if app_callees = [] then begin
    (* Library call: semantic taint model. *)
    let effect = Taint_model.transfer i ~base_tainted ~args_tainted in
    let gen = ref Fact.Set.empty in
    (match (effect.Taint_model.taint_base, i.Ir.ibase) with
    | true, Some b -> gen := Fact.Set.add (Fact.local mid b) !gen
    | _, _ -> ());
    (match effect.Taint_model.db_write with
    | Some table -> gen := Fact.Set.add (Fact.Fdb table) !gen
    | None -> ());
    let ret_tainted =
      effect.Taint_model.taint_ret
      ||
      match effect.Taint_model.db_read with
      | Some table -> Fact.Set.mem (Fact.Fdb table) set
      | None -> false
    in
    (ret_tainted, !gen, any_input)
  end
  else begin
    (* Application callees: map arguments to parameters, propagate global
       facts into the callee, read back the return summary. *)
    let globals = globals_of set in
    let implicit_names = List.map (fun c -> c.Ir.id_name) app_callees in
    List.iter
      (fun callee_id ->
        match meth_of t callee_id with
        | None -> ()
        | Some callee ->
            let entry = ref [] in
            (* this-binding for virtual calls *)
            (if not callee.Ir.m_static then
               match i.Ir.ibase with
               | Some b when Fact.local_or_path_tainted set mid b ->
                   entry := Fact.Flocal (callee_id, "this", []) :: !entry
               | Some _ | None -> ());
            (* Argument → parameter mapping.  For AsyncTask's implicit
               doInBackground edge the execute() arguments are the
               callback's parameters; for framework-driven callbacks
               (onClick, run, onPostExecute) parameters come from the
               framework, not the call site. *)
            let maps_args =
              match callee_id.Ir.id_name with
              | "onPostExecute" | "onClick" | "run" | "onLocationChanged"
              | "onMessage" | "onResponse" ->
                  false
              | _ -> true
            in
            if maps_args then
              List.iteri
                (fun k tainted ->
                  if tainted then
                    match List.nth_opt callee.Ir.m_params k with
                    | Some p -> entry := Fact.local callee_id p :: !entry
                    | None -> ())
                args_tainted;
            (* AsyncTask chaining: onPostExecute(result) receives
               doInBackground's return value. *)
            (if callee_id.Ir.id_name = "onPostExecute"
               && List.mem "doInBackground" implicit_names
            then
               let dib = { callee_id with Ir.id_name = "doInBackground" } in
               if Hashtbl.mem t.ret_tainted dib then
                 match callee.Ir.m_params with
                 | p :: _ -> entry := Fact.local callee_id p :: !entry
                 | [] -> ());
            inject_at_entry t callee_id !entry;
            (* Globals always flow into callees. *)
            merge_at t callee_id 0 globals)
      app_callees;
    (* Return taint and global facts flowing back from callees. *)
    let ret_tainted =
      List.exists (fun c -> Hashtbl.mem t.ret_tainted c) app_callees
    in
    let back_globals =
      List.fold_left
        (fun acc c ->
          match Hashtbl.find_opt t.exit_globals c with
          | Some g -> Fact.Set.union acc g
          | None -> acc)
        Fact.Set.empty app_callees
    in
    (ret_tainted, back_globals, any_input)
  end

(* ------------------------------------------------------------------ *)
(* Statement transfer                                                 *)
(* ------------------------------------------------------------------ *)

let transfer t mid idx (stmt : Ir.stmt) (set : Fact.Set.t) : Fact.Set.t =
  let sid = { Ir.sid_meth = mid; sid_idx = idx } in
  let touch () = Hashtbl.replace t.touched sid () in
  match stmt with
  | Ir.Assign (lhs, rhs) ->
      let rhs_tainted, extra =
        match rhs with
        | Ir.Invoke i ->
            let ret, gen, any_input = handle_invoke t mid set sid i in
            if any_input || ret then begin
              touch ();
              record_new_set sid gen
            end;
            (ret, gen)
        | e ->
            let tainted = expr_tainted t mid set e in
            (tainted, Fact.Set.empty)
      in
      let set = Fact.Set.union set extra in
      let set' =
        match lhs with
        | Ir.Lvar v ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.local mid v ];
              Fact.Set.add (Fact.local mid v) (Fact.kill_local set mid v)
            end
            else Fact.kill_local set mid v
        | Ir.Lfield (x, f) ->
            if rhs_tainted then begin
              touch ();
              record_new sid
                [
                  Fact.local_path mid x f.Ir.fname;
                  Fact.Ffield (f.Ir.fcls, f.Ir.fname);
                ];
              set
              |> Fact.Set.add (Fact.local_path mid x f.Ir.fname)
              |> Fact.Set.add (Fact.Ffield (f.Ir.fcls, f.Ir.fname))
            end
            else set
        | Ir.Lsfield f ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.Fstatic (f.Ir.fcls, f.Ir.fname) ];
              Fact.Set.add (Fact.Fstatic (f.Ir.fcls, f.Ir.fname)) set
            end
            else set
        | Ir.Lelem (a, _) ->
            if rhs_tainted then begin
              touch ();
              record_new sid [ Fact.local mid a ];
              Fact.Set.add (Fact.local mid a) set
            end
            else set
      in
      (* Reading a tainted value puts the statement in the slice even when
         nothing new is generated. *)
      if (not rhs_tainted) && List.exists (fun v -> Fact.local_or_path_tainted set mid v) (Ir.stmt_uses stmt)
      then touch ();
      set'
  | Ir.InvokeStmt i ->
      let _ret, gen, any_input = handle_invoke t mid set sid i in
      if any_input || not (Fact.Set.is_empty gen) then begin
        touch ();
        record_new_set sid gen
      end;
      Fact.Set.union set gen
  | Ir.Return v ->
      (match v with
      | Some value when Fact.value_tainted set mid value ->
          touch ();
          if not (Hashtbl.mem t.ret_tainted mid) then begin
            Hashtbl.add t.ret_tainted mid ();
            (* Re-examine all call sites of this method. *)
            List.iter
              (fun sid -> enqueue t sid.Ir.sid_meth sid.Ir.sid_idx)
              (Callgraph.callers t.cg mid)
          end
      | Some _ | None -> ());
      (* Record exiting globals. *)
      let globals = globals_of set in
      let prev =
        Option.value (Hashtbl.find_opt t.exit_globals mid) ~default:Fact.Set.empty
      in
      if not (Fact.Set.subset globals prev) then begin
        Hashtbl.replace t.exit_globals mid (Fact.Set.union prev globals);
        List.iter
          (fun sid -> enqueue t sid.Ir.sid_meth sid.Ir.sid_idx)
          (Callgraph.callers t.cg mid)
      end;
      set
  | Ir.If (v, _) ->
      if Fact.value_tainted set mid v then touch ();
      set
  | Ir.Goto _ | Ir.Lab _ | Ir.Nop -> set

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

(* Standalone engines (tests, direct API use) get a private fuel-only
   budget matching the historical bound; the pipeline passes its shared
   per-run budget instead. *)
let standalone_budget () =
  Resilience.Budget.create
    ~limits:
      {
        Resilience.Budget.unlimited with
        Resilience.Budget.bl_max_steps = 2_000_000;
      }
    ()

let pending_total t =
  Hashtbl.fold (fun _ c acc -> acc + !c) t.pending_count 0

let run ?budget t =
  let budget =
    match budget with Some b -> b | None -> standalone_budget ()
  in
  let steps = ref 0 in
  let stopped = ref false in
  let drain mid =
    match
      (Hashtbl.find_opt t.pending mid, Hashtbl.find_opt t.pending_count mid)
    with
    | Some flags, Some count when !count > 0 ->
        let body = body_of t mid in
        let arr = before_array t mid in
        let succs = Callgraph.stmt_succs t.cg mid in
        while !count > 0 && not !stopped do
          (* One upward sweep; facts merged above the cursor are caught
             in the same pass, merges below it start the next wave. *)
          let idx = ref 0 in
          while !idx < Array.length flags && not !stopped do
            (if flags.(!idx) then
               if Resilience.Budget.spend budget then begin
                 flags.(!idx) <- false;
                 decr count;
                 incr steps;
                 Profile.visit t.prof mid;
                 Profile.spend t.prof 1;
                 if !idx < Array.length body then begin
                   let out = transfer t mid !idx body.(!idx) arr.(!idx) in
                   match succs with
                   | None -> ()
                   | Some succ_arr ->
                       List.iter (fun s -> merge_at t mid s out) succ_arr.(!idx)
                 end
               end
               else stopped := true);
            incr idx
          done
        done
    | _ -> ()
  in
  while (not (Queue.is_empty t.queue)) && not !stopped do
    drain (Queue.pop t.queue)
  done;
  Profile.close t.prof;
  (* Exhausting the budget with work still queued used to silently
     truncate the slice; now it is a recorded degradation. *)
  let left = pending_total t in
  if left > 0 then
    Resilience.Degrade.record_exhaustion ~phase:"slicing.forward"
      ~work_left:left budget
      "forward taint fixpoint stopped before the worklist drained; the \
       response slice is under-approximate";
  Metrics.incr m_steps ~by:!steps;
  (* The fact union is not free: compute it only when telemetry is on. *)
  if Metrics.is_enabled Metrics.default then begin
    let facts =
      Hashtbl.fold
        (fun _ arr acc -> Array.fold_left Fact.Set.union acc arr)
        t.before
        (Hashtbl.fold
           (fun _ globals acc -> Fact.Set.union acc globals)
           t.exit_globals Fact.Set.empty)
    in
    Metrics.incr m_facts ~by:(Fact.Set.cardinal facts)
  end

let tainted_stmts t =
  Hashtbl.fold (fun sid () acc -> Ir.Stmt_set.add sid acc) t.touched
    Ir.Stmt_set.empty

(** Facts holding before a given statement (empty if never reached). *)
let facts_before t (sid : Ir.stmt_id) =
  match Hashtbl.find_opt t.before sid.Ir.sid_meth with
  | Some arr when sid.Ir.sid_idx < Array.length arr -> arr.(sid.Ir.sid_idx)
  | Some _ | None -> Fact.Set.empty

(** Facts holding after a given statement: the transfer applied once more. *)
let facts_after t (sid : Ir.stmt_id) =
  let body = body_of t sid.Ir.sid_meth in
  if sid.Ir.sid_idx < Array.length body then
    transfer t sid.Ir.sid_meth sid.Ir.sid_idx
      body.(sid.Ir.sid_idx)
      (facts_before t sid)
  else Fact.Set.empty
