(* A small JSON value model with parser and printer.  Used for concrete
   response/request bodies in traffic traces and by the JSON signature
   matcher. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal that round-trips.  A bare %g keeps only 6
   significant digits — enough to turn an epoch timestamp into a
   multiple of 1000 seconds.  The ".0" form for integral values keeps
   them parsing back as [Float], not [Int]. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pp fmt = function
  | Null -> Fmt.string fmt "null"
  | Bool b -> Fmt.bool fmt b
  | Int n -> Fmt.int fmt n
  | Float f -> Fmt.string fmt (float_repr f)
  | Str s -> Fmt.pf fmt "%S" s
  | List items -> Fmt.pf fmt "[@[%a@]]" (Fmt.list ~sep:Fmt.comma pp) items
  | Obj fields ->
      let pp_field fmt (k, v) = Fmt.pf fmt "%S: %a" k pp v in
      Fmt.pf fmt "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp_field) fields

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at %d, got %C" ch c.pos x
  | None -> fail "expected %C at %d, got eof" ch c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | '/' -> Buffer.add_char buf '/'
            | 'u' ->
                (* Keep the code-point textual: enough for signatures. *)
                let hex = String.init 4 (fun i -> c.src.[c.pos + i]) in
                c.pos <- c.pos + 4;
                let code = int_of_string ("0x" ^ hex) in
                if code < 128 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
            | other -> Buffer.add_char buf other);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at %d" text start)

let parse_literal c lit v =
  let len = String.length lit in
  if c.pos + len <= String.length c.src && String.sub c.src c.pos len = lit then begin
    c.pos <- c.pos + len;
    v
  end
  else fail "expected %s at %d" lit c.pos

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected eof"
  | Some '"' -> Str (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some '}' -> advance c
          | _ -> fail "expected , or } at %d" c.pos
        in
        go ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some ']' -> advance c
          | _ -> fail "expected , or ] at %d" c.pos
        in
        go ();
        List (List.rev !items)
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at %d" c.pos;
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let rec find_path path v =
  match path with
  | [] -> Some v
  | key :: rest -> (
      match member key v with Some v' -> find_path rest v' | None -> None)

(** All keys appearing anywhere in the value, with duplicates removed
    (used for keyword counting in Figure 7). *)
let rec all_keys v =
  match v with
  | Obj fields ->
      List.concat_map (fun (k, v') -> k :: all_keys v') fields
  | List items -> List.concat_map all_keys items
  | Null | Bool _ | Int _ | Float _ | Str _ -> []

let distinct_keys v = List.sort_uniq String.compare (all_keys v)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _), _ -> false
