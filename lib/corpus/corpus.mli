(** The assembled corpus: the Table-1 synthetic apps plus the hand-authored
    case studies, with generated APKs cached per app. *)

module Apk = Extr_apk.Apk

type entry = {
  c_app : Spec.app;
  c_apk : Apk.t Lazy.t;
  c_row : Synth.row option;  (** the Table-1 row when the app belongs to it *)
}

val table1 : unit -> entry list
(** The Table-1 evaluation set: 14 open-source + 20 closed-source apps.
    Diode (Figure 3) and radio reddit (Table 3) are the hand-authored
    members of the open-source block. *)

val case_studies : unit -> entry list
(** The apps behind Tables 3-6 and Figures 1/3/5. *)

val generated : seed:int -> count:int -> entry list
(** {!Synth.generate} as corpus entries — the [--gen N] stress corpus.
    Deterministic in [(seed, count)], so shards rebuilding the corpus
    independently partition the same entry list. *)

val apk_of_app : Spec.app -> Apk.t
(** Generate the APK for an arbitrary spec (bypassing the corpus cache). *)

val find : entry list -> string -> entry option
val open_source : entry list -> entry list
val closed_source : entry list -> entry list
