(** Synthetic generation of the Table-1 corpus.

    For every app in the paper's evaluation, Table 1 gives per-method
    counts of unique request signatures seen by (Extractocol / manual UI
    fuzzing / source-truth or automatic fuzzing).  This module allocates
    endpoints with triggers and supported-flags so the three coverage
    sets have exactly those sizes:

    - static ∩ manual ∩ auto — plain clickables
    - static ∩ manual (auto misses) — custom-UI clickables
    - static ∩ auto (manual skipped) — obscure clickables
    - static only — timers / pushes / side-effect actions (§5.1)
    - dynamic only (static misses) — intent-carried requests (§4)

    Body kinds and response shapes are distributed to approximate the
    query/JSON/XML and #Pair columns; the signature-collision structure
    the paper observed cannot be recovered from the table, so those
    columns are approximate by construction (recorded in
    EXPERIMENTS.md). *)

(** One row of Table 1: per-method (extractocol, manual, auto-or-source)
    triples, body-kind counts (extractocol column) and the pair count. *)
type row = {
  t_name : string;
  t_package : string;
  t_https : bool;
  t_closed : bool;
  t_get : int * int * int;
  t_post : int * int * int;
  t_put : int * int * int;
  t_delete : int * int * int;
  t_query : int;
  t_json : int;
  t_xml : int;
  t_pairs : int;
}

val row :
  ?put:int * int * int ->
  ?delete:int * int * int ->
  ?query:int ->
  ?json:int ->
  ?xml:int ->
  https:bool ->
  closed:bool ->
  get:int * int * int ->
  post:int * int * int ->
  pairs:int ->
  string ->
  string ->
  row
(** Row constructor with zero defaults for the optional columns (also
    used to synthesize out-of-corpus apps, e.g. the scalability sweep). *)

val open_source_rows : row list
(** Table 1, open-source block (Extractocol / manual fuzzing / source). *)

val closed_source_rows : row list
(** Table 1, closed-source block (Extractocol / manual / automatic). *)

(** Visibility-class allocation of one method's (E, M, A) triple: how
    many endpoints fall into each intersection of the static and dynamic
    coverage sets. *)
type alloc = {
  al_all : int;  (** static + manual + auto *)
  al_sm : int;  (** static + manual *)
  al_sa : int;  (** static + auto *)
  al_s : int;  (** static only *)
  al_ma : int;  (** dynamic only, both fuzzers (unsupported) *)
  al_m : int;  (** manual only (unsupported) *)
  al_a : int;  (** auto only (unsupported) *)
}

val allocate : int * int * int -> alloc
(** Decompose an (E, M, A) triple into visibility classes whose unions
    reproduce the three counts exactly. *)

val synthesize_app : ?filler:int -> row -> Spec.app
(** Deterministically expand a row into a full app spec (seeded by the
    app name): endpoint ids, URI templates, value sources, body and
    response shapes, triggers and stacks.  [filler] (default 2) sets the
    app's filler-method load — the generator raises it for obfuscated
    apps. *)

val generate : seed:int -> count:int -> Spec.app list
(** The parametric stress corpus: [count] apps sampled from
    Table-1-like distributions — size classes with a long tail, method
    mixes, open/closed coverage triples, body-kind counts, and
    obfuscation levels that drive package-name style and filler load.
    A pure function of [(seed, count)]: every shard regenerating the
    corpus from the same pair sees byte-identical app specs, which is
    what lets [--shard]/[merge] treat the generated corpus exactly like
    the built-in one.  App names are ["gen0001"] … and never collide
    with Table-1 names. *)

val hand_authored : string list
(** Rows realized by hand-authored case-study apps rather than
    synthesis. *)

val apps : unit -> Spec.app list
(** The synthetic portion of the corpus (case studies are hand-authored
    in {!Case_studies}). *)

val row_of_app : string -> row option
(** The Table-1 row for an app name, if the paper lists one. *)
