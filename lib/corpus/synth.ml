(* Synthetic generation of the Table-1 corpus.  For every app in the
   paper's evaluation, the table gives per-method counts of unique request
   signatures seen by (Extractocol / manual UI fuzzing / source-truth or
   automatic fuzzing).  This module allocates endpoints with triggers and
   supported-flags so the three coverage sets have exactly those sizes:

     - static ∩ manual ∩ auto            → plain clickables
     - static ∩ manual (auto misses)     → custom-UI clickables
     - static ∩ auto (manual skipped)    → obscure clickables
     - static only                       → timers / pushes / side-effect
                                           actions (the §5.1 examples)
     - dynamic only (static misses)      → intent-carried requests (§4)

   Body kinds and response shapes are distributed to approximate the
   query/JSON/XML and #Pair columns; the signature-collision structure the
   paper observed cannot be recovered from the table, so those columns are
   approximate by construction (recorded in EXPERIMENTS.md). *)

module Http = Extr_httpmodel.Http
open Spec

(** One row of Table 1: per-method (extractocol, manual, auto-or-source)
    triples, body-kind counts (extractocol column) and the pair count. *)
type row = {
  t_name : string;
  t_package : string;
  t_https : bool;
  t_closed : bool;
  t_get : int * int * int;
  t_post : int * int * int;
  t_put : int * int * int;
  t_delete : int * int * int;
  t_query : int;
  t_json : int;
  t_xml : int;
  t_pairs : int;
}

let row ?(put = (0, 0, 0)) ?(delete = (0, 0, 0)) ?(query = 0) ?(json = 0)
    ?(xml = 0) ~https ~closed ~get ~post ~pairs name package =
  {
    t_name = name;
    t_package = package;
    t_https = https;
    t_closed = closed;
    t_get = get;
    t_post = post;
    t_put = put;
    t_delete = delete;
    t_query = query;
    t_json = json;
    t_xml = xml;
    t_pairs = pairs;
  }

(** Table 1, open-source block (Extractocol / manual fuzzing / source). *)
let open_source_rows =
  [
    row "Adblock Plus" "org.adblockplus" ~https:true ~closed:false ~get:(2, 2, 2)
      ~post:(1, 1, 1) ~query:1 ~xml:1 ~pairs:1;
    row "AnarXiv" "org.anarxiv" ~https:false ~closed:false ~get:(2, 2, 2)
      ~post:(0, 0, 0) ~xml:2 ~pairs:2;
    row "blippex" "com.blippex.app" ~https:true ~closed:false ~get:(1, 1, 1)
      ~post:(0, 0, 0) ~json:1 ~pairs:1;
    row "Diaspora WebClient" "de.baumann.diaspora" ~https:false ~closed:false
      ~get:(1, 1, 1) ~post:(0, 0, 0) ~json:1 ~pairs:1;
    (* Diode is hand-authored in Case_studies (Figure 3); the row is
       reference data for the Table-1 comparison only. *)
    row "Diode" "in.shick.diode" ~https:false ~closed:false ~get:(24, 24, 24)
      ~post:(0, 0, 0) ~query:24 ~json:5 ~pairs:5;
    row "qBittorrent" "com.qbittorrent.client" ~https:false ~closed:false
      ~get:(3, 3, 3) ~post:(13, 13, 13) ~query:13 ~json:3 ~pairs:3;
    row "Lightning" "acr.browser.lightning" ~https:false ~closed:false
      ~get:(2, 2, 2) ~post:(0, 0, 0) ~xml:1 ~pairs:1;
    row "iFixIt" "com.dozuki.ifixit" ~https:false ~closed:false ~get:(15, 15, 15)
      ~post:(7, 7, 7) ~query:3 ~json:14 ~pairs:14;
    (* radio reddit is hand-authored in Case_studies (Table 3); the row is
       reference data for the Table-1 comparison only. *)
    row "radio reddit" "com.radioreddit.android" ~https:true ~closed:false
      ~get:(3, 3, 3) ~post:(3, 3, 3) ~query:3 ~json:4 ~pairs:4;
    row "Reddinator" "au.com.wallaceit.reddinator" ~https:true ~closed:false
      ~get:(3, 3, 3) ~post:(3, 3, 3) ~json:6 ~pairs:6;
    row "Twister" "com.twister" ~https:false ~closed:false ~get:(0, 0, 0)
      ~post:(11, 11, 11) ~query:11 ~json:8 ~pairs:8;
    row "TZM" "org.tzm" ~https:true ~closed:false ~get:(2, 2, 2) ~post:(0, 0, 0)
      ~json:1 ~pairs:1;
    row "Wallabag" "fr.gaulupeau.apps.InThePoche" ~https:false ~closed:false
      ~get:(1, 1, 1) ~post:(0, 0, 0) ~xml:1 ~pairs:1;
    row "Weather Notification" "ru.gelin.android.weather.notification"
      ~https:false ~closed:false ~get:(2, 2, 2) ~post:(0, 0, 0) ~xml:2 ~pairs:2;
  ]

(** Table 1, closed-source block (Extractocol / manual / automatic). *)
let closed_source_rows =
  [
    row "5miles" "com.thirdrock.fivemiles" ~https:true ~closed:true
      ~get:(24, 25, 0) ~post:(51, 12, 0) ~query:16 ~json:16 ~pairs:71;
    row "AC App for Android" "com.acapp.android" ~https:false ~closed:true
      ~get:(9, 9, 7) ~post:(15, 15, 5) ~query:15 ~json:23 ~pairs:23;
    row "AOL: Mail, News & Video" "com.aol.mobile.aolapp" ~https:false
      ~closed:true ~get:(9, 9, 6) ~post:(0, 0, 0) ~json:9 ~pairs:9;
    row "AccuWeather" "com.accuweather.android" ~https:false ~closed:true
      ~get:(15, 15, 0) ~post:(3, 3, 0) ~query:3 ~json:16 ~pairs:16;
    row "Buzzfeed" "com.buzzfeed.android" ~https:false ~closed:true
      ~get:(16, 5, 5) ~post:(12, 5, 1) ~query:28 ~json:6 ~pairs:27;
    row "Flipboard" "flipboard.app" ~https:true ~closed:true ~get:(23, 24, 0)
      ~post:(41, 13, 0) ~query:28 ~json:8 ~pairs:63;
    row "GEEK" "com.contextlogic.geek" ~https:true ~closed:true ~get:(0, 1, 0)
      ~post:(97, 48, 18) ~query:41 ~json:11 ~pairs:97;
    row "KAYAK" "com.kayak.android" ~https:true ~closed:true ~get:(39, 39, 15)
      ~post:(7, 7, 5) ~query:7 ~json:6 ~pairs:6;
    row "Letgo" "com.abtnprojects.ambatana" ~https:true ~closed:true
      ~get:(38, 32, 10) ~post:(10, 14, 2) ~put:(2, 2, 0) ~delete:(3, 0, 0)
      ~query:20 ~json:18 ~pairs:40;
    row "LinkedIn" "com.linkedin.android" ~https:true ~closed:true
      ~get:(38, 42, 16) ~post:(49, 17, 8) ~put:(0, 3, 0) ~query:46 ~json:47
      ~pairs:85;
    row "Lucktastic" "com.lucktastic.scratch" ~https:true ~closed:true
      ~get:(16, 2, 0) ~post:(9, 15, 0) ~put:(2, 0, 0) ~delete:(4, 0, 0) ~query:5
      ~json:19 ~pairs:31;
    row "MusicDownloader" "com.musicdownloader" ~https:true ~closed:true
      ~get:(3, 10, 0) ~post:(0, 1, 0) ~json:4 ~pairs:2;
    row "Offerup" "com.offerup" ~https:true ~closed:true ~get:(33, 20, 0)
      ~post:(23, 21, 0) ~put:(8, 1, 0) ~delete:(3, 0, 0) ~query:12 ~json:25
      ~pairs:63;
    row "Pandora Radio" "com.pandora.android" ~https:false ~closed:true
      ~get:(7, 0, 0) ~post:(53, 20, 2) ~query:53 ~json:26 ~pairs:60;
    row "Pinterest" "com.pinterest" ~https:true ~closed:true ~get:(60, 62, 26)
      ~post:(36, 19, 16) ~put:(32, 8, 3) ~delete:(20, 10, 2) ~query:88 ~json:236
      ~pairs:148;
    (* TED and KAYAK also exist as hand-authored case studies; the rows here
       drive the Table-1 coverage reproduction. *)
    row "TED" "com.ted.android" ~https:false ~closed:true ~get:(16, 16, 10)
      ~post:(2, 2, 1) ~query:2 ~json:10 ~pairs:10;
    row "Tophatter" "com.tophatter" ~https:true ~closed:true ~get:(33, 24, 0)
      ~post:(32, 14, 0) ~put:(1, 0, 0) ~delete:(4, 1, 0) ~query:18 ~json:32
      ~pairs:62;
    row "Tumblr" "com.tumblr" ~https:true ~closed:true ~get:(12, 13, 15)
      ~post:(8, 5, 5) ~delete:(1, 1, 0) ~query:5 ~json:14 ~pairs:20;
    row "WatchESPN" "com.espn.watchespn" ~https:false ~closed:true
      ~get:(33, 33, 17) ~post:(0, 0, 0) ~json:32 ~pairs:32;
    row "Wish Local" "com.contextlogic.wishlocal" ~https:true ~closed:true
      ~get:(0, 1, 0) ~post:(106, 48, 21) ~query:15 ~json:28 ~pairs:106;
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-randomness                                    *)
(* ------------------------------------------------------------------ *)

type rng = { mutable state : int }

let rng_of_string s = { state = (Hashtbl.hash s lor 1) land 0x3FFFFFFF }

let next rng n =
  rng.state <- (rng.state * 1103515245 + 12345) land 0x3FFFFFFF;
  rng.state mod max 1 n

let pick rng l = List.nth l (next rng (List.length l))

let word_pool =
  [
    "items"; "detail"; "feed"; "search"; "user"; "profile"; "cart"; "order";
    "message"; "notify"; "catalog"; "review"; "media"; "track"; "config";
    "session"; "friend"; "photo"; "story"; "board"; "offer"; "deal"; "price";
    "ship"; "event";
  ]

let key_pool =
  [
    "id"; "name"; "title"; "url"; "count"; "status"; "token"; "user"; "price";
    "lang"; "page"; "limit"; "sort"; "category"; "device"; "version"; "ts";
  ]

(* ------------------------------------------------------------------ *)
(* Visibility allocation                                              *)
(* ------------------------------------------------------------------ *)

(** Endpoint visibility classes derived from an (E, M, A) triple. *)
type alloc = {
  al_all : int;  (** static + manual + auto *)
  al_sm : int;  (** static + manual *)
  al_sa : int;  (** static + auto *)
  al_s : int;  (** static only *)
  al_ma : int;  (** dynamic only, both fuzzers (unsupported) *)
  al_m : int;  (** manual only (unsupported) *)
  al_a : int;  (** auto only (unsupported) *)
}

let allocate (e, m, a) =
  let all = min e (min m a) in
  let sm = min (e - all) (m - all) in
  let sa = min (e - all - sm) (a - all) in
  let s = e - all - sm - sa in
  let m_rem = m - all - sm in
  let a_rem = a - all - sa in
  let ma = min m_rem a_rem in
  {
    al_all = all;
    al_sm = sm;
    al_sa = sa;
    al_s = s;
    al_ma = ma;
    al_m = m_rem - ma;
    al_a = a_rem - ma;
  }

(** Trigger+supported assignments for one method's allocation.  [rot]
    rotates the static-only causes (timer / push / action). *)
let expand_alloc rng alloc : (trigger * bool) list =
  let static_only () =
    pick rng [ Ttimer; Tpush; Taction; Taction ]
  in
  List.concat
    [
      List.init alloc.al_all (fun _ -> (Tclick, true));
      List.init alloc.al_sm (fun _ -> (Tcustom, true));
      List.init alloc.al_sa (fun _ -> (Tobscure, true));
      List.init alloc.al_s (fun _ -> (static_only (), true));
      List.init alloc.al_ma (fun _ -> (Tclick, false));
      List.init alloc.al_m (fun _ -> (Tcustom, false));
      List.init alloc.al_a (fun _ -> (Tobscure, false));
    ]

(* ------------------------------------------------------------------ *)
(* Response shapes                                                    *)
(* ------------------------------------------------------------------ *)

(** Build the [i]-th JSON response shape of an app: a few leaves (some
    unread), occasionally nested.  The token field of shape 0 is stored to
    the heap so later endpoints can depend on it. *)
let json_shape rng ~shape_id ~store_token ~ep_id =
  ignore ep_id;
  let k1 = pick rng key_pool and k2 = pick rng key_pool in
  let base =
    [
      Rleaf { key = "status"; kind = Kstr; read = true; use = None };
      Rleaf { key = k1; kind = Knum; read = true; use = Some (Uui : ruse) };
      Rleaf { key = k2 ^ "_extra"; kind = Kstr; read = false; use = None };
    ]
  in
  let nested =
    if shape_id mod 3 = 0 then
      [
        Robj
          {
            key = "data";
            read = true;
            fields =
              [
                Rleaf { key = pick rng key_pool; kind = Kstr; read = true; use = None };
                Rleaf { key = "hidden"; kind = Kstr; read = false; use = None };
              ];
          };
      ]
    else if shape_id mod 3 = 1 then
      [
        Rarr
          {
            key = "results";
            read = true;
            loop = shape_id mod 2 = 0;
            elem =
              [
                Rleaf { key = "id"; kind = Knum; read = true; use = None };
                Rleaf { key = pick rng key_pool; kind = Kstr; read = true; use = None };
              ];
          };
      ]
    else []
  in
  let token =
    if store_token then
      [ Rleaf { key = "token"; kind = Kstr; read = true; use = Some Uheap } ]
    else []
  in
  Rjson (base @ nested @ token)

let xml_shape rng ~shape_id =
  ignore shape_id;
  let tag = pick rng word_pool in
  Rxml
    ( "rss",
      [
        Robj
          {
            key = "channel";
            read = true;
            fields =
              [
                Rleaf { key = tag; kind = Kstr; read = true; use = None };
                Rleaf { key = "@version"; kind = Kstr; read = true; use = None };
                Rleaf { key = "skipped"; kind = Kstr; read = false; use = None };
              ];
          };
      ] )

(* ------------------------------------------------------------------ *)
(* App synthesis                                                      *)
(* ------------------------------------------------------------------ *)

let synthesize_app ?(filler = 2) (r : row) : app =
  let rng = rng_of_string r.t_name in
  let scheme = if r.t_https then "https" else "http" in
  let host = "api." ^ r.t_package ^ ".com" in
  (* Expand per-method allocations into (meth, trigger, supported). *)
  let meth_plan =
    List.concat_map
      (fun (m, triple) ->
        List.map (fun (tr, sup) -> (m, tr, sup)) (expand_alloc rng (allocate triple)))
      [
        (Http.GET, r.t_get);
        (Http.POST, r.t_post);
        (Http.PUT, r.t_put);
        (Http.DELETE, r.t_delete);
      ]
  in
  let n = List.length meth_plan in
  (* Response allocation: the first [pairs] supported endpoints carry
     processed bodies.  XML responses go first (open-source apps), the rest
     share a bounded pool of JSON shapes. *)
  let supported_count = List.length (List.filter (fun (_, _, s) -> s) meth_plan) in
  let pair_budget = min r.t_pairs supported_count in
  let n_xml = min r.t_xml pair_budget in
  let n_json_shapes = max 1 (min (max 1 (r.t_json / 2)) 6) in
  (* Request-body allocation over non-GET endpoints. *)
  let resources = ref [] in
  let res_count = ref 0 in
  let fresh_res value =
    incr res_count;
    let id = 7000 + !res_count in
    resources := (id, value) :: !resources;
    id
  in
  let api_key_res = fresh_res ("key-" ^ string_of_int (Hashtbl.hash r.t_name land 0xffff)) in
  let value_source rng i : vsrc =
    match i mod 5 with
    | 0 -> Sconst (pick rng [ "1"; "true"; "android"; "v2"; "full" ])
    | 1 -> Suser
    | 2 -> Scounter
    | 3 -> Sres api_key_res
    | _ -> Sconst (string_of_int (next rng 100))
  in
  (* Rank supported endpoints separately: the pair budget must not be
     consumed by dynamic-only endpoints interleaved in the plan. *)
  let supported_ranks =
    let r = ref 0 in
    List.map
      (fun (_, _, sup) ->
        if sup then begin
          let k = !r in
          incr r;
          k
        end
        else -1)
      meth_plan
  in
  let mk_endpoint idx (meth, tr, supported) : endpoint =
    let srank = List.nth supported_ranks idx in
    let id = Printf.sprintf "e%d" idx in
    let w1 = pick rng word_pool and w2 = pick rng word_pool in
    let path =
      (* Paths embed the endpoint index so templates never collide. *)
      if idx mod 3 = 0 then
        [
          Lit (Printf.sprintf "/api/v1/%s%d/" w1 idx);
          Var (value_source rng (idx + 2));
          Lit ("/" ^ w2);
        ]
      else [ Lit (Printf.sprintf "/api/v1/%s/%s%d" w1 w2 idx) ]
    in
    let query =
      if meth = Http.GET && idx mod 2 = 0 then
        [
          (pick rng [ "page"; "limit"; "lang"; "sort" ], value_source rng idx);
          ("api_key", (Sres api_key_res : vsrc));
        ]
      else []
    in
    let body =
      match meth with
      | Http.GET -> Bnone
      | Http.POST | Http.PUT | Http.DELETE ->
          let kvs =
            [
              (pick rng key_pool, value_source rng idx);
              (pick rng key_pool ^ "_p", value_source rng (idx + 1));
            ]
          in
          (* Rotate body kinds: query-string, org.json, gson. *)
          if idx mod 3 = 0 && r.t_query > 0 then Bquery kvs
          else if idx mod 7 = 6 then Bgson kvs
          else if r.t_json > 0 then Bjson kvs
          else Bquery kvs
    in
    let resp =
      if not supported then
        (* Dynamic-only endpoints still answer with JSON so fuzzers see
           bodies. *)
        json_shape rng ~shape_id:(idx mod n_json_shapes) ~store_token:false ~ep_id:id
      else if srank < n_xml then xml_shape rng ~shape_id:idx
      else if srank < pair_budget then
        json_shape rng ~shape_id:(idx mod n_json_shapes)
          ~store_token:(srank = n_xml) (* one token-bearing login-ish endpoint *)
          ~ep_id:id
      else Rnone
    in
    let stack =
      if not supported then Apache
      else
        match idx mod 4 with
        | 0 -> Apache
        | 1 -> Urlconn
        | 2 -> if meth = Http.GET && body = Bnone then Volley else Okhttp
        | _ -> Okhttp
    in
    let async = supported && stack = Apache && idx mod 5 = 4 && resp <> Rnone in
    let headers =
      if idx mod 6 = 5 then [ ("User-Agent", Sconst (r.t_package ^ "/8.1")) ]
      else []
    in
    endpoint ~id ~meth ~scheme ~host ~query ~headers ~body ~resp ~trigger:tr
      ~stack ~async ~supported path
  in
  let endpoints = List.mapi mk_endpoint meth_plan in
  (* Thread the token dependency: endpoints after the token-bearing one may
     reference it. *)
  let token_ep =
    List.find_opt
      (fun e ->
        match e.e_resp with
        | Rjson fields ->
            List.exists
              (function
                | Rleaf { key = "token"; use = Some Uheap; _ } -> true
                | _ -> false)
              fields
        | _ -> false)
      endpoints
  in
  let endpoints =
    match token_ep with
    | None -> endpoints
    | Some tok ->
        List.mapi
          (fun i e ->
            if
              e.e_id <> tok.e_id && e.e_supported && i mod 4 = 1
              && e.e_meth <> Http.GET
            then
              {
                e with
                e_headers = ("Authorization", Sresp (tok.e_id, [ "token" ])) :: e.e_headers;
              }
            else e)
          endpoints
  in
  ignore n;
  {
    a_name = r.t_name;
    a_package = r.t_package;
    a_closed = r.t_closed;
    a_auto_blocked = false;
    a_shared_fetch = false;
    a_filler = filler;
    a_endpoints = endpoints;
    a_resources = List.rev !resources;
  }

(* ------------------------------------------------------------------ *)
(* Parametric generation                                              *)
(* ------------------------------------------------------------------ *)

(* The ROADMAP's ~1000-app stress corpus: a seeded sampler over
   Table-1-like distributions.  Each app draws a size class (endpoint
   count), a method mix, coverage triples shaped like the open- or
   closed-source blocks above, body-kind counts, and an obfuscation
   level (package-name style + filler-method load), then goes through
   the same [synthesize_app] expansion as the real rows — so generated
   apps exercise exactly the code paths the Table-1 corpus does, only
   at fleet scale.  Everything is a pure function of [(seed, count)]:
   the same pair yields byte-identical app specs on every shard. *)

let rng_of_seed seed = { state = (seed lor 1) land 0x3FFFFFFF }

(* (E, M, A) coverage triple for one method's static count [e]. *)
let gen_triple rng ~closed e =
  if e = 0 then (0, 0, 0)
  else if not closed then
    (* Open block: source truth recovers everything; occasionally one
       intent-carried dynamic-only request the static side misses. *)
    let extra = if next rng 10 = 0 then 1 else 0 in
    (e, e + extra, e)
  else
    (* Closed block: manual fuzzing reaches a fraction, automatic less,
       plus the odd dynamic-only endpoint. *)
    let m = e * (40 + next rng 60) / 100 in
    let a = m * next rng 101 / 100 in
    let m = m + (if next rng 5 = 0 then 1 + next rng 3 else 0) in
    (e, m, a)

let generate ~seed ~count : Spec.app list =
  List.init count (fun i ->
      let rng = rng_of_seed (seed + ((i + 1) * 7919)) in
      let name = Printf.sprintf "gen%04d" (i + 1) in
      (* Size classes: mostly small apps with a long tail, like a
         Play-Store crawl. *)
      let total =
        match next rng 100 with
        | c when c < 55 -> 1 + next rng 4 (* small: 1-4 *)
        | c when c < 85 -> 5 + next rng 8 (* medium: 5-12 *)
        | c when c < 97 -> 13 + next rng 18 (* large: 13-30 *)
        | _ -> 31 + next rng 30 (* huge: 31-60 *)
      in
      let g = total * (30 + next rng 41) / 100 in
      let pd = if total >= 10 then next rng (max 1 ((total - g) / 3)) else 0 in
      let put_n = pd / 2 in
      let del_n = pd - put_n in
      let p = total - g - pd in
      let closed = next rng 100 < 60 in
      let https = next rng 100 < 55 in
      let non_get = p + put_n + del_n in
      let pairs = max 1 (total * (30 + next rng 70) / 100) in
      let xml = if (not closed) && next rng 3 = 0 then 1 + next rng 2 else 0 in
      let json = max 0 (pairs - xml) in
      let query = non_get * next rng 101 / 100 in
      (* Obfuscation level: plain / renamed / fully minified — drives the
         package-name style and the filler-method load the analyzer must
         wade through. *)
      let ob =
        match next rng 100 with c when c < 50 -> 0 | c when c < 85 -> 1 | _ -> 2
      in
      let w1 = pick rng word_pool and w2 = pick rng word_pool in
      let package =
        match ob with
        | 0 -> Printf.sprintf "com.%s.%s%d" w1 w2 (i + 1)
        | 1 -> Printf.sprintf "io.%s.gen%d" w1 (i + 1)
        | _ -> Printf.sprintf "a%d.b.c" (i + 1)
      in
      let r =
        row name package ~https ~closed
          ~get:(gen_triple rng ~closed g)
          ~post:(gen_triple rng ~closed p)
          ~put:(gen_triple rng ~closed put_n)
          ~delete:(gen_triple rng ~closed del_n)
          ~query ~json ~xml ~pairs
      in
      synthesize_app ~filler:(1 + ob) r)

(** Rows realized by hand-authored case-study apps rather than synthesis. *)
let hand_authored = [ "radio reddit"; "Diode" ]

(** The synthetic portion of the corpus (case studies are hand-authored in
    {!Case_studies}). *)
let apps () =
  open_source_rows @ closed_source_rows
  |> List.filter (fun r -> not (List.mem r.t_name hand_authored))
  |> List.map synthesize_app

(** The Table-1 row for an app name, if it is part of the synthetic set. *)
let row_of_app name =
  List.find_opt
    (fun r -> r.t_name = name)
    (open_source_rows @ closed_source_rows)
