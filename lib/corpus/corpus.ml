(* The assembled corpus: the Table-1 synthetic apps plus the hand-authored
   case studies, with generated APKs cached per app. *)

module Apk = Extr_apk.Apk

type entry = {
  c_app : Spec.app;
  c_apk : Apk.t Lazy.t;
  c_row : Synth.row option;  (** the Table-1 row when the app belongs to it *)
}

let mk_entry app =
  { c_app = app; c_apk = lazy (Codegen.generate app); c_row = Synth.row_of_app app.Spec.a_name }

let apk_of_app (app : Spec.app) = Codegen.generate app

(** The Table-1 evaluation set (14 open-source + 20 closed-source apps);
    Diode (Figure 3) and radio reddit (Table 3) are the hand-authored
    members of the open-source block. *)
let table1 () : entry list =
  let synth = Synth.apps () in
  List.map mk_entry (Case_studies.diode :: Case_studies.radio_reddit :: synth)

(** Case-study apps for Tables 3-6 and Figures 1/3/5. *)
let case_studies () : entry list = List.map mk_entry Case_studies.all

(** The parametric stress corpus ([--gen N]): a pure function of
    [(seed, count)], so every shard rebuilding it sees the same apps. *)
let generated ~seed ~count : entry list =
  List.map mk_entry (Synth.generate ~seed ~count)

let find entries name =
  List.find_opt (fun e -> e.c_app.Spec.a_name = name) entries

let open_source entries =
  List.filter (fun e -> not e.c_app.Spec.a_closed) entries

let closed_source entries = List.filter (fun e -> e.c_app.Spec.a_closed) entries
