(** Inverted index over Limple method bodies — the analogue of BackDroid's
    bytecode-search stage.  One linear scan of the application methods up
    front, then O(1) lookup of candidate call sites by invoked method name
    and of field-store sites by field, plus cheap per-method summaries
    (string constants, fields written).  The demand-driven call graph and
    the slicer's demarcation discovery run off this index instead of
    re-scanning every method body. *)

type site = {
  st_stmt : Types.stmt_id;
  st_invoke : Types.invoke;
  st_ord : int;
      (** global scan ordinal: position of the invoke in the canonical
          method/statement scan order, so merged lookups can be replayed
          in exactly the order a whole-program scan would visit them *)
}

type store = {
  fs_stmt : Types.stmt_id;
  fs_var : Types.var;  (** receiver object of the instance-field store *)
  fs_field : Types.field_ref;
  fs_ord : int;  (** global scan ordinal, shared with {!site} ordinals *)
}

type t

val build : Prog.t -> t
(** Scan all application methods once (in [Prog.app_methods] order) and
    build the index. *)

val sites_invoking : t -> string -> site list
(** All call sites whose invoked signature has the given method name, in
    scan order.  Every direct callee of an invoke shares the invoke's
    name, so this over-approximates the caller set of any method with
    that name. *)

val field_stores : t -> string * string -> store list
(** Instance-field stores to [(class, field)], in scan order. *)

val strings_of : t -> Types.method_id -> string list
(** String constants appearing in the method body, in encounter order,
    deduplicated. *)

val fields_written_of : t -> Types.method_id -> (string * string) list
(** Instance fields the method stores to, in encounter order,
    deduplicated. *)

val method_count : t -> int
(** Application methods scanned. *)

val site_count : t -> int
(** Invoke sites indexed. *)
