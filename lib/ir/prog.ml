(* Program-level lookups: class hierarchy, method resolution (including
   virtual dispatch), and well-formedness validation. *)

open Types

type t = {
  program : program;
  classes : (string, cls) Hashtbl.t;
  methods : meth Method_map.t;
  subclasses_memo : (string, string list) Hashtbl.t;
      (** receiver class → CHA candidate set; computing it walks the whole
          class table, and [callees] asks for it on every virtual invoke *)
}

let of_program (p : program) =
  let classes = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace classes c.c_name c) p.p_classes;
  let methods =
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc m -> Method_map.add (method_id_of_meth m) m acc)
          acc c.c_methods)
      Method_map.empty p.p_classes
  in
  { program = p; classes; methods; subclasses_memo = Hashtbl.create 64 }

let find_class t name = Hashtbl.find_opt t.classes name

let find_method t (id : method_id) = Method_map.find_opt id t.methods

let find_method_ref t (r : method_ref) = find_method t (method_id_of_ref r)

(** Walk the superclass chain from [cls] upward, inclusive.  Corrupt
    class data can declare a superclass cycle; the walk cuts it at the
    first repeated name instead of recursing forever. *)
let ancestry t cls =
  let rec go seen cls =
    if List.mem cls seen then []
    else
      match find_class t cls with
      | None -> [ cls ]
      | Some c -> (
          match c.c_super with
          | None -> [ cls ]
          | Some s -> cls :: go (cls :: seen) s)
  in
  go [] cls

let is_subclass t ~sub ~super =
  sub = super || List.mem super (ancestry t sub)

(** Resolve a virtual call on static receiver type [cls]: find the closest
    ancestor (including [cls] itself) that defines [mname]. *)
let resolve_virtual t ~cls ~mname =
  let rec walk = function
    | [] -> None
    | c :: rest -> (
        match find_method t { id_cls = c; id_name = mname } with
        | Some m -> Some m
        | None -> walk rest)
  in
  walk (ancestry t cls)

(** All subclasses of [cls] present in the program (inclusive), used for
    CHA-style call-graph construction.  Memoized per receiver class: the
    walk over the whole class table ran on every virtual invoke and
    dominated call-graph resolution. *)
let subclasses t cls =
  match Hashtbl.find_opt t.subclasses_memo cls with
  | Some l -> l
  | None ->
      let l =
        Hashtbl.fold
          (fun name _ acc ->
            if is_subclass t ~sub:name ~super:cls then name :: acc else acc)
          t.classes []
      in
      Hashtbl.add t.subclasses_memo cls l;
      l

(** CHA resolution of an invoke: the set of concrete methods it may reach.
    Virtual calls consider every subclass override; static and special calls
    resolve to a single target.  Library methods are excluded — they are
    handled by semantic models, not analyzed. *)
let callees t (i : invoke) : meth list =
  let app_only m =
    match find_class t m.m_cls with
    | Some c when not c.c_library -> true
    | Some _ | None -> false
  in
  match i.ikind with
  | Static | Special -> (
      match find_method_ref t i.iref with
      | Some m when app_only m -> [ m ]
      | Some _ | None -> [])
  | Virtual ->
      let receiver_cls =
        match i.ibase with Some { vty = Obj c; _ } -> c | Some _ | None -> i.iref.mcls
      in
      let candidates = subclasses t receiver_cls in
      let defining =
        List.filter_map
          (fun c -> find_method t { id_cls = c; id_name = i.iref.mname })
          candidates
      in
      let defining =
        (* If no subclass defines it, fall back to superclass resolution. *)
        match defining with
        | [] -> (
            match resolve_virtual t ~cls:receiver_cls ~mname:i.iref.mname with
            | Some m -> [ m ]
            | None -> [])
        | ms -> ms
      in
      List.filter app_only defining

let app_methods t =
  Method_map.fold
    (fun id m acc ->
      match find_class t id.id_cls with
      | Some c when not c.c_library -> m :: acc
      | Some _ | None -> acc)
    t.methods []

let stmt_at t (sid : stmt_id) =
  match find_method t sid.sid_meth with
  | Some m when sid.sid_idx >= 0 && sid.sid_idx < Array.length m.m_body ->
      Some m.m_body.(sid.sid_idx)
  | Some _ | None -> None

(** Total statement count over application (non-library) methods; used for
    the slice-fraction measurement of Figure 3. *)
let app_stmt_count t =
  List.fold_left (fun acc m -> acc + Array.length m.m_body) 0 (app_methods t)

type validation_error = {
  ve_meth : method_id;
  ve_idx : int;
  ve_msg : string;
}

let pp_validation_error fmt e =
  Format.fprintf fmt "%a:%d: %s" Method_id.pp e.ve_meth e.ve_idx e.ve_msg

(** Check structural well-formedness: every branch target is a defined label,
    every used local is a parameter, [this], or defined somewhere in the body,
    and constructors invoked on classes that exist. *)
let validate t =
  let errors = ref [] in
  let err m idx msg =
    errors := { ve_meth = method_id_of_meth m; ve_idx = idx; ve_msg = msg } :: !errors
  in
  let check_meth (m : meth) =
    let labels = Hashtbl.create 8 in
    Array.iter
      (function Lab l -> Hashtbl.replace labels l () | _ -> ())
      m.m_body;
    let defined = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace defined v.vname ()) m.m_params;
    if not m.m_static then Hashtbl.replace defined "this" ();
    Array.iter
      (fun s ->
        match stmt_def s with
        | Some v -> Hashtbl.replace defined v.vname ()
        | None -> ())
      m.m_body;
    Array.iteri
      (fun idx s ->
        (match s with
        | If (_, l) | Goto l ->
            if not (Hashtbl.mem labels l) then
              err m idx (Printf.sprintf "undefined label %s" l)
        | Assign _ | InvokeStmt _ | Lab _ | Return _ | Nop -> ());
        List.iter
          (fun v ->
            if not (Hashtbl.mem defined v.vname) then
              err m idx (Printf.sprintf "undefined local %s" v.vname))
          (stmt_uses s);
        match stmt_invoke s with
        | Some { ikind = Special; iref; _ }
          when iref.mname = "<init>" && not (Hashtbl.mem t.classes iref.mcls) ->
            err m idx (Printf.sprintf "constructor of unknown class %s" iref.mcls)
        | Some _ | None -> ())
      m.m_body
  in
  List.iter check_meth (app_methods t);
  List.rev !errors
