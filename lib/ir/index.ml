(* Inverted index over Limple bodies (BackDroid's bytecode-search stage):
   one linear scan of the program, then O(1) candidate lookups.  Ordinals
   record the canonical scan position of every record so that lookups
   merged across several keys can be replayed in exactly the order a
   whole-program scan would produce — the demand-driven paths depend on
   that to stay byte-identical with the eager ones. *)

module T = Types

type site = { st_stmt : T.stmt_id; st_invoke : T.invoke; st_ord : int }
type store = { fs_stmt : T.stmt_id; fs_var : T.var; fs_field : T.field_ref; fs_ord : int }

type t = {
  by_name : (string, site list) Hashtbl.t;  (* invoked name → sites, scan order *)
  by_field : (string * string, store list) Hashtbl.t;
  strings : (T.method_id, string list) Hashtbl.t;
  fields_written : (T.method_id, (string * string) list) Hashtbl.t;
  ix_methods : int;
  ix_sites : int;
}

(* String constants read by a statement, left to right. *)
let stmt_strings stmt =
  let acc = ref [] in
  let value = function T.Const (T.Cstr s) -> acc := s :: !acc | _ -> () in
  let invoke (i : T.invoke) = List.iter value i.T.iargs in
  let expr = function
    | T.Val v | T.Cast (_, v) | T.NewArr (_, v) -> value v
    | T.Binop (_, a, b) ->
        value a;
        value b
    | T.AElem (_, i) -> value i
    | T.Invoke i -> invoke i
    | T.New _ | T.IField _ | T.SField _ | T.ALen _ -> ()
  in
  (match stmt with
  | T.Assign (lhs, e) ->
      (match lhs with T.Lelem (_, v) -> value v | _ -> ());
      expr e
  | T.InvokeStmt i -> invoke i
  | T.Return (Some v) | T.If (v, _) -> value v
  | T.Return None | T.Goto _ | T.Lab _ | T.Nop -> ());
  List.rev !acc

let build (prog : Prog.t) : t =
  let by_name = Hashtbl.create 256 in
  let by_field = Hashtbl.create 64 in
  let strings = Hashtbl.create 256 in
  let fields_written = Hashtbl.create 64 in
  let push tbl key v =
    Hashtbl.replace tbl key (v :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
  in
  let ord = ref 0 in
  let methods = ref 0 in
  let sites = ref 0 in
  List.iter
    (fun (m : T.meth) ->
      incr methods;
      let mid = T.method_id_of_meth m in
      let strs = ref [] in
      let str_seen = Hashtbl.create 8 in
      let fields = ref [] in
      let field_seen = Hashtbl.create 8 in
      Array.iteri
        (fun idx stmt ->
          let sid = { T.sid_meth = mid; sid_idx = idx } in
          (match T.stmt_invoke stmt with
          | Some i ->
              incr sites;
              push by_name i.T.iref.T.mname
                { st_stmt = sid; st_invoke = i; st_ord = !ord };
              incr ord
          | None -> ());
          (match stmt with
          | T.Assign (T.Lfield (x, f), _) ->
              let key = (f.T.fcls, f.T.fname) in
              push by_field key
                { fs_stmt = sid; fs_var = x; fs_field = f; fs_ord = !ord };
              incr ord;
              if not (Hashtbl.mem field_seen key) then begin
                Hashtbl.replace field_seen key ();
                fields := key :: !fields
              end
          | _ -> ());
          List.iter
            (fun s ->
              if not (Hashtbl.mem str_seen s) then begin
                Hashtbl.replace str_seen s ();
                strs := s :: !strs
              end)
            (stmt_strings stmt))
        m.T.m_body;
      if !strs <> [] then Hashtbl.replace strings mid (List.rev !strs);
      if !fields <> [] then Hashtbl.replace fields_written mid (List.rev !fields))
    (Prog.app_methods prog);
  (* Finalize the consed per-key lists back into scan order. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace by_name k (List.rev v))
    (Hashtbl.copy by_name);
  Hashtbl.iter (fun k v -> Hashtbl.replace by_field k (List.rev v))
    (Hashtbl.copy by_field);
  { by_name; by_field; strings; fields_written; ix_methods = !methods; ix_sites = !sites }

let sites_invoking t name = Option.value (Hashtbl.find_opt t.by_name name) ~default:[]
let field_stores t key = Option.value (Hashtbl.find_opt t.by_field key) ~default:[]
let strings_of t mid = Option.value (Hashtbl.find_opt t.strings mid) ~default:[]

let fields_written_of t mid =
  Option.value (Hashtbl.find_opt t.fields_written mid) ~default:[]

let method_count t = t.ix_methods
let site_count t = t.ix_sites
