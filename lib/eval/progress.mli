(** Live progress heartbeat for [extractocol --all --progress].

    A pure state machine over the runner's three observer hooks
    ({!Runner.run}'s [on_journal], [on_result], [on_state]) and an
    injectable clock; it owns no terminal — rendered chunks go through
    the [emit] callback, so the CLI points it at stderr and tests
    capture strings under a fake clock.

    Two render modes:
    - [Tty]: one rewriting status line (carriage return +
      erase-to-end-of-line), updated on every event;
    - [Lines]: self-contained [progress: ...] lines, rate-limited to one
      per [min_interval_s] so a fast corpus doesn't flood a CI log.

    The line shows apps done/total, ok/degraded/quarantined/cached
    counts, the pool's busy/idle/queued shape (once a pool has reported
    state — sequential runs omit it) and an ETA.  The ETA averages the
    per-app wall time of apps seen end to end — the same
    started→finished pairing the journal records, observed at receipt
    time — spread over the remaining apps and the currently busy
    workers; it reads [--] until the first app finishes. *)

type mode = Tty | Lines

type t

val create :
  ?clock:Extr_telemetry.Clock.t ->
  ?min_interval_s:float ->
  mode:mode ->
  total:int ->
  emit:(string -> unit) ->
  unit ->
  t
(** [create ~mode ~total ~emit ()] — [total] is the corpus size;
    [min_interval_s] (default 2.0) only affects [Lines] mode. *)

val on_journal : t -> Extr_resilience.Journal.event -> unit
(** Feed a lifecycle event (pair with {!Runner.run}'s [on_journal]). *)

val on_result : t -> Runner.app_result -> unit
(** Feed a published result (pair with [on_result]). *)

val on_state : t -> busy:int -> idle:int -> pending:int -> unit
(** Feed the pool's scheduling state (pair with [on_state]). *)

val finish : t -> unit
(** Final render: clears the status line ([Tty]) or force-emits the last
    state ([Lines]) so the run always ends on a complete picture. *)
