(** Evaluation metrics (§5): coverage per method and baseline, signature
    counts, constant-keyword counts, matched-byte accounting, and
    signature validity against captured traffic. *)

module Http = Extr_httpmodel.Http
module Report = Extr_extractocol.Report
module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus

(** One fully evaluated app: the static report plus the three dynamic
    baselines' traces. *)
type app_eval = {
  ae_app : Spec.app;
  ae_report : Report.t;
  ae_auto : Http.trace;
  ae_manual : Http.trace;
  ae_full : Http.trace;
  ae_row : Extr_corpus.Synth.row option;
}

val evaluate : Corpus.entry -> app_eval
(** Static analysis under the §5.1 configuration (async heuristic off for
    open-source apps) plus the three fuzzing runs. *)

(** {1 Coverage (Table 1)} *)

val static_method_count : app_eval -> Http.meth -> int
val trace_method_count : app_eval -> Http.trace -> Http.meth -> int

val source_method_count : app_eval -> Http.meth -> int
(** Source-truth endpoints per method (the third Table-1 series for
    open-source apps; closed-source apps use the automatic-fuzzing
    trace instead). *)

type coverage_row = {
  cr_app : string;
  cr_static : int * int * int * int;  (** GET, POST, PUT, DELETE *)
  cr_manual : int * int * int * int;
  cr_auto : int * int * int * int;
  cr_pairs : int;
}

val coverage : app_eval -> coverage_row

(** {1 Signature counts (Figure 6)} *)

type sig_counts = { sc_uri : int; sc_request : int; sc_response : int }

val static_sig_counts : app_eval -> sig_counts
val trace_sig_counts : app_eval -> Http.trace -> sig_counts
val source_sig_counts : app_eval -> sig_counts

(** {1 Keyword counts (Figure 7)} *)

type keyword_counts = { kc_request : int; kc_response : int }

val static_keywords : app_eval -> keyword_counts
val trace_keywords : Http.trace -> keyword_counts
val source_keywords : app_eval -> keyword_counts

(** {1 Signature validity and byte accounting (§5.1, Table 2)} *)

val match_request : app_eval -> Http.request -> Report.transaction option

val signature_validity : app_eval -> Http.trace -> int * int
(** [(matched, total)] over trace entries from supported endpoints. *)

type byte_account = { ba_k : int; ba_v : int; ba_n : int }

val zero_account : byte_account
val add_account : byte_account -> int * int * int -> byte_account

val byte_accounting : app_eval -> Http.trace -> byte_account * byte_account
(** Request-side and response-side accumulations over a trace. *)

val account_percentages : byte_account -> float * float * float

(** {1 Miss diagnosis}

    Every source-truth endpoint absent from the static report is walked
    back through the pipeline and attributed to the first phase whose
    output no longer carries it, turning Table-1 coverage gaps into
    actionable per-phase counts. *)

type miss_phase =
  | No_dp_found  (** no demarcation point or slice reaches the endpoint *)
  | Slice_pruned  (** backward slicing never covers the URI construction *)
  | Interp_bailed  (** sliced but no matching raw transaction emerged *)
  | Pairing_failed  (** a raw transaction matched but the report lost it *)
  | Budget_exhausted
      (** the losing phase bailed on exhausted fuel or deadline: the miss
          is a resource-governance artifact, not an analysis limitation *)

val miss_phase_name : miss_phase -> string
(** Stable kebab-case name, used as the metrics [phase] label. *)

type miss = {
  ms_endpoint : string;
  ms_meth : Http.meth;
  ms_phase : miss_phase;
  ms_detail : string;
}

type miss_report = {
  mr_app : string;
  mr_total : int;  (** source-truth endpoints *)
  mr_covered : int;
  mr_misses : miss list;
}

val diagnose :
  Extr_extractocol.Pipeline.analysis -> Http.trace -> Spec.app -> miss_report
(** Diagnose against an existing analysis and captured trace.  Each miss
    bumps the ["eval.missed_endpoints"] counter (labels [app], [phase]) in
    the default metrics registry when it is enabled. *)

val diagnose_misses : Corpus.entry -> miss_report
(** Analyze under the §5.1 configuration, fuzz under the full policy, and
    {!diagnose}. *)

val pp_miss_report : Format.formatter -> miss_report -> unit
