(* Offline union of sharded --all artifacts: [extractocol merge].

   N shard runs (each `--shard K/N` over the same corpus and
   configuration) leave N journals and N (or fewer, when shared) cache
   directories.  This module folds them back into the artifacts one
   unsharded run would have produced: a report envelope byte-identical
   to `--all --jobs 1`, a merged journal the stats/merge readers accept
   like a runner-written one, the unioned cache entries, and a unioned
   metrics snapshot.

   Robustness is the design driver, not a bolt-on:

   - Idempotent: per-app conflicts (overlapping shards, duplicated
     work, re-merging a merged journal) resolve newest-finished-wins by
     journal stamp, ties broken by input order — a deterministic,
     associative-in-practice rule, so merge(merge(x)) = merge(x).
   - Corruption never aborts: an unreadable journal, a torn tail (the
     journal parser already drops it) or a truncated/corrupt cache
     entry becomes a degradation record in the envelope; the merge
     completes with everything else.
   - Missing work is explicit: shards declared by the journals' (or
     [expect_shards]') K/N identities but absent, and corpus apps no
     surviving journal accounts for, are listed in the envelope and
     reflected in the exit code — never a silent gap.
   - Reading is read-only: inputs are never opened for writing, so
     merging artifacts of a still-running shard is safe (it just sees a
     prefix).  Writing the outputs is the caller's job (the CLI), via
     the atomic [Export.write_file] discipline. *)

module Journal = Extr_resilience.Journal
module Resilience = Extr_resilience.Resilience
module Barrier = Resilience.Barrier
module Json = Extr_httpmodel.Json
module Corpus = Extr_corpus.Corpus
module Metrics = Extr_telemetry.Metrics
module Export = Extr_telemetry.Export
module Store = Extr_store.Store

let src = Logs.Src.create "extractocol.merge" ~doc:"Shard artifact merge"

module Log = (val Logs.src_log src : Logs.LOG)

type degradation = { md_app : string; md_reason : string; md_detail : string }

type t = {
  mg_config : string;
  mg_run : Runner.run;
  mg_finished : (float option * Journal.event) list;
      (* winning Finished record per app, stamps preserved, corpus order *)
  mg_crashed : (string * (float option * Journal.event)) list;
      (* winning Crashed record of each quarantined app *)
  mg_missing_shards : int list;
  mg_missing_apps : string list;
  mg_degradations : degradation list;
  mg_cache : (string * string) list;
  mg_expected : int;
}

(* The journal fingerprint of shard K/N is the base configuration
   fingerprint plus ";shard=K/N" (Runner.journal_fingerprint); strip it
   to recover the identity cache keys and the merged envelope use.  The
   suffix is only recognized in the exact trailing shape the runner
   writes, so a base fingerprint never loses legitimate content. *)
let strip_shard config =
  let marker = ";shard=" in
  let mlen = String.length marker in
  let clen = String.length config in
  let parse_kn s =
    match String.index_opt s '/' with
    | None -> None
    | Some j -> (
        match
          ( int_of_string_opt (String.sub s 0 j),
            int_of_string_opt (String.sub s (j + 1) (String.length s - j - 1))
          )
        with
        | Some k, Some n when k >= 1 && k <= n -> Some (k, n)
        | _ -> None)
  in
  let rec find i =
    if i < 0 then None
    else if String.sub config i mlen = marker then Some i
    else find (i - 1)
  in
  match find (clen - mlen) with
  | None -> (config, None)
  | Some i -> (
      match parse_kn (String.sub config (i + mlen) (clen - i - mlen)) with
      | Some kn -> (String.sub config 0 i, Some kn)
      | None -> (config, None))

(* Newest-finished-wins: later stamp beats earlier, a missing stamp
   loses to any stamp, and exact ties go to the later input — the rule
   is total and deterministic, which is what makes re-merging (every
   stamp equal to itself, same input order) a fixed point. *)
let wins ~cand:(s_new, i_new) ~incumbent:(s_old, i_old) =
  let v = function Some s -> s | None -> neg_infinity in
  if v s_new > v s_old then true
  else if v s_new < v s_old then false
  else (i_new : int) >= i_old

type cache_read = Cache_absent | Cache_corrupt | Cache_data of string

let read_cache_entry dir key =
  let path = Filename.concat dir (key ^ ".json") in
  if Sys.file_exists path then
    try
      let raw = In_channel.with_open_text path In_channel.input_all in
      (* Verify the integrity seal: a corrupt entry is a miss, exactly
         as [Store.find] treats it, so merge never splices a damaged
         report into the envelope. *)
      match Store.decode raw with
      | Ok payload -> Cache_data payload
      | Error reason ->
          Log.warn (fun m -> m "%s: corrupt cache entry (%s)" path reason);
          Cache_corrupt
    with Sys_error _ -> Cache_absent
  else Cache_absent

let merge ~(options : Runner.options) ~(entries : Corpus.entry list)
    ~(journals : string list) ?(cache_dirs = []) ?expect_shards () :
    (t, string) result =
  let base = Runner.config_fingerprint options in
  let degradations = ref [] in
  let degrade md_app md_reason md_detail =
    Log.warn (fun m -> m "%s: %s (%s)" md_reason md_detail md_app);
    degradations := { md_app; md_reason; md_detail } :: !degradations
  in
  (* Fold every journal's records into per-app winners.  An unreadable
     or headerless-but-nonempty journal is quarantined; a zero-byte one
     (a shard that died between open and header — the stale-lock shape)
     is an empty shard.  A journal whose base fingerprint differs is a
     usage error: its results were computed under another configuration
     and must not be mixed in silently. *)
  let best : (string, (float option * int) * Journal.event) Hashtbl.t =
    Hashtbl.create 64
  in
  let crashes : (string, (float option * int) * (string * string)) Hashtbl.t =
    Hashtbl.create 16
  in
  let shards_seen = ref [] in
  let declared_n = ref None in
  let config_error = ref None in
  List.iteri
    (fun idx path ->
      match Journal.read_lenient ~path with
      | Error msg -> degrade "" "journal unreadable" (path ^ ": " ^ msg)
      | Ok (None, _, _) ->
          Log.info (fun m -> m "%s: empty journal, treating as empty shard" path)
      | Ok (Some cfg, events, anomalies) ->
          (* Corrupt records are dropped, not trusted: the affected app
             either has a healthy record elsewhere in the shard set or
             surfaces as missing — both are honest shapes. *)
          List.iter
            (fun a ->
              degrade "" "journal record dropped"
                (Fmt.str "%s: %a" path Journal.pp_anomaly a))
            anomalies;
          let cfg_base, shard = strip_shard cfg in
          if cfg_base <> base then begin
            if !config_error = None then
              config_error :=
                Some
                  (Printf.sprintf
                     "%s: journal was written under a different configuration \
                      (%s, merge expects %s); results would not match"
                     path cfg_base base)
          end
          else begin
            Option.iter
              (fun (k, n) ->
                shards_seen := k :: !shards_seen;
                declared_n :=
                  Some (max n (Option.value ~default:0 !declared_n)))
              shard;
            List.iter
              (fun (stamp, ev) ->
                let consider tbl app v =
                  match Hashtbl.find_opt tbl app with
                  | Some (incumbent, _)
                    when not (wins ~cand:(stamp, idx) ~incumbent) ->
                      ()
                  | _ -> Hashtbl.replace tbl app ((stamp, idx), v)
                in
                match ev with
                | Journal.Finished { ev_app; _ } -> consider best ev_app ev
                | Journal.Crashed { ev_app; ev_phase; ev_exn } ->
                    consider crashes ev_app (ev_phase, ev_exn)
                | Journal.Started _ | Journal.Retried _ -> ())
              events
          end)
    journals;
  match !config_error with
  | Some msg -> Error msg
  | None ->
      (* The expected result set: the full corpus' identities, in corpus
         order — the same list every shard computed before filtering, so
         the merged envelope's app order is the unsharded run's. *)
      let identified = Runner.identify entries in
      let missing_apps = ref [] in
      let cache = ref [] in
      let cache_keys = Hashtbl.create 64 in
      let finished = ref [] in
      let crashed = ref [] in
      let lookup_report app key =
        if key = "" then None
        else
          let corrupt = ref [] in
          let rec probe = function
            | [] ->
                List.iter
                  (fun dir ->
                    degrade app "corrupt cache entry quarantined"
                      (Filename.concat dir (key ^ ".json")))
                  (List.rev !corrupt);
                if !corrupt = [] then
                  degrade app "cache entry missing" (key ^ ".json");
                None
            | dir :: rest -> (
                match read_cache_entry dir key with
                | Cache_absent -> probe rest
                | Cache_corrupt ->
                    corrupt := dir :: !corrupt;
                    probe rest
                | Cache_data data -> (
                    (* Validate before trusting: a torn entry (killed
                       mid-write outside the atomic discipline, disk
                       trouble) must quarantine, not propagate. *)
                    match Runner.inspect_report_json data with
                    | Some _ -> Some data
                    | None ->
                        corrupt := dir :: !corrupt;
                        probe rest))
          in
          probe cache_dirs
      in
      let results =
        List.filter_map
          (fun ((id, _) : string * Corpus.entry) ->
            match Hashtbl.find_opt best id with
            | None ->
                missing_apps := id :: !missing_apps;
                None
            | Some
                ( (stamp, _),
                  (Journal.Finished
                     { ev_key; ev_status; ev_cached; ev_attempts; ev_txs; _ }
                   as fev) )
              ->
                let status =
                  match Runner.status_of_name ev_status with
                  | Some s -> s
                  | None -> Runner.Quarantined
                in
                finished := (stamp, fev) :: !finished;
                let crash =
                  match status with
                  | Runner.Quarantined ->
                      let phase, exn_s =
                        match Hashtbl.find_opt crashes id with
                        | Some ((cstamp, _), pe) ->
                            crashed :=
                              ( id,
                                ( cstamp,
                                  Journal.Crashed
                                    {
                                      ev_app = id;
                                      ev_phase = fst pe;
                                      ev_exn = snd pe;
                                    } ) )
                              :: !crashed;
                            pe
                        | None -> ("?", "crash record missing from journal")
                      in
                      Some
                        {
                          Barrier.cr_app = id;
                          cr_exn = exn_s;
                          cr_phase = phase;
                          cr_backtrace = "";
                        }
                  | _ -> None
                in
                let report, degs =
                  match status with
                  | Runner.Quarantined -> (None, [])
                  | _ -> (
                      match lookup_report id ev_key with
                      | None -> (None, [])
                      | Some data ->
                          if not (Hashtbl.mem cache_keys ev_key) then begin
                            Hashtbl.replace cache_keys ev_key ();
                            cache := (ev_key, data) :: !cache
                          end;
                          ( Some data,
                            match Runner.inspect_report_json data with
                            | Some (_, _, ds) -> ds
                            | None -> [] ))
                in
                Some
                  {
                    Runner.ar_app = id;
                    ar_status = status;
                    ar_cached = ev_cached;
                    ar_resumed = false;
                    ar_attempts = ev_attempts;
                    ar_txs = ev_txs;
                    ar_degradations = degs;
                    ar_elapsed_s = 0.0;
                    ar_crash = crash;
                    ar_report_json = report;
                  }
            | Some (_, _) -> None)
          identified
      in
      (* Shard coverage: [expect_shards] is authoritative when given;
         otherwise whatever N the surviving journals declared.  Journals
         with no shard suffix (an unsharded run, a merged journal)
         declare nothing, which is what makes merging a merged journal
         coverage-clean. *)
      let missing_shards =
        match (expect_shards, !declared_n) with
        | None, None -> []
        | Some n, _ | None, Some n ->
            List.filter
              (fun k -> not (List.mem k !shards_seen))
              (List.init n (fun i -> i + 1))
      in
      let run =
        {
          Runner.rn_results = results;
          rn_interrupted = false;
          rn_quarantined =
            List.filter_map
              (fun (a : Runner.app_result) ->
                if a.Runner.ar_status = Runner.Quarantined then
                  Some a.Runner.ar_app
                else None)
              results;
          rn_worker_spans = [];
        }
      in
      Ok
        {
          mg_config = base;
          mg_run = run;
          mg_finished = List.rev !finished;
          mg_crashed = List.rev !crashed;
          mg_missing_shards = missing_shards;
          mg_missing_apps = List.rev !missing_apps;
          mg_degradations = List.rev !degradations;
          mg_cache = List.rev !cache;
          mg_expected = List.length identified;
        }

(* Exit contract (documented in the CLI man page): the code reflects the
   health of the MERGE, not of the merged run — a cleanly merged corpus
   full of degraded apps still exits 0 here (the envelope carries the
   app statuses; --all already reported them live). *)
let exit_code t =
  if t.mg_missing_shards <> [] || t.mg_missing_apps <> [] then 4
  else if t.mg_degradations <> [] then 3
  else 0

(* ------------------------------------------------------------------ *)
(* Outputs                                                            *)
(* ------------------------------------------------------------------ *)

let json_str_list l =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ Json.escape_string s ^ "\"") l) ^ "]"

let report_json t =
  let extra =
    (if t.mg_missing_shards = [] then []
     else
       [
         ( "missing_shards",
           "["
           ^ String.concat "," (List.map string_of_int t.mg_missing_shards)
           ^ "]" );
       ])
    @ (if t.mg_missing_apps = [] then []
       else [ ("missing_apps", json_str_list t.mg_missing_apps) ])
    @
    if t.mg_degradations = [] then []
    else
      [
        ( "merge_degradations",
          "["
          ^ String.concat ","
              (List.map
                 (fun d ->
                   Printf.sprintf
                     "{\"app\":\"%s\",\"reason\":\"%s\",\"detail\":\"%s\"}"
                     (Json.escape_string d.md_app)
                     (Json.escape_string d.md_reason)
                     (Json.escape_string d.md_detail))
                 t.mg_degradations)
          ^ "]" );
      ]
  in
  Runner.report_json ~extra ~config:t.mg_config t.mg_run

(* The merged journal: a header under the BASE fingerprint (no shard
   suffix — the merged artifact covers the whole corpus) followed by one
   Crashed record per quarantined app and one Finished record per app,
   in corpus order, every stamp carried over from the winning shard
   record.  The result reads back exactly like a runner-written journal
   — stats accepts it, and a further merge over it reproduces the same
   envelope (the idempotency the shard_check rule enforces). *)
let journal_contents t =
  let buf = Buffer.create 4096 in
  let add ?stamp ev =
    Buffer.add_string buf (Journal.line_of_event ?stamp ev);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (Journal.header_line ~config:t.mg_config ());
  Buffer.add_char buf '\n';
  List.iter
    (fun (stamp, ev) ->
      (match ev with
      | Journal.Finished { ev_app; ev_status; _ }
        when ev_status = Runner.status_name Runner.Quarantined -> (
          (* Replay the crash before its Finished record, as the live
             runner journals them, so --resume and stats recover the
             crash phase/exn from the merged journal too. *)
          match List.assoc_opt ev_app t.mg_crashed with
          | Some (cstamp, cev) -> add ?stamp:cstamp cev
          | None -> ())
      | _ -> ());
      add ?stamp ev)
    t.mg_finished;
  Buffer.contents buf

(* Union of the shards' metrics snapshots: parse each exported JSON back
   into samples and fold them through Metrics.merge_samples — the same
   commutative union the pool coordinator applies to worker deltas, so
   N shard snapshots merge exactly like N workers' shipments. *)
let sample_of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  match (str "name", str "kind") with
  | Some sa_name, Some kind ->
      let sa_kind =
        match kind with
        | "counter" -> Some `Counter
        | "gauge" -> Some `Gauge
        | "histogram" -> Some `Histogram
        | _ -> None
      in
      Option.map
        (fun sa_kind ->
          let sa_labels =
            match Json.member "labels" j with
            | Some (Json.Obj fields) ->
                List.filter_map
                  (function k, Json.Str v -> Some (k, v) | _ -> None)
                  fields
            | _ -> []
          in
          let sa_buckets =
            match Json.member "buckets" j with
            | Some (Json.List bs) ->
                List.filter_map
                  (fun b ->
                    let bound =
                      match Json.member "le" b with
                      | Some (Json.Float f) -> Some f
                      | Some (Json.Int n) -> Some (float_of_int n)
                      | Some (Json.Str "+inf") -> Some infinity
                      | _ -> None
                    in
                    let n =
                      match Json.member "n" b with
                      | Some (Json.Int n) -> Some n
                      | _ -> None
                    in
                    match (bound, n) with
                    | Some le, Some n -> Some (le, n)
                    | _ -> None)
                  bs
            | _ -> []
          in
          {
            Metrics.sa_name;
            sa_kind;
            sa_help = "";
            sa_labels;
            sa_count =
              (match Json.member "count" j with
              | Some (Json.Int n) -> n
              | _ -> 0);
            sa_sum = Option.value ~default:0.0 (num "sum");
            sa_buckets;
          })
        sa_kind
  | _ -> None

let samples_of_metrics_json contents =
  match Json.of_string_opt contents with
  | None -> Error "metrics file is not valid JSON"
  | Some j -> (
      match Json.member "metrics" j with
      | Some (Json.List series) -> Ok (List.filter_map sample_of_json series)
      | _ -> Error "metrics file has no metrics[] series")

let merge_metrics paths : (string, string) result =
  let registry = Metrics.create ~enabled:true () in
  let rec fold = function
    | [] -> Ok (Export.metrics_json registry)
    | path :: rest -> (
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg -> Error msg
        | contents -> (
            match samples_of_metrics_json contents with
            | Error msg -> Error (path ^ ": " ^ msg)
            | Ok samples ->
                Metrics.merge_samples registry samples;
                fold rest))
  in
  fold paths
