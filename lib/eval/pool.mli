(** Fork-based worker pool for corpus execution.

    The paper's evaluation axis is per-app independence: every corpus
    entry is analyzed in isolation behind its own fault barrier, so the
    natural parallelism is one app per worker process.  [run] forks
    [jobs] workers, dispatches task indices over pipes, and streams
    each worker's events and result back to the coordinator.

    Division of labor:
    - the {b coordinator} (calling process) owns every shared mutable
      resource — the journal, the metrics registry, the report — and is
      the only process that appends to them;
    - {b workers} are forked copies that run [worker] on one task at a
      time and report back over their result pipe: zero or more [emit]
      events (journaled by the coordinator in arrival order) followed by
      the task's result, and — on clean shutdown — one [farewell]
      payload carrying whatever telemetry the worker buffered after its
      last result, so nothing recorded between tasks dies with the
      process.

    Fault containment mirrors the in-process barrier: a worker that dies
    (signal, [_exit], kill-point) costs only its in-flight task — the
    coordinator synthesizes a result for it via [on_death] and respawns
    a replacement while other workers keep running.  Two control paths
    cross the pool the same way they cross
    {!Extr_resilience.Resilience.Barrier.protect}: a worker exiting with
    code 99 (an injected kill-point) makes the coordinator kill the
    remaining workers and re-raise [Barrier.Killed 99], and
    [Barrier.Interrupted] raised in the coordinator (SIGINT/SIGTERM)
    terminates the workers and returns [Interrupted].

    The coordinator doubles as the scheduler's own instrument panel: it
    records dispatch latency, per-worker busy/idle time, queue depth,
    spawn/death/respawn counts into {!Extr_telemetry.Metrics.default}
    (series under [pool.*]), timed by the injectable [clock] so tests
    can pin them. *)

type outcome = Completed | Interrupted

type death_cause =
  | Died of string
      (** the classic worker death: signal, [_exit], lost pipe —
          [string] is the reaped wait status, human-readable *)
  | Hung of { hd_phase : string; hd_silent_s : float }
      (** the watchdog SIGKILLed the worker after [hd_silent_s] seconds
          of silence, with [hd_phase] the pipeline phase of its last
          heartbeat — and the task had already spent its one requeue *)

val default_jobs : unit -> int
(** The host's recommended parallelism
    ([Domain.recommended_domain_count]), at least 1.  The CLI's
    [--jobs 0] resolves to this. *)

val run :
  ?deps:(int -> int list) ->
  ?clock:Extr_telemetry.Clock.t ->
  ?on_state:(busy:int -> idle:int -> pending:int -> unit) ->
  ?hang_timeout:float ->
  ?on_hang:(task:int -> phase:string -> unit) ->
  jobs:int ->
  tasks:int list ->
  worker:(emit:('e -> unit) -> beat:(phase:string -> unit) -> int -> 'r) ->
  farewell:(unit -> 'f) ->
  on_event:('e -> unit) ->
  on_bye:('f -> unit) ->
  on_death:(task:int -> cause:death_cause -> 'r) ->
  on_result:(int -> 'r -> unit) ->
  unit ->
  outcome
(** [run ~jobs ~tasks ~worker ~farewell ~on_event ~on_bye ~on_death
    ~on_result ()] forks up to [min jobs (List.length tasks)] workers
    and runs [worker ~emit i] in a child process for every [i] in
    [tasks], dispatching dynamically (a worker takes the next pending
    task as soon as it finishes one).

    [deps i] lists task indices that must resolve (result delivered, or
    written off by a worker death) before [i] may be dispatched — the
    runner uses this to serialize corpus entries that share a cache key,
    so intra-run cache hits land on the same entries as a sequential
    run.  Indices not in [tasks] are treated as already resolved.
    Dependencies must be acyclic; tasks are otherwise started in [tasks]
    order as workers free up.

    In the coordinator, [on_event] fires for every event a worker
    [emit]ted, in per-worker send order; [on_result i r] fires once per
    task, in completion order — the caller reorders if it needs corpus
    order.  When a worker is told to quit it evaluates [farewell ()]
    in the child and ships the value back as its last frame; [on_bye]
    fires for it in the coordinator before [run] returns.  Workers that
    die instead of quitting send no farewell — [on_bye] fires zero or
    one time per worker, only on the clean path.  Events, results and
    farewells are framed [Marshal] messages, so ['e], ['r] and ['f]
    must be closure-free.

    [on_state ~busy ~idle ~pending] fires in the coordinator after
    every scheduling event (dispatch, task resolution, worker death)
    with the pool's current shape — live workers running a task, live
    workers awaiting one, and tasks not yet dispatched.  Callbacks must
    be fast; they run inside the select loop.  [clock] (default: wall)
    times the [pool.*] scheduler metrics and the watchdog.

    {b Watchdog.}  The select loop runs on a bounded, EINTR-safe tick
    (timeout/4 when a watchdog is armed, clamped to [0.02..0.5]s; 0.5s
    otherwise), never an unbounded block.  The worker wrapper's [beat]
    callback ships a heartbeat frame carrying the current pipeline
    phase; any frame (heartbeat, event, result) refreshes the worker's
    last-seen stamp.  With [hang_timeout] set, a busy worker silent
    longer than the timeout is SIGKILLed (counted in ["pool.hangs"])
    and its task is requeued {e once} ([on_hang ~task ~phase] fires,
    ["pool.hangs.requeued"] counts); if a replacement worker hangs on
    the same task, the task resolves through [on_death] with
    [Hung {hd_phase; hd_silent_s}] so the caller can quarantine it
    under a [hung\@PHASE] taxonomy distinct from crashes.  Detection
    latency is at most [hang_timeout + tick], i.e. well within 2x the
    timeout.  The clean-shutdown [Up_bye] collection honors the same
    discipline: a worker wedged between [Down_quit] and EOF is killed
    after the timeout (10s when no watchdog is armed) instead of
    hanging the run.

    A worker death with a task in flight synthesizes that task's result
    via [on_death] (after delivering any events the worker sent first)
    and respawns a worker if tasks are still pending.  Exit code 99
    propagates as [Barrier.Killed 99] (see module doc).  Workers ignore
    SIGINT and die on SIGTERM, so an operator ^C interrupts the
    coordinator only; it then terminates the pool and returns
    [Interrupted] — results already handed to [on_result] stand, the
    rest are abandoned exactly like the sequential runner's interrupt
    path. *)
