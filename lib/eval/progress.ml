(* Live progress for --all: a heartbeat over the runner's observer
   hooks.  Pure state machine over injected events and an injected
   clock; rendering goes through an [emit] callback, so tests drive it
   with a fake clock and capture the output without a terminal. *)

module Journal = Extr_resilience.Journal
module Clock = Extr_telemetry.Clock

type mode = Tty | Lines

type t = {
  pg_clock : Clock.t;
  pg_mode : mode;
  pg_emit : string -> unit;
  pg_min_interval_s : float;  (* Lines-mode rate limit *)
  pg_total : int;
  (* ETA inputs: when each in-flight app started (receipt-time clock —
     the same instant the journal stamps), and how long finished apps
     took.  Cached and resumed apps never produce a Started record, so
     they don't pollute the per-app average. *)
  pg_started : (string, float) Hashtbl.t;
  mutable pg_durations_sum : float;
  mutable pg_durations_n : int;
  mutable pg_done : int;
  mutable pg_ok : int;
  mutable pg_degraded : int;
  mutable pg_quarantined : int;
  mutable pg_hung : int;  (* quarantines the watchdog caused (hung@PHASE) *)
  mutable pg_cached : int;
  mutable pg_busy : int;
  mutable pg_idle : int;
  mutable pg_pending : int;
  mutable pg_have_state : bool;  (* the pool reported at least once *)
  mutable pg_last_render : float;
  mutable pg_dirty : bool;  (* something changed since the last render *)
}

let create ?(clock = Clock.wall) ?(min_interval_s = 2.0) ~mode ~total ~emit ()
    =
  {
    pg_clock = clock;
    pg_mode = mode;
    pg_emit = emit;
    pg_min_interval_s = min_interval_s;
    pg_total = total;
    pg_started = Hashtbl.create 16;
    pg_durations_sum = 0.0;
    pg_durations_n = 0;
    pg_done = 0;
    pg_ok = 0;
    pg_degraded = 0;
    pg_quarantined = 0;
    pg_hung = 0;
    pg_cached = 0;
    pg_busy = 0;
    pg_idle = 0;
    pg_pending = 0;
    pg_have_state = false;
    pg_last_render = neg_infinity;
    pg_dirty = false;
  }

(* ETA: mean per-app wall time so far, spread over the remaining apps
   and divided by the effective parallelism.  [None] until one app has
   finished end to end (a run of pure cache hits never has an estimate —
   better none than nonsense). *)
let eta_s t =
  if t.pg_durations_n = 0 then None
  else
    let avg = t.pg_durations_sum /. float_of_int t.pg_durations_n in
    let remaining = max 0 (t.pg_total - t.pg_done) in
    let width =
      if t.pg_have_state then max 1 t.pg_busy
      else 1 (* sequential run: no pool state, width 1 *)
    in
    Some (avg *. float_of_int remaining /. float_of_int width)

let pp_eta fmt = function
  | None -> Fmt.pf fmt "--"
  | Some s when s >= 3600.0 -> Fmt.pf fmt "%.1fh" (s /. 3600.0)
  | Some s when s >= 60.0 -> Fmt.pf fmt "%.1fm" (s /. 60.0)
  | Some s -> Fmt.pf fmt "%.0fs" s

let line t =
  let workers =
    if t.pg_have_state then
      Fmt.str " | workers %d busy/%d idle, %d queued" t.pg_busy t.pg_idle
        t.pg_pending
    else ""
  in
  (* The hung segment appears only when the watchdog actually fired, so
     the common line is unchanged. *)
  let hung = if t.pg_hung > 0 then Fmt.str ", %d hung" t.pg_hung else "" in
  Fmt.str "[%d/%d] %d ok, %d degraded, %d quarantined%s, %d cached%s | eta %a"
    t.pg_done t.pg_total t.pg_ok t.pg_degraded t.pg_quarantined hung
    t.pg_cached workers pp_eta (eta_s t)

let render ?(force = false) t =
  if t.pg_dirty then begin
    let now = t.pg_clock () in
    match t.pg_mode with
    | Tty ->
        (* One rewriting status line: carriage return, text,
           erase-to-end-of-line (the previous line may have been
           longer). *)
        t.pg_emit ("\r" ^ line t ^ "\x1b[K");
        t.pg_last_render <- now;
        t.pg_dirty <- false
    | Lines ->
        (* No terminal to rewrite: periodic structured lines, rate
           limited so a fast corpus doesn't flood a CI log. *)
        if force || now -. t.pg_last_render >= t.pg_min_interval_s then begin
          t.pg_emit ("progress: " ^ line t ^ "\n");
          t.pg_last_render <- now;
          t.pg_dirty <- false
        end
  end

let on_journal t ev =
  (match ev with
  | Journal.Started { ev_app; ev_attempt = 1; _ } ->
      Hashtbl.replace t.pg_started ev_app (t.pg_clock ())
  | Journal.Finished { ev_app; _ } -> (
      match Hashtbl.find_opt t.pg_started ev_app with
      | Some t0 ->
          Hashtbl.remove t.pg_started ev_app;
          t.pg_durations_sum <- t.pg_durations_sum +. (t.pg_clock () -. t0);
          t.pg_durations_n <- t.pg_durations_n + 1
      | None -> ())
  | Journal.Crashed { ev_phase; _ }
    when String.length ev_phase >= 5 && String.sub ev_phase 0 5 = "hung@" ->
      t.pg_hung <- t.pg_hung + 1
  | Journal.Started _ | Journal.Retried _ | Journal.Crashed _ -> ());
  t.pg_dirty <- true;
  render t

let on_result t (r : Runner.app_result) =
  t.pg_done <- t.pg_done + 1;
  (match r.Runner.ar_status with
  | Runner.Ok -> t.pg_ok <- t.pg_ok + 1
  | Runner.Degraded -> t.pg_degraded <- t.pg_degraded + 1
  | Runner.Quarantined -> t.pg_quarantined <- t.pg_quarantined + 1);
  if r.Runner.ar_cached then t.pg_cached <- t.pg_cached + 1;
  t.pg_dirty <- true;
  render t

let on_state t ~busy ~idle ~pending =
  t.pg_have_state <- true;
  t.pg_busy <- busy;
  t.pg_idle <- idle;
  t.pg_pending <- pending;
  t.pg_dirty <- true;
  render t

let finish t =
  match t.pg_mode with
  | Tty ->
      (* Clear the status line; the summary table footer replaces it. *)
      t.pg_emit "\r\x1b[K"
  | Lines ->
      t.pg_dirty <- true;
      render ~force:true t
