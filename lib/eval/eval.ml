(* Evaluation metrics (§5): coverage per method and baseline, signature
   counts, constant-keyword counts, matched-byte accounting, and signature
   validity against captured traffic. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml
module Uri = Extr_httpmodel.Uri
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Report = Extr_extractocol.Report
module Pipeline = Extr_extractocol.Pipeline
module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus
module Codegen = Extr_corpus.Codegen
module Fuzz = Extr_fuzz.Fuzz
module Slicer = Extr_slicing.Slicer
module Txn = Extr_extractocol.Txn
module Metrics = Extr_telemetry.Metrics
module Resilience = Extr_resilience.Resilience

(** One fully evaluated app: the static report plus the three dynamic
    baselines' traces. *)
type app_eval = {
  ae_app : Spec.app;
  ae_report : Report.t;
  ae_auto : Http.trace;
  ae_manual : Http.trace;
  ae_full : Http.trace;
  ae_row : Extr_corpus.Synth.row option;
}

(** Run the full evaluation for one corpus entry: static analysis with the
    §5.1 configuration (async heuristic off for open-source apps, on for
    closed-source) and the three fuzzing baselines. *)
let evaluate (entry : Corpus.entry) : app_eval =
  let app = entry.Corpus.c_app in
  let apk = Lazy.force entry.Corpus.c_apk in
  let options =
    if app.Spec.a_closed then Pipeline.default_options
    else Pipeline.open_source_options
  in
  let analysis = Pipeline.analyze ~options apk in
  {
    ae_app = app;
    ae_report = analysis.Pipeline.an_report;
    ae_auto = Fuzz.run app apk ~policy:`Auto;
    ae_manual = Fuzz.run app apk ~policy:`Manual;
    ae_full = Fuzz.run app apk ~policy:`Full;
    ae_row = entry.Corpus.c_row;
  }

(* ------------------------------------------------------------------ *)
(* Coverage per method (Table 1)                                       *)
(* ------------------------------------------------------------------ *)

let static_method_count (ae : app_eval) (m : Http.meth) =
  List.length (Report.requests_by_method ae.ae_report m)

(** Unique endpoints of a given method observed in a trace. *)
let trace_method_count (ae : app_eval) (trace : Http.trace) (m : Http.meth) =
  Fuzz.observed_endpoints trace
  |> List.filter (fun id ->
         match Spec.find_endpoint ae.ae_app id with
         | Some e -> e.Spec.e_meth = m
         | None -> false)
  |> List.length

(** Source-truth counts per method: every endpoint present in the code,
    the third Table-1 series for open-source apps. *)
let source_method_count (ae : app_eval) (m : Http.meth) =
  List.length
    (List.filter (fun (e : Spec.endpoint) -> e.Spec.e_meth = m)
       ae.ae_app.Spec.a_endpoints)

type coverage_row = {
  cr_app : string;
  cr_static : int * int * int * int;  (** GET POST PUT DELETE *)
  cr_manual : int * int * int * int;
  cr_auto : int * int * int * int;
  cr_pairs : int;
}

let coverage (ae : app_eval) : coverage_row =
  let counts f = (f Http.GET, f Http.POST, f Http.PUT, f Http.DELETE) in
  {
    cr_app = ae.ae_app.Spec.a_name;
    cr_static = counts (static_method_count ae);
    cr_manual = counts (trace_method_count ae ae.ae_manual);
    cr_auto =
      (* Closed-source apps have no source: the paper's third series is
         automatic fuzzing there, source truth on the open block. *)
      (if ae.ae_app.Spec.a_closed then
         counts (trace_method_count ae ae.ae_auto)
       else counts (source_method_count ae));
    cr_pairs = List.length (Report.paired ae.ae_report);
  }

(* ------------------------------------------------------------------ *)
(* Signature counts (Figure 6)                                        *)
(* ------------------------------------------------------------------ *)

type sig_counts = { sc_uri : int; sc_request : int; sc_response : int }

(** Unique signature counts in the static report: URIs, request
    bodies/query strings, and response bodies. *)
let static_sig_counts (ae : app_eval) : sig_counts =
  let txs = ae.ae_report.Report.rp_transactions in
  let uris =
    List.map (fun tr -> Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri) txs
    |> List.sort_uniq compare
  in
  let reqs =
    List.filter_map
      (fun tr ->
        match Report.request_body_kind tr with
        | Some _ ->
            Some
              (Fmt.str "%a|%s" Msgsig.pp_body_sig tr.Report.tr_request.Msgsig.rs_body
                 (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri))
        | None -> None)
      txs
    |> List.sort_uniq compare
  in
  let resps =
    List.filter_map
      (fun tr ->
        match Report.response_body_kind tr with
        | Some _ -> Some (Fmt.str "%a" Msgsig.pp_body_sig tr.Report.tr_response.Msgsig.ps_body)
        | None -> None)
      txs
    |> List.sort_uniq compare
  in
  { sc_uri = List.length uris; sc_request = List.length reqs; sc_response = List.length resps }

(** Unique message counts observed in a trace. *)
let trace_sig_counts (ae : app_eval) (trace : Http.trace) : sig_counts =
  let eps = Fuzz.observed_endpoints trace in
  let find id = Spec.find_endpoint ae.ae_app id in
  let with_req =
    List.filter
      (fun id ->
        match find id with
        | Some e -> e.Spec.e_body <> Spec.Bnone || e.Spec.e_query <> []
        | None -> false)
      eps
  in
  let with_resp =
    (* Traffic-derived signatures cluster by shape, like the other two
       series: wire bodies carrying the same key structure collapse. *)
    List.filter_map
      (fun id ->
        match find id with
        | Some e when Spec.has_processed_response e ->
            let kind =
              match e.Spec.e_resp with
              | Spec.Rjson _ -> "json"
              | Spec.Rxml (root, _) -> "xml:" ^ root
              | Spec.Rtext -> "text"
              | Spec.Rnone | Spec.Rmedia -> "none"
            in
            (* On the wire every field is visible, read or not. *)
            Some (kind, Spec.response_keywords ~only_read:false e)
        | Some _ | None -> None)
      eps
    |> List.sort_uniq compare
  in
  {
    sc_uri = List.length eps;
    sc_request = List.length with_req;
    sc_response = List.length with_resp;
  }

(** Ground-truth counts from the spec (the "source code" bar of Figure 6,
    open-source apps). *)
let source_sig_counts (ae : app_eval) : sig_counts =
  let eps = Spec.statically_visible ae.ae_app in
  {
    sc_uri = List.length eps;
    sc_request =
      List.length
        (List.filter (fun e -> e.Spec.e_body <> Spec.Bnone || e.Spec.e_query <> []) eps);
    sc_response =
      (* Unique shapes, as the static and traffic series count them:
         endpoints answering with the same parsed structure (radio
         reddit's save and vote, Diode's listing variants) share one
         response signature. *)
      List.filter Spec.has_processed_response eps
      |> List.map (fun (e : Spec.endpoint) ->
             let kind =
               match e.Spec.e_resp with
               | Spec.Rjson _ -> "json"
               | Spec.Rxml (root, _) -> "xml:" ^ root
               | Spec.Rtext -> "text"
               | Spec.Rnone | Spec.Rmedia -> "none"
             in
             (kind, Spec.response_keywords ~only_read:true e))
      |> List.sort_uniq compare |> List.length;
  }

(* ------------------------------------------------------------------ *)
(* Keyword counts (Figure 7)                                          *)
(* ------------------------------------------------------------------ *)

type keyword_counts = { kc_request : int; kc_response : int }

(** Constant keywords in the static signatures (request bodies/query
    strings and response bodies), counted per app as distinct keyword
    occurrences per transaction — the paper counts keywords identified,
    summed over apps. *)
let static_keywords (ae : app_eval) : keyword_counts =
  let txs = ae.ae_report.Report.rp_transactions in
  let req =
    List.concat_map
      (fun tr -> Msgsig.request_body_keywords tr.Report.tr_request)
      txs
    |> List.sort_uniq compare
  in
  let resp =
    List.concat_map
      (fun tr -> Msgsig.body_keywords tr.Report.tr_response.Msgsig.ps_body)
      txs
    |> List.sort_uniq compare
  in
  { kc_request = List.length req; kc_response = List.length resp }

let body_keywords (b : Http.body) =
  match b with
  | Http.Query kvs -> List.map fst kvs
  | Http.Json j -> Json.distinct_keys j
  | Http.Xml e -> Xml.distinct_keywords e
  | Http.No_body | Http.Text _ | Http.Binary _ -> []

(** Keywords actually appearing in captured traffic. *)
let trace_keywords (trace : Http.trace) : keyword_counts =
  let entries = trace.Http.tr_entries in
  let req =
    List.concat_map
      (fun (te : Http.trace_entry) ->
        let r = te.Http.te_tx.Http.tx_request in
        List.map fst r.Http.req_uri.Uri.query @ body_keywords r.Http.req_body)
      entries
    |> List.sort_uniq compare
  in
  let resp =
    List.concat_map
      (fun (te : Http.trace_entry) ->
        body_keywords te.Http.te_tx.Http.tx_response.Http.resp_body)
      entries
    |> List.sort_uniq compare
  in
  { kc_request = List.length req; kc_response = List.length resp }

(** Ground-truth keywords from the spec. *)
let source_keywords (ae : app_eval) : keyword_counts =
  let eps = Spec.statically_visible ae.ae_app in
  let req = List.concat_map Spec.request_keywords eps |> List.sort_uniq compare in
  let resp =
    List.concat_map (Spec.response_keywords ~only_read:true) eps
    |> List.sort_uniq compare
  in
  { kc_request = List.length req; kc_response = List.length resp }

(* ------------------------------------------------------------------ *)
(* Signature validity and byte accounting (§5.1, Table 2)              *)
(* ------------------------------------------------------------------ *)

(** Find the static transaction whose request signature matches a captured
    request. *)
let match_request (ae : app_eval) (req : Http.request) : Report.transaction option =
  List.find_opt
    (fun tr -> Msgsig.request_matches tr.Report.tr_request req)
    ae.ae_report.Report.rp_transactions

(** Fraction of captured transactions (from endpoints the analysis
    supports) whose requests match a static signature. *)
let signature_validity (ae : app_eval) (trace : Http.trace) : int * int =
  let supported (te : Http.trace_entry) =
    match
      Http.header "x-endpoint" te.Http.te_tx.Http.tx_response.Http.resp_headers
    with
    | Some id -> (
        match Spec.find_endpoint ae.ae_app id with
        | Some e -> e.Spec.e_supported
        | None -> false)
    | None -> false
  in
  let entries = List.filter supported trace.Http.tr_entries in
  let matched =
    List.filter
      (fun (te : Http.trace_entry) ->
        match_request ae te.Http.te_tx.Http.tx_request <> None)
      entries
  in
  (List.length matched, List.length entries)

type byte_account = { ba_k : int; ba_v : int; ba_n : int }

let zero_account = { ba_k = 0; ba_v = 0; ba_n = 0 }

let add_account a (k, v, n) = { ba_k = a.ba_k + k; ba_v = a.ba_v + v; ba_n = a.ba_n + n }

(** Accumulate Table-2 byte accounting over a trace: request body/query
    bytes and response body bytes classified as constant-matched (R_k),
    value-of-known-key (R_v) or fully unknown (R_n). *)
let byte_accounting (ae : app_eval) (trace : Http.trace) :
    byte_account * byte_account =
  List.fold_left
    (fun (req_acc, resp_acc) (te : Http.trace_entry) ->
      match match_request ae te.Http.te_tx.Http.tx_request with
      | None -> (req_acc, resp_acc)
      | Some tr ->
          let req = te.Http.te_tx.Http.tx_request in
          let resp = te.Http.te_tx.Http.tx_response in
          let req_acc =
            match req.Http.req_body with
            | Http.No_body -> (
                (* Query strings in the URI count as the request's
                   query-string content. *)
                match req.Http.req_uri.Uri.query with
                | [] -> req_acc
                | q ->
                    add_account req_acc
                      (Msgsig.body_byte_account
                         (Msgsig.Bquery
                            (match tr.Report.tr_request.Msgsig.rs_body with
                            | Msgsig.Bquery pairs -> pairs
                            | _ ->
                                (* derive pairs from the URI signature *)
                                List.map (fun (k, _) -> (k, Strsig.unknown))
                                  (List.filter
                                     (fun (k, _) ->
                                       List.mem k
                                         (Msgsig.uri_query_keywords
                                            tr.Report.tr_request.Msgsig.rs_uri))
                                     q)))
                         (Http.Query q)))
            | body ->
                add_account req_acc
                  (Msgsig.body_byte_account tr.Report.tr_request.Msgsig.rs_body body)
          in
          let resp_acc =
            match resp.Http.resp_body with
            | Http.No_body | Http.Binary _ -> resp_acc
            | body ->
                add_account resp_acc
                  (Msgsig.body_byte_account tr.Report.tr_response.Msgsig.ps_body body)
          in
          (req_acc, resp_acc))
    (zero_account, zero_account) trace.Http.tr_entries

let account_percentages (a : byte_account) =
  let total = a.ba_k + a.ba_v + a.ba_n in
  if total = 0 then (0., 0., 0.)
  else
    ( 100. *. float_of_int a.ba_k /. float_of_int total,
      100. *. float_of_int a.ba_v /. float_of_int total,
      100. *. float_of_int a.ba_n /. float_of_int total )

(* ------------------------------------------------------------------ *)
(* Miss diagnosis: which phase lost each uncovered endpoint            *)
(* ------------------------------------------------------------------ *)

type miss_phase =
  | No_dp_found
  | Slice_pruned
  | Interp_bailed
  | Pairing_failed
  | Budget_exhausted

let miss_phase_name = function
  | No_dp_found -> "no-dp-found"
  | Slice_pruned -> "slice-pruned"
  | Interp_bailed -> "interp-bailed"
  | Pairing_failed -> "pairing-failed"
  | Budget_exhausted -> "budget-exhausted"

type miss = {
  ms_endpoint : string;
  ms_meth : Http.meth;
  ms_phase : miss_phase;
  ms_detail : string;
}

type miss_report = {
  mr_app : string;
  mr_total : int;  (** source-truth endpoints *)
  mr_covered : int;
  mr_misses : miss list;
}

let m_missed =
  Metrics.counter
    ~help:"source-truth endpoints absent from the static report (app, phase)"
    "eval.missed_endpoints"

(** The captured request for an endpoint, if it fired during the trace
    (the synthetic server tags every response with its endpoint id). *)
let endpoint_request (trace : Http.trace) (e : Spec.endpoint) :
    Http.request option =
  List.find_map
    (fun (te : Http.trace_entry) ->
      match
        Http.header "x-endpoint" te.Http.te_tx.Http.tx_response.Http.resp_headers
      with
      | Some id when id = e.Spec.e_id -> Some te.Http.te_tx.Http.tx_request
      | Some _ | None -> None)
    trace.Http.tr_entries

(** Does the statement sit in code generated for this endpoint — the
    activity's do_<id> method or one of the endpoint's helper classes? *)
let stmt_owned (app : Spec.app) (e : Spec.endpoint) (sid : Ir.stmt_id) : bool =
  let m = sid.Ir.sid_meth in
  (m.Ir.id_cls = Codegen.activity_cls app && m.Ir.id_name = Codegen.do_meth e)
  || List.mem m.Ir.id_cls (Codegen.endpoint_classes app e)

(** Walk the pipeline back to front for one missed endpoint and name the
    first phase whose output no longer carries it. *)
let diagnose_endpoint (analysis : Pipeline.analysis) (app : Spec.app)
    (req : Http.request option) (e : Spec.endpoint) : miss_phase * string =
  let slices = analysis.Pipeline.an_slices in
  (* Did the named phase bail on a sticky trip (fuel / deadline)?  Depth
     clipping is excluded: it happens on well-formed apps at the default
     bound and does not explain a wholesale miss. *)
  let budget_tripped_in prefix =
    List.exists
      (fun (d : Resilience.Degrade.degradation) ->
        let p = d.Resilience.Degrade.dg_phase in
        String.length p >= String.length prefix
        && String.sub p 0 (String.length prefix) = prefix
        && (d.Resilience.Degrade.dg_reason = "step-budget-exhausted"
           || d.Resilience.Degrade.dg_reason = "deadline-exceeded"))
      analysis.Pipeline.an_report.Report.rp_degradations
  in
  let owned = stmt_owned app e in
  let touches (sl : Slicer.slice) =
    owned sl.Slicer.sl_dp.Slicer.dp_stmt
    || Ir.Stmt_set.exists owned sl.Slicer.sl_stmts
  in
  let req_reached = List.exists touches slices.Slicer.r_request in
  let resp_reached = List.exists touches slices.Slicer.r_response in
  if (not req_reached) && not resp_reached then
    if budget_tripped_in "slicing" then
      ( Budget_exhausted,
        "no slice reaches the endpoint, and slicing bailed on an exhausted \
         budget before its worklist drained — the slice is truncated, not \
         absent by construction" )
    else
      ( No_dp_found,
        Fmt.str "no demarcation point or slice reaches %s.%s"
          (Codegen.activity_cls app) (Codegen.do_meth e) )
  else if not req_reached then
    if budget_tripped_in "slicing.backward" then
      ( Budget_exhausted,
        "a response slice reaches the endpoint but backward slicing bailed \
         on an exhausted budget before covering its URI construction" )
    else
      ( Slice_pruned,
        "a response slice reaches the endpoint but no backward request slice \
         covers its URI construction" )
  else
    let raw_match =
      match req with
      | None -> false
      | Some r ->
          List.exists
            (fun tx -> Msgsig.request_matches (Txn.request_sig tx) r)
            analysis.Pipeline.an_txs
    in
    if raw_match then
      ( Pairing_failed,
        "a raw transaction matches the captured request but the paired, \
         deduplicated report lost it" )
    else if not e.Spec.e_supported then
      ( Interp_bailed,
        Fmt.str
          "request dispatched through intent service %s: outside the \
           interpreter's scope (§4)"
          (List.nth (Codegen.endpoint_classes app e) 5) )
    else if budget_tripped_in "interpretation" then
      ( Budget_exhausted,
        "sliced, but interpretation bailed on an exhausted budget before \
         emitting a matching transaction — signatures past the trip point \
         were never built" )
    else
      ( Interp_bailed,
        match req with
        | None ->
            "sliced, but the endpoint never fired under full fuzzing so no \
             captured request can confirm a signature"
        | Some _ ->
            "sliced, but no raw transaction's request signature matches the \
             captured request" )

(** Attribute every source-truth endpoint absent from the static report to
    the phase that lost it.  Each miss also bumps the
    ["eval.missed_endpoints"] counter (labels [app] and [phase]) so the
    per-phase counts flow through the metrics exporters. *)
let diagnose (analysis : Pipeline.analysis) (trace : Http.trace)
    (app : Spec.app) : miss_report =
  let report = analysis.Pipeline.an_report in
  let covered r =
    List.exists
      (fun tr -> Msgsig.request_matches tr.Report.tr_request r)
      report.Report.rp_transactions
  in
  let misses, covered_n =
    List.fold_left
      (fun (misses, n) (e : Spec.endpoint) ->
        let req = endpoint_request trace e in
        match req with
        | Some r when covered r -> (misses, n + 1)
        | _ ->
            let phase, detail = diagnose_endpoint analysis app req e in
            if Metrics.is_enabled Metrics.default then
              Metrics.incr m_missed
                ~labels:
                  [
                    ("app", app.Spec.a_name); ("phase", miss_phase_name phase);
                  ];
            ( {
                ms_endpoint = e.Spec.e_id;
                ms_meth = e.Spec.e_meth;
                ms_phase = phase;
                ms_detail = detail;
              }
              :: misses,
              n ))
      ([], 0) app.Spec.a_endpoints
  in
  {
    mr_app = app.Spec.a_name;
    mr_total = List.length app.Spec.a_endpoints;
    mr_covered = covered_n;
    mr_misses = List.rev misses;
  }

(** Analyze a corpus entry under the §5.1 configuration, fuzz it under the
    full policy, and diagnose every coverage miss. *)
let diagnose_misses (entry : Corpus.entry) : miss_report =
  let app = entry.Corpus.c_app in
  let apk = Lazy.force entry.Corpus.c_apk in
  let options =
    if app.Spec.a_closed then Pipeline.default_options
    else Pipeline.open_source_options
  in
  let analysis = Pipeline.analyze ~options apk in
  let trace = Fuzz.run app apk ~policy:`Full in
  diagnose analysis trace app

let pp_miss_report fmt (mr : miss_report) =
  Fmt.pf fmt "%s: %d/%d endpoints covered@." mr.mr_app mr.mr_covered
    mr.mr_total;
  List.iter
    (fun m ->
      Fmt.pf fmt "  miss %-12s %-6s %-14s %s@." m.ms_endpoint
        (Http.meth_to_string m.ms_meth)
        (miss_phase_name m.ms_phase)
        m.ms_detail)
    mr.mr_misses
