(* Fork-based worker pool.  See the .mli for the coordinator/worker
   contract; this file is the plumbing: framed Marshal IPC over pipes, a
   select loop, and careful fd/signal hygiene around fork. *)

module Barrier = Extr_resilience.Resilience.Barrier
module Fault = Extr_resilience.Fault
module Metrics = Extr_telemetry.Metrics
module Clock = Extr_telemetry.Clock

let src = Logs.Src.create "extractocol.pool" ~doc:"Corpus worker pool"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = Completed | Interrupted

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Scheduler instrumentation                                          *)
(* ------------------------------------------------------------------ *)

(* All coordinator-side: the pool is the scheduler, so dispatch latency,
   per-worker busy/idle time and queue depth are measured where the
   decisions happen.  Worker-side analysis metrics travel separately, as
   per-task deltas merged by the runner. *)

(* Wall-clock quantities in microseconds outgrow the default 1–100k
   ladder (a busy task runs seconds); extend it to 100s. *)
let us_buckets =
  [ 10.; 50.; 100.; 500.; 1_000.; 5_000.; 10_000.; 50_000.; 100_000.;
    500_000.; 1e6; 5e6; 1e7; 5e7; 1e8 ]

let m_dispatched =
  Metrics.counter ~help:"tasks handed to a worker" "pool.tasks.dispatched"

let m_dispatch_latency =
  Metrics.histogram ~help:"scheduler dead time per dispatch: worker idle -> task sent (us)"
    ~buckets:us_buckets "pool.dispatch.latency_us"

let m_worker_busy =
  Metrics.histogram ~help:"per-task worker busy time: dispatch -> result (us)"
    ~buckets:us_buckets "pool.worker.busy_us"

let m_worker_idle =
  Metrics.histogram
    ~help:"per-worker idle time between tasks (us); the per-worker view of pool.dispatch.latency_us"
    ~buckets:us_buckets "pool.worker.idle_us"

let m_queue_depth =
  Metrics.gauge ~help:"tasks pending dispatch (last observed)" "pool.queue.depth"

let m_queue_depth_hist =
  Metrics.histogram ~help:"queue depth sampled at every scheduling event"
    ~buckets:[ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500. ]
    "pool.queue.depth_sampled"

let m_spawns = Metrics.counter ~help:"workers forked" "pool.worker.spawns"

let m_deaths =
  Metrics.counter ~help:"workers that died with a task in flight or mid-pool"
    "pool.worker.deaths"

let m_respawns =
  Metrics.counter ~help:"replacement workers forked after a death" "pool.respawns"

let m_hangs =
  Metrics.counter ~help:"workers SIGKILLed by the hung-worker watchdog"
    "pool.hangs"

let m_hang_requeues =
  Metrics.counter ~help:"tasks requeued after their worker hung"
    "pool.hangs.requeued"

let m_heartbeats =
  Metrics.counter ~help:"worker heartbeat frames received" "pool.heartbeats"

(* ------------------------------------------------------------------ *)
(* Framed Marshal IPC                                                 *)
(* ------------------------------------------------------------------ *)

(* Each message is a 4-byte big-endian payload length followed by the
   Marshal bytes.  Pipes don't preserve message boundaries, so the
   coordinator reassembles frames from a per-worker byte buffer. *)

exception Closed  (* peer hung up (EOF) *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

let send fd v =
  let payload = Marshal.to_bytes v [] in
  let n = Bytes.length payload in
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit payload 0 frame 4 n;
  write_all fd frame 0 (4 + n)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go pos =
    if pos < n then
      match Unix.read fd b pos (n - pos) with
      | 0 -> raise Closed
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0;
  b

let recv fd =
  let hdr = read_exact fd 4 in
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  Marshal.from_bytes (read_exact fd n) 0

(* Worker -> coordinator; coordinator -> worker.  [Up_bye] is the
   clean-shutdown leg: the worker's answer to [Down_quit], carrying
   whatever telemetry it buffered since its last result (spans, metric
   deltas) so nothing recorded between tasks dies with the process.
   [Up_beat] is a heartbeat: the current pipeline phase, sent by the
   worker wrapper on every phase transition so the coordinator's
   watchdog can tell "busy" from "hung" — and attribute a hang to the
   phase the worker last entered. *)
type ('e, 'r, 'f) up =
  | Up_event of 'e
  | Up_done of int * 'r
  | Up_bye of 'f
  | Up_beat of string

type down = Down_task of int | Down_quit

(* Why a worker's death resolved its in-flight task: [Died] is the
   classic crash (signal, _exit); [Hung] is a watchdog kill — the
   worker went silent mid-task for longer than the hang timeout and was
   SIGKILLed after its one requeue was spent. *)
type death_cause =
  | Died of string
  | Hung of { hd_phase : string; hd_silent_s : float }

(* ------------------------------------------------------------------ *)
(* Worker side                                                        *)
(* ------------------------------------------------------------------ *)

(* Runs in the forked child; never returns.  [Unix._exit] everywhere:
   the child must not flush channels or run at_exit hooks it inherited
   from the coordinator. *)
let worker_main ~task_r ~res_w ~worker ~farewell =
  (* SIGINT interrupts the coordinator only (it terminates us with
     SIGTERM, restored to its default lethal disposition here — the
     CLI's inherited handler would raise inside analysis instead).
     SIGPIPE must not kill us mid-send if the coordinator died first;
     the EPIPE surfaces as an exception below. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let emit e = send res_w (Up_event e) in
  let beat ~phase = send res_w (Up_beat phase) in
  let code =
    try
      let rec loop () =
        match (recv task_r : down) with
        | Down_quit ->
            send res_w (Up_bye (farewell ()));
            0
        | Down_task i -> (
            let r = worker ~emit ~beat i in
            match Fault.fire "pool.frame" with
            | Some _ ->
                (* Truncated frame: ship half the result's bytes, then
                   die — the coordinator must treat the partial frame
                   as a worker death, never block on its completion. *)
                let payload = Marshal.to_bytes (Up_done (i, r)) [] in
                let n = Bytes.length payload in
                let frame = Bytes.create (4 + n) in
                Bytes.set_int32_be frame 0 (Int32.of_int n);
                Bytes.blit payload 0 frame 4 n;
                write_all res_w frame 0 ((4 + n) / 2);
                Unix._exit 70
            | None ->
                send res_w (Up_done (i, r));
                loop ())
      in
      loop ()
    with
    | Closed | Unix.Unix_error (Unix.EPIPE, _, _) -> 0
    | Barrier.Killed n -> n
    | Barrier.Interrupted -> 130
    | _ -> 70
  in
  Unix._exit code

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                   *)
(* ------------------------------------------------------------------ *)

type wstate = {
  ws_id : int;  (* 1-based spawn order; the trace/metrics worker label *)
  ws_pid : int;
  ws_task_w : Unix.file_descr;  (* coordinator -> worker commands *)
  ws_res_r : Unix.file_descr;  (* worker -> coordinator frames *)
  ws_buf : Buffer.t;  (* partial frame reassembly *)
  mutable ws_task : int option;  (* the one task in flight, if any *)
  mutable ws_alive : bool;
  mutable ws_quit : bool;  (* Down_quit already sent *)
  mutable ws_idle_since : float;  (* spawn or last result arrival *)
  mutable ws_busy_since : float option;  (* dispatch time of ws_task *)
  mutable ws_seen : float;  (* last bytes received (watchdog liveness) *)
  mutable ws_phase : string;  (* last heartbeat's pipeline phase *)
  mutable ws_hung : string option;  (* phase at watchdog kill *)
}

let spawn ~clock ~next_id ~siblings ~worker ~farewell =
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  (* Anything buffered pre-fork would otherwise be written twice. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close task_w;
      Unix.close res_r;
      (* Close the coordinator's ends of every sibling's pipes: a pipe's
         read end only sees EOF once ALL write ends are closed, so a
         leaked sibling fd would mask that sibling's death from the
         coordinator. *)
      List.iter
        (fun w ->
          if w.ws_alive then begin
            (try Unix.close w.ws_task_w with Unix.Unix_error _ -> ());
            (try Unix.close w.ws_res_r with Unix.Unix_error _ -> ())
          end)
        siblings;
      worker_main ~task_r ~res_w ~worker ~farewell
  | pid ->
      Unix.close task_r;
      Unix.close res_w;
      Metrics.incr m_spawns;
      {
        ws_id = next_id;
        ws_pid = pid;
        ws_task_w = task_w;
        ws_res_r = res_r;
        ws_buf = Buffer.create 256;
        ws_task = None;
        ws_alive = true;
        ws_quit = false;
        ws_idle_since = clock ();
        ws_busy_since = None;
        ws_seen = clock ();
        ws_phase = "start";
        ws_hung = None;
      }

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED sg -> Printf.sprintf "worker killed by signal %d" sg
  | Unix.WSTOPPED sg -> Printf.sprintf "worker stopped by signal %d" sg

let run ?(deps = fun (_ : int) -> []) ?(clock = Clock.wall)
    ?(on_state = fun ~busy:(_ : int) ~idle:(_ : int) ~pending:(_ : int) -> ())
    ?hang_timeout ?(on_hang = fun ~task:(_ : int) ~phase:(_ : string) -> ())
    ~jobs ~tasks ~worker ~farewell ~on_event ~on_bye ~on_death ~on_result () =
  let ntasks = List.length tasks in
  if ntasks = 0 then Completed
  else begin
    (* A dead worker must surface as EPIPE on dispatch, not kill us. *)
    let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    (* Dependency-aware dispatch: a task is ready once every dep that is
       itself a task has resolved (delivered a result or been written
       off by a worker death).  Deps outside [tasks] were resolved
       before the pool started — they never block. *)
    let task_set = Hashtbl.create 64 in
    List.iter (fun i -> Hashtbl.replace task_set i ()) tasks;
    let resolved = Hashtbl.create 64 in
    let pending = ref tasks in
    let ready i =
      List.for_all
        (fun d -> (not (Hashtbl.mem task_set d)) || Hashtbl.mem resolved d)
        (deps i)
    in
    let take_ready () =
      let rec go acc = function
        | [] -> None
        | i :: rest when ready i ->
            pending := List.rev_append acc rest;
            Some i
        | i :: rest -> go (i :: acc) rest
      in
      go [] !pending
    in
    let remaining = ref ntasks in
    (* Respawn budget: generous for real worker deaths, finite so a
       worker that dies on spawn cannot fork-loop forever. *)
    let respawns = ref (8 + (2 * ntasks)) in
    let workers = ref [] in
    let worker_count = ref 0 in
    let kill_code = ref None in
    (* A task whose worker hangs is requeued once through the retry
       ladder; a second hang quarantines it — the same
       escalate-then-give-up shape the in-process ladder applies to
       crashes. *)
    let hang_requeued = Hashtbl.create 4 in
    (* Bounded, EINTR-safe select tick: short enough that a hang is
       detected well within 2x the timeout (tick = timeout/4, floored
       so a tiny test timeout cannot busy-spin), long enough that an
       idle coordinator wakes rarely.  Without a watchdog the tick only
       bounds how long a wedged select outlives its last live fd. *)
    let tick =
      match hang_timeout with
      | Some t -> Float.max 0.02 (Float.min 0.5 (t /. 4.))
      | None -> 0.5
    in
    let observe_queue () =
      let depth = List.length !pending in
      Metrics.set m_queue_depth (float_of_int depth);
      Metrics.observe m_queue_depth_hist (float_of_int depth)
    in
    let notify_state () =
      let busy, idle =
        List.fold_left
          (fun (b, i) w ->
            if not w.ws_alive then (b, i)
            else if w.ws_task <> None then (b + 1, i)
            else (b, i + 1))
          (0, 0) !workers
      in
      on_state ~busy ~idle ~pending:(List.length !pending)
    in
    let worker_label w = [ ("worker", string_of_int w.ws_id) ] in
    let reap w =
      let rec go () =
        match Unix.waitpid [] w.ws_pid with
        | _, st -> st
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
      in
      go ()
    in
    let close_fds w =
      (try Unix.close w.ws_task_w with Unix.Unix_error _ -> ());
      (try Unix.close w.ws_res_r with Unix.Unix_error _ -> ())
    in
    let dispatch w =
      match take_ready () with
      | Some i -> (
          match send w.ws_task_w (Down_task i) with
          | () ->
              w.ws_task <- Some i;
              let now = clock () in
              let idle_us = 1e6 *. (now -. w.ws_idle_since) in
              w.ws_busy_since <- Some now;
              (* The watchdog counts silence from dispatch, not from
                 the worker's last frame — an idle stretch before this
                 task must not count against it. *)
              w.ws_seen <- now;
              w.ws_phase <- "start";
              Metrics.incr m_dispatched;
              Metrics.observe m_dispatch_latency idle_us;
              Metrics.observe m_worker_idle ~labels:(worker_label w) idle_us;
              observe_queue ()
          | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
              (* Dead worker; the EOF path will reap it and respawn. *)
              pending := i :: !pending)
      | None ->
          (* Nothing ready.  Only quit the worker once nothing is even
             pending — a blocked task may become ready when an in-flight
             dependency resolves, and this idle worker must still be
             around to take it. *)
          if !pending = [] && not w.ws_quit then begin
            w.ws_quit <- true;
            try send w.ws_task_w Down_quit
            with Unix.Unix_error (Unix.EPIPE, _, _) -> ()
          end
    in
    (* A resolution can unblock tasks that idle workers skipped over. *)
    let dispatch_idle () =
      List.iter
        (fun w -> if w.ws_alive && w.ws_task = None then dispatch w)
        !workers
    in
    let new_worker () =
      incr worker_count;
      let w =
        spawn ~clock ~next_id:!worker_count ~siblings:!workers ~worker
          ~farewell
      in
      workers := w :: !workers;
      dispatch w
    in
    (* Parse every complete frame out of [w]'s buffer. *)
    let drain_frames w =
      let s = Buffer.contents w.ws_buf in
      let len = String.length s in
      let pos = ref 0 in
      (try
         while len - !pos >= 4 do
           let n = Int32.to_int (String.get_int32_be s !pos) in
           if len - !pos - 4 < n then raise Exit;
           let payload = String.sub s (!pos + 4) n in
           pos := !pos + 4 + n;
           match (Marshal.from_string payload 0 : ('e, 'r, 'f) up) with
           | Up_event e -> on_event e
           | Up_bye f -> on_bye f
           | Up_beat phase ->
               w.ws_phase <- phase;
               Metrics.incr m_heartbeats
           | Up_done (i, r) ->
               w.ws_task <- None;
               let now = clock () in
               (match w.ws_busy_since with
               | Some t0 ->
                   Metrics.observe m_worker_busy ~labels:(worker_label w)
                     (1e6 *. (now -. t0))
               | None -> ());
               w.ws_busy_since <- None;
               w.ws_idle_since <- now;
               decr remaining;
               Hashtbl.replace resolved i ();
               on_result i r;
               dispatch_idle ();
               notify_state ()
         done
       with Exit -> ());
      if !pos > 0 then begin
        Buffer.clear w.ws_buf;
        Buffer.add_substring w.ws_buf s !pos (len - !pos)
      end
    in
    (* Read [w]'s pipe to EOF, delivering everything still in flight —
       the clean-shutdown path uses this to collect each worker's
       [Up_bye] after the select loop has already seen the last task
       result.  Bounded by the same watchdog discipline as the select
       loop: a worker wedged in its farewell (or anywhere between
       Down_quit and EOF) is SIGKILLed after the deadline instead of
       hanging the whole run on its Up_bye. *)
    let drain_until_eof w =
      let deadline_s =
        match hang_timeout with Some t -> t | None -> 10.0
      in
      let chunk = Bytes.create 65536 in
      let t0 = clock () in
      let killed = ref false in
      let rec go () =
        if (not !killed) && clock () -. t0 > deadline_s then begin
          killed := true;
          Metrics.incr m_hangs;
          Log.warn (fun m ->
              m "worker %d (pid %d) silent for %.1fs during shutdown; killing"
                w.ws_id w.ws_pid deadline_s);
          try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end;
        match Unix.select [ w.ws_res_r ] [] [] tick with
        | [], _, _ -> go ()
        | _ -> (
            match Unix.read w.ws_res_r chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | k ->
                Buffer.add_subbytes w.ws_buf chunk 0 k;
                drain_frames w;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ();
      drain_frames w
    in
    let handle_death w =
      w.ws_alive <- false;
      let st = reap w in
      (* The pipe is at EOF, so the buffer holds everything the worker
         managed to send — deliver a final result that beat the death,
         and journal events for the task it died on. *)
      drain_frames w;
      close_fds w;
      (match st with
      | Unix.WEXITED 99 -> kill_code := Some 99
      | _ -> ());
      (match w.ws_task with
      | Some i when !kill_code = None -> (
          w.ws_task <- None;
          match w.ws_hung with
          | Some phase when not (Hashtbl.mem hang_requeued i) ->
              (* First hang: give the task one more worker.  The fault
                 that hung it may have been environmental (a wedged
                 mount, a leaked lock); a deterministic hang will
                 simply hang the replacement and land in the branch
                 below. *)
              Hashtbl.replace hang_requeued i ();
              Metrics.incr m_hang_requeues;
              Log.warn (fun m ->
                  m "task %d: worker hung in %s; requeuing once" i phase);
              pending := i :: !pending;
              observe_queue ();
              on_hang ~task:i ~phase
          | Some phase ->
              decr remaining;
              Hashtbl.replace resolved i ();
              Metrics.incr m_deaths;
              let silent_s =
                match hang_timeout with Some t -> t | None -> 0.0
              in
              Log.warn (fun m ->
                  m "task %d: worker hung in %s again; quarantining" i phase);
              on_result i
                (on_death ~task:i
                   ~cause:(Hung { hd_phase = phase; hd_silent_s = silent_s }))
          | None ->
              decr remaining;
              Hashtbl.replace resolved i ();
              Metrics.incr m_deaths;
              let reason = describe_status st in
              Log.warn (fun m -> m "task %d: %s" i reason);
              on_result i (on_death ~task:i ~cause:(Died reason)))
      | _ -> ());
      if !kill_code = None && !pending <> [] then begin
        if !respawns > 0 then begin
          decr respawns;
          Metrics.incr m_respawns;
          new_worker ()
        end
        else begin
          (* No-progress backstop: fail what's queued rather than fork
             forever against a worker that dies on arrival. *)
          List.iter
            (fun i ->
              decr remaining;
              Hashtbl.replace resolved i ();
              on_result i
                (on_death ~task:i
                   ~cause:(Died "worker pool: respawn budget exhausted")))
            !pending;
          pending := [];
          observe_queue ()
        end
      end;
      if !kill_code = None then begin
        dispatch_idle ();
        notify_state ()
      end
    in
    let terminate signal =
      List.iter
        (fun w ->
          if w.ws_alive then begin
            w.ws_alive <- false;
            (try Unix.kill w.ws_pid signal with Unix.Unix_error _ -> ());
            ignore (reap w);
            close_fds w
          end)
        !workers
    in
    Fun.protect
      ~finally:(fun () -> Sys.set_signal Sys.sigpipe old_pipe)
      (fun () ->
        match
          for _ = 1 to min jobs ntasks do
            new_worker ()
          done;
          notify_state ();
          let chunk = Bytes.create 65536 in
          (* Watchdog scan, run once per select wake-up (data or tick):
             any busy worker silent past the timeout is SIGKILLed; the
             resulting EOF routes through handle_death, which requeues
             or quarantines its task.  [ws_hung] carries the phase the
             worker last heartbeat from, so the taxonomy can say
             hung@PHASE. *)
          let check_hangs () =
            match hang_timeout with
            | None -> ()
            | Some limit ->
                let now = clock () in
                List.iter
                  (fun w ->
                    if
                      w.ws_alive && w.ws_task <> None && w.ws_hung = None
                      && now -. w.ws_seen > limit
                    then begin
                      w.ws_hung <- Some w.ws_phase;
                      Metrics.incr m_hangs;
                      Log.warn (fun m ->
                          m
                            "worker %d (pid %d) silent for %.1fs in phase %s; \
                             killing"
                            w.ws_id w.ws_pid (now -. w.ws_seen) w.ws_phase);
                      try Unix.kill w.ws_pid Sys.sigkill
                      with Unix.Unix_error _ -> ()
                    end)
                  !workers
          in
          while !remaining > 0 && !kill_code = None do
            let live = List.filter (fun w -> w.ws_alive) !workers in
            let fds = List.map (fun w -> w.ws_res_r) live in
            let readable, _, _ =
              try Unix.select fds [] [] tick
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            List.iter
              (fun fd ->
                match
                  List.find_opt
                    (fun w -> w.ws_alive && w.ws_res_r = fd)
                    !workers
                with
                | None -> ()
                | Some w -> (
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | 0 -> handle_death w
                    | k ->
                        w.ws_seen <- clock ();
                        Buffer.add_subbytes w.ws_buf chunk 0 k;
                        drain_frames w;
                        if w.ws_alive && w.ws_task = None then dispatch w
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
              readable;
            check_hangs ()
          done
        with
        | () -> (
            match !kill_code with
            | Some n ->
                (* A kill-point simulates the whole process dying: take
                   the rest of the pool down with it and let the barrier
                   exception carry the exit code up. *)
                terminate Sys.sigkill;
                raise (Barrier.Killed n)
            | None ->
                (* Every worker has been sent Down_quit (its dispatch
                   after the last result found the queue empty); drain
                   the farewell frames they send on the way out, then
                   wait for the exits. *)
                List.iter
                  (fun w ->
                    if w.ws_alive then begin
                      w.ws_alive <- false;
                      drain_until_eof w;
                      ignore (reap w);
                      close_fds w
                    end)
                  !workers;
                notify_state ();
                Completed)
        | exception Barrier.Interrupted ->
            terminate Sys.sigterm;
            Interrupted)
  end
