(* Offline run statistics: reconstruct an --all run's story purely from
   the artifacts it left behind — the journal (required), the result
   cache directory and the metrics snapshot (optional).  Nothing here
   re-runs analysis or opens anything for writing, so a journal from a
   killed or still-running run is safe to inspect. *)

module Journal = Extr_resilience.Journal
module Json = Extr_httpmodel.Json
module Store = Extr_store.Store

type app = {
  st_app : string;
  st_status : string;  (* "ok" | "degraded" | "quarantined" | "in-flight" *)
  st_cached : bool;
  st_attempts : int;
  st_txs : int;
  st_wall_s : float option;
      (* first started -> last finished, from the record stamps *)
}

type phase = {
  ph_name : string;
  ph_count : int;
  ph_p50_us : float option;
  ph_p95_us : float option;
  ph_p99_us : float option;
}

type hotspot = {
  hs_meth : string;
  hs_phase : string;
  hs_time_s : float;
  hs_fuel : int;
  hs_visits : int;
  hs_facts : int;
}

type waste = {
  ws_scope : string;
  ws_touched : int;
  ws_contributing : int;
  ws_ratio : float;
}

type t = {
  rs_config : string;
  rs_apps : app list;  (* journal order of first appearance *)
  rs_finished : int;
  rs_ok : int;
  rs_degraded : int;
  rs_quarantined : int;
  rs_cached : int;
  rs_retries : (string * int) list;  (* reason -> count, by count desc *)
  rs_crashes : (string * int) list;  (* phase -> count, by count desc *)
  rs_wall_s : float option;  (* first stamp -> last stamp *)
  rs_dropped : int;  (* corrupt journal records dropped by the reader *)
  rs_cache_entries : int option;  (* entries on disk under --cache-dir *)
  rs_phases : phase list;  (* pipeline.phase_us series from --metrics *)
  rs_hotspots : hotspot list;  (* profile rows from --profile, time desc *)
  rs_wastes : waste list;  (* waste rows from --profile, by scope *)
}

(* The exact footer line run_all prints, so `extractocol stats` can be
   checked verbatim against the live run's output (trace_check does). *)
let summary_line t =
  Printf.sprintf "%d apps: %d ok, %d degraded, %d quarantined (%d from cache)"
    t.rs_finished t.rs_ok t.rs_degraded t.rs_quarantined t.rs_cached

(* ------------------------------------------------------------------ *)
(* Journal digestion                                                   *)
(* ------------------------------------------------------------------ *)

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare (b : int) a with 0 -> compare ka kb | c -> c)

let of_events events =
  (* Per-app fold in arrival order.  The LAST lifecycle record decides
     an app's fate — an app started again after finishing (a killed
     re-run) is back in flight, exactly as --resume would see it. *)
  let order = ref [] in
  let seen = Hashtbl.create 32 in
  let first_started = Hashtbl.create 32 in
  let last_finished = Hashtbl.create 32 in
  let final = Hashtbl.create 32 in
  let retries = Hashtbl.create 8 in
  let crashes = Hashtbl.create 8 in
  let first_stamp = ref None in
  let last_stamp = ref None in
  List.iter
    (fun (stamp, ev) ->
      (match stamp with
      | Some s ->
          if !first_stamp = None then first_stamp := Some s;
          last_stamp := Some s
      | None -> ());
      let note app =
        if not (Hashtbl.mem seen app) then begin
          Hashtbl.replace seen app ();
          order := app :: !order
        end
      in
      match ev with
      | Journal.Started { ev_app; _ } ->
          note ev_app;
          Hashtbl.remove final ev_app;
          Hashtbl.remove last_finished ev_app;
          Option.iter
            (fun s ->
              if not (Hashtbl.mem first_started ev_app) then
                Hashtbl.replace first_started ev_app s)
            stamp
      | Journal.Retried { ev_app; ev_reason; _ } ->
          note ev_app;
          bump retries ev_reason
      | Journal.Crashed { ev_app; ev_phase; _ } ->
          note ev_app;
          bump crashes ev_phase
      | Journal.Finished { ev_app; _ } ->
          note ev_app;
          Hashtbl.replace final ev_app ev;
          Option.iter (fun s -> Hashtbl.replace last_finished ev_app s) stamp)
    events;
  let apps =
    List.rev_map
      (fun app ->
        match Hashtbl.find_opt final app with
        | Some
            (Journal.Finished { ev_status; ev_cached; ev_attempts; ev_txs; _ })
          ->
            let wall =
              match
                ( Hashtbl.find_opt first_started app,
                  Hashtbl.find_opt last_finished app )
              with
              | Some t0, Some t1 when t1 >= t0 -> Some (t1 -. t0)
              | _ -> None
            in
            {
              st_app = app;
              st_status = ev_status;
              st_cached = ev_cached;
              st_attempts = ev_attempts;
              st_txs = ev_txs;
              st_wall_s = wall;
            }
        | _ ->
            {
              st_app = app;
              st_status = "in-flight";
              st_cached = false;
              st_attempts = 0;
              st_txs = 0;
              st_wall_s = None;
            })
      !order
  in
  let count st = List.length (List.filter (fun a -> a.st_status = st) apps) in
  let finished = List.length (List.filter (fun a -> a.st_status <> "in-flight") apps) in
  ( apps,
    finished,
    count "ok",
    count "degraded",
    count "quarantined",
    List.length (List.filter (fun a -> a.st_cached) apps),
    sorted_counts retries,
    sorted_counts crashes,
    match (!first_stamp, !last_stamp) with
    | Some a, Some b when b >= a -> Some (b -. a)
    | _ -> None )

(* ------------------------------------------------------------------ *)
(* Optional artifacts                                                  *)
(* ------------------------------------------------------------------ *)

(* Cache entries on disk: every non-hidden regular file is one stored
   result (the store writes temp files dot-prefixed, so mid-write temps
   never count). *)
let cache_entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
      Some
        (Array.fold_left
           (fun n name ->
             if
               String.length name > 0
               && name.[0] <> '.'
               && not (Sys.is_directory (Filename.concat dir name))
             then n + 1
             else n)
           0 names)

let json_num k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

(* The pipeline.phase_us series of a metrics snapshot, percentiles
   included — the exporter writes p50/p95/p99 alongside the raw buckets
   precisely so offline consumers don't re-derive them. *)
let phases_of_metrics_json contents =
  match Json.of_string_opt contents with
  | None -> Error "metrics file is not valid JSON"
  | Some j ->
      let series =
        match Json.member "metrics" j with Some (Json.List l) -> l | _ -> []
      in
      Ok
        (List.filter_map
           (fun m ->
             match Json.member "name" m with
             | Some (Json.Str "pipeline.phase_us") ->
                 let phase =
                   match Json.member "labels" m with
                   | Some labels -> (
                       match Json.member "phase" labels with
                       | Some (Json.Str p) -> p
                       | _ -> "?")
                   | None -> "?"
                 in
                 let count =
                   match Json.member "count" m with
                   | Some (Json.Int n) -> n
                   | _ -> 0
                 in
                 Some
                   {
                     ph_name = phase;
                     ph_count = count;
                     ph_p50_us = json_num "p50" m;
                     ph_p95_us = json_num "p95" m;
                     ph_p99_us = json_num "p99" m;
                   }
             | _ -> None)
           series)

let json_int k j =
  match Json.member k j with
  | Some (Json.Int n) -> Some n
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let json_str k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

(* The --profile-out artifact: per-method attribution rows plus the
   waste summary.  The file keeps rows in deterministic (phase, method)
   order so reruns diff cleanly; hotspot display wants self time
   descending, so re-sort here. *)
let profile_of_json contents =
  match Json.of_string_opt contents with
  | None -> Error "profile file is not valid JSON"
  | Some j ->
      let rows =
        match Json.member "profile" j with Some (Json.List l) -> l | _ -> []
      in
      let hotspots =
        List.filter_map
          (fun m ->
            match json_str "method" m with
            | None -> None
            | Some meth ->
                Some
                  {
                    hs_meth = meth;
                    hs_phase = Option.value ~default:"?" (json_str "phase" m);
                    hs_time_s = Option.value ~default:0.0 (json_num "time_s" m);
                    hs_fuel = Option.value ~default:0 (json_int "fuel" m);
                    hs_visits = Option.value ~default:0 (json_int "visits" m);
                    hs_facts = Option.value ~default:0 (json_int "facts" m);
                  })
          rows
        |> List.stable_sort (fun a b -> compare b.hs_time_s a.hs_time_s)
      in
      let wastes =
        match Json.member "waste" j with
        | Some (Json.List l) ->
            List.filter_map
              (fun m ->
                match json_str "scope" m with
                | None -> None
                | Some scope ->
                    Some
                      {
                        ws_scope = scope;
                        ws_touched =
                          Option.value ~default:0
                            (json_int "touched_methods" m);
                        ws_contributing =
                          Option.value ~default:0
                            (json_int "contributing_methods" m);
                        ws_ratio =
                          Option.value ~default:0.0 (json_num "waste_ratio" m);
                      })
              l
        | _ -> []
      in
      Ok (hotspots, wastes)

(* Read a journal set: one journal is the classic single-run view; a
   list is a shard set inspected before (or instead of) running
   `merge`.  Per-journal shard suffixes are stripped and the bases must
   agree; events are pooled and stably sorted by stamp (unstamped
   records first, input order preserved on ties), so the per-app
   last-record-wins fold sees the fleet's records in wall-clock order.
   A zero-byte journal — a shard that died between open and header, the
   stale-lock shape — is an empty run, not an error. *)
let read_journals paths =
  let single = match paths with [ _ ] -> true | _ -> false in
  let dropped = ref 0 in
  let rec fold cfg acc = function
    | [] ->
        let stamped =
          List.stable_sort
            (fun (a, _) (b, _) ->
              let v = function Some s -> s | None -> neg_infinity in
              compare (v a) (v b))
            (List.concat (List.rev acc))
        in
        Ok ((match cfg with Some (shown, _) -> shown | None -> "(empty journal)"), stamped, !dropped)
    | path :: rest -> (
        match Journal.read_lenient ~path with
        | Error msg -> Error msg
        | Ok (None, _, anomalies) ->
            dropped := !dropped + List.length anomalies;
            fold cfg acc rest
        | Ok (Some c, events, anomalies) -> (
            dropped := !dropped + List.length anomalies;
            let base, _shard = Merge.strip_shard c in
            (* A single journal keeps its full fingerprint (the shard
               suffix is informative); a set is reported under the
               shared base, which every member must agree on. *)
            let shown = if single then c else base in
            match cfg with
            | Some (_, prev) when prev <> base ->
                Error
                  (Printf.sprintf
                     "%s: journal configuration %s does not match the other \
                      journals' (%s)"
                     path base prev)
            | Some _ -> fold cfg (events :: acc) rest
            | None -> fold (Some (shown, base)) (events :: acc) rest))
  in
  fold None [] paths

let of_artifacts ~journals ?cache_dir ?metrics ?profile () =
  match read_journals journals with
  | Error msg -> Error msg
  | Ok (config, events, dropped) -> (
      let ( apps,
            finished,
            ok,
            degraded,
            quarantined,
            cached,
            retries,
            crashes,
            wall ) =
        of_events events
      in
      let phases =
        match metrics with
        | None -> Ok []
        | Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | exception Sys_error msg -> Error msg
            | contents -> phases_of_metrics_json contents)
      in
      let prof =
        match profile with
        | None -> Ok ([], [])
        | Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | exception Sys_error msg -> Error msg
            | contents -> profile_of_json contents)
      in
      match (phases, prof) with
      | Error msg, _ | _, Error msg -> Error msg
      | Ok phases, Ok (hotspots, wastes) ->
          Ok
            {
              rs_config = config;
              rs_apps = apps;
              rs_finished = finished;
              rs_ok = ok;
              rs_degraded = degraded;
              rs_quarantined = quarantined;
              rs_cached = cached;
              rs_retries = retries;
              rs_crashes = crashes;
              rs_wall_s = wall;
              rs_dropped = dropped;
              rs_cache_entries = Option.bind cache_dir cache_entries;
              rs_phases = phases;
              rs_hotspots = hotspots;
              rs_wastes = wastes;
            })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let slowest ?(n = 5) t =
  List.filter_map
    (fun a -> Option.map (fun w -> (a, w)) a.st_wall_s)
    t.rs_apps
  |> List.stable_sort (fun (_, a) (_, b) -> compare (b : float) a)
  |> List.filteri (fun i _ -> i < n)

let pp_opt_ms fmt = function
  | None -> Fmt.pf fmt "%8s" "-"
  | Some us -> Fmt.pf fmt "%8.2f" (us /. 1e3)

let pp fmt t =
  Fmt.pf fmt "run summary (from artifacts)@.";
  Fmt.pf fmt "  config: %s@." t.rs_config;
  Fmt.pf fmt "  %s@." (summary_line t);
  Option.iter (fun w -> Fmt.pf fmt "  wall clock: %.2fs@." w) t.rs_wall_s;
  let in_flight =
    List.filter (fun a -> a.st_status = "in-flight") t.rs_apps
  in
  if in_flight <> [] then
    Fmt.pf fmt "  in flight at journal end: %s@."
      (String.concat ", " (List.map (fun a -> a.st_app) in_flight));
  if t.rs_dropped > 0 then
    Fmt.pf fmt "  corrupt journal records dropped: %d@." t.rs_dropped;
  (match slowest t with
  | [] -> ()
  | slow ->
      Fmt.pf fmt "@.slowest apps:@.";
      List.iter
        (fun (a, w) ->
          Fmt.pf fmt "  %-28s %-11s %7.2fs  %d attempt%s@." a.st_app
            a.st_status w a.st_attempts
            (if a.st_attempts = 1 then "" else "s"))
        slow);
  if t.rs_retries <> [] then begin
    Fmt.pf fmt "@.retry ladder:@.";
    List.iter
      (fun (reason, n) -> Fmt.pf fmt "  %-40s %d@." reason n)
      t.rs_retries
  end;
  if t.rs_crashes <> [] then begin
    Fmt.pf fmt "@.crash taxonomy (by phase):@.";
    List.iter
      (fun (phase, n) -> Fmt.pf fmt "  %-40s %d@." phase n)
      t.rs_crashes
  end;
  Fmt.pf fmt "@.cache:@.";
  Fmt.pf fmt "  journaled hit rate: %d/%d%s@." t.rs_cached t.rs_finished
    (if t.rs_finished > 0 then
       Printf.sprintf " (%.0f%%)"
         (100.0 *. float_of_int t.rs_cached /. float_of_int t.rs_finished)
     else "");
  Option.iter
    (fun n -> Fmt.pf fmt "  entries on disk: %d@." n)
    t.rs_cache_entries;
  if t.rs_phases <> [] then begin
    Fmt.pf fmt "@.pipeline phases (from metrics):@.";
    Fmt.pf fmt "  %-20s %8s %8s %8s %8s@." "phase" "count" "p50(ms)"
      "p95(ms)" "p99(ms)";
    List.iter
      (fun p ->
        Fmt.pf fmt "  %-20s %8d %a %a %a@." p.ph_name p.ph_count pp_opt_ms
          p.ph_p50_us pp_opt_ms p.ph_p95_us pp_opt_ms p.ph_p99_us)
      t.rs_phases
  end;
  if t.rs_hotspots <> [] then begin
    Fmt.pf fmt "@.hot methods (from profile, top 10 by self time):@.";
    Fmt.pf fmt "  %-44s %-20s %9s %8s %8s %6s@." "method" "phase" "self(ms)"
      "fuel" "visits" "facts";
    List.iteri
      (fun i h ->
        if i < 10 then
          Fmt.pf fmt "  %-44s %-20s %9.2f %8d %8d %6d@." h.hs_meth h.hs_phase
            (h.hs_time_s *. 1e3) h.hs_fuel h.hs_visits h.hs_facts)
      t.rs_hotspots
  end;
  if t.rs_wastes <> [] then begin
    Fmt.pf fmt "@.analysis waste (methods touched but contributing to no reported transaction):@.";
    List.iter
      (fun w ->
        Fmt.pf fmt "  %-28s %4d touched, %4d contributing, waste %.0f%%@."
          w.ws_scope w.ws_touched w.ws_contributing (100.0 *. w.ws_ratio))
      t.rs_wastes
  end

(* ------------------------------------------------------------------ *)
(* Offline integrity audit (stats --verify)                            *)
(* ------------------------------------------------------------------ *)

type verify_report = {
  vr_journal_anomalies : (string * Journal.anomaly list) list;
      (* journals with corrupt records, journal order; lists non-empty *)
  vr_journal_errors : (string * string) list;  (* unreadable journals *)
  vr_cache_checked : int;  (* cache entries whose seal was verified *)
  vr_cache_corrupt : (string * string) list;  (* entry file -> reason *)
}

let verify ~journals ?cache_dir () =
  let anomalies = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      match Journal.read_lenient ~path with
      | Error msg -> errors := (path, msg) :: !errors
      | Ok (_, _, a) -> if a <> [] then anomalies := (path, a) :: !anomalies)
    journals;
  let checked, corrupt =
    match cache_dir with None -> (0, []) | Some dir -> Store.audit ~dir
  in
  {
    vr_journal_anomalies = List.rev !anomalies;
    vr_journal_errors = List.rev !errors;
    vr_cache_checked = checked;
    vr_cache_corrupt = corrupt;
  }

let verify_clean r =
  r.vr_journal_anomalies = [] && r.vr_journal_errors = []
  && r.vr_cache_corrupt = []

let pp_verify fmt r =
  Fmt.pf fmt "artifact integrity audit@.";
  List.iter
    (fun (path, msg) -> Fmt.pf fmt "  UNREADABLE %s: %s@." path msg)
    r.vr_journal_errors;
  List.iter
    (fun (path, anomalies) ->
      List.iter
        (fun a -> Fmt.pf fmt "  CORRUPT %s: %a@." path Journal.pp_anomaly a)
        anomalies)
    r.vr_journal_anomalies;
  List.iter
    (fun (file, reason) -> Fmt.pf fmt "  CORRUPT %s: %s@." file reason)
    r.vr_cache_corrupt;
  if r.vr_cache_checked > 0 then
    Fmt.pf fmt "  cache entries verified: %d (%d corrupt)@." r.vr_cache_checked
      (List.length r.vr_cache_corrupt);
  if verify_clean r then Fmt.pf fmt "  all artifacts verified clean@."
  else
    Fmt.pf fmt "  integrity violations found: %d@."
      (List.length r.vr_journal_errors
      + List.fold_left
          (fun n (_, a) -> n + List.length a)
          0 r.vr_journal_anomalies
      + List.length r.vr_cache_corrupt)
