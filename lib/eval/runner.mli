(** Durable corpus runner: the engine behind [extractocol --all].

    Runs every corpus entry behind the fault barrier like the original
    batch mode, but each app's lifecycle is journaled ({!Extr_resilience.Journal}),
    driven up the degrade-and-retry ladder ({!Extr_resilience.Retry})
    and — when a cache directory is configured — served from or stored
    into the content-addressed result cache ({!Extr_store.Store}).  A
    killed run resumes from its journal; a resumed run's report JSON is
    byte-identical to what the uninterrupted run would have written,
    because cached reports are serialized deterministically and spliced
    back verbatim.

    The runner is a library (not CLI glue) so the exit-code contract,
    quarantine, resume and caching are unit-testable in-process. *)

module Pipeline = Extr_extractocol.Pipeline
module Corpus = Extr_corpus.Corpus
module Resilience = Extr_resilience.Resilience
module Retry = Extr_resilience.Retry
module Clock = Extr_telemetry.Clock
module Span = Extr_telemetry.Span
module Journal = Extr_resilience.Journal

type options = {
  ro_pipeline : Pipeline.options;
  ro_policy : Retry.policy;
  ro_journal : string option;  (** write-ahead journal path *)
  ro_resume : bool;  (** replay the journal, skip finished apps *)
  ro_cache_dir : string option;  (** content-addressed result cache *)
  ro_force_crash : string option;  (** crash this app (test hook) *)
  ro_sleep : Clock.sleep;  (** retry backoff; injectable for tests *)
  ro_jobs : int;
      (** worker processes for the corpus ({!Pool}); [<= 1] runs
          sequentially in-process.  Not part of the configuration
          fingerprint: parallelism never changes results, so journals
          and caches are shared freely across jobs settings *)
  ro_worker_kill : string option;
      (** test hook: a forked worker dispatched this app [_exit]s
          immediately, simulating a worker death mid-app *)
  ro_shard : (int * int) option;
      (** [Some (k, n)]: run only the k-th of n deterministic corpus
          slices (1-based), partitioned by {!shard_index}.  Not part of
          {!config_fingerprint} — a shard computes exactly what the
          unsharded run would, so its cache entries carry the same keys
          and [merge] can union them — but it IS part of
          {!journal_fingerprint}: a shard only resumes its own journal *)
  ro_corpus_tag : string option;
      (** identity of a non-default corpus (the [--gen] generator's
          ["gen=SEED:COUNT"]); folded into {!config_fingerprint} so a
          generated-corpus journal or cache never mingles with the
          Table-1 corpus under the same pipeline options *)
  ro_hang_timeout : float option;
      (** arm the pool's hung-worker watchdog ({!Pool.run}): a busy
          worker silent longer than this many wall-clock seconds is
          SIGKILLed, its app requeued once, then quarantined under the
          [hung\@PHASE] taxonomy.  [None] (the default) disables the
          watchdog.  Not part of the configuration fingerprint — like
          [ro_jobs], it changes scheduling, never results *)
  ro_heartbeat : bool;
      (** ship a heartbeat frame on every pipeline phase transition
          (workers only).  Default [true]; the bench harness turns it
          off to measure heartbeat + checksum overhead differentially *)
}

val default_options : options
(** Pipeline defaults, {!Retry.default_policy}, no journal, no cache,
    wall-clock backoff. *)

val config_fingerprint : options -> string
(** The configuration identity a result depends on: pipeline options,
    retry policy, {!Extr_store.Store.analysis_version} and the corpus
    tag.  Cache keys digest it; journals carry it (extended per
    {!journal_fingerprint}) in their header and [--resume] refuses a
    journal whose fingerprint differs. *)

val journal_fingerprint : options -> string
(** {!config_fingerprint} plus a [";shard=K/N"] suffix when [ro_shard]
    is set: what the journal header and a shard run's envelope record.
    [merge] strips the suffix to recover the base fingerprint the
    merged envelope (and every cache key) uses. *)

val shard_index : shards:int -> string -> int
(** The 0-based shard owning an app name, for an [n]-way partition.  A
    digest of the {e name} is a faithful proxy for the [Store.key] cache
    key here: namesake corpus entries share one spec, hence one APK and
    one key, and name-hashing keeps them on one shard so the later
    ["#2"] duplicate stays an intra-shard cache hit exactly as in the
    unsharded run. *)

val identify : Corpus.entry list -> (string * Corpus.entry) list
(** The unique journal identities of a corpus, in corpus order: the app
    name, with ["#2"]-style suffixes for repeated names.  Always
    computed on the full corpus — [--shard] filters {e after} this, so
    identities are shard-independent ([merge] recomputes them to know
    the expected result set). *)

type status = Ok | Degraded | Quarantined

val status_name : status -> string
(** ["ok"], ["degraded"], ["quarantined"] — the journal/report strings. *)

val status_of_name : string -> status option
(** Inverse of {!status_name}; [None] for anything else. *)

val inspect_report_json :
  string -> (status * int * Resilience.Degrade.degradation list) option
(** Status, transaction count and degradation list of a serialized
    deterministic report, recovered without trusting anything beyond
    its shape — [None] when the string is not a report we recognize
    (callers treat that as a cache miss / corrupt artifact). *)

type app_result = {
  ar_app : string;
      (** unique corpus identity: the app name, with a ["#2"]-style
          suffix when the same name appears more than once (a case study
          that is also a Table 1 row) — journals key records by it *)
  ar_status : status;
  ar_cached : bool;  (** served from the result cache *)
  ar_resumed : bool;  (** skipped because the journal marked it finished *)
  ar_attempts : int;
  ar_txs : int;
  ar_degradations : Resilience.Degrade.degradation list;
      (** for cached/resumed results, recovered from the report JSON's
          [degradations[]], so warm and cold summaries agree *)
  ar_elapsed_s : float;  (** 0 for cached/resumed results *)
  ar_crash : Resilience.Barrier.crash option;  (** [Quarantined] only *)
  ar_report_json : string option;
      (** the deterministic report serialization, verbatim from the
          cache on a hit; [None] for quarantined apps *)
}

type run = {
  rn_results : app_result list;  (** corpus order; partial if interrupted *)
  rn_interrupted : bool;  (** SIGINT/SIGTERM unwound the run *)
  rn_quarantined : string list;  (** apps excluded after repeated crashes *)
  rn_worker_spans : (int * Span.span list) list;
      (** spans shipped back by pool workers, one [(pid, spans)] lane
          per worker process in pid order; [[]] for sequential runs.
          Feed to {!Extr_telemetry.Export.chrome_trace_lanes} together
          with the coordinator's own tracer for the merged trace *)
}

val exit_code : run -> int
(** The [--all] contract: 130 if interrupted, 2 if any app was
    quarantined, 3 if any degraded, 0 otherwise. *)

val run :
  ?on_result:(app_result -> unit) ->
  ?on_journal:(Journal.event -> unit) ->
  ?on_state:(busy:int -> idle:int -> pending:int -> unit) ->
  options ->
  Corpus.entry list ->
  (run, string) result
(** Run the corpus.  [on_result] fires after each app (the CLI prints
    its summary row live) — always in corpus order, even under
    [ro_jobs > 1], where completed-but-out-of-order results are held
    back until every earlier app has resolved, so reports stay
    byte-identical across jobs settings.  [Error] is a usage-level
    failure: a resume with no/invalid journal or a mismatched
    configuration fingerprint, or an unusable cache/journal path.
    {!Resilience.Barrier.Killed} propagates (injected kill-points must
    terminate the process — under the pool, a worker exiting 99 takes
    the coordinator down the same way);
    {!Resilience.Barrier.Interrupted} is caught and yields a partial
    [run] with [rn_interrupted] set.

    [on_journal] observes every lifecycle event in coordinator arrival
    order (after the journal append, when one is configured — an
    observer never sees an event the journal could still lose), whether
    or not a journal is configured; the live progress display feeds on
    it.  [on_state] relays the pool's scheduling state (see
    {!Pool.run}); it never fires for sequential runs.

    Under [ro_jobs > 1] the work is spread over forked workers
    ({!Pool}): the coordinator alone appends to the journal and the
    cache, workers ship events, reports, per-task metrics deltas and
    their tracer's spans back over pipes (plus a farewell shipment on
    clean shutdown), and a worker death quarantines only its in-flight
    app (crash phase ["worker"]) while a replacement worker is
    respawned.  With [ro_hang_timeout] set, a worker the watchdog had
    to kill quarantines its app under crash phase ["hung@PHASE"]
    instead (after one free requeue, journaled as a [Retried] event
    with reason ["hung@PHASE"]) — the taxonomy keeps silent wedges
    distinct from crashes in every downstream report. *)

val report_json :
  ?extra:(string * string) list -> config:string -> run -> string
(** The corpus report envelope: configuration fingerprint plus one
    member per app — status, attempts, [cached], and the app's
    deterministic report spliced in verbatim (never reparsed, so cached
    and fresh serializations stay byte-identical).  [extra] members
    (key, raw JSON value) are spliced between the config and the apps;
    [merge] uses them for [missing_shards[]] and friends, and leaves
    them empty on a clean merge so the envelope stays byte-identical to
    the unsharded run's. *)
