(** Offline union of sharded [--all] artifacts: [extractocol merge].

    N shard runs (each [--shard K/N] over the same corpus and
    configuration) leave N journals and N — or fewer, when shared —
    cache directories.  {!merge} folds them back into what one unsharded
    run would have produced: {!report_json} is byte-identical to the
    [--all --jobs 1] envelope when every shard is present and healthy,
    {!journal_contents} is a journal the runner/stats readers accept
    verbatim, [mg_cache] is the unioned entry set, and {!merge_metrics}
    unions metrics snapshots through the same
    {!Extr_telemetry.Metrics.merge_samples} the pool coordinator uses
    for worker deltas.

    Robustness contract:
    - {e idempotent} — per-app conflicts (overlapping shards, duplicated
      work, re-merging merge's own outputs) resolve newest-finished-wins
      by journal stamp, ties to the later input, so a second merge over
      the first one's outputs reproduces the same envelope;
    - {e corruption never aborts} — unreadable journals and
      truncated/corrupt cache entries become [mg_degradations] records
      (exit 3), the merge completes with everything else;
    - {e missing work is explicit} — absent shards and unaccounted apps
      are listed in the envelope ([missing_shards[]]/[missing_apps[]])
      and turn the exit code to 4, never a silent gap;
    - {e inputs stay read-only} — merging a still-running shard's
      artifacts is safe (it contributes its finished prefix). *)

module Journal = Extr_resilience.Journal
module Corpus = Extr_corpus.Corpus

type degradation = {
  md_app : string;  (** [""] for journal-level trouble *)
  md_reason : string;
  md_detail : string;
}

type t = {
  mg_config : string;
      (** the base configuration fingerprint (shard suffixes stripped)
          the merged envelope, journal and cache keys live under *)
  mg_run : Runner.run;  (** merged results, corpus order *)
  mg_finished : (float option * Journal.event) list;
      (** the winning [Finished] record per app, stamp preserved *)
  mg_crashed : (string * (float option * Journal.event)) list;
      (** the winning [Crashed] record of each quarantined app *)
  mg_missing_shards : int list;  (** 1-based, ascending *)
  mg_missing_apps : string list;
      (** corpus identities no surviving journal accounts for *)
  mg_degradations : degradation list;
  mg_cache : (string * string) list;
      (** unioned [(key, report)] entries, first valid copy per key *)
  mg_expected : int;  (** total corpus identities expected *)
}

val strip_shard : string -> string * (int * int) option
(** Split a journal fingerprint into its base and the trailing
    [";shard=K/N"] identity {!Runner.journal_fingerprint} appends, if
    one is present (in exactly that shape, [1 <= K <= N]). *)

val merge :
  options:Runner.options ->
  entries:Corpus.entry list ->
  journals:string list ->
  ?cache_dirs:string list ->
  ?expect_shards:int ->
  unit ->
  (t, string) result
(** Union the shard artifacts.  [options]/[entries] recompute the base
    fingerprint and the full corpus' identities ({!Runner.identify}), so
    the merged envelope's app order is the unsharded run's.  [journals]
    and [cache_dirs] are searched in the given order (ties in the
    newest-finished-wins rule go to later inputs; the first valid cache
    copy of a key wins — entries are content-addressed, so valid copies
    are identical).  Shard coverage is checked against [expect_shards]
    when given, else against the largest N the journals' shard suffixes
    declare.  [Error] only for a usage-level problem: a journal whose
    base fingerprint differs from [options]' — results computed under
    another configuration must not be mixed in silently.  Everything
    else (unreadable journal, empty/stale-lock journal, torn tail,
    missing or corrupt cache entry) degrades or classifies, it never
    aborts. *)

val exit_code : t -> int
(** The [merge] exit contract: 4 when shards or apps are missing
    (partial merge), 3 when any artifact was quarantined into
    [mg_degradations], 0 for a clean and complete merge.  Reflects the
    health of the {e merge}, not of the merged run — app-level
    degradations/quarantines live in the envelope, as [--all] already
    reported them live. *)

val report_json : t -> string
(** The merged corpus report envelope.  Byte-identical to the unsharded
    [--jobs 1] run's when the merge is clean and complete; otherwise the
    [missing_shards[]], [missing_apps[]] and [merge_degradations[]]
    members appear (only when non-empty) between the config and the
    apps. *)

val journal_contents : t -> string
(** The merged journal: a header under [mg_config] followed by each
    quarantined app's [Crashed] record and every app's winning
    [Finished] record in corpus order, stamps carried over — readable by
    [stats], [--resume] and a further [merge] exactly like a
    runner-written journal. *)

val merge_metrics : string list -> (string, string) result
(** Union the given exported metrics snapshots into one snapshot
    document ({!Extr_telemetry.Export.metrics_json} shape): counters
    add, gauges take the labelled max, histogram buckets add slot-wise.
    [Error] when a file is unreadable or not a metrics snapshot. *)
