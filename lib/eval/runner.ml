(* Durable corpus runner: journaled checkpoint/resume, degrade-and-retry
   ladder, and content-addressed result caching around the per-app fault
   barrier.  The CLI's --all mode is a thin shell over [run]; the logic
   lives here so the exit-code contract, quarantine, resume and caching
   are unit-testable in-process. *)

module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Resilience = Extr_resilience.Resilience
module Retry = Extr_resilience.Retry
module Journal = Extr_resilience.Journal
module Fault = Extr_resilience.Fault
module Barrier = Resilience.Barrier
module Store = Extr_store.Store
module Clock = Extr_telemetry.Clock
module Metrics = Extr_telemetry.Metrics
module Span = Extr_telemetry.Span
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Json = Extr_httpmodel.Json

let src = Logs.Src.create "extractocol.runner" ~doc:"Durable corpus runner"

module Log = (val Logs.src_log src : Logs.LOG)

(* Short-circuit counters: how much of the corpus never reached the
   pipeline at all.  Coordinator-side, so they are exact under --jobs N
   (workers count their own cache probes in the shipped deltas; these
   count resolved apps). *)
let m_cache_hits =
  Metrics.counter ~help:"apps short-circuited by a result-cache hit"
    "runner.cache.hits"

let m_restored =
  Metrics.counter ~help:"apps restored from the journal on --resume"
    "runner.resume.restored"

let m_journal_dropped =
  Metrics.counter
    ~help:"corrupt journal records dropped (and re-run) on --resume"
    "journal.records.dropped"

type options = {
  ro_pipeline : Pipeline.options;
  ro_policy : Retry.policy;
  ro_journal : string option;
  ro_resume : bool;
  ro_cache_dir : string option;
  ro_force_crash : string option;
  ro_sleep : Clock.sleep;
  ro_jobs : int;
  ro_worker_kill : string option;
  ro_shard : (int * int) option;
  ro_corpus_tag : string option;
  ro_hang_timeout : float option;  (* pool watchdog; None = off *)
  ro_heartbeat : bool;  (* worker phase heartbeats (bench knob) *)
}

let default_options =
  {
    ro_pipeline = Pipeline.default_options;
    ro_policy = Retry.default_policy;
    ro_journal = None;
    ro_resume = false;
    ro_cache_dir = None;
    ro_force_crash = None;
    ro_sleep = Clock.sleep_wall;
    ro_jobs = 1;
    ro_worker_kill = None;
    ro_shard = None;
    ro_corpus_tag = None;
    ro_hang_timeout = None;
    ro_heartbeat = true;
  }

(* Everything a cached result's validity depends on.  The analysis
   version is folded into the cache key by Store.key as well; repeating
   it here lets the journal header refuse a --resume across a version
   bump even when no cache is configured.  ro_jobs is deliberately NOT
   part of the fingerprint: parallelism never changes a result, so a
   run journaled at --jobs 4 must resume cleanly at --jobs 1 and vice
   versa.  ro_shard is likewise excluded — shard K/N computes the same
   results the unsharded run would, so its cache entries must carry the
   same keys for merge to union them — but the corpus tag ([--gen]) IS
   included: a generated corpus must not resume a Table-1 journal. *)
let config_fingerprint (o : options) =
  Printf.sprintf "%s;%s;v%d%s"
    (Pipeline.options_fingerprint o.ro_pipeline)
    (Retry.fingerprint o.ro_policy)
    Store.analysis_version
    (match o.ro_corpus_tag with None -> "" | Some t -> ";" ^ t)

(* The journal (and shard envelope) identity adds which slice of the
   corpus this run covers: a shard must only resume its own journal, and
   merge reads the suffix back to know which shards it has seen.  The
   suffix is syntactic — [Merge.strip_shard] removes it to recover the
   base fingerprint that cache keys and the merged envelope use. *)
let journal_fingerprint (o : options) =
  config_fingerprint o
  ^
  match o.ro_shard with
  | None -> ""
  | Some (k, n) -> Printf.sprintf ";shard=%d/%d" k n

(* Deterministic shard assignment, 0-based.  Entries are partitioned by
   a digest of the app *name* — a proxy for the Store.key cache key that
   does not require materializing the APK: namesake corpus entries share
   one spec, hence one APK and one cache key, and hashing the name keeps
   them on one shard, so the later duplicate is an intra-shard cache hit
   exactly as in the unsharded run (its "#N" identity and cached flag
   survive sharding byte-for-byte). *)
let shard_index ~shards name =
  let d = Digest.string name in
  let b i = Char.code d.[i] in
  ((b 0 lsl 22) lxor (b 1 lsl 14) lxor (b 2 lsl 6) lxor b 3) mod max 1 shards

(* Corpus entries are journaled under a unique id: an app name that
   appears twice (a case study that is also a Table 1 row) gets "#2",
   "#3"... suffixes, or one entry's journal record would be replayed for
   every namesake on resume.  Always computed on the FULL corpus — shard
   filtering happens after, so an entry's identity is independent of
   which shard runs it. *)
let identify entries =
  let seen = Hashtbl.create 41 in
  List.map
    (fun (e : Corpus.entry) ->
      let name = e.Corpus.c_app.Spec.a_name in
      let n =
        (match Hashtbl.find_opt seen name with Some n -> n | None -> 0) + 1
      in
      Hashtbl.replace seen name n;
      ((if n = 1 then name else Printf.sprintf "%s#%d" name n), e))
    entries

type status = Ok | Degraded | Quarantined

let status_name = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

let status_of_name = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "quarantined" -> Some Quarantined
  | _ -> None

type app_result = {
  ar_app : string;
  ar_status : status;
  ar_cached : bool;
  ar_resumed : bool;
  ar_attempts : int;
  ar_txs : int;
  ar_degradations : Resilience.Degrade.degradation list;
  ar_elapsed_s : float;
  ar_crash : Barrier.crash option;
  ar_report_json : string option;
}

type run = {
  rn_results : app_result list;
  rn_interrupted : bool;
  rn_quarantined : string list;
  rn_worker_spans : (int * Span.span list) list;
}

(* The --all exit-code contract (documented in the man page). *)
let exit_code r =
  if r.rn_interrupted then 130
  else if r.rn_quarantined <> [] then 2
  else if List.exists (fun a -> a.ar_status = Degraded) r.rn_results then 3
  else 0

(* One degradations[] element of a serialized report, parsed back into
   the ledger's record shape (Report.json_of_degradation is the
   inverse).  Unrecognized elements are dropped, not fatal. *)
let degradation_of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int n) -> Some n | _ -> None in
  match (str "phase", str "reason", str "detail", int "work_left") with
  | Some dg_phase, Some dg_reason, Some dg_detail, Some dg_work_left ->
      Some { Resilience.Degrade.dg_phase; dg_reason; dg_detail; dg_work_left }
  | _ -> None

(* Status, transaction count and degradation list of a cached
   deterministic report, read back without trusting anything beyond its
   shape.  [None] means the entry is not a report we recognize —
   callers treat that as a miss.  Recovering the degradations matters:
   a cache-hit or resumed Degraded app must report the same reasons the
   cold run reported, or warm and cold summary tables disagree. *)
let inspect_report_json data =
  match Json.of_string_opt data with
  | Some (Json.Obj _ as j) -> (
      match (Json.member "degradations" j, Json.member "transactions" j) with
      | Some (Json.List ds), Some (Json.List txs) ->
          Some
            ( (if ds <> [] then Degraded else Ok),
              List.length txs,
              List.filter_map degradation_of_json ds )
      | _ -> None)
  | Some _ | None -> None

let forced_crash_message = "forced crash (--force-crash test hook)"

(* Analyze one corpus entry end to end: materialize the app (behind the
   fault barrier — a malformed synthetic spec must quarantine this app,
   not abort the corpus), consult the cache, drive the retry ladder and
   journal every transition.  [run] calls this in-process for
   sequential runs and inside a forked worker under --jobs N, so every
   shared side effect goes through the caller-owned [jot] (journal
   append) and [do_store] (cache write) callbacks.  Returns the result
   plus the cache key string: the pool's coordinator performs the store
   itself after the Finished event reaches the journal, keeping the
   crash-consistency order (journal first, cache second) that resume
   relies on. *)
let run_app ~jot ~do_store ~cache (o : options) ~config id (e : Corpus.entry) :
    app_result * string =
  let quarantined crash key_s attempts =
    jot
      (Journal.Finished
         {
           ev_app = id;
           ev_key = key_s;
           ev_status = status_name Quarantined;
           ev_cached = false;
           ev_attempts = attempts;
           ev_txs = 0;
         });
    {
      ar_app = id;
      ar_status = Quarantined;
      ar_cached = false;
      ar_resumed = false;
      ar_attempts = attempts;
      ar_txs = 0;
      ar_degradations = [];
      ar_elapsed_s = 0.0;
      ar_crash = Some crash;
      ar_report_json = None;
    }
  in
  match
    Barrier.protect ~app:id (fun () ->
        Barrier.set_phase "codegen";
        let apk = Lazy.force e.Corpus.c_apk in
        (apk, Store.key ~config apk))
  with
  | Result.Error crash ->
      jot
        (Journal.Crashed
           {
             ev_app = id;
             ev_phase = crash.Barrier.cr_phase;
             ev_exn = crash.Barrier.cr_exn;
           });
      (quarantined crash "" 1, "")
  | Result.Ok (apk, key) -> (
      let key_s = Store.key_to_string key in
      (* A force-crashed app must actually crash: the hook simulates an
         app the pipeline dies on, and a cached result would dodge the
         simulation (and with it the quarantine path under test). *)
      let cache_hit =
        match cache with
        | _ when o.ro_force_crash = Some id -> None
        | None -> None
        | Some c -> (
            match Store.find c key with
            | Some data -> (
                match inspect_report_json data with
                | Some (status, txs, degs) -> Some (data, status, txs, degs)
                | None -> None)
            | None -> None)
      in
      match cache_hit with
      | Some (data, status, txs, degradations) ->
          Provenance.record_cache_hit Provenance.default ~app:id ~key:key_s;
          jot
            (Journal.Finished
               {
                 ev_app = id;
                 ev_key = key_s;
                 ev_status = status_name status;
                 ev_cached = true;
                 ev_attempts = 0;
                 ev_txs = txs;
               });
          ( {
              ar_app = id;
              ar_status = status;
              ar_cached = true;
              ar_resumed = false;
              ar_attempts = 0;
              ar_txs = txs;
              ar_degradations = degradations;
              ar_elapsed_s = 0.0;
              ar_crash = None;
              ar_report_json = Some data;
            },
            key_s )
      | None -> (
          jot (Journal.Started { ev_app = id; ev_key = key_s; ev_attempt = 1 });
          let outcome =
            Retry.run ~sleep:o.ro_sleep
              ~on_retry:(fun ~attempt ~reason ->
                jot
                  (Journal.Retried
                     { ev_app = id; ev_attempt = attempt; ev_reason = reason }))
              o.ro_policy ~limits:o.ro_pipeline.Pipeline.op_limits
              ~attempt:(fun ~attempt:_ limits ->
                let opts = { o.ro_pipeline with Pipeline.op_limits = limits } in
                match
                  Barrier.protect ~app:id (fun () ->
                      if o.ro_force_crash = Some id then
                        failwith forced_crash_message;
                      Pipeline.analyze ~options:opts apk)
                with
                | Result.Ok a ->
                    let r = a.Pipeline.an_report in
                    if r.Report.rp_degradations = [] then
                      Result.Ok (Retry.Clean a)
                    else Result.Ok (Retry.Degraded a)
                | Result.Error crash ->
                    jot
                      (Journal.Crashed
                         {
                           ev_app = id;
                           ev_phase = crash.Barrier.cr_phase;
                           ev_exn = crash.Barrier.cr_exn;
                         });
                    Result.Error crash)
          in
          let finish status (a : Pipeline.analysis) attempts =
            let report = a.Pipeline.an_report in
            let data =
              Json.to_string (Report.to_json ~deterministic:true report)
            in
            (* Journal before store: a kill between the two re-runs the
               app on resume (benign); the reverse order would let a
               resumed run find a cache entry the journal never
               finished, and report it as cached when the uninterrupted
               run would not have. *)
            jot
              (Journal.Finished
                 {
                   ev_app = id;
                   ev_key = key_s;
                   ev_status = status_name status;
                   ev_cached = false;
                   ev_attempts = attempts;
                   ev_txs = List.length report.Report.rp_transactions;
                 });
            do_store key data;
            {
              ar_app = id;
              ar_status = status;
              ar_cached = false;
              ar_resumed = false;
              ar_attempts = attempts;
              ar_txs = List.length report.Report.rp_transactions;
              ar_degradations = report.Report.rp_degradations;
              ar_elapsed_s = report.Report.rp_elapsed_s;
              ar_crash = None;
              ar_report_json = Some data;
            }
          in
          match outcome with
          | Retry.Succeeded (a, n) -> (finish Ok a n, key_s)
          | Retry.Still_degraded (a, n) -> (finish Degraded a n, key_s)
          | Retry.Quarantined (crash, n) -> (quarantined crash key_s n, key_s)))

(* Parallel corpus execution over the fork pool.  The coordinator owns
   the journal (workers [emit] events over their pipe), the cache writes
   (workers send the serialized report back; storing after the Finished
   event is journaled preserves the sequential crash-consistency order)
   and the metrics registry (each worker resets the inherited registry
   before its task and ships the per-task delta back for merging).

   Workers also ship telemetry: the spans their tracer recorded during
   the task ride along with each result, and whatever accumulates after
   the last result comes back in the farewell frame on clean shutdown.
   The coordinator buckets shipped spans by worker pid — one trace lane
   per worker — and returns the lanes for the CLI's merged trace export.

   Results are published in corpus order no matter when they complete:
   each finished slot waits until every earlier slot is filled, so
   [on_result] rows, [rn_results] and the report envelope are
   byte-identical to a --jobs 1 run.  On interrupt only the contiguous
   emitted prefix is returned — the same partial-table shape the
   sequential path produces. *)
let run_pooled ~jot ~try_restore ~cache ~config ~on_result ~on_state
    (o : options) (entries : (string * Corpus.entry) array) :
    app_result list * bool * (int * Span.span list) list =
  let n = Array.length entries in
  let slots = Array.make n None in
  let emitted = ref 0 in
  let acc = ref [] in
  let emit_ready () =
    while
      !emitted < n
      &&
      match slots.(!emitted) with
      | Some r ->
          acc := r :: !acc;
          on_result r;
          true
      | None -> false
    do
      incr emitted
    done
  in
  (* Resume-restored apps resolve in the coordinator; only the rest are
     dispatched to workers. *)
  let tasks = ref [] in
  Array.iteri
    (fun i (id, _) ->
      match try_restore id with
      | Some r -> slots.(i) <- Some r
      | None -> tasks := i :: !tasks)
    entries;
  let tasks = List.rev !tasks in
  emit_ready ();
  (* Corpus entries that share an app name share a cache key (the
     fingerprint digests the same APK bytes), so sequentially the later
     duplicate is always an intra-run cache hit.  Racing them in
     parallel would make cached/attempts nondeterministic; serialize
     each duplicate behind the previous entry of the same name. *)
  let dep = Array.make n [] in
  let last_by_name = Hashtbl.create 41 in
  Array.iteri
    (fun i (_, (e : Corpus.entry)) ->
      let name = e.Corpus.c_app.Spec.a_name in
      (match Hashtbl.find_opt last_by_name name with
      | Some j -> dep.(i) <- [ j ]
      | None -> ());
      Hashtbl.replace last_by_name name i)
    entries;
  (* Shipped spans, bucketed by worker pid: one trace lane per worker
     process.  Batches arrive in completion order; the exporter re-sorts
     each lane by begin time. *)
  let worker_spans : (int, Span.span list ref) Hashtbl.t = Hashtbl.create 8 in
  let add_spans pid spans =
    if spans <> [] then
      match Hashtbl.find_opt worker_spans pid with
      | Some l -> l := !l @ spans
      | None -> Hashtbl.replace worker_spans pid (ref spans)
  in
  (* Everything the worker's telemetry recorded since its last shipment,
     cleared so the next shipment is again a pure delta.  Runs in the
     worker; the coordinator merges the frames it receives. *)
  let take_telemetry () =
    let samples = Metrics.snapshot Metrics.default in
    let spans = Span.spans Span.default in
    let profile = Profile.snapshot Profile.default in
    Metrics.reset Metrics.default;
    Span.reset Span.default;
    Profile.reset Profile.default;
    (samples, spans, profile, Unix.getpid ())
  in
  let outcome =
    if tasks = [] then Pool.Completed
    else
      Pool.run
        ~deps:(fun i -> dep.(i))
        ~on_state
        ?hang_timeout:o.ro_hang_timeout
        ~on_hang:(fun ~task:i ~phase ->
          let id, _ = entries.(i) in
          jot
            (Journal.Retried
               { ev_app = id; ev_attempt = 2; ev_reason = "hung@" ^ phase }))
        ~jobs:(min o.ro_jobs (List.length tasks))
        ~tasks
        ~worker:(fun ~emit ~beat i ->
          let id, e = entries.(i) in
          if o.ro_heartbeat then
            Barrier.set_observer (fun p -> beat ~phase:p);
          (match o.ro_worker_kill with
          | Some k when k = id -> Unix._exit 86
          | _ -> ());
          (* Injected wedge: spin without heartbeats so the watchdog has
             something to catch.  The mode string targets one app. *)
          (match Fault.fire ~arg:id "worker.spin" with
          | Some _ ->
              Barrier.set_phase "spin";
              while true do
                Unix.sleepf 0.01
              done
          | None -> ());
          (* The registry and tracer were inherited from the coordinator
             (or hold the previous task's residue before the first
             take_telemetry); reset so the shipment is exactly this
             task's delta. *)
          Metrics.reset Metrics.default;
          Span.reset Span.default;
          Profile.reset Profile.default;
          let r, key_s =
            run_app ~jot:emit ~do_store:(fun _ _ -> ()) ~cache o ~config id e
          in
          let samples, spans, profile, pid = take_telemetry () in
          (r, key_s, samples, spans, profile, pid))
        ~farewell:take_telemetry
        ~on_event:jot
        ~on_bye:(fun (samples, spans, profile, pid) ->
          Metrics.merge_samples Metrics.default samples;
          Profile.merge Profile.default profile;
          add_spans pid spans)
        ~on_death:(fun ~task:i ~cause ->
          let id, _ = entries.(i) in
          let phase, reason =
            match cause with
            | Pool.Died reason -> ("worker", reason)
            | Pool.Hung { hd_phase; hd_silent_s } ->
                ( "hung@" ^ hd_phase,
                  Printf.sprintf "no heartbeat for %.1fs; killed by watchdog"
                    hd_silent_s )
          in
          jot
            (Journal.Crashed
               { ev_app = id; ev_phase = phase; ev_exn = reason });
          jot
            (Journal.Finished
               {
                 ev_app = id;
                 ev_key = "";
                 ev_status = status_name Quarantined;
                 ev_cached = false;
                 ev_attempts = 1;
                 ev_txs = 0;
               });
          ( {
              ar_app = id;
              ar_status = Quarantined;
              ar_cached = false;
              ar_resumed = false;
              ar_attempts = 1;
              ar_txs = 0;
              ar_degradations = [];
              ar_elapsed_s = 0.0;
              ar_crash =
                Some
                  {
                    Barrier.cr_app = id;
                    cr_exn = reason;
                    cr_phase = phase;
                    cr_backtrace = "";
                  };
              ar_report_json = None;
            },
            "",
            [],
            [],
            { Profile.sn_entries = []; sn_wastes = [] },
            0 ))
        ~on_result:(fun i (r, key_s, samples, spans, profile, pid) ->
          Metrics.merge_samples Metrics.default samples;
          Profile.merge Profile.default profile;
          add_spans pid spans;
          (match (cache, r.ar_report_json) with
          | Some c, Some data when not r.ar_cached -> (
              match Store.key_of_string key_s with
              | Some k -> Store.store c k data
              | None -> ())
          | _ -> ());
          slots.(i) <- Some r;
          emit_ready ())
        ()
  in
  let lanes =
    Hashtbl.fold (fun pid l acc -> (pid, !l) :: acc) worker_spans []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  (List.rev !acc, outcome = Pool.Interrupted, lanes)

let run ?(on_result = fun (_ : app_result) -> ())
    ?(on_journal = fun (_ : Journal.event) -> ())
    ?(on_state = fun ~busy:(_ : int) ~idle:(_ : int) ~pending:(_ : int) -> ())
    (o : options) (entries : Corpus.entry list) : (run, string) result =
  let config = config_fingerprint o in
  (* The journal header carries the shard identity on top of [config]:
     cache keys stay shard-independent (merge unions them), the journal
     does not (shard 2 must not resume shard 1's journal). *)
  let jconfig = journal_fingerprint o in
  let shard_ok =
    match o.ro_shard with
    | None -> Result.Ok ()
    | Some (k, n) when k >= 1 && k <= n -> Result.Ok ()
    | Some (k, n) ->
        Result.Error
          (Printf.sprintf "--shard %d/%d: K must be between 1 and N" k n)
  in
  (* Open the cache first: a bad --cache-dir is a usage error, not
     something to discover halfway through the corpus. *)
  let cache =
    match shard_ok with
    | Result.Error msg -> Result.Error msg
    | Result.Ok () -> (
        match o.ro_cache_dir with
        | None -> Result.Ok None
        | Some dir -> (
            try Result.Ok (Some (Store.open_ ~dir ()))
            with Sys_error msg ->
              Result.Error (Printf.sprintf "cache directory: %s" msg)))
  in
  (* The journal: fresh for a new run, replayed for --resume.  Resuming
     yields the map of already-finished apps and the crash each
     quarantined app last died with (the report envelope needs it). *)
  let journal =
    match (o.ro_resume, o.ro_journal) with
    | true, None -> Result.Error "--resume requires --journal PATH"
    | true, Some path -> (
        match Journal.load ~path ~config:jconfig () with
        | Result.Error msg -> Result.Error msg
        | Result.Ok (j, events, anomalies) ->
            (* Dropped records mean the affected apps simply re-run —
               resume degrades to recomputation, never trusts a corrupt
               artifact. *)
            List.iter
              (fun a ->
                Log.warn (fun m ->
                    m "%s: dropped corrupt journal record (%a)" path
                      Journal.pp_anomaly a))
              anomalies;
            if anomalies <> [] then
              Metrics.incr ~by:(List.length anomalies) m_journal_dropped;
            let crashes = Hashtbl.create 8 in
            List.iter
              (function
                | Journal.Crashed { ev_app; ev_phase; ev_exn } ->
                    Hashtbl.replace crashes ev_app (ev_phase, ev_exn)
                | _ -> ())
              events;
            Result.Ok (Some j, Journal.finished events, crashes))
    | false, None -> Result.Ok (None, [], Hashtbl.create 0)
    | false, Some path ->
        Result.Ok
          (Some (Journal.create ~path ~config:jconfig ()), [], Hashtbl.create 0)
  in
  match (cache, journal) with
  | Result.Error msg, _ | _, Result.Error msg -> Result.Error msg
  | Result.Ok cache, Result.Ok (journal, done_map, past_crashes) ->
      (* Journal first (fsync'd), observer second — the progress display
         must never see an event the journal could still lose. *)
      let jot ev =
        Option.iter (fun j -> Journal.append j ev) journal;
        on_journal ev
      in
      let on_result r =
        if r.ar_cached then Metrics.incr m_cache_hits;
        if r.ar_resumed then Metrics.incr m_restored;
        on_result r
      in
      (* Restore an app the journal marked finished: quarantined apps
         replay their recorded crash; ok/degraded apps come back from
         the cache.  A cache miss (evicted entry, no --cache-dir) falls
         through to a fresh run — resume never produces a hole. *)
      let restore app (f : Journal.event) =
        match f with
        | Journal.Finished { ev_key; ev_status; ev_cached; ev_attempts; ev_txs; _ }
          -> (
            match status_of_name ev_status with
            | Some Quarantined ->
                let phase, exn_s =
                  match Hashtbl.find_opt past_crashes app with
                  | Some pe -> pe
                  | None -> ("?", "crash record missing from journal")
                in
                Some
                  {
                    ar_app = app;
                    ar_status = Quarantined;
                    ar_cached = false;
                    ar_resumed = true;
                    ar_attempts = ev_attempts;
                    ar_txs = 0;
                    ar_degradations = [];
                    ar_elapsed_s = 0.0;
                    ar_crash =
                      Some
                        {
                          Barrier.cr_app = app;
                          cr_exn = exn_s;
                          cr_phase = phase;
                          cr_backtrace = "";
                        };
                    ar_report_json = None;
                  }
            | Some status -> (
                let entry =
                  match (cache, Store.key_of_string ev_key) with
                  | Some c, Some k -> Store.find c k
                  | _ -> None
                in
                match entry with
                | Some data ->
                    let degradations =
                      match inspect_report_json data with
                      | Some (_, _, ds) -> ds
                      | None -> []
                    in
                    Some
                      {
                        ar_app = app;
                        ar_status = status;
                        (* The journal's cached flag, not "true": a
                           resumed run must serialize exactly like the
                           uninterrupted run it replaces. *)
                        ar_cached = ev_cached;
                        ar_resumed = true;
                        ar_attempts = ev_attempts;
                        ar_txs = ev_txs;
                        ar_degradations = degradations;
                        ar_elapsed_s = 0.0;
                        ar_crash = None;
                        ar_report_json = Some data;
                      }
                | None ->
                    Log.warn (fun m ->
                        m "%s finished in the journal but not in the cache; re-running"
                          app);
                    None)
            | None -> None)
        | _ -> None
      in
      (* Identify on the full corpus, then keep this shard's slice: "#N"
         identities are shard-independent, and namesakes co-locate (the
         partition hashes the shared name), so the merged result set is
         exactly the unsharded one. *)
      let identified =
        let all = identify entries in
        match o.ro_shard with
        | None -> all
        | Some (k, n) ->
            List.filter
              (fun ((_, e) : string * Corpus.entry) ->
                shard_index ~shards:n e.Corpus.c_app.Spec.a_name = k - 1)
              all
      in
      let try_restore id =
        if o.ro_resume then Option.bind (List.assoc_opt id done_map) (restore id)
        else None
      in
      let results, interrupted, worker_spans =
        if o.ro_jobs > 1 && List.length identified > 1 then
          run_pooled ~jot ~try_restore ~cache ~config ~on_result ~on_state o
            (Array.of_list identified)
        else begin
          let results = ref [] in
          let interrupted = ref false in
          (try
             List.iter
               (fun (id, (e : Corpus.entry)) ->
                 let res =
                   match try_restore id with
                   | Some restored -> restored
                   | None ->
                       fst
                         (run_app ~jot
                            ~do_store:(fun k d ->
                              Option.iter (fun c -> Store.store c k d) cache)
                            ~cache o ~config id e)
                 in
                 results := res :: !results;
                 on_result res)
               identified
           with Barrier.Interrupted ->
             (* Journal appends are fsync'd and already on disk; nothing
                to flush.  Return what completed so the caller can print
                the partial table. *)
             interrupted := true);
          (List.rev !results, !interrupted, [])
        end
      in
      Result.Ok
        {
          rn_results = results;
          rn_interrupted = interrupted;
          rn_worker_spans = worker_spans;
          rn_quarantined =
            List.filter_map
              (fun a -> if a.ar_status = Quarantined then Some a.ar_app else None)
              results;
        }

(* ------------------------------------------------------------------ *)
(* Corpus report envelope                                             *)
(* ------------------------------------------------------------------ *)

(* Built by hand so each app's deterministic report string is spliced in
   verbatim: round-tripping through the Json value model would reprint
   floats and break the byte-identity --resume guarantees.  [extra]
   members ([merge]'s missing_shards[] and friends) are spliced between
   the config and the apps as raw JSON values; an empty [extra] changes
   nothing, which is what keeps a clean merge byte-identical to the
   unsharded envelope. *)
let report_json ?(extra = []) ~config (r : run) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"config\":\"%s\"" (Json.escape_string config));
  if r.rn_interrupted then Buffer.add_string buf ",\"interrupted\":true";
  List.iter
    (fun (k, raw) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":" (Json.escape_string k));
      Buffer.add_string buf raw)
    extra;
  Buffer.add_string buf ",\"apps\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"app\":\"%s\",\"status\":\"%s\",\"cached\":%b,\"attempts\":%d"
           (Json.escape_string a.ar_app)
           (status_name a.ar_status)
           a.ar_cached a.ar_attempts);
      (match a.ar_crash with
      | Some c ->
          Buffer.add_string buf
            (Printf.sprintf ",\"crash\":{\"phase\":\"%s\",\"exn\":\"%s\"}"
               (Json.escape_string c.Barrier.cr_phase)
               (Json.escape_string c.Barrier.cr_exn))
      | None -> ());
      (match a.ar_report_json with
      | Some data ->
          Buffer.add_string buf ",\"report\":";
          Buffer.add_string buf data
      | None -> ());
      Buffer.add_char buf '}')
    r.rn_results;
  Buffer.add_string buf "]}";
  Buffer.contents buf
