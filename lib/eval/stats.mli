(** Offline run statistics: [extractocol stats].

    Reconstructs an [--all] run's report purely from the artifacts it
    left behind — the write-ahead journal (required; read-only via
    {!Extr_resilience.Journal.read}, so a journal from a killed or
    still-running run is safe), the result cache directory and the
    metrics snapshot (both optional).  Per-app status and wall time come
    from the journal's stamped started/finished records; retry-ladder
    and crash taxonomies from the retried/crashed records; per-phase
    latency percentiles from the [pipeline.phase_us] series the metrics
    exporter annotates with p50/p95/p99.

    {!summary_line} reproduces the exact footer [--all] prints, so the
    offline view can be diffed against the live run (the [trace_check]
    CI rule does). *)

type app = {
  st_app : string;
  st_status : string;
      (** ["ok"], ["degraded"], ["quarantined"], or ["in-flight"] when
          the journal's last record for the app is not [finished] (a
          killed or live run) *)
  st_cached : bool;
  st_attempts : int;
  st_txs : int;
  st_wall_s : float option;
      (** first [started] to last [finished] stamp; [None] for cached
          results (never started) and unstamped legacy journals *)
}

type phase = {
  ph_name : string;
  ph_count : int;
  ph_p50_us : float option;
  ph_p95_us : float option;
  ph_p99_us : float option;
}

type hotspot = {
  hs_meth : string;
  hs_phase : string;  (** ["slicing.backward"], ["interpretation"], … *)
  hs_time_s : float;  (** self time attributed to the method in the phase *)
  hs_fuel : int;
  hs_visits : int;
  hs_facts : int;
}

type waste = {
  ws_scope : string;  (** app name *)
  ws_touched : int;
  ws_contributing : int;
  ws_ratio : float;  (** (touched − contributing) / touched *)
}

type t = {
  rs_config : string;  (** the journal header's config fingerprint *)
  rs_apps : app list;  (** journal order of first appearance *)
  rs_finished : int;
  rs_ok : int;
  rs_degraded : int;
  rs_quarantined : int;
  rs_cached : int;
  rs_retries : (string * int) list;  (** retry reason → count, desc *)
  rs_crashes : (string * int) list;  (** crash phase → count, desc *)
  rs_wall_s : float option;  (** first to last record stamp *)
  rs_dropped : int;
      (** corrupt journal records the lenient reader dropped — non-zero
          means the numbers below may undercount a damaged run *)
  rs_cache_entries : int option;  (** results on disk under the cache dir *)
  rs_phases : phase list;  (** [pipeline.phase_us] series, if metrics given *)
  rs_hotspots : hotspot list;
      (** [--profile-out] artifact rows, self time descending *)
  rs_wastes : waste list;  (** waste rows from the profile artifact *)
}

val of_artifacts :
  journals:string list ->
  ?cache_dir:string ->
  ?metrics:string ->
  ?profile:string ->
  unit ->
  (t, string) result
(** One journal reconstructs the classic single-run view; several (a
    repeated [--journal] on the CLI) pool a shard set without running
    [merge] first: shard suffixes are stripped from the fingerprints
    (which must share a base), events merge in stamp order, and the
    summary covers the whole fleet.  A zero-byte journal — a shard that
    died before writing its header — counts as an empty run, not an
    error.  [Error] when a journal file is unreadable, a non-empty one
    is headerless, the bases disagree, or a given metrics/profile file
    is unreadable/not JSON.  A missing cache directory yields
    [rs_cache_entries = None], not an error. *)

val summary_line : t -> string
(** Exactly the [--all] footer:
    ["N apps: N ok, N degraded, N quarantined (N from cache)"] over the
    journal-finished apps. *)

val slowest : ?n:int -> t -> (app * float) list
(** The [n] (default 5) slowest apps by journal wall time, descending. *)

val pp : Format.formatter -> t -> unit
(** The full human-readable report: summary, slowest apps, retry ladder,
    crash taxonomy, cache hit rate, per-phase percentile table, and —
    when a profile artifact was given — the hot-method table and the
    per-app waste summary. *)

(** {1 Offline integrity audit ([stats --verify])} *)

type verify_report = {
  vr_journal_anomalies : (string * Extr_resilience.Journal.anomaly list) list;
      (** journals containing corrupt records (checksum failures,
          unparseable lines), in input order; the lists are non-empty *)
  vr_journal_errors : (string * string) list;
      (** journals that could not be read at all *)
  vr_cache_checked : int;  (** cache entries whose content digest was checked *)
  vr_cache_corrupt : (string * string) list;  (** entry file → reason *)
}

val verify :
  journals:string list -> ?cache_dir:string -> unit -> verify_report
(** Audit a shard set's artifacts without reconstructing the run: every
    journal record's checksum is re-verified ({!Extr_resilience.Journal.read_lenient})
    and every cache entry's content digest re-computed
    ({!Extr_store.Store.audit}).  Read-only and crash-tolerant like the
    rest of this module.  A torn final record (no trailing newline) is
    the normal kill shape, not corruption, and does not appear here. *)

val verify_clean : verify_report -> bool
(** No anomalies, no unreadable journals, no corrupt cache entries —
    the CLI exits 0 on [true] and 3 otherwise. *)

val pp_verify : Format.formatter -> verify_report -> unit
