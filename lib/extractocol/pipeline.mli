(** End-to-end Extractocol pipeline (Figure 2): APK in, reconstructed HTTP
    transactions out — program + call graph construction, network-aware
    slicing, signature extraction, pairing and dependency analysis. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Slicer = Extr_slicing.Slicer
module Apk = Extr_apk.Apk
module Resilience = Extr_resilience.Resilience

type options = {
  op_async_heuristic : bool;  (** §3.4 heuristic: on for closed-source apps *)
  op_async_iterations : int;  (** heap-carrier hops (1 = paper default) *)
  op_augmentation : bool;  (** object-aware slice augmentation *)
  op_scope : string option;  (** restrict analysis to a class prefix (§5.3) *)
  op_context_sensitive : bool;  (** disjoint pairing contexts (Figure 5) *)
  op_restrict_to_slices : bool;  (** interpret only slice-relevant methods *)
  op_intents : bool;
      (** resolve intent-service dispatch (extension; off reproduces the
          paper's §4 limitation and Table 1's deliberate misses) *)
  op_eager_callgraph : bool;
      (** escape hatch: resolve the whole call graph up front instead of
          demand-driven from the method index (ROADMAP item 1); reports
          are byte-identical either way, so this is deliberately not part
          of {!options_fingerprint} *)
  op_limits : Resilience.Budget.limits;
      (** resource-governance limits for the per-run budget shared by the
          taint engines and the interpreter; {!analyze} resets the default
          degradation ledger, creates one budget, and surfaces whatever
          accumulated in the report *)
}

val default_options : options

val open_source_options : options
(** The §5.1 open-source configuration: asynchronous-event heuristic off. *)

val options_fingerprint : options -> string
(** Canonical one-line serialization of every result-affecting option —
    the configuration part of the {!Extr_store.Store} cache key and of
    the journal header [--resume] validates against. *)

type analysis = {
  an_apk : Apk.t;
  an_prog : Prog.t;
  an_cg : Callgraph.t;
  an_slices : Slicer.result;
  an_txs : Txn.t list;  (** raw (pre-dedup) transactions *)
  an_pairs : Pairing.pair list;
  an_report : Report.t;
}

val phase_names : string list
(** The Figure 2 stages in execution order.  {!analyze} records one
    telemetry span named ["pipeline.<phase>"] per stage (nested under
    ["pipeline.analyze"]) when the default tracer is enabled. *)

val with_library_classes : Ir.program -> Ir.program
(** Ensure the modelled library classes are present (needed to resolve
    framework superclasses). *)

val analyze : ?options:options -> Apk.t -> analysis
