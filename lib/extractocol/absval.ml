(* Abstract values for the signature-building interpretation (§3.2).  The
   signature builder "maintains data structures to reconstruct data
   operations encoded in the slice": strings carry their signature in the
   intermediate language, JSON/XML builders carry trees, and response-
   derived values carry provenance (which transaction, which field) so
   inter-transaction dependencies can be inferred (§3.3).

   Objects live in a functional heap carried by each execution state:
   aliases share an object id, branch states fork the heap and merge at
   confluence points — value merging is disjunction (§3.2), loop-header
   merging is widening with [rep]. *)

module Strsig = Extr_siglang.Strsig
module Jsonsig = Extr_siglang.Jsonsig

(** Provenance of a response-derived value: transaction id, the path of
    fields under which the value sat in the response body, and an optional
    mediator (e.g. a database table) the value travelled through. *)
type prov = { p_tx : int; p_path : string list; p_via : string option }

(** String abstraction: the signature, response provenance, privacy
    sources (gps/microphone), the structured signature when the string was
    serialized from a JSON builder, and per-key provenance for dependency
    recording. *)
type strinfo = {
  sg : Strsig.t;
  prov : prov list;
  srcs : string list;
  structured : Jsonsig.t option;
  kprov : (string * prov list) list;
}

(** Steps of a response cursor: how parsing code navigated into the body. *)
type step =
  | Sfield of string  (** JSON object field *)
  | Sindex  (** JSON array element *)
  | Schild of string  (** XML child element *)
  | Sattr of string  (** XML attribute *)
  | Stext  (** XML text content *)

type cursor = { cu_tx : int; cu_path : step list }

(** Object reference: identity plus class; slots live in the heap. *)
type obj = { o_id : int; o_cls : string }

type t =
  | Vtop
  | Vnull
  | Vbool of bool option
  | Vint of int option
  | Vstr of strinfo
  | Vobj of obj
  | Vlist of t list  (** immutable list snapshot stored inside object slots *)
  | Vpair of t * t
  | Vcursor of cursor  (** a position inside some response body *)

module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type slots = t SMap.t

(** The functional heap: object id → slots. *)
type heap = slots IMap.t

let empty_heap : heap = IMap.empty

let next_obj_id = ref 0

(** Allocate an object in a heap ref; ids are globally unique. *)
let halloc (href : heap ref) cls : obj =
  incr next_obj_id;
  let o = { o_id = !next_obj_id; o_cls = cls } in
  href := IMap.add o.o_id SMap.empty !href;
  o

let obj_slots (h : heap) (o : obj) : slots =
  Option.value (IMap.find_opt o.o_id h) ~default:SMap.empty

let hslot (href : heap ref) (o : obj) name : t option =
  SMap.find_opt name (obj_slots !href o)

let hset (href : heap ref) (o : obj) name (v : t) : unit =
  href := IMap.add o.o_id (SMap.add name v (obj_slots !href o)) !href

(* ------------------------------------------------------------------ *)
(* String helpers                                                     *)
(* ------------------------------------------------------------------ *)

let str_of_sig ?(prov = []) ?(srcs = []) ?structured sg =
  Vstr { sg; prov; srcs; structured; kprov = [] }

let str_lit s = str_of_sig (Strsig.lit s)
let str_unknown = str_of_sig Strsig.unknown

let path_of_steps steps =
  List.map
    (function
      | Sfield f -> f
      | Sindex -> "[]"
      | Schild c -> c
      | Sattr a -> "@" ^ a
      | Stext -> "#text")
    steps

let prov_of_cursor cu =
  { p_tx = cu.cu_tx; p_path = path_of_steps cu.cu_path; p_via = None }

let plain_strinfo sg = { sg; prov = []; srcs = []; structured = None; kprov = [] }

let strinfo_of = function
  | Vstr si -> si
  | Vint (Some n) -> plain_strinfo (Strsig.lit (string_of_int n))
  | Vint None -> plain_strinfo Strsig.num
  | Vbool (Some b) -> plain_strinfo (Strsig.lit (string_of_bool b))
  | Vbool None -> plain_strinfo (Strsig.Unknown Strsig.Hbool)
  | Vnull -> plain_strinfo (Strsig.lit "null")
  | Vcursor cu ->
      (* Stringified response subtree: unknown content, full provenance. *)
      { (plain_strinfo Strsig.unknown) with prov = [ prov_of_cursor cu ] }
  | Vtop | Vobj _ | Vlist _ | Vpair _ -> plain_strinfo Strsig.unknown

(** Concatenate two values as strings (StringBuilder.append semantics):
    signatures concatenate, provenance and sources union. *)
let str_concat a b =
  let ia = strinfo_of a and ib = strinfo_of b in
  Vstr
    {
      sg = Strsig.append ia.sg ib.sg;
      prov = ia.prov @ ib.prov;
      srcs = List.sort_uniq String.compare (ia.srcs @ ib.srcs);
      structured = None;
      kprov = [];
    }

(* ------------------------------------------------------------------ *)
(* Heap-aware traversals                                              *)
(* ------------------------------------------------------------------ *)

(** All provenance records reachable inside a value (bounded depth). *)
let collect_prov (h : heap) (v : t) : prov list =
  let acc = ref [] in
  let seen = Hashtbl.create 8 in
  let rec go depth v =
    if depth < 12 then
      match v with
      | Vstr si -> acc := si.prov @ !acc
      | Vcursor cu -> acc := prov_of_cursor cu :: !acc
      | Vobj o ->
          if not (Hashtbl.mem seen o.o_id) then begin
            Hashtbl.replace seen o.o_id ();
            SMap.iter (fun _ v' -> go (depth + 1) v') (obj_slots h o)
          end
      | Vlist items -> List.iter (go (depth + 1)) items
      | Vpair (a, b) ->
          go (depth + 1) a;
          go (depth + 1) b
      | Vtop | Vnull | Vbool _ | Vint _ -> ()
  in
  go 0 v;
  !acc

(** All privacy-source tags reachable inside a value. *)
let collect_srcs (h : heap) (v : t) : string list =
  let acc = ref [] in
  let seen = Hashtbl.create 8 in
  let rec go depth v =
    if depth < 12 then
      match v with
      | Vstr si -> acc := si.srcs @ !acc
      | Vobj o ->
          if not (Hashtbl.mem seen o.o_id) then begin
            Hashtbl.replace seen o.o_id ();
            SMap.iter (fun _ v' -> go (depth + 1) v') (obj_slots h o)
          end
      | Vlist items -> List.iter (go (depth + 1)) items
      | Vpair (a, b) ->
          go (depth + 1) a;
          go (depth + 1) b
      | Vtop | Vnull | Vbool _ | Vint _ | Vcursor _ -> ()
  in
  go 0 v;
  List.sort_uniq String.compare !acc

(* ------------------------------------------------------------------ *)
(* Structural equality                                                *)
(* ------------------------------------------------------------------ *)

(** Structural equality modulo object identity: two objects are equal when
    their classes and reachable slots agree (fresh allocation ids from
    separate interpretation passes must not defeat fixed-point checks). *)
let equal_val (ha : heap) (hb : heap) a b =
  let rec go depth a b =
    depth < 10
    &&
    match (a, b) with
    | Vtop, Vtop | Vnull, Vnull -> true
    | Vbool x, Vbool y -> x = y
    | Vint x, Vint y -> x = y
    | Vstr x, Vstr y ->
        Strsig.equal x.sg y.sg && x.prov = y.prov && x.srcs = y.srcs
    | Vcursor x, Vcursor y -> x = y
    | Vobj x, Vobj y ->
        x.o_cls = y.o_cls
        &&
        let sx = obj_slots ha x and sy = obj_slots hb y in
        SMap.cardinal sx = SMap.cardinal sy
        && SMap.for_all
             (fun k v ->
               match SMap.find_opt k sy with
               | Some v' -> go (depth + 1) v v'
               | None -> false)
             sx
    | Vlist xs, Vlist ys ->
        List.length xs = List.length ys
        && List.for_all2 (fun x y -> go (depth + 1) x y) xs ys
    | Vpair (a1, b1), Vpair (a2, b2) -> go (depth + 1) a1 a2 && go (depth + 1) b1 b2
    | ( (Vtop | Vnull | Vbool _ | Vint _ | Vstr _ | Vobj _ | Vlist _ | Vpair _ | Vcursor _),
        _ ) ->
        false
  in
  go 0 a b

(* ------------------------------------------------------------------ *)
(* Merge (confluence) and widening (loop headers)                      *)
(* ------------------------------------------------------------------ *)

(* Provenance merge runs at every confluence point; membership through a
   hash set keeps it O(|a|+|b|) where the old List.mem filter was
   O(|a|·|b|) — superlinear on loop-heavy apps.  Semantics (and therefore
   the report JSON) are unchanged: [a]'s elements first, then the
   elements of [b] not already in [a], in [b]'s order — including any
   duplicates internal to [b], exactly as the List.mem version kept. *)
let merge_strinfo combine_sig (a : strinfo) (b : strinfo) =
  let prov =
    if b.prov = [] then a.prov
    else begin
      let seen = Hashtbl.create (2 * List.length a.prov + 1) in
      List.iter (fun p -> Hashtbl.replace seen p ()) a.prov;
      a.prov @ List.filter (fun p -> not (Hashtbl.mem seen p)) b.prov
    end
  in
  let kprov =
    if b.kprov = [] then a.kprov
    else begin
      let seen = Hashtbl.create (2 * List.length a.kprov + 1) in
      List.iter (fun (k, _) -> Hashtbl.replace seen k ()) a.kprov;
      a.kprov @ List.filter (fun (k, _) -> not (Hashtbl.mem seen k)) b.kprov
    end
  in
  {
    sg = combine_sig a.sg b.sg;
    prov;
    srcs = List.sort_uniq String.compare (a.srcs @ b.srcs);
    structured = (match (a.structured, b.structured) with
      | Some x, Some y when x = y -> Some x
      | _, _ -> None);
    kprov;
  }

(** Merge two values from two states into a result heap (mutated through
    [href]).  [combine_sig] is [Strsig.alt] at plain confluence points and
    the rep-widening combinator at loop headers. *)
let merge_val ~combine_sig (ha : heap) (hb : heap) (href : heap ref) a b =
  let rec go depth a b =
    if depth > 10 then Vtop
    else
      match (a, b) with
      | _ when equal_val ha hb a b -> a
      | Vtop, _ | _, Vtop -> Vtop
      | Vnull, v | v, Vnull -> v
      | Vint (Some x), Vint (Some y) when x = y -> Vint (Some x)
      | Vint _, Vint _ -> Vint None
      | Vbool _, Vbool _ -> Vbool None
      | ( (Vstr _ | Vint _ | Vbool _ | Vcursor _),
          (Vstr _ | Vint _ | Vbool _ | Vcursor _) ) ->
          Vstr (merge_strinfo combine_sig (strinfo_of a) (strinfo_of b))
      | Vobj x, Vobj y when x.o_cls = y.o_cls ->
          let sx = obj_slots ha x and sy = obj_slots hb y in
          let merged =
            SMap.merge
              (fun _ u v ->
                match (u, v) with
                | Some u, Some v -> Some (go (depth + 1) u v)
                | Some u, None -> Some u
                | None, Some v -> Some v
                | None, None -> None)
              sx sy
          in
          href := IMap.add x.o_id merged !href;
          Vobj x
      | Vlist xs, Vlist ys when List.length xs = List.length ys ->
          Vlist (List.map2 (fun x y -> go (depth + 1) x y) xs ys)
      | Vlist xs, Vlist ys ->
          (* Builder-style growth: keep the longer list. *)
          if List.length xs >= List.length ys then Vlist xs else Vlist ys
      | Vpair (a1, b1), Vpair (a2, b2) ->
          Vpair (go (depth + 1) a1 a2, go (depth + 1) b1 b2)
      | (Vobj _ | Vlist _ | Vpair _ | Vstr _ | Vint _ | Vbool _ | Vcursor _), _ ->
          Vtop
  in
  go 0 a b

(** A stateful merger for joining two execution states (variable maps +
    heaps) at a confluence point.  Returns a value-merge function and a
    final-heap accessor; object graphs are merged id-wise with cycle
    protection.  The result heap starts from [h1] with [h2]-only ids
    union-ed in, and every object reached through merged values gets
    slot-wise merged contents. *)
let state_merger ~combine_sig (h1 : heap) (h2 : heap) =
  let href = ref (IMap.union (fun _ a _ -> Some a) h1 h2) in
  let visited = Hashtbl.create 16 in
  let rec mval depth a b =
    if depth > 10 then Vtop
    else
      match (a, b) with
      | Vtop, _ | _, Vtop -> Vtop
      | Vnull, Vnull -> Vnull
      | Vnull, v | v, Vnull -> v
      | Vint (Some x), Vint (Some y) when x = y -> Vint (Some x)
      | Vint _, Vint _ -> Vint None
      | Vbool (Some x), Vbool (Some y) when x = y -> Vbool (Some x)
      | Vbool _, Vbool _ -> Vbool None
      | Vcursor x, Vcursor y when x = y -> Vcursor x
      | Vstr x, Vstr y when Strsig.equal x.sg y.sg && x.prov = y.prov ->
          Vstr (merge_strinfo combine_sig x y)
      | ( (Vstr _ | Vint _ | Vbool _ | Vcursor _),
          (Vstr _ | Vint _ | Vbool _ | Vcursor _) ) ->
          Vstr (merge_strinfo combine_sig (strinfo_of a) (strinfo_of b))
      | Vobj x, Vobj y when x.o_cls = y.o_cls ->
          if not (Hashtbl.mem visited (x.o_id, y.o_id)) then begin
            Hashtbl.replace visited (x.o_id, y.o_id) ();
            let sx = obj_slots h1 x and sy = obj_slots h2 y in
            let merged =
              SMap.merge
                (fun _ u v ->
                  match (u, v) with
                  | Some u, Some v -> Some (mval (depth + 1) u v)
                  | Some u, None -> Some u
                  | None, Some v -> Some v
                  | None, None -> None)
                sx sy
            in
            href := IMap.add x.o_id merged !href
          end;
          Vobj x
      | Vlist xs, Vlist ys when List.length xs = List.length ys ->
          Vlist (List.map2 (fun x y -> mval (depth + 1) x y) xs ys)
      | Vlist xs, Vlist ys ->
          if List.length xs >= List.length ys then Vlist xs else Vlist ys
      | Vpair (a1, b1), Vpair (a2, b2) ->
          Vpair (mval (depth + 1) a1 a2, mval (depth + 1) b1 b2)
      | (Vobj _ | Vlist _ | Vpair _ | Vstr _ | Vint _ | Vbool _ | Vcursor _), _ ->
          Vtop
  in
  (mval 0, fun () -> !href)

(* ------------------------------------------------------------------ *)
(* Loop widening of string signatures                                 *)
(* ------------------------------------------------------------------ *)

let sig_parts = function Strsig.Concat ps -> ps | s -> [ s ]

(** Strip [prefix] from the front of [s]'s concat parts; returns the
    remainder when [s] textually extends [prefix]. *)
let strip_prefix prefix s =
  let rec go pre parts =
    match (pre, parts) with
    | [], rest -> Some (Strsig.concat rest)
    | p :: pre', q :: parts' when Strsig.equal p q -> go pre' parts'
    | Strsig.Lit a :: pre', Strsig.Lit b :: parts'
      when String.length b > String.length a
           && String.sub b 0 (String.length a) = a ->
        go pre'
          (Strsig.Lit
             (String.sub b (String.length a) (String.length b - String.length a))
          :: parts')
    | Strsig.Rep (Strsig.Lit d) :: pre', Strsig.Lit b :: parts' when d <> "" ->
        (* A literal repetition absorbs any number of copies of itself. *)
        let dl = String.length d in
        let rec chomp s =
          if String.length s >= dl && String.sub s 0 dl = d then
            chomp (String.sub s dl (String.length s - dl))
          else s
        in
        let rest = chomp b in
        go pre' (if rest = "" then parts' else Strsig.Lit rest :: parts')
    | Strsig.Rep _ :: pre', parts ->
        (* Zero iterations of a non-literal repetition. *)
        go pre' parts
    | _, _ -> None
  in
  go (sig_parts prefix) (sig_parts s)

(** Widen a string signature at a loop header (§3.2: "If the confluence
    point is a loop header or latch, Extractocol identifies the loop
    variant part of string objects and uses rep to mark the part can be
    repeated"). *)
let widen_sig old_sig new_sig =
  if Strsig.equal old_sig new_sig then old_sig
  else
    match strip_prefix old_sig new_sig with
    | Some delta -> (
        (* If the old signature already ends with rep{delta}, the loop has
           stabilized. *)
        match List.rev (sig_parts old_sig) with
        | Strsig.Rep d :: _ when Strsig.equal d delta -> old_sig
        | _ -> Strsig.concat [ old_sig; Strsig.rep delta ])
    | None -> (
        match Strsig.alt [ old_sig; new_sig ] with
        | Strsig.Alt branches when List.length branches > 8 -> Strsig.unknown
        | s -> s)

(* ------------------------------------------------------------------ *)
(* Conversion to JSON signatures                                      *)
(* ------------------------------------------------------------------ *)

(** Convert an abstract value to a JSON-signature leaf/tree (used when a
    JSON builder is serialized into a request body). *)
let to_jsonsig (h : heap) (v : t) : Jsonsig.t =
  let rec go depth v =
    if depth > 10 then Jsonsig.Jany
    else
      match v with
      | Vtop | Vnull -> Jsonsig.Jany
      | Vbool _ -> Jsonsig.Jbool
      | Vint (Some n) -> Jsonsig.Jconst_num n
      | Vint None -> Jsonsig.Jnum
      | Vstr si -> (
          match si.structured with Some js -> js | None -> Jsonsig.Jstr si.sg)
      | Vcursor _ -> Jsonsig.Jany
      | Vpair (_, b) -> go (depth + 1) b
      | Vlist items -> (
          match items with
          | [] -> Jsonsig.Jarr Jsonsig.Jany
          | x :: rest ->
              Jsonsig.Jarr
                (List.fold_left
                   (fun acc y -> Jsonsig.merge acc (go (depth + 1) y))
                   (go (depth + 1) x) rest))
      | Vobj o -> (
          let slots = obj_slots h o in
          match (SMap.find_opt "fields" slots, SMap.find_opt "items" slots) with
          | Some (Vlist fields), _ ->
              Jsonsig.Jobj
                (List.filter_map
                   (function
                     | Vpair (Vstr { sg = Strsig.Lit key; _ }, v') ->
                         Some (key, go (depth + 1) v')
                     | Vpair _ | Vtop | Vnull | Vbool _ | Vint _ | Vstr _
                     | Vobj _ | Vlist _ | Vcursor _ ->
                         None)
                   fields)
          | _, Some (Vlist items) -> go (depth + 1) (Vlist items)
          | _, _ -> Jsonsig.Jany)
  in
  go 0 v
