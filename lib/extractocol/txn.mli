(** Reconstructed HTTP transactions (§3.3): a paired request/response with
    the request signature, the response signature accumulated from parsing
    code, the consumers of response data, and fine-grained dependencies on
    earlier transactions. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig

(** A fine-grained dependency: the value at [dep_from_path] in transaction
    [dep_from_tx]'s response flows into field [dep_to_field] of this
    transaction's request. *)
type dep = {
  dep_from_tx : int;
  dep_from_path : string list;  (** JSON/XML path in the earlier response *)
  dep_to_field : string;  (** "uri" | "header:<h>" | "body:<k>" | "query:<k>" *)
  dep_via : string option;  (** mediator, e.g. "db:talks" for DB-mediated flows *)
}

type t = {
  tx_id : int;
  tx_dp : Ir.stmt_id;  (** the demarcation point that produced the pair *)
  tx_origin : Ir.method_id;  (** event handler the interpretation started from *)
  mutable tx_meth : Http.meth;
  mutable tx_uri : Strsig.t;
  mutable tx_headers : (string * Strsig.t) list;
  mutable tx_body : Msgsig.body_sig;
  tx_resp : Respacc.t;
  mutable tx_consumers : Msgsig.consumer list;
  mutable tx_deps : dep list;
  mutable tx_srcs : string list;  (** privacy sources feeding the request *)
  mutable tx_dynamic_uri : bool;
      (** the URI is (partly) derived from an earlier response — a
          "dynamically-derived URI" in the TED case study *)
  mutable tx_degraded : bool;
      (** the interpretation that built this signature ran out of budget:
          fragments may be missing (request parts, response paths) *)
}

val create : id:int -> dp:Ir.stmt_id -> origin:Ir.method_id -> t

val request_sig : t -> Msgsig.request_sig
val response_sig : t -> Msgsig.response_sig

val add_consumer : t -> Msgsig.consumer -> unit
val add_dep : t -> dep -> unit

val pp : Format.formatter -> t -> unit
