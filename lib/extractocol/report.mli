(** The final analysis report: deduplicated transactions with signatures,
    pairings, dependency graph, slice statistics and timing — everything
    the paper's evaluation tables consume. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Msgsig = Extr_siglang.Msgsig
module Resilience = Extr_resilience.Resilience

type transaction = {
  tr_id : int;
  tr_dp : Ir.stmt_id;  (** the demarcation point that produced the pair *)
  tr_request : Msgsig.request_sig;
  tr_response : Msgsig.response_sig;
  tr_deps : Txn.dep list;
  tr_origin : Ir.method_id;
  tr_dynamic_uri : bool;
  tr_srcs : string list;
  tr_degraded : bool;
      (** built under an exhausted budget: fragments may be missing *)
}

type t = {
  rp_app : string;
  rp_transactions : transaction list;
  rp_tx_aliases : (int * int) list;
      (** raw transaction id â representative id after {!dedup} *)
  rp_dp_count : int;
  rp_slice_fraction : float;
  rp_slice_stmts : int;
  rp_total_stmts : int;
  rp_elapsed_s : float;
  rp_degradations : Resilience.Degrade.degradation list;
      (** phases that bailed before finishing (budget / deadline), in
          occurrence order; empty = the analysis ran to completion *)
}

val same_signature : Txn.t -> Txn.t -> bool
(** Protocol-message identity: method, URI regex, and both body
    signatures coincide. *)

val dedup : Txn.t list -> Txn.t list * (int, int) Hashtbl.t
(** Deduplicate raw transactions (distinct call contexts can produce the
    same message), merging consumers/dependencies into representatives and
    remapping dependency sources; returns the id map. *)

val of_transactions :
  ?degradations:Resilience.Degrade.degradation list ->
  app:string ->
  dp_count:int ->
  slice_stmts:int ->
  total_stmts:int ->
  elapsed_s:float ->
  Txn.t list ->
  t

(** {1 Queries used by the evaluation} *)

val requests_by_method : t -> Http.meth -> transaction list

val paired : t -> transaction list
(** Transactions whose response body is processed by the app (the "#Pair"
    column of Table 1). *)

val request_body_kind : transaction -> [ `Query | `Json | `Xml | `Text ] option
val response_body_kind : transaction -> [ `Json | `Xml | `Text ] option

val to_json :
  ?provenance:Extr_httpmodel.Json.t ->
  ?deterministic:bool ->
  t ->
  Extr_httpmodel.Json.t
(** Machine-readable export of the full report (transactions with
    request/response signatures as anchored regexes and shape strings,
    dependencies, consumers, slice statistics).  [provenance] appends the
    evidence chains (see {!Explain.to_json}) as a "provenance" member.
    [deterministic] (default false) zeroes the wall-clock member so two
    runs over identical inputs serialize byte-identically — the form the
    result cache stores and [--resume] reproduces. *)

val to_dot : t -> string
(** Render the inter-transaction dependency graph (the structure behind
    Figure 1) in Graphviz DOT: one node per transaction, one edge per
    dependency labelled with the response path, the consumed field and
    any mediator (e.g. a database table). *)

(** {1 Printing} *)

val pp_transaction : Format.formatter -> transaction -> unit
val pp : Format.formatter -> t -> unit
