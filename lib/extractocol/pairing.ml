(* Request-response pairing over slices (§3.3, Figure 5).  When multiple
   requests and responses share a common demarcation point through code
   reuse, standard information-flow analysis discovers paths from every
   request to every response.  Extractocol preprocesses the slices into
   disjoint sub-slices — statement segments reachable from exactly one
   divergence head — and pairs a request segment with the response segment
   reachable from the same head. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Slicer = Extr_slicing.Slicer
module Metrics = Extr_telemetry.Metrics
module Provenance = Extr_provenance.Provenance

let src =
  Logs.Src.create "extractocol.pairing" ~doc:"Disjoint request/response pairing"

module Log = (val Logs.src_log src : Logs.LOG)

let m_pairs =
  Metrics.counter ~help:"disjoint request/response pairs" "pairing.pairs"

let m_contexts =
  Metrics.histogram ~help:"divergence heads (disjoint contexts) per DP"
    "pairing.contexts"

type pair = {
  pr_dp : Slicer.dp_site;
  pr_head : Ir.method_id;  (** the divergence head owning both segments *)
  pr_request_segment : Ir.Stmt_set.t;
  pr_response_segment : Ir.Stmt_set.t;
}

(** Methods transitively reachable from [root] through the call graph
    (inclusive).  Explicit work-stack like [Callgraph.reachable_from]:
    deep generated call chains must not blow the OCaml stack. *)
let reach_down cg root = Callgraph.reachable_from cg [ root ]

(** Divergence heads for a demarcation point: walk the caller chain upward
    from the DP's method while it is unique; when a method has several
    callers, each caller method is a head.  With a single path the DP's own
    method chain top is the only head. *)
let divergence_heads cg (dp : Slicer.dp_site) : Ir.method_id list =
  let rec walk mid visited =
    if List.mem mid visited then [ mid ]
    else
      match Callgraph.callers cg mid with
      | [] -> [ mid ]
      | [ single ] -> walk single.Ir.sid_meth (mid :: visited)
      | many ->
          List.sort_uniq Ir.Method_id.compare
            (List.map (fun s -> s.Ir.sid_meth) many)
  in
  walk dp.Slicer.dp_stmt.Ir.sid_meth []

let stmts_in_methods (stmts : Ir.Stmt_set.t) (methods : Ir.Method_set.t) =
  Ir.Stmt_set.filter (fun sid -> Ir.Method_set.mem sid.Ir.sid_meth methods) stmts

(** Disjoint-segment pairing: one pair per divergence head, containing only
    the statements exclusive to that head's reach. *)
let pair_disjoint (prog : Prog.t) cg (slices : Slicer.result) : pair list =
  ignore prog;
  let pairs =
    List.concat_map
      (fun (dp : Slicer.dp_site) ->
      let request =
        List.find_opt
          (fun (sl : Slicer.slice) -> sl.Slicer.sl_dp.Slicer.dp_stmt = dp.Slicer.dp_stmt)
          slices.Slicer.r_request
      in
      let response =
        List.find_opt
          (fun (sl : Slicer.slice) -> sl.Slicer.sl_dp.Slicer.dp_stmt = dp.Slicer.dp_stmt)
          slices.Slicer.r_response
      in
      match (request, response) with
      | Some req, Some resp ->
          let heads = divergence_heads cg dp in
          Metrics.observe m_contexts (float_of_int (List.length heads));
          let reaches = List.map (fun h -> (h, reach_down cg h)) heads in
          List.map
            (fun (h, own_reach) ->
              (* Statements in methods reachable from this head but not
                 from any other head: the disjoint segments. *)
              let others =
                List.fold_left
                  (fun acc (h', r) ->
                    if Ir.Method_id.equal h h' then acc else Ir.Method_set.union acc r)
                  Ir.Method_set.empty reaches
              in
              let exclusive = Ir.Method_set.diff own_reach others in
              (* Evidence chain: why this pair was drawn (Figure 5). *)
              if Provenance.is_enabled Provenance.default then
                Provenance.record_pair Provenance.default
                  ~dp:dp.Slicer.dp_stmt ~head:h
                  ~reason:
                    (if List.length heads = 1 then "sole-head"
                     else "disjoint-context");
              {
                pr_dp = dp;
                pr_head = h;
                pr_request_segment = stmts_in_methods req.Slicer.sl_stmts exclusive;
                pr_response_segment = stmts_in_methods resp.Slicer.sl_stmts exclusive;
              })
            reaches
      | _, _ -> [])
      slices.Slicer.r_dps
  in
  Metrics.incr m_pairs ~by:(List.length pairs);
  Log.info (fun m ->
      m "pairing: %d disjoint pairs across %d demarcation points"
        (List.length pairs)
        (List.length slices.Slicer.r_dps));
  pairs

(** Naive pairing (the Figure-5 failure mode): pair every request slice
    with every response slice that shares a demarcation-point method —
    information-flow analysis would discover a path between all of them.
    Returns (request dp, response dp) candidate pairs. *)
let pair_naive (slices : Slicer.result) : (Slicer.dp_site * Slicer.dp_site) list =
  List.concat_map
    (fun (req : Slicer.slice) ->
      List.filter_map
        (fun (resp : Slicer.slice) ->
          let rd = req.Slicer.sl_dp and pd = resp.Slicer.sl_dp in
          if
            rd.Slicer.dp_stmt.Ir.sid_meth = pd.Slicer.dp_stmt.Ir.sid_meth
            && rd.Slicer.dp_info.Extr_semantics.Demarcation.dp_meth
               = pd.Slicer.dp_info.Extr_semantics.Demarcation.dp_meth
          then Some (rd, pd)
          else None)
        slices.Slicer.r_response)
    slices.Slicer.r_request
