(* Semantic models of library APIs over abstract values (§3.2).  Each
   modelled call is interpreted on the signature domain: StringBuilder
   appends concatenate signatures, JSON puts grow builder trees, HTTP
   request constructors collect URIs/headers/bodies, demarcation points
   finalize transactions, and response accessors record which body parts
   the app parses.  All object state goes through the interpreter's
   current-path heap ([cx_heap]). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Strsig = Extr_siglang.Strsig
module Jsonsig = Extr_siglang.Jsonsig
module Msgsig = Extr_siglang.Msgsig
module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Provenance = Extr_provenance.Provenance
open Absval

type ctx = {
  cx_prog : Prog.t;
  cx_heap : heap ref;  (** the current execution path's heap *)
  cx_sid : Ir.stmt_id;  (** the statement being modelled (for provenance) *)
  cx_resources : int -> string option;
  cx_new_tx : dp:Ir.stmt_id -> Txn.t;
  cx_tx : int -> Txn.t option;
  cx_db : (string, prov list) Hashtbl.t;  (** SQLite table → stored provenance *)
  cx_run_callback : Ir.method_id -> Absval.t option -> Absval.t list -> Absval.t;
  cx_register : kind:string -> Absval.t -> unit;
      (** record a framework callback registration (click/timer/push/
          location) so the interpreter later fires it with the same
          receiver heap state *)
  cx_intents : bool;
      (** resolve intent-service dispatch (extension; off reproduces the
          paper's §4 limitation) *)
}

let arg n args = List.nth_opt args n
let arg_or_top n args = Option.value (arg n args) ~default:Vtop

(* ------------------------------------------------------------------ *)
(* Request finalization                                               *)
(* ------------------------------------------------------------------ *)

let meth_of_cls cls =
  if cls = Api.http_get then Http.GET
  else if cls = Api.http_post then Http.POST
  else if cls = Api.http_put then Http.PUT
  else if cls = Api.http_delete then Http.DELETE
  else Http.GET

(** Derive a query-style body signature from a string signature shaped like
    [k=v&k2=v2...]; [None] when the shape does not hold. *)
let query_body_of_sig (sg : Strsig.t) : (string * Strsig.t) list option =
  let rec render = function
    | Strsig.Lit s -> Some s
    | Strsig.Unknown _ -> Some "\x01"
    | Strsig.Concat ps ->
        List.fold_left
          (fun acc p ->
            match (acc, render p) with
            | Some a, Some b -> Some (a ^ b)
            | _, _ -> None)
          (Some "") ps
    | Strsig.Alt _ | Strsig.Rep _ -> None
  in
  match render sg with
  | None -> None
  | Some template ->
      if not (String.contains template '=') then None
      else begin
        let pairs =
          String.split_on_char '&' template
          |> List.filter (fun s -> s <> "")
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | None -> (kv, Strsig.lit "")
                 | Some i ->
                     let k = String.sub kv 0 i in
                     let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                     let vsig =
                       let parts =
                         String.split_on_char '\x01' v
                         |> List.map (fun lit -> Strsig.lit lit)
                       in
                       let rec weave = function
                         | [] -> []
                         | [ last ] -> [ last ]
                         | p :: rest -> p :: Strsig.unknown :: weave rest
                       in
                       Strsig.concat (weave parts)
                     in
                     (k, vsig))
        in
        if
          List.for_all
            (fun (k, _) -> k <> "" && not (String.contains k '\x01'))
            pairs
        then Some pairs
        else None
      end

(** Body signature of an entity/body abstract value, plus per-key
    provenance for dependency recording. *)
let body_of_value ctx (v : Absval.t) : Msgsig.body_sig * (string * prov list) list =
  let href = ctx.cx_heap in
  let of_strinfo (si : strinfo) =
    match si.structured with
    | Some js -> (Msgsig.Bjson js, si.kprov)
    | None -> (
        match query_body_of_sig si.sg with
        | Some pairs ->
            (Msgsig.Bquery pairs, List.map (fun (k, _) -> (k, si.prov)) pairs)
        | None -> (Msgsig.Btext si.sg, [ ("*", si.prov) ]))
  in
  match v with
  | Vnull | Vtop -> (Msgsig.Bnone, [])
  | Vobj o when o.o_cls = Api.string_entity || o.o_cls = Api.okhttp_body -> (
      match hslot href o "content" with
      | Some (Vstr si) -> of_strinfo si
      | Some other -> of_strinfo (strinfo_of other)
      | None -> (Msgsig.Bopaque, []))
  | Vobj o when o.o_cls = Api.form_entity -> (
      match hslot href o "params" with
      | Some (Vlist items) ->
          let pairs =
            List.filter_map
              (function
                | Vobj p when p.o_cls = Api.name_value_pair -> (
                    match (hslot href p "k", hslot href p "v") with
                    | Some (Vstr { sg = Strsig.Lit k; _ }), Some v ->
                        let vi = strinfo_of v in
                        Some ((k, vi.sg), (k, vi.prov))
                    | Some kv, Some v ->
                        let ki = strinfo_of kv and vi = strinfo_of v in
                        Some
                          ( (Strsig.to_regex ki.sg, vi.sg),
                            (Strsig.to_regex ki.sg, vi.prov) )
                    | _, _ -> None)
                | _ -> None)
              items
          in
          (Msgsig.Bquery (List.map fst pairs), List.map snd pairs)
      | Some _ | None -> (Msgsig.Bopaque, []))
  | Vstr si -> of_strinfo si
  | Vobj _ | Vlist _ | Vpair _ | Vbool _ | Vint _ | Vcursor _ -> (Msgsig.Bopaque, [])

let record_deps (tx : Txn.t) ~field (prov : prov list) =
  List.iter
    (fun p ->
      Txn.add_dep tx
        {
          Txn.dep_from_tx = p.p_tx;
          dep_from_path = p.p_path;
          dep_to_field = field;
          dep_via = p.p_via;
        };
      (* Evidence chain: why this dependency edge was drawn (§3.3). *)
      if Provenance.is_enabled Provenance.default then
        Provenance.record_dep Provenance.default ~tx:tx.Txn.tx_id
          ~from_tx:p.p_tx ~to_field:field
          ~reason:
            (match p.p_via with
            | Some table -> "db-mediated via " ^ table
            | None -> "response-value heap flow"))
    prov

(** Finalize a transaction from a request object at a demarcation point. *)
let finalize ctx ~dp (reqval : Absval.t) : Txn.t =
  let href = ctx.cx_heap in
  let tx = ctx.cx_new_tx ~dp in
  (* Evidence chain: every signature fragment names the demarcation-point
     statement it was finalized at and the rule that produced it. *)
  let frag part rule =
    if Provenance.is_enabled Provenance.default then
      Provenance.record_fragment Provenance.default ~tx:tx.Txn.tx_id ~part
        ~rule ~stmt:dp
  in
  let set_uri (si : strinfo) =
    tx.Txn.tx_uri <- si.sg;
    tx.Txn.tx_srcs <- List.sort_uniq String.compare (tx.Txn.tx_srcs @ si.srcs);
    if si.prov <> [] then tx.Txn.tx_dynamic_uri <- true;
    frag "uri" "finalize.uri";
    record_deps tx ~field:"uri" si.prov
  in
  let set_headers headers =
    List.iter
      (function
        | Vpair (k, v) ->
            let ki = strinfo_of k and vi = strinfo_of v in
            let name =
              match ki.sg with Strsig.Lit s -> s | _ -> Strsig.to_regex ki.sg
            in
            tx.Txn.tx_headers <- tx.Txn.tx_headers @ [ (name, vi.sg) ];
            frag ("header:" ^ name) "finalize.header";
            record_deps tx ~field:("header:" ^ name) vi.prov
        | _ -> ())
      headers
  in
  let set_body v =
    let body, kprov = body_of_value ctx v in
    tx.Txn.tx_body <- body;
    (match body with Msgsig.Bnone -> () | _ -> frag "body" "finalize.body");
    tx.Txn.tx_srcs <-
      List.sort_uniq String.compare (tx.Txn.tx_srcs @ collect_srcs !href v);
    List.iter
      (fun (k, prov) ->
        let field =
          match body with
          | Msgsig.Bquery _ -> "query:" ^ k
          | Msgsig.Bjson _ -> "body:" ^ k
          | Msgsig.Bnone | Msgsig.Bxml _ | Msgsig.Btext _ | Msgsig.Bopaque ->
              "body"
        in
        record_deps tx ~field prov)
      kprov
  in
  let finalize_obj (o : obj) =
    (match hslot href o "meth" with
    | Some (Vstr { sg = Strsig.Lit m; _ }) ->
        tx.Txn.tx_meth <- Option.value (Http.meth_of_string m) ~default:Http.GET
    | Some _ | None -> tx.Txn.tx_meth <- meth_of_cls o.o_cls);
    frag "method" "finalize.method";
    (match hslot href o "uri" with Some u -> set_uri (strinfo_of u) | None -> ());
    (match hslot href o "headers" with
    | Some (Vlist hs) -> set_headers hs
    | Some _ | None -> ());
    match (hslot href o "entity", hslot href o "body") with
    | Some e, _ -> set_body e
    | None, Some b -> set_body b
    | None, None -> ()
  in
  (match reqval with
  | Vobj o when o.o_cls = Api.okhttp_call -> (
      match hslot href o "req" with
      | Some (Vobj r) -> finalize_obj r
      | Some v -> set_uri (strinfo_of v)
      | None -> ())
  | Vobj o -> finalize_obj o
  | v -> set_uri (strinfo_of v));
  tx

(* ------------------------------------------------------------------ *)
(* Response cursors                                                   *)
(* ------------------------------------------------------------------ *)

let cursor_child cu step = { cu_tx = cu.cu_tx; cu_path = cu.cu_path @ [ step ] }

(* Evidence chain: every recorded response access names the reading
   statement ([cx_sid]) and the accessor rule that modelled it. *)
let frag_access ctx cu rule =
  if Provenance.is_enabled Provenance.default then
    Provenance.record_fragment Provenance.default ~tx:cu.cu_tx
      ~part:("response:" ^ String.concat "." (path_of_steps cu.cu_path))
      ~rule ~stmt:ctx.cx_sid

let record_leaf ctx cu kind =
  match ctx.cx_tx cu.cu_tx with
  | Some tx ->
      frag_access ctx cu "response-leaf";
      Respacc.record_leaf tx.Txn.tx_resp cu kind
  | None -> ()

let record_nav ctx cu =
  match ctx.cx_tx cu.cu_tx with
  | Some tx ->
      frag_access ctx cu "response-nav";
      Respacc.record_nav tx.Txn.tx_resp cu
  | None -> ()

let set_resp_kind ctx txid kind =
  match ctx.cx_tx txid with
  | Some tx -> Respacc.set_kind tx.Txn.tx_resp kind
  | None -> ()

let str_of_cursor cu =
  Vstr
    {
      sg = Strsig.unknown;
      prov = [ prov_of_cursor cu ];
      srcs = [];
      structured = None;
      kprov = [];
    }

(** Leaf read through a cursor: record the access, return a provenance-
    carrying unknown. *)
let cursor_leaf ctx cu step kind ret_of =
  let cu' = cursor_child cu step in
  record_leaf ctx cu' kind;
  ret_of cu'

(** When a string is a response body (or subtree), parsing it re-opens a
    cursor at that position. *)
let cursor_of_strinfo (si : strinfo) : cursor option =
  match si.prov with
  | [ p ] ->
      let steps =
        List.map
          (fun seg ->
            if seg = "[]" then Sindex
            else if seg = "#text" then Stext
            else if String.length seg > 0 && seg.[0] = '@' then
              Sattr (String.sub seg 1 (String.length seg - 1))
            else Sfield seg)
          p.p_path
      in
      Some { cu_tx = p.p_tx; cu_path = steps }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Raw-socket HTTP (the §4 extension)                                  *)
(* ------------------------------------------------------------------ *)

(** Parse an abstract HTTP wire template ("GET /path HTTP/1.1\r\n...")
    into (method, path signature): the socket-API extension reuses the
    text-protocol machinery the signature builder already has. *)
let parse_http_wire (wire : Strsig.t) : (Http.meth * Strsig.t) option =
  let parts = match wire with Strsig.Concat ps -> ps | s -> [ s ] in
  match parts with
  | Strsig.Lit first :: rest -> (
      let meth_of prefix m =
        let pl = String.length prefix in
        if String.length first >= pl && String.sub first 0 pl = prefix then
          Some (m, String.sub first pl (String.length first - pl))
        else None
      in
      let meth =
        List.find_map
          (fun (p, m) -> meth_of p m)
          [
            ("GET ", Http.GET); ("POST ", Http.POST); ("PUT ", Http.PUT);
            ("DELETE ", Http.DELETE);
          ]
      in
      match meth with
      | None -> None
      | Some (m, first_rest) ->
          (* Collect path parts up to the " HTTP/" marker. *)
          let cut lit =
            let marker = " HTTP/" in
            let ml = String.length marker in
            let rec find i =
              if i + ml > String.length lit then None
              else if String.sub lit i ml = marker then Some (String.sub lit 0 i)
              else find (i + 1)
            in
            find 0
          in
          let rec collect acc = function
            | [] -> Some (List.rev acc)
            | Strsig.Lit l :: _ when cut l <> None ->
                Some (List.rev (Strsig.Lit (Option.get (cut l)) :: acc))
            | p :: rest -> collect (p :: acc) rest
          in
          let path_parts =
            match cut first_rest with
            | Some path -> Some [ Strsig.Lit path ]
            | None -> collect [ Strsig.Lit first_rest ] rest
          in
          Option.map (fun ps -> (m, Strsig.concat ps)) path_parts)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The main dispatch                                                  *)
(* ------------------------------------------------------------------ *)

(** Interpret a library invoke abstractly.  [sid] is the statement id (the
    transaction anchor for demarcation points).  Returns [None] when the
    API is not modelled (the caller falls back to [Vtop]). *)
let call ctx ~(sid : Ir.stmt_id) (i : Ir.invoke) ~(base : Absval.t option)
    ~(args : Absval.t list) : Absval.t option =
  let href = ctx.cx_heap in
  let slot o n = hslot href o n in
  let set o n v = hset href o n v in
  let alloc cls = halloc href cls in
  let is = Api.invoke_is i in
  let name = i.Ir.iref.Ir.mname in
  let base_obj = match base with Some (Vobj o) -> Some o | _ -> None in
  let some v = Some v in
  (* -------------------- StringBuilder -------------------- *)
  if is ~cls:Api.string_builder ~name:"<init>" then begin
    (match base_obj with
    | Some o ->
        set o "sig"
          (match arg 0 args with
          | Some v -> Vstr (strinfo_of v)
          | None -> str_lit "")
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.string_builder ~name:"append" then begin
    match base_obj with
    | Some o ->
        let cur = Option.value (slot o "sig") ~default:(str_lit "") in
        set o "sig" (str_concat cur (arg_or_top 0 args));
        some (Vobj o)
    | None -> some Vtop
  end
  else if is ~cls:Api.string_builder ~name:"toString" then
    some
      (match base_obj with
      | Some o -> Option.value (slot o "sig") ~default:str_unknown
      | None -> str_unknown)
  (* -------------------- String / numbers -------------------- *)
  else if is ~cls:Api.java_string ~name:"valueOf" then
    some (Vstr (strinfo_of (arg_or_top 0 args)))
  else if is ~cls:Api.java_string ~name:"concat" then
    some (str_concat (Option.value base ~default:Vtop) (arg_or_top 0 args))
  else if is ~cls:Api.java_string ~name:"trim" then
    some (Option.value base ~default:str_unknown)
  else if is ~cls:Api.java_string ~name:"equals" then some (Vbool None)
  else if is ~cls:Api.java_string ~name:"length" then some (Vint None)
  else if is ~cls:Api.java_integer ~name:"parseInt" then some (Vint None)
  else if is ~cls:Api.java_integer ~name:"toString" then
    some (Vstr (strinfo_of (arg_or_top 0 args)))
  else if is ~cls:Api.url_encoder ~name:"encode" then begin
    let si = strinfo_of (arg_or_top 0 args) in
    let sg =
      match si.sg with
      | Strsig.Lit s -> Strsig.lit (Uri.percent_encode s)
      | Strsig.Unknown _ | Strsig.Concat _ | Strsig.Alt _ | Strsig.Rep _ ->
          Strsig.unknown
    in
    some (Vstr { si with sg })
  end
  (* -------------------- Android resources / views ------------------ *)
  else if is ~cls:Api.resources ~name:"getString" then begin
    match arg 0 args with
    | Some (Vint (Some id)) -> (
        match ctx.cx_resources id with
        | Some s -> some (str_lit s)
        | None -> some str_unknown)
    | Some _ | None -> some str_unknown
  end
  else if is ~cls:Api.activity ~name:"getResources" then
    some (Vobj (alloc Api.resources))
  else if is ~cls:Api.activity ~name:"findViewById" then some (Vobj (alloc Api.view))
  else if is ~cls:Api.edit_text ~name:"getText" then some str_unknown
  else if is ~cls:Api.edit_text ~name:"<init>" then some Vnull
  else if is ~cls:Api.view ~name:"setOnClickListener" then begin
    ctx.cx_register ~kind:"click" (arg_or_top 0 args);
    some Vnull
  end
  else if is ~cls:Api.intent ~name:"<init>" then begin
    (* Android intents are out of scope for Extractocol (§4); with
       [cx_intents] the constant-action case is resolved anyway (an
       extension mirroring the reflection treatment). *)
    (if ctx.cx_intents then
       match base_obj with
       | Some o -> set o "action" (arg_or_top 0 args)
       | None -> ());
    some Vnull
  end
  else if is ~cls:Api.intent ~name:"putExtra" then begin
    (if ctx.cx_intents then
       match (base_obj, arg 0 args) with
       | Some o, Some (Vstr { sg = Strsig.Lit key; _ }) ->
           set o ("x:" ^ key) (arg_or_top 1 args)
       | (Some _ | None), _ -> ());
    some Vnull
  end
  else if is ~cls:Api.intent ~name:"getExtra" then begin
    match (base_obj, arg 0 args) with
    | Some o, Some (Vstr { sg = Strsig.Lit key; _ }) ->
        some (Option.value (slot o ("x:" ^ key)) ~default:str_unknown)
    | (Some _ | None), _ -> some str_unknown
  end
  else if is ~cls:Api.context ~name:"startService" then begin
    (if ctx.cx_intents then
       match arg 0 args with
       | Some (Vobj it) -> (
           match slot it "action" with
           | Some (Vstr { sg = Strsig.Lit action; _ }) ->
               let svc = alloc action in
               (match base with
               | Some act -> set svc "act" act
               | None -> ());
               ignore
                 (ctx.cx_run_callback
                    { Ir.id_cls = action; id_name = "onHandleIntent" }
                    (Some (Vobj svc))
                    [ Vobj it ])
           | Some _ | None -> ())
       | Some _ | None -> ());
    some Vnull
  end
  else if is ~cls:Api.android_log ~name:"d" || is ~cls:Api.android_log ~name:"e" then
    some Vnull
  (* -------------------- reflection -------------------- *)
  else if is ~cls:Api.java_class ~name:"forName" then begin
    (* Resolvable only for constant class names — the standard static-
       analysis treatment of reflection. *)
    let o = alloc Api.java_class in
    set o "name" (arg_or_top 0 args);
    some (Vobj o)
  end
  else if is ~cls:Api.java_class ~name:"newInstance" then begin
    match Option.bind base_obj (fun o -> slot o "name") with
    | Some (Vstr { sg = Strsig.Lit cls; _ }) ->
        let o = alloc cls in
        ignore
          (ctx.cx_run_callback
             { Ir.id_cls = cls; id_name = "<init>" }
             (Some (Vobj o)) []);
        some (Vobj o)
    | Some _ | None -> some Vtop
  end
  else if is ~cls:Api.java_class ~name:"getMethod" then begin
    let m = alloc Api.reflect_method in
    (match Option.bind base_obj (fun o -> slot o "name") with
    | Some v -> set m "cls" v
    | None -> ());
    set m "mname" (arg_or_top 0 args);
    some (Vobj m)
  end
  else if is ~cls:Api.reflect_method ~name:"invoke" then begin
    match
      ( Option.bind base_obj (fun o -> slot o "cls"),
        Option.bind base_obj (fun o -> slot o "mname") )
    with
    | ( Some (Vstr { sg = Strsig.Lit cls; _ }),
        Some (Vstr { sg = Strsig.Lit mname; _ }) ) ->
        let this = arg 0 args in
        let rest = match args with [] -> [] | _ :: r -> r in
        some
          (ctx.cx_run_callback { Ir.id_cls = cls; id_name = mname } this rest)
    | _, _ -> some Vtop
  end
  (* -------------------- containers -------------------- *)
  else if is ~cls:Api.array_list ~name:"<init>" then begin
    (match base_obj with Some o -> set o "items" (Vlist []) | None -> ());
    some Vnull
  end
  else if is ~cls:Api.array_list ~name:"add" then begin
    (match base_obj with
    | Some o ->
        let items = match slot o "items" with Some (Vlist l) -> l | _ -> [] in
        set o "items" (Vlist (items @ [ arg_or_top 0 args ]))
    | None -> ());
    some (Vbool (Some true))
  end
  else if is ~cls:Api.array_list ~name:"get" then begin
    match base_obj with
    | Some o -> (
        match (slot o "items", arg 0 args) with
        | Some (Vlist l), Some (Vint (Some n)) when n >= 0 && n < List.length l ->
            some (List.nth l n)
        | Some (Vlist (x :: rest)), _ ->
            some
              (List.fold_left
                 (fun acc y ->
                   merge_val
                     ~combine_sig:(fun a b -> Strsig.alt [ a; b ])
                     !href !href href acc y)
                 x rest)
        | _, _ -> some Vtop)
    | None -> some Vtop
  end
  else if is ~cls:Api.array_list ~name:"size" then begin
    match base_obj with
    | Some o -> (
        match slot o "items" with
        | Some (Vlist l) -> some (Vint (Some (List.length l)))
        | _ -> some (Vint None))
    | None -> some (Vint None)
  end
  else if
    is ~cls:Api.hash_map ~name:"<init>" || is ~cls:Api.content_values ~name:"<init>"
  then begin
    (match base_obj with Some o -> set o "pairs" (Vlist []) | None -> ());
    some Vnull
  end
  else if is ~cls:Api.hash_map ~name:"put" || is ~cls:Api.content_values ~name:"put"
  then begin
    (match base_obj with
    | Some o ->
        let pairs = match slot o "pairs" with Some (Vlist l) -> l | _ -> [] in
        set o "pairs"
          (Vlist (pairs @ [ Vpair (arg_or_top 0 args, arg_or_top 1 args) ]))
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.hash_map ~name:"get" then begin
    match (base_obj, arg 0 args) with
    | Some o, Some (Vstr { sg = Strsig.Lit key; _ }) -> (
        let pairs = match slot o "pairs" with Some (Vlist l) -> l | _ -> [] in
        let found =
          List.find_map
            (function
              | Vpair (Vstr { sg = Strsig.Lit k; _ }, v) when k = key -> Some v
              | _ -> None)
            pairs
        in
        match found with Some v -> some v | None -> some Vnull)
    | _, _ -> some Vtop
  end
  (* -------------------- org.apache.http request objects ------------ *)
  else if
    is ~cls:Api.http_get ~name:"<init>"
    || is ~cls:Api.http_post ~name:"<init>"
    || is ~cls:Api.http_put ~name:"<init>"
    || is ~cls:Api.http_delete ~name:"<init>"
  then begin
    (match base_obj with
    | Some o -> (
        set o "headers" (Vlist []);
        match arg 0 args with Some u -> set o "uri" u | None -> ())
    | None -> ());
    some Vnull
  end
  else if
    is ~cls:Api.http_request_base ~name:"setHeader"
    || is ~cls:Api.http_request_base ~name:"addHeader"
  then begin
    (match base_obj with
    | Some o ->
        let hs = match slot o "headers" with Some (Vlist l) -> l | _ -> [] in
        set o "headers"
          (Vlist (hs @ [ Vpair (arg_or_top 0 args, arg_or_top 1 args) ]))
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.http_request_base ~name:"setEntity" then begin
    (match base_obj with Some o -> set o "entity" (arg_or_top 0 args) | None -> ());
    some Vnull
  end
  else if is ~cls:Api.string_entity ~name:"<init>" then begin
    (match base_obj with
    | Some o -> set o "content" (Vstr (strinfo_of (arg_or_top 0 args)))
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.form_entity ~name:"<init>" then begin
    (match (base_obj, arg 0 args) with
    | Some o, Some (Vobj l) ->
        set o "params" (Option.value (slot l "items") ~default:(Vlist []))
    | Some o, _ -> set o "params" (Vlist [])
    | None, _ -> ());
    some Vnull
  end
  else if is ~cls:Api.name_value_pair ~name:"<init>" then begin
    (match base_obj with
    | Some o ->
        set o "k" (arg_or_top 0 args);
        set o "v" (arg_or_top 1 args)
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.default_http_client ~name:"<init>" then some Vnull
  (* -------------------- demarcation: apache execute ---------------- *)
  else if is ~cls:Api.http_client ~name:"execute" then begin
    let tx = finalize ctx ~dp:sid (arg_or_top 0 args) in
    let resp = alloc Api.http_response in
    set resp "tx" (Vint (Some tx.Txn.tx_id));
    some (Vobj resp)
  end
  else if is ~cls:Api.http_response ~name:"getEntity" then begin
    match base_obj with
    | Some o ->
        let e = alloc Api.http_entity in
        (match slot o "tx" with Some t -> set e "tx" t | None -> ());
        some (Vobj e)
    | None -> some Vtop
  end
  else if is ~cls:Api.http_entity ~name:"getContent" then begin
    match base_obj with
    | Some o ->
        let s = alloc Api.input_stream in
        (match slot o "tx" with Some t -> set s "tx" t | None -> ());
        some (Vobj s)
    | None -> some Vtop
  end
  else if
    is ~cls:Api.entity_utils ~name:"toString" || is ~cls:Api.io_utils ~name:"toString"
  then begin
    match arg 0 args with
    | Some (Vobj o) -> (
        match slot o "tx" with
        | Some (Vint (Some txid)) ->
            set_resp_kind ctx txid Respacc.Bk_text;
            some (str_of_cursor { cu_tx = txid; cu_path = [] })
        | _ -> some str_unknown)
    | _ -> some str_unknown
  end
  (* -------------------- java.net.URL / HttpURLConnection ----------- *)
  else if is ~cls:Api.java_url ~name:"<init>" then begin
    (match base_obj with Some o -> set o "uri" (arg_or_top 0 args) | None -> ());
    some Vnull
  end
  else if is ~cls:Api.java_url ~name:"openConnection" then begin
    let conn = alloc Api.http_url_connection in
    (match base_obj with
    | Some o -> (
        match slot o "uri" with Some u -> set conn "uri" u | None -> ())
    | None -> ());
    set conn "meth" (str_lit "GET");
    set conn "headers" (Vlist []);
    some (Vobj conn)
  end
  else if is ~cls:Api.http_url_connection ~name:"setRequestMethod" then begin
    (match base_obj with Some o -> set o "meth" (arg_or_top 0 args) | None -> ());
    some Vnull
  end
  else if is ~cls:Api.http_url_connection ~name:"setRequestProperty" then begin
    (match base_obj with
    | Some o ->
        let hs = match slot o "headers" with Some (Vlist l) -> l | _ -> [] in
        set o "headers"
          (Vlist (hs @ [ Vpair (arg_or_top 0 args, arg_or_top 1 args) ]))
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.http_url_connection ~name:"getOutputStream" then begin
    match base_obj with
    | Some o ->
        let os = alloc Api.output_stream in
        set os "conn" (Vobj o);
        some (Vobj os)
    | None -> some Vtop
  end
  else if is ~cls:Api.output_stream ~name:"write" then begin
    (match base_obj with
    | Some o -> (
        match (slot o "conn", slot o "sock") with
        | Some (Vobj conn), _ -> set conn "body" (arg_or_top 0 args)
        | _, Some (Vobj sock) ->
            (* Raw-socket writes accumulate the HTTP wire text. *)
            let cur = Option.value (slot sock "wire") ~default:(str_lit "") in
            set sock "wire" (str_concat cur (arg_or_top 0 args))
        | _, _ -> ())
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.output_stream ~name:"close" then some Vnull
  else if
    is ~cls:Api.http_url_connection ~name:"getInputStream"
    || is ~cls:Api.http_url_connection ~name:"getResponseCode"
  then begin
    match base_obj with
    | Some conn ->
        (* One transaction per connection object: reuse if finalized. *)
        let txid =
          match slot conn "tx" with
          | Some (Vint (Some id)) -> id
          | _ ->
              let tx = finalize ctx ~dp:sid (Vobj conn) in
              set conn "tx" (Vint (Some tx.Txn.tx_id));
              tx.Txn.tx_id
        in
        if name = "getResponseCode" then some (Vint None)
        else begin
          let s = alloc Api.input_stream in
          set s "tx" (Vint (Some txid));
          some (Vobj s)
        end
    | None -> some Vtop
  end
  (* -------------------- raw sockets (§4 extension) ----------------- *)
  else if is ~cls:Api.java_socket ~name:"<init>" then begin
    (match base_obj with
    | Some o -> (
        set o "host" (arg_or_top 0 args);
        match arg 1 args with Some p -> set o "port" p | None -> ())
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.java_socket ~name:"getOutputStream" then begin
    match base_obj with
    | Some o ->
        let os = alloc Api.output_stream in
        set os "sock" (Vobj o);
        some (Vobj os)
    | None -> some Vtop
  end
  else if is ~cls:Api.java_socket ~name:"getInputStream" then begin
    match base_obj with
    | Some sock ->
        let txid =
          match slot sock "tx" with
          | Some (Vint (Some id)) -> id
          | _ ->
              let tx = ctx.cx_new_tx ~dp:sid in
              let wire =
                match slot sock "wire" with
                | Some v -> strinfo_of v
                | None -> strinfo_of Vtop
              in
              let wire_frag part =
                if Provenance.is_enabled Provenance.default then
                  Provenance.record_fragment Provenance.default
                    ~tx:tx.Txn.tx_id ~part ~rule:"socket-wire" ~stmt:sid
              in
              wire_frag "uri";
              (match parse_http_wire wire.sg with
              | Some (meth, path_sig) ->
                  wire_frag "method";
                  tx.Txn.tx_meth <- meth;
                  let host =
                    match slot sock "host" with
                    | Some v -> (strinfo_of v).sg
                    | None -> Strsig.unknown
                  in
                  tx.Txn.tx_uri <-
                    Strsig.concat [ Strsig.lit "http://"; host; path_sig ]
              | None -> tx.Txn.tx_uri <- Strsig.unknown);
              if wire.prov <> [] then begin
                tx.Txn.tx_dynamic_uri <- true;
                record_deps tx ~field:"uri" wire.prov
              end;
              set sock "tx" (Vint (Some tx.Txn.tx_id));
              tx.Txn.tx_id
        in
        let s = alloc Api.input_stream in
        set s "tx" (Vint (Some txid));
        some (Vobj s)
    | None -> some Vtop
  end
  (* -------------------- volley -------------------- *)
  else if is ~cls:Api.request_queue ~name:"<init>" then some Vnull
  else if is ~cls:Api.string_request ~name:"<init>" then begin
    (match base_obj with
    | Some o ->
        set o "meth" (arg_or_top 0 args);
        set o "uri" (arg_or_top 1 args);
        set o "listener" (arg_or_top 2 args)
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.request_queue ~name:"add" then begin
    let reqval = arg_or_top 0 args in
    let tx = finalize ctx ~dp:sid reqval in
    (* Deliver the response to the listener callback. *)
    (match reqval with
    | Vobj o -> (
        match slot o "listener" with
        | Some (Vobj l) ->
            let cb = { Ir.id_cls = l.o_cls; id_name = "onResponse" } in
            (* Delivery alone is not processing: the body kind upgrades
               only when the callback actually reads the payload. *)
            ignore
              (ctx.cx_run_callback cb (Some (Vobj l))
                 [ str_of_cursor { cu_tx = tx.Txn.tx_id; cu_path = [] } ])
        | _ -> ())
    | _ -> ());
    some Vnull
  end
  (* -------------------- okhttp -------------------- *)
  else if is ~cls:Api.okhttp_client ~name:"<init>" then some Vnull
  else if is ~cls:Api.okhttp_builder ~name:"<init>" then begin
    (match base_obj with
    | Some o ->
        set o "meth" (str_lit "GET");
        set o "headers" (Vlist [])
    | None -> ());
    some Vnull
  end
  else if is ~cls:Api.okhttp_builder ~name:"url" then begin
    (match base_obj with Some o -> set o "uri" (arg_or_top 0 args) | None -> ());
    some (Option.value base ~default:Vtop)
  end
  else if is ~cls:Api.okhttp_builder ~name:"header" then begin
    (match base_obj with
    | Some o ->
        let hs = match slot o "headers" with Some (Vlist l) -> l | _ -> [] in
        set o "headers"
          (Vlist (hs @ [ Vpair (arg_or_top 0 args, arg_or_top 1 args) ]))
    | None -> ());
    some (Option.value base ~default:Vtop)
  end
  else if
    is ~cls:Api.okhttp_builder ~name:"post"
    || is ~cls:Api.okhttp_builder ~name:"put"
    || is ~cls:Api.okhttp_builder ~name:"delete"
  then begin
    (match base_obj with
    | Some o ->
        set o "meth" (str_lit (String.uppercase_ascii name));
        set o "body" (arg_or_top 0 args)
    | None -> ());
    some (Option.value base ~default:Vtop)
  end
  else if is ~cls:Api.okhttp_body ~name:"create" then begin
    let o = alloc Api.okhttp_body in
    set o "content" (Vstr (strinfo_of (arg_or_top 0 args)));
    some (Vobj o)
  end
  else if is ~cls:Api.okhttp_builder ~name:"build" then begin
    match base_obj with
    | Some o ->
        let r = alloc Api.okhttp_request in
        SMap.iter (fun k v -> set r k v) (obj_slots !href o);
        some (Vobj r)
    | None -> some Vtop
  end
  else if is ~cls:Api.okhttp_client ~name:"newCall" then begin
    let c = alloc Api.okhttp_call in
    set c "req" (arg_or_top 0 args);
    some (Vobj c)
  end
  else if is ~cls:Api.okhttp_call ~name:"execute" then begin
    match base_obj with
    | Some o ->
        let tx = finalize ctx ~dp:sid (Vobj o) in
        let resp = alloc Api.okhttp_response in
        set resp "tx" (Vint (Some tx.Txn.tx_id));
        some (Vobj resp)
    | None -> some Vtop
  end
  else if is ~cls:Api.okhttp_response ~name:"body" then begin
    match base_obj with
    | Some o ->
        let b = alloc Api.okhttp_response_body in
        (match slot o "tx" with Some t -> set b "tx" t | None -> ());
        some (Vobj b)
    | None -> some Vtop
  end
  else if is ~cls:Api.okhttp_response_body ~name:"string" then begin
    match base_obj with
    | Some o -> (
        match slot o "tx" with
        | Some (Vint (Some txid)) ->
            set_resp_kind ctx txid Respacc.Bk_text;
            some (str_of_cursor { cu_tx = txid; cu_path = [] })
        | _ -> some str_unknown)
    | None -> some str_unknown
  end
  (* -------------------- media player (DP) -------------------- *)
  else if is ~cls:Api.media_player ~name:"<init>" then some Vnull
  else if is ~cls:Api.media_player ~name:"setDataSource" then begin
    let tx = finalize ctx ~dp:sid (arg_or_top 0 args) in
    Respacc.force_kind tx.Txn.tx_resp Respacc.Bk_opaque;
    Txn.add_consumer tx Msgsig.To_media_player;
    some Vnull
  end
  else if
    is ~cls:Api.media_player ~name:"prepare" || is ~cls:Api.media_player ~name:"start"
  then some Vnull
  (* -------------------- JSON -------------------- *)
  else if is ~cls:Api.json_object ~name:"<init>" then begin
    (match (base_obj, arg 0 args) with
    | Some o, None -> set o "fields" (Vlist [])
    | Some o, Some (Vstr si) -> (
        match cursor_of_strinfo si with
        | Some cu ->
            set_resp_kind ctx cu.cu_tx Respacc.Bk_json;
            record_nav ctx cu;
            set o "cursor" (Vcursor cu)
        | None -> set o "opaque" Vtop)
    | Some o, Some (Vcursor cu) -> set o "cursor" (Vcursor cu)
    | Some o, Some _ -> set o "opaque" Vtop
    | None, _ -> ());
    some Vnull
  end
  else if is ~cls:Api.json_array ~name:"<init>" then begin
    (match (base_obj, arg 0 args) with
    | Some o, None -> set o "items" (Vlist [])
    | Some o, Some (Vstr si) -> (
        match cursor_of_strinfo si with
        | Some cu ->
            set_resp_kind ctx cu.cu_tx Respacc.Bk_json;
            set o "cursor" (Vcursor (cursor_child cu Sindex))
        | None -> set o "items" (Vlist []))
    | Some o, Some _ -> set o "items" (Vlist [])
    | None, _ -> ());
    some Vnull
  end
  else if is ~cls:Api.json_object ~name:"put" then begin
    (match base_obj with
    | Some o -> (
        match slot o "fields" with
        | Some (Vlist fields) ->
            set o "fields"
              (Vlist (fields @ [ Vpair (arg_or_top 0 args, arg_or_top 1 args) ]))
        | _ -> ())
    | None -> ());
    some (match base with Some b -> b | None -> Vtop)
  end
  else if
    is ~cls:Api.json_array ~name:"put"
    &&
    match base_obj with
    | Some o -> slot o "cursor" = None
    | None -> false
  then begin
    (match base_obj with
    | Some o -> (
        match slot o "items" with
        | Some (Vlist items) -> set o "items" (Vlist (items @ [ arg_or_top 0 args ]))
        | _ -> set o "items" (Vlist [ arg_or_top 0 args ]))
    | None -> ());
    some (match base with Some b -> b | None -> Vtop)
  end
  else if
    is ~cls:Api.json_object ~name:"toString" || is ~cls:Api.json_array ~name:"toString"
  then begin
    match base_obj with
    | Some o ->
        let js = to_jsonsig !href (Vobj o) in
        let kprov =
          match slot o "fields" with
          | Some (Vlist fields) ->
              List.filter_map
                (function
                  | Vpair (Vstr { sg = Strsig.Lit k; _ }, v) ->
                      Some (k, collect_prov !href v)
                  | _ -> None)
                fields
          | _ -> []
        in
        some
          (Vstr
             {
               sg = Strsig.unknown;
               prov = collect_prov !href (Vobj o);
               srcs = collect_srcs !href (Vobj o);
               structured = Some js;
               kprov;
             })
    | None -> some str_unknown
  end
  else if
    List.mem name
      [
        "getString"; "optString"; "getInt"; "getBoolean"; "getJSONObject";
        "getJSONArray"; "has"; "length";
      ]
    && (is ~cls:Api.json_object ~name || is ~cls:Api.json_array ~name)
  then begin
    let cursor_of_base =
      match base with
      | Some (Vcursor cu) -> Some cu
      | Some (Vobj o) -> (
          match slot o "cursor" with Some (Vcursor cu) -> Some cu | _ -> None)
      | _ -> None
    in
    match cursor_of_base with
    | Some cu -> (
        let key_step =
          match arg 0 args with
          | Some (Vstr { sg = Strsig.Lit k; _ }) -> Some (Sfield k)
          | Some (Vint _) -> Some Sindex
          | Some _ | None -> None
        in
        match (name, key_step) with
        | ("getString" | "optString"), Some st ->
            some (cursor_leaf ctx cu st Respacc.Kstr str_of_cursor)
        | "getInt", Some st ->
            ignore (cursor_leaf ctx cu st Respacc.Knum (fun _ -> Vnull));
            some (Vint None)
        | "getBoolean", Some st ->
            ignore (cursor_leaf ctx cu st Respacc.Kbool (fun _ -> Vnull));
            some (Vbool None)
        | ("getJSONObject" | "getJSONArray"), Some st ->
            let cu' = cursor_child cu st in
            record_nav ctx cu';
            some (Vcursor cu')
        | "has", _ -> some (Vbool None)
        | "length", _ -> some (Vint None)
        | _, _ -> some Vtop)
    | None -> (
        match base_obj with
        | Some o -> (
            match slot o "fields" with
            | Some (Vlist fields) -> (
                (* Builder lookup. *)
                match arg 0 args with
                | Some (Vstr { sg = Strsig.Lit key; _ }) -> (
                    let found =
                      List.find_map
                        (function
                          | Vpair (Vstr { sg = Strsig.Lit k; _ }, v) when k = key
                            ->
                              Some v
                          | _ -> None)
                        fields
                    in
                    match found with Some v -> some v | None -> some Vnull)
                | Some _ | None -> some Vtop)
            | _ ->
                (* Opaque parse (e.g. of a push message). *)
                if name = "getInt" || name = "length" then some (Vint None)
                else if name = "getBoolean" || name = "has" then some (Vbool None)
                else if name = "getString" || name = "optString" then
                  some str_unknown
                else some Vtop)
        | None -> some Vtop)
  end
  (* -------------------- gson -------------------- *)
  else if is ~cls:Api.gson ~name:"<init>" then some Vnull
  else if is ~cls:Api.gson ~name:"toJson" then begin
    match arg 0 args with
    | Some (Vobj o) ->
        let fields =
          SMap.bindings (obj_slots !href o)
          |> List.filter (fun (k, _) -> not (String.length k > 1 && k.[0] = '_'))
        in
        let js =
          Jsonsig.Jobj (List.map (fun (k, v) -> (k, to_jsonsig !href v)) fields)
        in
        let kprov = List.map (fun (k, v) -> (k, collect_prov !href v)) fields in
        some
          (Vstr
             {
               sg = Strsig.unknown;
               prov = collect_prov !href (Vobj o);
               srcs = collect_srcs !href (Vobj o);
               structured = Some js;
               kprov;
             })
    | Some _ | None -> some str_unknown
  end
  else if is ~cls:Api.gson ~name:"fromJson" then begin
    match (arg 0 args, arg 1 args) with
    | Some (Vstr si), Some (Vstr { sg = Strsig.Lit clsname; _ }) -> (
        match cursor_of_strinfo si with
        | Some cu ->
            set_resp_kind ctx cu.cu_tx Respacc.Bk_json;
            let o = alloc clsname in
            set o "__gson_cursor" (Vcursor cu);
            some (Vobj o)
        | None -> some (Vobj (alloc clsname)))
    | _, _ -> some Vtop
  end
  (* -------------------- XML -------------------- *)
  else if is ~cls:Api.xml_parser ~name:"parse" then begin
    match arg 0 args with
    | Some (Vstr si) -> (
        match cursor_of_strinfo si with
        | Some cu ->
            set_resp_kind ctx cu.cu_tx Respacc.Bk_xml;
            some (Vcursor cu)
        | None -> some Vtop)
    | Some (Vcursor cu) -> some (Vcursor cu)
    | _ -> some Vtop
  end
  else if is ~cls:Api.xml_element ~name:"getChild" then begin
    match (base, arg 0 args) with
    | Some (Vcursor cu), Some (Vstr { sg = Strsig.Lit tag; _ }) ->
        let cu' = cursor_child cu (Schild tag) in
        record_nav ctx cu';
        some (Vcursor cu')
    | _, _ -> some Vtop
  end
  else if is ~cls:Api.xml_element ~name:"getChildren" then begin
    match (base, arg 0 args) with
    | Some (Vcursor cu), Some (Vstr { sg = Strsig.Lit tag; _ }) ->
        let cu' = cursor_child (cursor_child cu (Schild tag)) Sindex in
        record_nav ctx cu';
        let l = alloc Api.array_list in
        set l "items" (Vlist [ Vcursor cu' ]);
        some (Vobj l)
    | _, _ -> some Vtop
  end
  else if is ~cls:Api.xml_element ~name:"getAttribute" then begin
    match (base, arg 0 args) with
    | Some (Vcursor cu), Some (Vstr { sg = Strsig.Lit a; _ }) ->
        some (cursor_leaf ctx cu (Sattr a) Respacc.Kstr str_of_cursor)
    | _, _ -> some str_unknown
  end
  else if is ~cls:Api.xml_element ~name:"getText" then begin
    match base with
    | Some (Vcursor cu) -> some (cursor_leaf ctx cu Stext Respacc.Kstr str_of_cursor)
    | _ -> some str_unknown
  end
  (* -------------------- SQLite -------------------- *)
  else if is ~cls:Api.sqlite_database ~name:"<init>" then some Vnull
  else if
    is ~cls:Api.sqlite_database ~name:"insert"
    || is ~cls:Api.sqlite_database ~name:"update"
  then begin
    (match (arg 0 args, arg 1 args) with
    | Some (Vstr { sg = Strsig.Lit table; _ }), Some v ->
        (* Column-level stores when the values object exposes its pairs
           (ContentValues); whole-table fallback otherwise. *)
        let store key prov =
          if prov <> [] then begin
            let prev = Option.value (Hashtbl.find_opt ctx.cx_db key) ~default:[] in
            Hashtbl.replace ctx.cx_db key
              (prev @ List.filter (fun p -> not (List.mem p prev)) prov);
            List.iter
              (fun (p : prov) ->
                match ctx.cx_tx p.p_tx with
                | Some tx -> Txn.add_consumer tx (Msgsig.To_database table)
                | None -> ())
              prov
          end
        in
        (match v with
        | Vobj o -> (
            match hslot href o "pairs" with
            | Some (Vlist pairs) ->
                List.iter
                  (function
                    | Vpair (Vstr { sg = Strsig.Lit col; _ }, value) ->
                        store (table ^ "." ^ col) (collect_prov !href value)
                    | other -> store table (collect_prov !href other))
                  pairs
            | _ -> store table (collect_prov !href v))
        | _ -> store table (collect_prov !href v))
    | _, _ -> ());
    some Vnull
  end
  else if is ~cls:Api.sqlite_database ~name:"query" then begin
    match arg 0 args with
    | Some (Vstr { sg = Strsig.Lit table; _ }) ->
        let c = alloc Api.cursor in
        set c "table" (str_lit table);
        some (Vobj c)
    | Some _ | None -> some (Vobj (alloc Api.cursor))
  end
  else if is ~cls:Api.cursor ~name:"getString" then begin
    match base_obj with
    | Some o -> (
        match slot o "table" with
        | Some (Vstr { sg = Strsig.Lit table; _ }) ->
            let key =
              match arg 0 args with
              | Some (Vstr { sg = Strsig.Lit col; _ })
                when Hashtbl.mem ctx.cx_db (table ^ "." ^ col) ->
                  table ^ "." ^ col
              | _ -> table
            in
            let prov =
              Option.value (Hashtbl.find_opt ctx.cx_db key) ~default:[]
              |> List.map (fun (p : prov) ->
                     { p with p_via = Some ("db:" ^ table) })
            in
            some
              (Vstr
                 {
                   sg = Strsig.unknown;
                   prov;
                   srcs = [];
                   structured = None;
                   kprov = [];
                 })
        | _ -> some str_unknown)
    | None -> some str_unknown
  end
  else if is ~cls:Api.cursor ~name:"moveToNext" then some (Vbool None)
  (* -------------------- consumers -------------------- *)
  else if is ~cls:Api.text_view ~name:"setText" then begin
    List.iter
      (fun (p : prov) ->
        match ctx.cx_tx p.p_tx with
        | Some tx ->
            Txn.add_consumer tx Msgsig.To_ui;
            (* Displaying the raw body is inspection: a whole-body use
               makes the response a (text) pair. *)
            if p.p_path = [] then
              Respacc.set_kind tx.Txn.tx_resp Respacc.Bk_text
        | None -> ())
      (collect_prov !href (arg_or_top 0 args));
    some Vnull
  end
  (* -------------------- location / timers / push ------------------- *)
  else if is ~cls:Api.location ~name:"getLat" || is ~cls:Api.location ~name:"getLon"
  then
    some
      (Vstr
         {
           sg = Strsig.unknown;
           prov = [];
           srcs = [ "gps" ];
           structured = None;
           kprov = [];
         })
  else if is ~cls:Api.location_manager ~name:"requestLocationUpdates" then begin
    ctx.cx_register ~kind:"location" (arg_or_top 0 args);
    some Vnull
  end
  else if is ~cls:Api.timer ~name:"<init>" then some Vnull
  else if is ~cls:Api.timer ~name:"schedule" then begin
    ctx.cx_register ~kind:"timer" (arg_or_top 0 args);
    some Vnull
  end
  else if is ~cls:Api.firebase_messaging ~name:"subscribe" then begin
    ctx.cx_register ~kind:"push" (arg_or_top 0 args);
    some Vnull
  end
  else None
