(** Semantic models of library APIs over abstract values (§3.2).

    Each modelled call is interpreted on the signature domain:
    StringBuilder appends concatenate signatures, JSON puts grow builder
    trees, HTTP request constructors collect URIs/headers/bodies,
    demarcation points finalize transactions, and response accessors
    record which body parts the app parses.  All object state goes
    through the interpreter's current-path heap. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Http = Extr_httpmodel.Http

(** Everything a modelled call may touch, supplied by the interpreter. *)
type ctx = {
  cx_prog : Prog.t;
  cx_heap : Absval.heap ref;  (** the current execution path's heap *)
  cx_sid : Ir.stmt_id;  (** the statement being modelled (for provenance) *)
  cx_resources : int -> string option;
  cx_new_tx : dp:Ir.stmt_id -> Txn.t;
  cx_tx : int -> Txn.t option;
  cx_db : (string, Absval.prov list) Hashtbl.t;
      (** SQLite pseudo-store: [table.column] → stored provenance *)
  cx_run_callback :
    Ir.method_id -> Absval.t option -> Absval.t list -> Absval.t;
  cx_register : kind:string -> Absval.t -> unit;
      (** record a framework callback registration (click/timer/push/
          location) so the interpreter later fires it with the same
          receiver heap state *)
  cx_intents : bool;
      (** resolve intent-service dispatch with constant actions
          (extension; off reproduces the paper's §4 limitation) *)
}

val query_body_of_sig : Strsig.t -> (string * Strsig.t) list option
(** Derive a query-style body signature from a string signature shaped
    like [k=v&k2=v2...]; [None] when the shape does not hold. *)

val parse_http_wire : Strsig.t -> (Http.meth * Strsig.t) option
(** Recognize an HTTP request head written to a raw socket
    (["GET /path HTTP/1.1\r\n..."]) and split it into method and URI
    signature — the direct-socket demarcation extension. *)

val call :
  ctx ->
  sid:Ir.stmt_id ->
  Ir.invoke ->
  base:Absval.t option ->
  args:Absval.t list ->
  Absval.t option
(** Interpret a library invoke abstractly.  [sid] is the statement id
    (the transaction anchor for demarcation points).  Returns [None] when
    the API is not modelled (the caller falls back to [Vtop]). *)
