(* Evidence trees for reconstructed transactions: joins the provenance
   recorder's raw records with the finished analysis so a user can ask
   "why does this signature exist?" and get the chain statement → taint
   fact → api_sem rule → fragment, plus the pairing and dependency
   justifications (§3.2, §3.3).  Backs `extractocol --explain` and the
   optional "provenance" member of the JSON report. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Slicer = Extr_slicing.Slicer
module Provenance = Extr_provenance.Provenance

type tx_evidence = {
  ev_tx : Report.transaction;
  ev_slice : (Ir.stmt_id * Provenance.slice_step) list;
      (** why each statement entered the DP's request/response slices *)
  ev_facts : Provenance.fact_edge list;
      (** taint facts derived at slice statements *)
  ev_rules : Provenance.rule_app list;
      (** api_sem rules applied at statements of the DP's slices *)
  ev_fragments : Provenance.fragment list;
      (** signature fragments with originating statement and rule *)
  ev_pairs : Provenance.pair_evidence list;
  ev_deps : Provenance.dep_evidence list;
}

let dedup_keep_order xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

(** Statements of the request+response slices of a demarcation point. *)
let slice_stmts_of (slices : Slicer.result) (dp : Ir.stmt_id) : Ir.Stmt_set.t =
  List.fold_left
    (fun acc (sl : Slicer.slice) ->
      if Ir.Stmt_id.equal sl.Slicer.sl_dp.Slicer.dp_stmt dp then
        Ir.Stmt_set.union acc sl.Slicer.sl_stmts
      else acc)
    Ir.Stmt_set.empty
    (slices.Slicer.r_request @ slices.Slicer.r_response)

let gather ?(recorder = Provenance.default) (analysis : Pipeline.analysis) :
    tx_evidence list =
  let report = analysis.Pipeline.an_report in
  let aliases = report.Report.rp_tx_aliases in
  List.map
    (fun (tr : Report.transaction) ->
      let dp = tr.Report.tr_dp in
      let in_slices = slice_stmts_of analysis.Pipeline.an_slices dp in
      let slice = dedup_keep_order (Provenance.slice_steps recorder ~dp) in
      let facts =
        dedup_keep_order
          (List.concat_map
             (fun (sid, _) -> Provenance.fact_edges_at recorder sid)
             slice)
      in
      let rules =
        dedup_keep_order
          (List.filter
             (fun (r : Provenance.rule_app) ->
               Ir.Stmt_set.mem r.Provenance.ru_stmt in_slices)
             (Provenance.rules recorder))
      in
      {
        ev_tx = tr;
        ev_slice = slice;
        ev_facts = facts;
        ev_rules = rules;
        ev_fragments =
          dedup_keep_order
            (Provenance.fragments_of recorder ~aliases tr.Report.tr_id);
        ev_pairs = Provenance.pairs_of recorder ~dp;
        ev_deps =
          dedup_keep_order
            (Provenance.deps_of recorder ~aliases tr.Report.tr_id);
      })
    report.Report.rp_transactions

(* ------------------------------------------------------------------ *)
(* JSON export                                                        *)
(* ------------------------------------------------------------------ *)

let json_of_evidence (ev : tx_evidence) : Json.t =
  Json.Obj
    [
      ("tx", Json.Int ev.ev_tx.Report.tr_id);
      ("dp", Json.Str (Ir.Stmt_id.to_string ev.ev_tx.Report.tr_dp));
      ( "slice",
        Json.List
          (List.map
             (fun (sid, step) ->
               Json.Obj
                 [
                   ("stmt", Json.Str (Ir.Stmt_id.to_string sid));
                   ("step", Json.Str (Provenance.slice_step_name step));
                 ])
             ev.ev_slice) );
      ( "facts",
        Json.List
          (List.map
             (fun (e : Provenance.fact_edge) ->
               Json.Obj
                 [
                   ("stmt", Json.Str (Ir.Stmt_id.to_string e.Provenance.fe_stmt));
                   ( "direction",
                     Json.Str
                       (match e.Provenance.fe_dir with
                       | `Backward -> "backward"
                       | `Forward -> "forward") );
                   ("fact", Json.Str e.Provenance.fe_fact);
                 ])
             ev.ev_facts) );
      ( "rules",
        Json.List
          (List.map
             (fun (r : Provenance.rule_app) ->
               Json.Obj
                 [
                   ("stmt", Json.Str (Ir.Stmt_id.to_string r.Provenance.ru_stmt));
                   ("rule", Json.Str r.Provenance.ru_rule);
                 ])
             ev.ev_rules) );
      ( "fragments",
        Json.List
          (List.map
             (fun (f : Provenance.fragment) ->
               Json.Obj
                 [
                   ("part", Json.Str f.Provenance.fg_part);
                   ("rule", Json.Str f.Provenance.fg_rule);
                   ("stmt", Json.Str (Ir.Stmt_id.to_string f.Provenance.fg_stmt));
                 ])
             ev.ev_fragments) );
      ( "pairing",
        Json.List
          (List.map
             (fun (p : Provenance.pair_evidence) ->
               Json.Obj
                 [
                   ("head", Json.Str (Ir.Method_id.to_string p.Provenance.pe_head));
                   ("reason", Json.Str p.Provenance.pe_reason);
                 ])
             ev.ev_pairs) );
      ( "dependencies",
        Json.List
          (List.map
             (fun (d : Provenance.dep_evidence) ->
               Json.Obj
                 [
                   ("from_tx", Json.Int d.Provenance.de_from_tx);
                   ("to_field", Json.Str d.Provenance.de_to_field);
                   ("reason", Json.Str d.Provenance.de_reason);
                 ])
             ev.ev_deps) );
    ]

let to_json (evs : tx_evidence list) : Json.t =
  Json.List (List.map json_of_evidence evs)

(* ------------------------------------------------------------------ *)
(* Human-readable evidence tree                                        *)
(* ------------------------------------------------------------------ *)

let stmt_text prog (sid : Ir.stmt_id) =
  match Prog.stmt_at prog sid with
  | Some stmt -> Extr_ir.Pp.stmt_to_string stmt
  | None -> "<unresolved>"

let pp_tree prog fmt (ev : tx_evidence) =
  let tr = ev.ev_tx in
  Fmt.pf fmt "#%d %s %s@." tr.Report.tr_id
    (Http.meth_to_string tr.Report.tr_request.Msgsig.rs_meth)
    (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri);
  Fmt.pf fmt "  demarcation point: %s  %s@."
    (Ir.Stmt_id.to_string tr.Report.tr_dp)
    (stmt_text prog tr.Report.tr_dp);
  if ev.ev_slice <> [] then begin
    Fmt.pf fmt "  slice (%d steps):@." (List.length ev.ev_slice);
    List.iter
      (fun (sid, step) ->
        Fmt.pf fmt "    %-14s %s  %s@."
          (Provenance.slice_step_name step)
          (Ir.Stmt_id.to_string sid) (stmt_text prog sid))
      ev.ev_slice
  end;
  if ev.ev_facts <> [] then begin
    Fmt.pf fmt "  taint facts:@.";
    List.iter
      (fun (e : Provenance.fact_edge) ->
        Fmt.pf fmt "    %-8s %s  %s@."
          (match e.Provenance.fe_dir with
          | `Backward -> "backward"
          | `Forward -> "forward")
          (Ir.Stmt_id.to_string e.Provenance.fe_stmt)
          e.Provenance.fe_fact)
      ev.ev_facts
  end;
  if ev.ev_rules <> [] then begin
    Fmt.pf fmt "  rules applied:@.";
    List.iter
      (fun (r : Provenance.rule_app) ->
        Fmt.pf fmt "    %s  %s@."
          (Ir.Stmt_id.to_string r.Provenance.ru_stmt)
          r.Provenance.ru_rule)
      ev.ev_rules
  end;
  if ev.ev_fragments <> [] then begin
    Fmt.pf fmt "  signature fragments:@.";
    List.iter
      (fun (f : Provenance.fragment) ->
        Fmt.pf fmt "    %-20s <- %s @@ %s@." f.Provenance.fg_part
          f.Provenance.fg_rule
          (Ir.Stmt_id.to_string f.Provenance.fg_stmt))
      ev.ev_fragments
  end;
  if ev.ev_pairs <> [] then begin
    Fmt.pf fmt "  pairing:@.";
    List.iter
      (fun (p : Provenance.pair_evidence) ->
        Fmt.pf fmt "    head %s (%s)@."
          (Ir.Method_id.to_string p.Provenance.pe_head)
          p.Provenance.pe_reason)
      ev.ev_pairs
  end;
  if ev.ev_deps <> [] then begin
    Fmt.pf fmt "  dependencies:@.";
    List.iter
      (fun (d : Provenance.dep_evidence) ->
        Fmt.pf fmt "    #%d -> %s (%s)@." d.Provenance.de_from_tx
          d.Provenance.de_to_field d.Provenance.de_reason)
      ev.ev_deps
  end
