(** Evidence trees for reconstructed transactions.

    Joins the provenance recorder's raw records with the finished
    analysis: per report transaction, the slice steps of its demarcation
    point, the taint facts derived at those statements, the api_sem rules
    applied inside its slices, the signature fragments with their
    originating statements, and the pairing/dependency justifications.
    Backs [extractocol --explain] and the optional "provenance" member of
    the JSON report. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Provenance = Extr_provenance.Provenance

type tx_evidence = {
  ev_tx : Report.transaction;
  ev_slice : (Ir.stmt_id * Provenance.slice_step) list;
      (** why each statement entered the DP's request/response slices *)
  ev_facts : Provenance.fact_edge list;
      (** taint facts derived at slice statements *)
  ev_rules : Provenance.rule_app list;
      (** api_sem rules applied at statements of the DP's slices *)
  ev_fragments : Provenance.fragment list;
      (** signature fragments with originating statement and rule *)
  ev_pairs : Provenance.pair_evidence list;
  ev_deps : Provenance.dep_evidence list;
}

val gather :
  ?recorder:Provenance.t -> Pipeline.analysis -> tx_evidence list
(** One evidence record per report transaction, in report order.
    [recorder] defaults to {!Provenance.default}; with recording disabled
    all chains are empty. *)

val json_of_evidence : tx_evidence -> Extr_httpmodel.Json.t
val to_json : tx_evidence list -> Extr_httpmodel.Json.t

val pp_tree : Prog.t -> Format.formatter -> tx_evidence -> unit
(** Human-readable evidence tree: statement → fact/rule → fragment, with
    each statement id resolved to its Limple text. *)
