(** The flow-sensitive signature-building interpretation (§3.2).

    Starting from each event origin (activity lifecycle methods,
    registered UI/timer/push callbacks), the interpreter executes the
    application abstractly: basic blocks are processed in topological
    order of the intra-procedural control-flow graph, signature databases
    (variable → abstract value, plus a functional heap) merge at
    confluence points with disjunction, and loop-variant string parts are
    widened with [rep].  Demarcation-point calls finalize transactions;
    each call-string context yields its own transaction, which is how
    request/response pairs stay disjoint under code reuse (§3.3,
    Figure 5). *)

module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Slicer = Extr_slicing.Slicer
module Apk = Extr_apk.Apk
module Resilience = Extr_resilience.Resilience

type options = {
  io_max_depth : int;  (** call-inlining depth bound *)
  io_loop_passes : int;  (** maximum sweeps when the CFG has loops *)
  io_event_heap : bool;
      (** persist receiver heap state from registration into callbacks —
          the behavioural analogue of the §3.4 asynchronous-event
          heuristic.  Off: callbacks run on fresh objects (FlowDroid's
          arbitrary-ordering assumption) and heap-carried request parts
          are lost. *)
  io_restrict_to_slices : bool;
      (** only follow calls into methods relevant to some slice *)
  io_context_sensitive : bool;
      (** distinct transaction per call string; off = one transaction per
          demarcation statement (the Figure-5 failure mode, for the
          pairing ablation) *)
  io_intents : bool;
      (** resolve constant-action intent-service dispatch (extension;
          off reproduces the paper's §4 limitation) *)
  io_naive_order : bool;
      (** process blocks in reverse topological order and iterate to a
          fixpoint — the slow worklist-style baseline of §3.2's
          scalability argument (ablation only) *)
}

val default_options : options

type t
(** Interpreter instance: program, call graph, options, and the
    accumulated transaction store. *)

val create :
  ?options:options ->
  ?budget:Resilience.Budget.t ->
  ?slices:Slicer.result ->
  Prog.t ->
  Callgraph.t ->
  Apk.t ->
  t
(** Build an interpreter.  When [slices] is given (the normal pipeline),
    interpretation is restricted to slice-relevant methods and callbacks;
    without it the whole program is executed abstractly.  [budget]
    governs fuel, call depth and the wall-clock deadline (default: a
    private 3M-statement budget matching the historical bound). *)

val run : t -> Txn.t list
(** Run the whole app: lifecycle entry points first, then registered
    callbacks (with or without persistent heap state per options; a
    second sweep over the cumulative event heap lets transactions observe
    state stored by other callbacks).  Returns the finalized
    transactions in creation order, deduplicated across passes.

    If the budget trips mid-run, remaining basic blocks are skipped at
    block granularity (never mid-block), every transaction is marked
    {!Txn.t.tx_degraded}, and an [interpretation] degradation is
    recorded on the default ledger — the run still returns normally. *)
