(* Reconstructed HTTP transactions (§3.3): a paired request/response with
   the request signature, the response signature accumulated from parsing
   code, the consumers of response data, and fine-grained dependencies on
   earlier transactions. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig

(** A fine-grained dependency: the value stored at [dep_from_path] in
    transaction [dep_from_tx]'s response flows into field [dep_to_field]
    of this transaction's request. *)
type dep = {
  dep_from_tx : int;
  dep_from_path : string list;  (** JSON/XML path in the earlier response *)
  dep_to_field : string;  (** "uri" | "header:<h>" | "body:<k>" | "query:<k>" *)
  dep_via : string option;  (** mediator, e.g. "db:talks" for DB-mediated flows *)
}

type t = {
  tx_id : int;
  tx_dp : Ir.stmt_id;  (** the demarcation point that produced the pair *)
  tx_origin : Ir.method_id;  (** event handler from which interpretation started *)
  mutable tx_meth : Http.meth;
  mutable tx_uri : Strsig.t;
  mutable tx_headers : (string * Strsig.t) list;
  mutable tx_body : Msgsig.body_sig;
  tx_resp : Respacc.t;
  mutable tx_consumers : Msgsig.consumer list;
  mutable tx_deps : dep list;
  mutable tx_srcs : string list;  (** privacy sources feeding the request *)
  mutable tx_dynamic_uri : bool;
      (** the URI is (partly) derived from an earlier response — a
          "dynamically-derived URI" in the TED case study *)
  mutable tx_degraded : bool;
      (** the interpretation that built this signature ran out of budget:
          fragments may be missing (request parts, response paths) *)
}

let create ~id ~dp ~origin =
  {
    tx_id = id;
    tx_dp = dp;
    tx_origin = origin;
    tx_meth = Http.GET;
    tx_uri = Strsig.unknown;
    tx_headers = [];
    tx_body = Msgsig.Bnone;
    tx_resp = Respacc.create ();
    tx_consumers = [];
    tx_deps = [];
    tx_srcs = [];
    tx_dynamic_uri = false;
    tx_degraded = false;
  }

let request_sig (t : t) : Msgsig.request_sig =
  {
    Msgsig.rs_meth = t.tx_meth;
    rs_uri = t.tx_uri;
    rs_headers = t.tx_headers;
    rs_body = t.tx_body;
  }

let response_sig (t : t) : Msgsig.response_sig =
  { Msgsig.ps_body = Respacc.to_body_sig t.tx_resp; ps_consumers = t.tx_consumers }

let add_consumer t c =
  if not (List.mem c t.tx_consumers) then t.tx_consumers <- c :: t.tx_consumers

let add_dep t d = if not (List.mem d t.tx_deps) then t.tx_deps <- d :: t.tx_deps

let pp fmt t =
  Fmt.pf fmt "#%d %s %s" t.tx_id
    (Http.meth_to_string t.tx_meth)
    (Strsig.to_regex t.tx_uri);
  (match t.tx_body with
  | Msgsig.Bnone -> ()
  | b -> Fmt.pf fmt "@\n  body: %a" Msgsig.pp_body_sig b);
  (match Respacc.to_body_sig t.tx_resp with
  | Msgsig.Bnone -> ()
  | b -> Fmt.pf fmt "@\n  response: %a" Msgsig.pp_body_sig b);
  (match t.tx_consumers with
  | [] -> ()
  | cs ->
      Fmt.pf fmt "@\n  consumers: %a"
        (Fmt.list ~sep:Fmt.comma (Fmt.of_to_string Msgsig.consumer_to_string))
        cs);
  List.iter
    (fun d ->
      Fmt.pf fmt "@\n  dep: tx#%d %s -> %s%s" d.dep_from_tx
        (String.concat "." d.dep_from_path)
        d.dep_to_field
        (match d.dep_via with Some via -> " (via " ^ via ^ ")" | None -> ""))
    t.tx_deps
