(* The final analysis report: deduplicated transactions with signatures,
   pairings, dependency graph, slice statistics and timing — everything the
   paper's evaluation tables consume. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Resilience = Extr_resilience.Resilience

type transaction = {
  tr_id : int;
  tr_dp : Ir.stmt_id;  (** the demarcation point that produced the pair *)
  tr_request : Msgsig.request_sig;
  tr_response : Msgsig.response_sig;
  tr_deps : Txn.dep list;
  tr_origin : Ir.method_id;
  tr_dynamic_uri : bool;
  tr_srcs : string list;
  tr_degraded : bool;
      (** built under an exhausted budget: fragments may be missing *)
}

type t = {
  rp_app : string;
  rp_transactions : transaction list;
  rp_tx_aliases : (int * int) list;
      (** raw transaction id → representative id after {!dedup}; lets
          provenance recorded against merged duplicates reach the
          representative *)
  rp_dp_count : int;
  rp_slice_fraction : float;
  rp_slice_stmts : int;
  rp_total_stmts : int;
  rp_elapsed_s : float;
  rp_degradations : Resilience.Degrade.degradation list;
      (** phases that bailed before finishing (budget / deadline), in
          occurrence order; empty = the analysis ran to completion *)
}

(* ------------------------------------------------------------------ *)
(* Deduplication                                                      *)
(* ------------------------------------------------------------------ *)

(** Two transactions are the same protocol message when method, URI regex,
    body signature and response signature coincide (distinct call contexts
    can produce identical messages). *)
let same_signature (a : Txn.t) (b : Txn.t) =
  a.Txn.tx_meth = b.Txn.tx_meth
  && Strsig.to_regex a.Txn.tx_uri = Strsig.to_regex b.Txn.tx_uri
  && Fmt.str "%a" Msgsig.pp_body_sig a.Txn.tx_body
     = Fmt.str "%a" Msgsig.pp_body_sig b.Txn.tx_body
  && Fmt.str "%a" Msgsig.pp_body_sig (Respacc.to_body_sig a.Txn.tx_resp)
     = Fmt.str "%a" Msgsig.pp_body_sig (Respacc.to_body_sig b.Txn.tx_resp)

(** Deduplicate raw transactions, remapping dependency sources onto the
    representative ids. *)
let dedup (txs : Txn.t list) : Txn.t list * (int, int) Hashtbl.t =
  let id_map = Hashtbl.create 16 in
  let reps = ref [] in
  List.iter
    (fun tx ->
      match List.find_opt (fun r -> same_signature r tx) !reps with
      | Some rep ->
          Hashtbl.replace id_map tx.Txn.tx_id rep.Txn.tx_id;
          (* Merge consumers and deps into the representative. *)
          List.iter (Txn.add_consumer rep) tx.Txn.tx_consumers;
          List.iter (Txn.add_dep rep) tx.Txn.tx_deps;
          rep.Txn.tx_srcs <-
            List.sort_uniq String.compare (rep.Txn.tx_srcs @ tx.Txn.tx_srcs);
          rep.Txn.tx_dynamic_uri <- rep.Txn.tx_dynamic_uri || tx.Txn.tx_dynamic_uri;
          rep.Txn.tx_degraded <- rep.Txn.tx_degraded || tx.Txn.tx_degraded
      | None ->
          Hashtbl.replace id_map tx.Txn.tx_id tx.Txn.tx_id;
          reps := !reps @ [ tx ])
    txs;
  (* Remap dependency sources. *)
  List.iter
    (fun (tx : Txn.t) ->
      tx.Txn.tx_deps <-
        List.map
          (fun (d : Txn.dep) ->
            match Hashtbl.find_opt id_map d.Txn.dep_from_tx with
            | Some id -> { d with Txn.dep_from_tx = id }
            | None -> d)
          tx.Txn.tx_deps)
    !reps;
  (!reps, id_map)

let of_transactions ?(degradations = []) ~app ~dp_count ~slice_stmts
    ~total_stmts ~elapsed_s (txs : Txn.t list) : t =
  let reps, id_map = dedup txs in
  let transactions =
    List.map
      (fun (tx : Txn.t) ->
        {
          tr_id = tx.Txn.tx_id;
          tr_dp = tx.Txn.tx_dp;
          tr_request = Txn.request_sig tx;
          tr_response = Txn.response_sig tx;
          tr_deps = tx.Txn.tx_deps;
          tr_origin = tx.Txn.tx_origin;
          tr_dynamic_uri = tx.Txn.tx_dynamic_uri;
          tr_srcs = tx.Txn.tx_srcs;
          tr_degraded = tx.Txn.tx_degraded;
        })
      reps
  in
  let aliases =
    Hashtbl.fold
      (fun raw rep acc -> if raw <> rep then (raw, rep) :: acc else acc)
      id_map []
    |> List.sort compare
  in
  {
    rp_app = app;
    rp_transactions = transactions;
    rp_tx_aliases = aliases;
    rp_dp_count = dp_count;
    rp_slice_fraction =
      (if total_stmts = 0 then 0.0
       else float_of_int slice_stmts /. float_of_int total_stmts);
    rp_slice_stmts = slice_stmts;
    rp_total_stmts = total_stmts;
    rp_elapsed_s = elapsed_s;
    rp_degradations = degradations;
  }

(* ------------------------------------------------------------------ *)
(* Queries used by the evaluation                                     *)
(* ------------------------------------------------------------------ *)

let requests_by_method (t : t) (m : Http.meth) =
  List.filter (fun tr -> tr.tr_request.Msgsig.rs_meth = m) t.rp_transactions

(** Transactions whose response has a body processed by the app (the
    "#Pair" column of Table 1 counts request/response-body pairs). *)
let paired (t : t) =
  List.filter
    (fun tr ->
      match tr.tr_response.Msgsig.ps_body with
      | Msgsig.Bnone | Msgsig.Bopaque -> false
      | Msgsig.Bquery _ | Msgsig.Bjson _ | Msgsig.Bxml _ | Msgsig.Btext _ -> true)
    t.rp_transactions

let request_body_kind (tr : transaction) =
  match tr.tr_request.Msgsig.rs_body with
  | Msgsig.Bnone ->
      (* Query strings living in the URI count as query-string requests. *)
      if Msgsig.uri_query_keywords tr.tr_request.Msgsig.rs_uri <> [] then Some `Query
      else None
  | Msgsig.Bquery _ -> Some `Query
  | Msgsig.Bjson _ -> Some `Json
  | Msgsig.Bxml _ -> Some `Xml
  | Msgsig.Btext _ | Msgsig.Bopaque -> Some `Text

let response_body_kind (tr : transaction) =
  match tr.tr_response.Msgsig.ps_body with
  | Msgsig.Bnone | Msgsig.Bopaque -> None
  | Msgsig.Bjson _ -> Some `Json
  | Msgsig.Bxml _ -> Some `Xml
  | Msgsig.Bquery _ | Msgsig.Btext _ -> Some `Text

(* ------------------------------------------------------------------ *)
(* JSON export                                                        *)
(* ------------------------------------------------------------------ *)

module Json = Extr_httpmodel.Json
module Jsonsig = Extr_siglang.Jsonsig
module Xmlsig = Extr_siglang.Xmlsig

let json_of_body_sig (b : Msgsig.body_sig) : Json.t =
  let kind = Json.Str (Msgsig.body_sig_kind b) in
  match b with
  | Msgsig.Bnone -> Json.Obj [ ("kind", kind) ]
  | Msgsig.Bopaque -> Json.Obj [ ("kind", kind) ]
  | Msgsig.Btext sg ->
      Json.Obj [ ("kind", kind); ("regex", Json.Str (Strsig.to_regex sg)) ]
  | Msgsig.Bquery kvs ->
      Json.Obj
        [
          ("kind", kind);
          ( "params",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Str (Strsig.to_regex v))) kvs)
          );
        ]
  | Msgsig.Bjson js ->
      Json.Obj [ ("kind", kind); ("shape", Json.Str (Jsonsig.to_string js)) ]
  | Msgsig.Bxml xs ->
      Json.Obj [ ("kind", kind); ("dtd", Json.Str (Xmlsig.to_dtd xs)) ]

let json_of_transaction (tr : transaction) : Json.t =
  Json.Obj
    [
      ("id", Json.Int tr.tr_id);
      ("dp", Json.Str (Ir.Stmt_id.to_string tr.tr_dp));
      ( "request",
        Json.Obj
          [
            ("method", Json.Str (Http.meth_to_string tr.tr_request.Msgsig.rs_meth));
            ("uri", Json.Str (Strsig.to_regex tr.tr_request.Msgsig.rs_uri));
            ( "headers",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, Json.Str (Strsig.to_regex v)))
                   tr.tr_request.Msgsig.rs_headers) );
            ("body", json_of_body_sig tr.tr_request.Msgsig.rs_body);
          ] );
      ( "response",
        Json.Obj
          [
            ("body", json_of_body_sig tr.tr_response.Msgsig.ps_body);
            ( "consumers",
              Json.List
                (List.map
                   (fun c -> Json.Str (Msgsig.consumer_to_string c))
                   tr.tr_response.Msgsig.ps_consumers) );
          ] );
      ( "dependencies",
        Json.List
          (List.map
             (fun (d : Txn.dep) ->
               Json.Obj
                 ([
                    ("from_tx", Json.Int d.Txn.dep_from_tx);
                    ( "from_path",
                      Json.Str (String.concat "." d.Txn.dep_from_path) );
                    ("to_field", Json.Str d.Txn.dep_to_field);
                  ]
                 @
                 match d.Txn.dep_via with
                 | Some v -> [ ("via", Json.Str v) ]
                 | None -> []))
             tr.tr_deps) );
      ("origin", Json.Str (Ir.Method_id.to_string tr.tr_origin));
      ("dynamic_uri", Json.Bool tr.tr_dynamic_uri);
      ("privacy_sources", Json.List (List.map (fun s -> Json.Str s) tr.tr_srcs));
      ("degraded", Json.Bool tr.tr_degraded);
    ]

let json_of_degradation (d : Resilience.Degrade.degradation) : Json.t =
  Json.Obj
    [
      ("phase", Json.Str d.Resilience.Degrade.dg_phase);
      ("reason", Json.Str d.Resilience.Degrade.dg_reason);
      ("detail", Json.Str d.Resilience.Degrade.dg_detail);
      ("work_left", Json.Int d.Resilience.Degrade.dg_work_left);
    ]

let to_json ?provenance ?(deterministic = false) (t : t) : Json.t =
  Json.Obj
    ([
       ("app", Json.Str t.rp_app);
       ("demarcation_points", Json.Int t.rp_dp_count);
       ("slice_statements", Json.Int t.rp_slice_stmts);
       ("total_statements", Json.Int t.rp_total_stmts);
       ("slice_fraction", Json.Float t.rp_slice_fraction);
       (* Deterministic form: wall-clock is the one member that differs
          between two runs over identical inputs, which would break the
          byte-identity the result cache and --resume guarantee. *)
       ("elapsed_seconds", Json.Float (if deterministic then 0.0 else t.rp_elapsed_s));
       ( "degradations",
         Json.List (List.map json_of_degradation t.rp_degradations) );
       ( "transactions",
         Json.List (List.map json_of_transaction t.rp_transactions) );
     ]
    @ match provenance with Some p -> [ ("provenance", p) ] | None -> [])

(* ------------------------------------------------------------------ *)
(* DOT export                                                         *)
(* ------------------------------------------------------------------ *)

(* Escape double quotes and backslashes for DOT string literals. *)
let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render the inter-transaction dependency graph (the structure behind
    Figure 1): one node per transaction labelled with its method and URI
    regex, one edge per dependency labelled with the response path, the
    consumed field, and any mediator (e.g. a database table). *)
let to_dot (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %S {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n"
       t.rp_app);
  List.iter
    (fun tr ->
      let uri = Strsig.to_regex tr.tr_request.Msgsig.rs_uri in
      let uri =
        if String.length uri > 60 then String.sub uri 0 57 ^ "..." else uri
      in
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"#%d %s %s\"];\n" tr.tr_id tr.tr_id
           (Http.meth_to_string tr.tr_request.Msgsig.rs_meth)
           (dot_escape uri)))
    t.rp_transactions;
  List.iter
    (fun tr ->
      List.iter
        (fun (d : Txn.dep) ->
          Buffer.add_string buf
            (Printf.sprintf "  t%d -> t%d [label=\"%s -> %s%s\"];\n"
               d.Txn.dep_from_tx tr.tr_id
               (dot_escape (String.concat "." d.Txn.dep_from_path))
               (dot_escape d.Txn.dep_to_field)
               (match d.Txn.dep_via with
               | Some v -> " via " ^ dot_escape v
               | None -> "")))
        tr.tr_deps)
    t.rp_transactions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                    *)
(* ------------------------------------------------------------------ *)

let pp_transaction fmt tr =
  Fmt.pf fmt "#%d%s %a" tr.tr_id
    (if tr.tr_degraded then " [degraded]" else "")
    Msgsig.pp_request_sig tr.tr_request;
  (match tr.tr_response.Msgsig.ps_body with
  | Msgsig.Bnone -> ()
  | b -> Fmt.pf fmt "@\n    response: %a" Msgsig.pp_body_sig b);
  (match tr.tr_response.Msgsig.ps_consumers with
  | [] -> ()
  | cs ->
      Fmt.pf fmt "@\n    consumers: %a"
        (Fmt.list ~sep:Fmt.comma (Fmt.of_to_string Msgsig.consumer_to_string))
        cs);
  List.iter
    (fun (d : Txn.dep) ->
      Fmt.pf fmt "@\n    dep: #%d %s -> %s%s" d.Txn.dep_from_tx
        (String.concat "." d.Txn.dep_from_path)
        d.Txn.dep_to_field
        (match d.Txn.dep_via with Some v -> " via " ^ v | None -> ""))
    tr.tr_deps

let pp fmt t =
  Fmt.pf fmt "=== %s: %d transactions, %d DPs, slices %.1f%% of %d stmts, %.2fs ===@\n"
    t.rp_app
    (List.length t.rp_transactions)
    t.rp_dp_count (100.0 *. t.rp_slice_fraction) t.rp_total_stmts t.rp_elapsed_s;
  List.iter (fun tr -> Fmt.pf fmt "  %a@\n" pp_transaction tr) t.rp_transactions;
  match t.rp_degradations with
  | [] -> ()
  | ds ->
      Fmt.pf fmt "  degradations:@\n";
      List.iter
        (fun d -> Fmt.pf fmt "    %a@\n" Resilience.Degrade.pp_degradation d)
        ds
