(* The flow-sensitive signature-building interpretation (§3.2).  Starting
   from each event origin (activity lifecycle methods, registered UI/timer/
   push callbacks), the interpreter executes the application abstractly:
   basic blocks are processed in topological order of the intra-procedural
   control-flow graph, signature databases (variable → abstract value, plus
   a functional heap) merge at confluence points with disjunction, and
   loop-variant string parts are widened with [rep].  Demarcation-point
   calls finalize transactions; each call-string context yields its own
   transaction, which is how request/response pairs stay disjoint under
   code reuse (§3.3, Figure 5). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Cfg = Extr_cfg.Cfg
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Strsig = Extr_siglang.Strsig
module Slicer = Extr_slicing.Slicer
module Apk = Extr_apk.Apk
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience
open Absval

let src =
  Logs.Src.create "extractocol.interp"
    ~doc:"Flow-sensitive signature-building interpretation"

module Log = (val Logs.src_log src : Logs.LOG)

let m_stmts =
  Metrics.counter ~help:"statements interpreted abstractly" "interp.statements"

let m_txs = Metrics.counter ~help:"raw transactions emitted" "interp.transactions"

let m_callbacks =
  Metrics.counter ~help:"registered callbacks fired" "interp.callbacks_fired"

type options = {
  io_max_depth : int;  (** call-inlining depth bound *)
  io_loop_passes : int;  (** maximum sweeps when the CFG has loops *)
  io_event_heap : bool;
      (** persist receiver heap state from registration into callbacks —
          the behavioural analogue of the §3.4 asynchronous-event
          heuristic.  Off: callbacks run on fresh objects (FlowDroid's
          arbitrary-ordering assumption) and heap-carried request parts
          are lost. *)
  io_restrict_to_slices : bool;
      (** only follow calls into methods relevant to some slice *)
  io_context_sensitive : bool;
      (** distinct transaction per call string; off = one transaction per
          demarcation statement (the Figure-5 failure mode, for the
          pairing ablation) *)
  io_intents : bool;
      (** resolve constant-action intent-service dispatch (extension;
          off reproduces the paper's §4 limitation) *)
  io_naive_order : bool;
      (** process blocks in reverse topological order and iterate to a
          fixpoint — the slow worklist-style baseline of §3.2's
          scalability argument (ablation only) *)
}

let default_options =
  {
    io_max_depth = 24;
    io_loop_passes = 3;
    io_event_heap = true;
    io_restrict_to_slices = true;
    io_context_sensitive = true;
    io_intents = false;
    io_naive_order = false;
  }

type pending = {
  pe_meth : Ir.method_id;
  pe_this : Absval.t;
  pe_kind : string;  (** click / timer / push / location *)
  mutable pe_heap : heap option;  (** heap at the end of the registering run *)
}

type t = {
  prog : Prog.t;
  cg : Callgraph.t;
  apk : Apk.t;
  opts : options;
  relevant : Ir.Method_set.t option;  (** method filter from slices *)
  txs : (int, Txn.t) Hashtbl.t;
  mutable tx_count : int;
  tx_cache : (string, int) Hashtbl.t;  (** context key → transaction id *)
  db : (string, prov list) Hashtbl.t;
  statics : (string * string, Absval.t) Hashtbl.t;
  mutable pending : pending list;
  mutable fired : (Ir.method_id * string) list;  (** callbacks already run *)
  mutable origin : Ir.method_id;
  mutable origin_kind : string;
  mutable callstack : Ir.stmt_id list;
  mutable active : Ir.Method_set.t;  (** recursion guard *)
  mutable steps : int;  (** statements interpreted (telemetry) *)
  budget : Resilience.Budget.t;  (** fuel / depth / deadline governance *)
  cfg_cache : (Ir.method_id, Cfg.t) Hashtbl.t;
  prof : Ir.method_id Profile.cursor;
      (** per-method cost attribution; statement-granular visits mean the
          time between two statements is charged to the method executing
          them, so inlined callees collect their own (self) time *)
}

(* Environments: the per-block signature database of §3.2 mapping each
   variable to its abstract value; paired with the functional heap. *)
module Env = Map.Make (String)

type state = { vars : Absval.t Env.t; sheap : heap }

(* Standalone interpreters (tests, bench) get a private fuel-only budget
   matching the historical 3M-statement bound; the pipeline passes its
   shared per-run budget instead. *)
let standalone_budget () =
  Resilience.Budget.create
    ~limits:
      {
        Resilience.Budget.unlimited with
        Resilience.Budget.bl_max_steps = 3_000_000;
      }
    ()

(** Methods relevant to slicing: methods containing slice statements plus
    everything that can reach them in the call graph. *)
let relevant_methods ?(intents = false) prog (cg : Callgraph.t)
    (slices : Slicer.result) =
  let base =
    List.fold_left
      (fun acc (sl : Slicer.slice) ->
        Ir.Stmt_set.fold
          (fun sid acc -> Ir.Method_set.add sid.Ir.sid_meth acc)
          sl.Slicer.sl_stmts acc)
      Ir.Method_set.empty
      (slices.Slicer.r_request @ slices.Slicer.r_response)
  in
  let result = ref base in
  (* Explicit work-stack (deep caller chains must not blow the stack);
     callers are pulled through the lazy call-graph view, so only methods
     around the slices are ever resolved. *)
  let pull mid =
    let stack = ref [ mid ] in
    let rec drain () =
      match !stack with
      | [] -> ()
      | m :: rest ->
          stack := rest;
          List.iter
            (fun (sid : Ir.stmt_id) ->
              if not (Ir.Method_set.mem sid.Ir.sid_meth !result) then begin
                result := Ir.Method_set.add sid.Ir.sid_meth !result;
                stack := sid.Ir.sid_meth :: !stack
              end)
            (Callgraph.callers cg m);
          drain ()
    in
    drain ()
  in
  Ir.Method_set.iter pull base;
  (* Intent extension: startService is implicit control flow the call
     graph does not carry; when a relevant intent service exists, the
     dispatching methods (and their callers) become relevant too. *)
  if intents then begin
    let service_relevant =
      Ir.Method_set.exists
        (fun mid -> mid.Ir.id_name = "onHandleIntent")
        !result
    in
    if service_relevant then
      List.iter
        (fun (m : Ir.meth) ->
          let dispatches =
            Array.exists
              (fun stmt ->
                match Ir.stmt_invoke stmt with
                | Some i ->
                    Api.invoke_is i ~cls:Api.context ~name:"startService"
                | None -> false)
              m.Ir.m_body
          in
          if dispatches then begin
            let mid = Ir.method_id_of_meth m in
            if not (Ir.Method_set.mem mid !result) then begin
              result := Ir.Method_set.add mid !result;
              pull mid
            end
          end)
        (Prog.app_methods prog)
  end;
  !result

let create ?(options = default_options) ?budget ?slices prog cg (apk : Apk.t) :
    t =
  let relevant =
    match (options.io_restrict_to_slices, slices) with
    | true, Some s ->
        Some (relevant_methods ~intents:options.io_intents prog cg s)
    | _, _ -> None
  in
  let budget =
    match budget with Some b -> b | None -> standalone_budget ()
  in
  {
    prog;
    cg;
    apk;
    opts = options;
    relevant;
    txs = Hashtbl.create 32;
    tx_count = 0;
    tx_cache = Hashtbl.create 32;
    db = Hashtbl.create 8;
    statics = Hashtbl.create 16;
    pending = [];
    fired = [];
    origin = { Ir.id_cls = "?"; id_name = "?" };
    origin_kind = "entry";
    callstack = [];
    active = Ir.Method_set.empty;
    steps = 0;
    budget;
    cfg_cache = Hashtbl.create 32;
    prof =
      Profile.cursor ~phase:"interpretation" ~render:Ir.Method_id.to_string ();
  }

let cfg_of t mid =
  match Hashtbl.find_opt t.cfg_cache mid with
  | Some c -> Some c
  | None -> (
      match Prog.find_method t.prog mid with
      | Some m ->
          let c = Cfg.build m in
          Hashtbl.replace t.cfg_cache mid c;
          Some c
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Transaction anchoring                                              *)
(* ------------------------------------------------------------------ *)

let context_key t (sid : Ir.stmt_id) =
  let stack =
    if t.opts.io_context_sensitive then
      String.concat ";" (List.map Ir.Stmt_id.to_string t.callstack)
    else ""
  in
  let origin =
    if t.opts.io_context_sensitive then Ir.Method_id.to_string t.origin else ""
  in
  Printf.sprintf "%s|%s|%s" origin stack (Ir.Stmt_id.to_string sid)

let new_tx t ~dp : Txn.t =
  let key = context_key t dp in
  match Hashtbl.find_opt t.tx_cache key with
  | Some id ->
      (* Re-execution (later pass / loop iteration): reset the request
         side, keep the id and the monotone response accumulator. *)
      let tx = Hashtbl.find t.txs id in
      tx.Txn.tx_meth <- Extr_httpmodel.Http.GET;
      tx.Txn.tx_uri <- Strsig.unknown;
      tx.Txn.tx_headers <- [];
      tx.Txn.tx_body <- Extr_siglang.Msgsig.Bnone;
      tx.Txn.tx_deps <- [];
      tx.Txn.tx_dynamic_uri <- false;
      tx
  | None ->
      let id = t.tx_count in
      t.tx_count <- id + 1;
      (* A raw transaction is the interpreter's "fact produced". *)
      Profile.add_facts t.prof 1;
      let tx = Txn.create ~id ~dp ~origin:t.origin in
      Hashtbl.replace t.txs id tx;
      Hashtbl.replace t.tx_cache key id;
      tx

(* ------------------------------------------------------------------ *)
(* State merging                                                      *)
(* ------------------------------------------------------------------ *)

let alt_sig a b = Strsig.alt [ a; b ]

let merge_states ?(combine_sig = alt_sig) (s1 : state) (s2 : state) : state =
  let mval, final_heap = state_merger ~combine_sig s1.sheap s2.sheap in
  let vars = Env.union (fun _ a b -> Some (mval a b)) s1.vars s2.vars in
  { vars; sheap = final_heap () }

let widen_states (old_s : state) (new_s : state) : state =
  merge_states ~combine_sig:widen_sig old_s new_s

let states_equal (s1 : state) (s2 : state) =
  Env.equal (fun a b -> equal_val s1.sheap s2.sheap a b) s1.vars s2.vars

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                *)
(* ------------------------------------------------------------------ *)

let eval_const = function
  | Ir.Cint n -> Vint (Some n)
  | Ir.Cbool b -> Vbool (Some b)
  | Ir.Cstr s -> str_lit s
  | Ir.Cnull -> Vnull

let eval_value vars = function
  | Ir.Const c -> eval_const c
  | Ir.Local v -> (
      match Env.find_opt v.Ir.vname vars with Some x -> x | None -> Vtop)

let eval_binop op a b =
  match (op, a, b) with
  | Ir.Add, Vint (Some x), Vint (Some y) -> Vint (Some (x + y))
  | Ir.Sub, Vint (Some x), Vint (Some y) -> Vint (Some (x - y))
  | Ir.Mul, Vint (Some x), Vint (Some y) -> Vint (Some (x * y))
  | Ir.Div, Vint (Some x), Vint (Some y) when y <> 0 -> Vint (Some (x / y))
  | (Ir.Add | Ir.Sub | Ir.Mul | Ir.Div), _, _ -> Vint None
  | (Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.And | Ir.Or), _, _ ->
      Vbool None

(** Read an instance field abstractly; reflection-deserialized objects
    (gson) turn field reads into response-cursor accesses. *)
let read_field t (href : heap ref) ~(sid : Ir.stmt_id) (objval : Absval.t)
    (f : Ir.field_ref) : Absval.t =
  let typed_default () =
    match f.Ir.fty with
    | Ir.Int -> Vint None
    | Ir.Bool -> Vbool None
    | Ir.Void | Ir.Str | Ir.Obj _ | Ir.Arr _ -> Vtop
  in
  let record_access cu' =
    if Provenance.is_enabled Provenance.default then
      Provenance.record_fragment Provenance.default ~tx:cu'.cu_tx
        ~part:("response:" ^ String.concat "." (path_of_steps cu'.cu_path))
        ~rule:"gson-field" ~stmt:sid
  in
  match objval with
  | Vobj o -> (
      match hslot href o "__gson_cursor" with
      | Some (Vcursor cu) ->
          let cu' = { cu with cu_path = cu.cu_path @ [ Sfield f.Ir.fname ] } in
          (match Hashtbl.find_opt t.txs cu.cu_tx with
          | Some tx -> (
              record_access cu';
              match f.Ir.fty with
              | Ir.Obj _ | Ir.Arr _ -> Respacc.record_nav tx.Txn.tx_resp cu'
              | Ir.Int -> Respacc.record_leaf tx.Txn.tx_resp cu' Respacc.Knum
              | Ir.Bool -> Respacc.record_leaf tx.Txn.tx_resp cu' Respacc.Kbool
              | Ir.Str | Ir.Void ->
                  Respacc.record_leaf tx.Txn.tx_resp cu' Respacc.Kstr)
          | None -> ());
          (match f.Ir.fty with
          | Ir.Int -> Vint None
          | Ir.Bool -> Vbool None
          | Ir.Obj cls when not (Api.is_library_class cls) ->
              let nested = halloc href cls in
              hset href nested "__gson_cursor" (Vcursor cu');
              Vobj nested
          | Ir.Str | Ir.Void | Ir.Obj _ | Ir.Arr _ ->
              str_of_sig ~prov:[ prov_of_cursor cu' ] Strsig.unknown)
      | _ -> (
          match hslot href o f.Ir.fname with
          | Some v -> v
          | None -> typed_default ()))
  | Vcursor cu ->
      (* Direct field access into a parsed response value. *)
      let cu' = { cu with cu_path = cu.cu_path @ [ Sfield f.Ir.fname ] } in
      (match Hashtbl.find_opt t.txs cu.cu_tx with
      | Some tx ->
          record_access cu';
          Respacc.record_leaf tx.Txn.tx_resp cu' Respacc.Kstr
      | None -> ());
      str_of_sig ~prov:[ prov_of_cursor cu' ] Strsig.unknown
  | Vtop | Vnull | Vbool _ | Vint _ | Vstr _ | Vlist _ | Vpair _ ->
      typed_default ()

(* ------------------------------------------------------------------ *)
(* Method execution                                                   *)
(* ------------------------------------------------------------------ *)

(** Execute a method abstractly from the given heap; returns the merged
    return value and the heap at exit. *)
let rec exec_method t ~depth ~(heap : heap) (mid : Ir.method_id)
    ~(this : Absval.t option) ~(args : Absval.t list) : Absval.t * heap =
  if
    (not (Resilience.Budget.depth_ok t.budget ~depth))
    || depth > t.opts.io_max_depth
    || Ir.Method_set.mem mid t.active
  then (Vtop, heap)
  else
    match (Prog.find_method t.prog mid, cfg_of t mid) with
    | Some meth, Some cfg ->
        t.active <- Ir.Method_set.add mid t.active;
        let initial =
          let vars = ref Env.empty in
          List.iteri
            (fun k (p : Ir.var) ->
              let v = Option.value (List.nth_opt args k) ~default:Vtop in
              vars := Env.add p.Ir.vname v !vars)
            meth.Ir.m_params;
          (match this with Some v -> vars := Env.add "this" v !vars | None -> ());
          { vars = !vars; sheap = heap }
        in
        let order = Cfg.topological_order cfg in
        let order = if t.opts.io_naive_order then List.rev order else order in
        let { Cfg.headers; _ } = Cfg.loops cfg in
        let has_loops = headers <> [] || t.opts.io_naive_order in
        let nb = Cfg.n_blocks cfg in
        let block_out : state option array = Array.make nb None in
        let header_in : state option array = Array.make nb None in
        let rets : (Absval.t * heap) list ref = ref [] in
        let passes =
          if t.opts.io_naive_order then max 20 t.opts.io_loop_passes
          else if has_loops then t.opts.io_loop_passes
          else 1
        in
        let changed = ref true in
        let pass = ref 0 in
        while !changed && !pass < passes do
          changed := false;
          incr pass;
          rets := [];
          List.iter
            (fun b ->
              let pred_states =
                List.filter_map (fun p -> block_out.(p)) cfg.Cfg.preds.(b)
              in
              let state_in =
                if List.mem b headers then begin
                  (* Loop headers widen each incoming state against the
                     previous header state so textual growth becomes rep
                     instead of an ever-growing disjunction (§3.2). *)
                  match header_in.(b) with
                  | Some old_s ->
                      let widened =
                        List.fold_left widen_states old_s pred_states
                      in
                      let widened =
                        if b = 0 then widen_states widened initial else widened
                      in
                      header_in.(b) <- Some widened;
                      widened
                  | None ->
                      let s0 =
                        match (b, pred_states) with
                        | 0, ss -> List.fold_left merge_states initial ss
                        | _, [] -> { initial with vars = Env.empty }
                        | _, s :: ss -> List.fold_left merge_states s ss
                      in
                      header_in.(b) <- Some s0;
                      s0
                end
                else
                  match (b, pred_states) with
                  | 0, [] -> initial
                  | 0, ss -> List.fold_left merge_states initial ss
                  | _, [] -> { initial with vars = Env.empty }
                  | _, s :: ss -> List.fold_left merge_states s ss
              in
              let out = exec_block t ~depth mid meth cfg b state_in rets in
              match block_out.(b) with
              | Some prev when states_equal prev out -> ()
              | Some _ | None ->
                  block_out.(b) <- Some out;
                  changed := true)
            order
        done;
        t.active <- Ir.Method_set.remove mid t.active;
        (* Merge the return values and exit heaps. *)
        let exit_heap =
          match !rets with
          | [] -> (
              match
                List.rev (List.filter_map Fun.id (Array.to_list block_out))
              with
              | last :: _ -> last.sheap
              | [] -> heap)
          | (_, h) :: rest ->
              List.fold_left
                (fun acc (_, h') ->
                  let _, final = state_merger ~combine_sig:alt_sig acc h' in
                  final ())
                h rest
        in
        let ret_val =
          match !rets with
          | [] -> Vnull
          | (r, _) :: rest ->
              List.fold_left
                (fun acc (r', h') ->
                  let mval, _ = state_merger ~combine_sig:alt_sig exit_heap h' in
                  mval acc r')
                r rest
        in
        (ret_val, exit_heap)
    | _, _ -> (Vtop, heap)

and exec_block t ~depth mid meth cfg b (state_in : state) rets : state =
  (* Budget exhaustion bails at block granularity: a block either runs
     whole or not at all, so no partially-updated signature database is
     ever merged downstream.  (The old per-statement fuel guard silently
     skipped individual statements mid-block, corrupting env/heap state.) *)
  if not (Resilience.Budget.alive t.budget) then state_in
  else begin
  let body = meth.Ir.m_body in
  let href = ref state_in.sheap in
  let vars = ref state_in.vars in
  List.iter
    (fun idx ->
      ignore (Resilience.Budget.spend t.budget : bool);
      t.steps <- t.steps + 1;
      Profile.visit t.prof mid;
      Profile.spend t.prof 1;
      begin
        let sid = { Ir.sid_meth = mid; sid_idx = idx } in
        match body.(idx) with
        | Ir.Assign (lhs, rhs) -> (
            let v = eval_expr t ~depth href !vars sid rhs in
            match lhs with
            | Ir.Lvar x -> vars := Env.add x.Ir.vname v !vars
            | Ir.Lfield (x, f) -> (
                match Env.find_opt x.Ir.vname !vars with
                | Some (Vobj o) -> hset href o f.Ir.fname v
                | Some _ | None -> ())
            | Ir.Lsfield f -> Hashtbl.replace t.statics (f.Ir.fcls, f.Ir.fname) v
            | Ir.Lelem (a, _) -> (
                match Env.find_opt a.Ir.vname !vars with
                | Some (Vobj o) ->
                    let items =
                      match hslot href o "items" with
                      | Some (Vlist l) -> l
                      | _ -> []
                    in
                    hset href o "items" (Vlist (items @ [ v ]))
                | Some _ | None -> ()))
        | Ir.InvokeStmt i -> ignore (eval_invoke t ~depth href !vars sid i)
        | Ir.Return v ->
            (match v with
            | Some value -> rets := (eval_value !vars value, !href) :: !rets
            | None -> rets := (Vnull, !href) :: !rets)
        | Ir.If _ | Ir.Goto _ | Ir.Lab _ | Ir.Nop -> ()
      end)
    (Cfg.block_stmts cfg b);
  { vars = !vars; sheap = !href }
  end

and eval_expr t ~depth href vars sid (e : Ir.expr) : Absval.t =
  match e with
  | Ir.Val v -> eval_value vars v
  | Ir.Binop (op, a, b) -> eval_binop op (eval_value vars a) (eval_value vars b)
  | Ir.New cls -> Vobj (halloc href cls)
  | Ir.NewArr (_, _) ->
      let o = halloc href "array" in
      hset href o "items" (Vlist []);
      Vobj o
  | Ir.IField (x, f) -> read_field t href ~sid (eval_value vars (Ir.Local x)) f
  | Ir.SField f -> (
      match Hashtbl.find_opt t.statics (f.Ir.fcls, f.Ir.fname) with
      | Some v -> v
      | None -> Vtop)
  | Ir.AElem (a, i) -> (
      match Env.find_opt a.Ir.vname vars with
      | Some (Vobj o) -> (
          match (hslot href o "items", eval_value vars i) with
          | Some (Vlist l), Vint (Some n) when n >= 0 && n < List.length l ->
              List.nth l n
          | Some (Vlist (x :: rest)), _ ->
              let mval, final = state_merger ~combine_sig:alt_sig !href !href in
              let r = List.fold_left mval x rest in
              href := final ();
              r
          | _, _ -> Vtop)
      | Some _ | None -> Vtop)
  | Ir.ALen _ -> Vint None
  | Ir.Cast (_, v) -> eval_value vars v
  | Ir.Invoke i -> eval_invoke t ~depth href vars sid i

and eval_invoke t ~depth href vars (sid : Ir.stmt_id) (i : Ir.invoke) : Absval.t =
  let base = Option.map (fun b -> eval_value vars (Ir.Local b)) i.Ir.ibase in
  let args = List.map (eval_value vars) i.Ir.iargs in
  (* AsyncTask chaining: execute(args) → doInBackground(args) →
     onPostExecute(result). *)
  if Api.invoke_is i ~cls:Api.async_task ~name:"execute" then begin
    match base with
    | Some (Vobj o) ->
        let dib = { Ir.id_cls = o.o_cls; id_name = "doInBackground" } in
        let ope = { Ir.id_cls = o.o_cls; id_name = "onPostExecute" } in
        let result = run_app_method t ~depth ~href ~sid dib ~this:base ~args in
        (if Prog.find_method t.prog ope <> None then
           ignore
             (run_app_method t ~depth ~href ~sid ope ~this:base ~args:[ result ]));
        Vnull
    | Some _ | None -> Vnull
  end
  else begin
    let sites = Callgraph.callsite_at t.cg sid in
    let app_callees =
      List.concat_map
        (fun cs ->
          if cs.Callgraph.cs_implicit then [] else cs.Callgraph.cs_callees)
        sites
    in
    match app_callees with
    | [] -> (
        match Api_sem.call (api_ctx t ~depth ~href ~sid) ~sid i ~base ~args with
        | Some v ->
            (* Evidence chain: a semantic model matched this library call. *)
            if Provenance.is_enabled Provenance.default then
              Provenance.record_rule Provenance.default ~stmt:sid
                (i.Ir.iref.Ir.mcls ^ "." ^ i.Ir.iref.Ir.mname);
            v
        | None -> Vtop)
    | callees ->
        let results =
          List.map
            (fun c -> run_app_method t ~depth ~href ~sid c ~this:base ~args)
            callees
        in
        (match results with
        | [] -> Vtop
        | r :: rest ->
            let mval, final = state_merger ~combine_sig:alt_sig !href !href in
            let merged = List.fold_left mval r rest in
            href := final ();
            merged)
  end

and run_app_method t ~depth ~href ~sid mid ~this ~args : Absval.t =
  let skip =
    match t.relevant with
    | Some rel ->
        (* Constructors always run: they establish the object context
           (listener → activity links) that slices alone may not cover. *)
        mid.Ir.id_name <> "<init>" && not (Ir.Method_set.mem mid rel)
    | None -> false
  in
  if skip then Vtop
  else begin
    t.callstack <- sid :: t.callstack;
    let r, heap' = exec_method t ~depth:(depth + 1) ~heap:!href mid ~this ~args in
    t.callstack <- List.tl t.callstack;
    href := heap';
    r
  end

and api_ctx t ~depth ~href ~sid : Api_sem.ctx =
  {
    Api_sem.cx_prog = t.prog;
    cx_heap = href;
    cx_sid = sid;
    cx_resources = (fun id -> Apk.resource_string t.apk id);
    cx_new_tx = (fun ~dp -> new_tx t ~dp);
    cx_tx = (fun id -> Hashtbl.find_opt t.txs id);
    cx_db = t.db;
    cx_run_callback =
      (fun cb this args ->
        if Prog.find_method t.prog cb <> None then begin
          let r, heap' =
            exec_method t ~depth:(depth + 1) ~heap:!href cb ~this ~args
          in
          href := heap';
          r
        end
        else Vtop);
    cx_register =
      (fun ~kind listener ->
        match listener with
        | Vobj o ->
            let name =
              match kind with
              | "click" -> "onClick"
              | "timer" -> "run"
              | "push" -> "onMessage"
              | "location" -> "onLocationChanged"
              | _ -> "run"
            in
            let cb = { Ir.id_cls = o.o_cls; id_name = name } in
            if
              Prog.find_method t.prog cb <> None
              && (not
                    (List.exists
                       (fun p -> Ir.Method_id.equal p.pe_meth cb)
                       t.pending))
              && not (List.exists (fun (m, _) -> Ir.Method_id.equal m cb) t.fired)
            then
              t.pending <-
                t.pending
                @ [
                    { pe_meth = cb; pe_this = Vobj o; pe_kind = kind; pe_heap = None };
                  ]
        | Vtop | Vnull | Vbool _ | Vint _ | Vstr _ | Vlist _ | Vpair _ | Vcursor _
          ->
            ());
    cx_intents = t.opts.io_intents;
  }

(* ------------------------------------------------------------------ *)
(* Driving from origins                                               *)
(* ------------------------------------------------------------------ *)

let framework_args (href : heap ref) (p : pending) : Absval.t list =
  match p.pe_kind with
  | "click" -> [ Vobj (halloc href Api.view) ]
  | "location" -> [ Vobj (halloc href Api.location) ]
  | "push" ->
      (* Server-push payload: opaque server-controlled string. *)
      [ str_unknown ]
  | _ -> []

(** Run the whole app: lifecycle entry points first, then registered
    callbacks (with or without persistent heap state per options). *)
let run t : Txn.t list =
  let entries = Apk.entry_points t.apk in
  (* Activities share one instance across their lifecycle methods so state
     set in onCreate is visible in onResume. *)
  let singletons : (string, obj * heap) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (r : Ir.method_ref) ->
      let mid = Ir.method_id_of_ref r in
      match Prog.find_method t.prog mid with
      | None -> ()
      | Some m ->
          t.origin <- mid;
          t.origin_kind <- "entry";
          t.callstack <- [];
          let heap0, this =
            if m.Ir.m_static then (empty_heap, None)
            else begin
              match Hashtbl.find_opt singletons mid.Ir.id_cls with
              | Some (o, h) -> (h, Some (Vobj o))
              | None ->
                  let href = ref empty_heap in
                  let o = halloc href mid.Ir.id_cls in
                  (!href, Some (Vobj o))
            end
          in
          let _, heap' = exec_method t ~depth:0 ~heap:heap0 mid ~this ~args:[] in
          (match this with
          | Some (Vobj o) -> Hashtbl.replace singletons mid.Ir.id_cls (o, heap')
          | Some _ | None -> ());
          (* Stamp callbacks registered during this run with its heap. *)
          List.iter
            (fun p -> if p.pe_heap = None then p.pe_heap <- Some heap')
            t.pending)
    entries;
  (* Fire registered callbacks on a cumulative event heap: each callback
     sees the state left behind by earlier events, which is how implicit
     data flows across asynchronous events become visible (§3.4).  A
     second sweep re-fires every callback on the settled heap so
     registration order does not hide dependencies (e.g. a save/vote click
     registered before the login that produces its token). *)
  let event_heap =
    ref
      (Hashtbl.fold
         (fun _ (_, h) acc ->
           let _, final = state_merger ~combine_sig:alt_sig acc h in
           final ())
         singletons empty_heap)
  in
  let callback_relevant p =
    (* Events whose handlers touch no slice are skipped, like any other
       non-slice method (the efficiency argument of §3.1). *)
    match t.relevant with
    | Some rel -> Ir.Method_set.mem p.pe_meth rel
    | None -> true
  in
  let fire_callback p =
    Metrics.incr m_callbacks;
    t.origin <- p.pe_meth;
    t.origin_kind <- p.pe_kind;
    t.callstack <- [];
    let heap0, this =
      if t.opts.io_event_heap then (!event_heap, p.pe_this)
      else begin
        let href = ref empty_heap in
        let o = halloc href p.pe_meth.Ir.id_cls in
        (!href, Vobj o)
      end
    in
    let href = ref heap0 in
    let args = framework_args href p in
    let _, heap' =
      exec_method t ~depth:0 ~heap:!href p.pe_meth ~this:(Some this) ~args
    in
    if t.opts.io_event_heap then event_heap := heap'
  in
  let all_fired = ref [] in
  let rounds = ref 0 in
  while t.pending <> [] && !rounds < 8 do
    incr rounds;
    let batch = t.pending in
    t.pending <- [];
    List.iter
      (fun p ->
        let key = (p.pe_meth, p.pe_kind) in
        if not (List.mem key t.fired) then begin
          t.fired <- key :: t.fired;
          if callback_relevant p then begin
            all_fired := !all_fired @ [ p ];
            fire_callback p
          end
        end)
      batch
  done;
  (* Second sweep over the settled heap. *)
  if t.opts.io_event_heap then List.iter fire_callback !all_fired;
  (* If the budget tripped at any point, whole blocks were skipped: every
     signature built in this run may be missing fragments.  Mark the
     transactions and record the degradation rather than presenting
     fragmentary signatures as complete. *)
  (match Resilience.Budget.exhaustion t.budget with
  | Some _ ->
      Hashtbl.iter (fun _ tx -> tx.Txn.tx_degraded <- true) t.txs;
      Resilience.Degrade.record_exhaustion ~phase:"interpretation"
        ~work_left:(List.length t.pending) t.budget
        "abstract interpretation skipped basic blocks after the budget \
         tripped; transaction signatures may be fragmentary"
  | None -> ());
  Profile.close t.prof;
  Metrics.incr m_stmts ~by:t.steps;
  Metrics.incr m_txs ~by:t.tx_count;
  Log.info (fun m ->
      m "interpretation: %d raw transactions (%d statements interpreted)"
        t.tx_count t.steps);
  Hashtbl.fold (fun _ tx acc -> tx :: acc) t.txs []
  |> List.sort (fun a b -> compare a.Txn.tx_id b.Txn.tx_id)
