(* End-to-end Extractocol pipeline (Figure 2): APK in, reconstructed HTTP
   transactions out.
     1. build the program, call graph (with implicit-callback edges) and
        demarcation points;
     2. network-aware program slicing (bi-directional taint);
     3. signature extraction by flow-sensitive interpretation of the
        sliced program;
     4. transaction pairing and inter-transaction dependency analysis. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Callbacks = Extr_semantics.Callbacks
module Slicer = Extr_slicing.Slicer
module Apk = Extr_apk.Apk
module Span = Extr_telemetry.Span
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Resilience = Extr_resilience.Resilience

let src = Logs.Src.create "extractocol.pipeline" ~doc:"Extractocol pipeline stages"

module Log = (val Logs.src_log src : Logs.LOG)

(* Figure 2 stages, in execution order; each becomes one telemetry span
   named "pipeline.<phase>" nested under "pipeline.analyze". *)
let phase_names =
  [
    "inject-libraries";
    "callgraph";
    "slicing";
    "interpretation";
    "scope-filter";
    "pairing";
    "report";
  ]

let m_elapsed =
  Metrics.gauge ~help:"end-to-end analysis wall-clock seconds (app)"
    "pipeline.elapsed_seconds"

let m_transactions =
  Metrics.counter ~help:"deduplicated transactions reported (app)"
    "pipeline.transactions"

(* Per-phase latency distribution, labelled by phase name.  The default
   1–100k bucket ladder tops out at 0.1s; a slicing phase can run
   seconds, so extend it to 100s. *)
let m_phase_us =
  Metrics.histogram ~help:"wall-clock per pipeline phase (us), by phase"
    ~buckets:
      [ 10.; 50.; 100.; 500.; 1_000.; 5_000.; 10_000.; 50_000.; 100_000.;
        500_000.; 1e6; 5e6; 1e7; 5e7; 1e8 ]
    "pipeline.phase_us"

(* Waste metrics (profiling only): how much of the engines' per-method
   work backed a transaction that survived to the final report — the
   baseline number demand-driven slicing (ROADMAP item 1) must beat. *)
let m_touched =
  Metrics.gauge ~help:"distinct methods the analysis engines worked on (app)"
    "profile.touched_methods"

let m_contributing =
  Metrics.gauge
    ~help:"touched methods contributing to a reported transaction (app)"
    "profile.contributing_methods"

let m_waste =
  Metrics.gauge
    ~help:"fraction of touched methods contributing to no reported transaction (app)"
    "profile.waste_ratio"

(* Demand-driven slicing coverage: how much of the program the lazy call
   graph never had to resolve.  Zero skipped under --eager-callgraph. *)
let m_cg_skipped =
  Metrics.counter
    ~help:"app methods never resolved by the demand-driven callgraph (run)"
    "callgraph.methods_skipped"

let m_skipped_ratio =
  Metrics.gauge
    ~help:"fraction of app methods the slicer never pulled through the callgraph (app)"
    "slicer.skipped_method_ratio"

type options = {
  op_async_heuristic : bool;  (** §3.4 heuristic: on for closed-source apps *)
  op_async_iterations : int;  (** heap-carrier hops (1 = paper default) *)
  op_augmentation : bool;  (** object-aware slice augmentation *)
  op_scope : string option;  (** restrict analysis to a class prefix (§5.3) *)
  op_context_sensitive : bool;  (** disjoint pairing contexts (Figure 5) *)
  op_restrict_to_slices : bool;
  op_intents : bool;
      (** resolve intent-service dispatch (extension; off reproduces the
          paper's §4 limitation and Table 1's deliberate misses) *)
  op_eager_callgraph : bool;
      (** escape hatch: resolve the whole call graph up front instead of
          demand-driven from the method index (ROADMAP item 1).  Both
          modes produce byte-identical reports. *)
  op_limits : Resilience.Budget.limits;
      (** resource-governance limits for the per-run budget shared by the
          taint engines and the interpreter *)
}

let default_options =
  {
    op_async_heuristic = true;
    op_async_iterations = 1;
    op_augmentation = true;
    op_scope = None;
    op_context_sensitive = true;
    op_restrict_to_slices = true;
    op_intents = false;
    op_eager_callgraph = false;
    op_limits = Resilience.Budget.default_limits;
  }

(** The open-source evaluation configuration of §5.1 disables the
    asynchronous-event heuristic. *)
let open_source_options = { default_options with op_async_heuristic = false }

(* Canonical one-line serialization of everything in [options] that can
   change the analysis result — the configuration half of the result
   cache key, and the fingerprint --resume checks the journal against.
   Any new option field must be added here or cached results go stale
   silently.  [op_eager_callgraph] is deliberately NOT part of the
   fingerprint: like ro_jobs/ro_shard in the runner, it cannot change the
   analysis result (demand_check enforces byte-identity), so cached
   results stay valid across the two modes. *)
let options_fingerprint (o : options) =
  Printf.sprintf
    "async=%b;aiter=%d;aug=%b;scope=%s;ctx=%b;restrict=%b;intents=%b;steps=%d;depth=%d;deadline=%s"
    o.op_async_heuristic o.op_async_iterations o.op_augmentation
    (Option.value o.op_scope ~default:"-")
    o.op_context_sensitive o.op_restrict_to_slices o.op_intents
    o.op_limits.Resilience.Budget.bl_max_steps
    o.op_limits.Resilience.Budget.bl_max_depth
    (match o.op_limits.Resilience.Budget.bl_deadline_s with
    | None -> "-"
    | Some d -> Printf.sprintf "%g" d)

type analysis = {
  an_apk : Apk.t;
  an_prog : Prog.t;
  an_cg : Callgraph.t;
  an_slices : Slicer.result;
  an_txs : Txn.t list;  (** raw (pre-dedup) transactions *)
  an_pairs : Pairing.pair list;
  an_report : Report.t;
}

(** Ensure the modelled library classes are present in the program (the
    class hierarchy needs them to resolve framework superclasses). *)
let with_library_classes (p : Ir.program) : Ir.program =
  let present =
    List.filter_map
      (fun c -> if c.Ir.c_library then Some c.Ir.c_name else None)
      p.Ir.p_classes
  in
  let missing =
    List.filter (fun c -> not (List.mem c.Ir.c_name present)) Api.library_classes
  in
  { p with Ir.p_classes = p.Ir.p_classes @ missing }

let analyze ?(options = default_options) (apk : Apk.t) : analysis =
  let app = apk.Apk.manifest.Apk.mf_label in
  let phase name f =
    (* Stamp the phase on the crash barrier so an escaped exception in
       --all mode is attributed to the stage it came from. *)
    Resilience.Barrier.set_phase ("pipeline." ^ name);
    let clock = Span.clock Span.default in
    let t0 = clock () in
    Fun.protect
      ~finally:(fun () ->
        (* Timed by the tracer's clock so the histogram agrees with the
           trace; observed even on a crash, so a phase that dies still
           shows up in its latency tail. *)
        Metrics.observe m_phase_us
          ~labels:[ ("phase", name) ]
          (1e6 *. (clock () -. t0)))
      (fun () -> Span.with_span ~args:[ ("app", app) ] ("pipeline." ^ name) f)
  in
  Span.with_span ~args:[ ("app", app) ] "pipeline.analyze" @@ fun () ->
  let clock = Span.clock Span.default in
  let start = clock () in
  (* One budget per run: fuel, call depth and the deadline (anchored here)
     are shared by the taint engines and the interpreter.  Degradations
     accumulate on a fresh ledger so each app reports only its own. *)
  let budget = Resilience.Budget.create ~clock ~limits:options.op_limits () in
  Resilience.Degrade.reset Resilience.Degrade.default;
  (* The profiler table accumulates across a corpus run; marking here
     lets this run recover its own touched-method set afterwards. *)
  let prof_mark = Profile.mark Profile.default in
  let apk, prog =
    phase "inject-libraries" @@ fun () ->
    let program = with_library_classes apk.Apk.program in
    ({ apk with Apk.program }, Prog.of_program program)
  in
  let cg =
    phase "callgraph" @@ fun () ->
    if options.op_eager_callgraph then
      Callgraph.build ~callback_resolver:Callbacks.resolve prog
    else
      (* Demand-driven (ROADMAP item 1): only the method index is built
         here; edges are resolved per-method on first visit, seeded from
         the demarcation points the slicer finds through the index. *)
      Callgraph.lazy_build ~callback_resolver:Callbacks.resolve
        ~callback_triggers:Callbacks.trigger_names prog
  in
  let slicer_options =
    {
      Slicer.opt_async_heuristic = options.op_async_heuristic;
      opt_async_iterations = options.op_async_iterations;
      opt_augmentation = options.op_augmentation;
      opt_scope = options.op_scope;
      opt_budget = Some budget;
    }
  in
  Log.info (fun m -> m "%s: %d app statements" app (Prog.app_stmt_count prog));
  let slices = phase "slicing" @@ fun () -> Slicer.run ~options:slicer_options prog cg in
  let interp_options =
    {
      Interp.default_options with
      Interp.io_event_heap = options.op_async_heuristic;
      io_context_sensitive = options.op_context_sensitive;
      io_restrict_to_slices = options.op_restrict_to_slices;
      io_intents = options.op_intents;
      io_max_depth = options.op_limits.Resilience.Budget.bl_max_depth;
    }
  in
  let txs =
    phase "interpretation" @@ fun () ->
    let interp =
      Interp.create ~options:interp_options ~budget ~slices prog cg apk
    in
    Interp.run interp
  in
  (* Scope filter: drop transactions anchored outside the scope. *)
  let txs =
    phase "scope-filter" @@ fun () ->
    match options.op_scope with
    | None -> txs
    | Some prefix ->
        List.filter
          (fun (tx : Txn.t) ->
            let cls = tx.Txn.tx_dp.Ir.sid_meth.Ir.id_cls in
            String.length cls >= String.length prefix
            && String.sub cls 0 (String.length prefix) = prefix)
          txs
  in
  let pairs = phase "pairing" @@ fun () -> Pairing.pair_disjoint prog cg slices in
  (* Depth clipping is non-sticky (it only widens the clipped calls), but
     it still means some call chains were not followed to the end. *)
  if Resilience.Budget.depth_clipped budget then
    Resilience.Degrade.record ~phase:"interpretation"
      ~reason:
        (Resilience.Budget.exhaustion_reason Resilience.Budget.Depth)
      (Fmt.str "calls beyond depth %d were widened to unknown"
         options.op_limits.Resilience.Budget.bl_max_depth);
  let elapsed = clock () -. start in
  let report =
    phase "report" @@ fun () ->
    Report.of_transactions
      ~degradations:(Resilience.Degrade.items Resilience.Degrade.default)
      ~app
      ~dp_count:(List.length slices.Slicer.r_dps)
      ~slice_stmts:slices.Slicer.r_stats.Slicer.st_slice_stmts
      ~total_stmts:slices.Slicer.r_stats.Slicer.st_total_stmts ~elapsed_s:elapsed txs
  in
  if Metrics.is_enabled Metrics.default then begin
    Metrics.set m_elapsed ~labels:[ ("app", app) ] elapsed;
    Metrics.incr m_transactions ~labels:[ ("app", app) ]
      ~by:(List.length report.Report.rp_transactions);
    (* Demand-driven coverage: methods the run never needed to resolve. *)
    let total_methods = List.length (Prog.app_methods prog) in
    let skipped = max 0 (total_methods - Callgraph.resolved_count cg) in
    Metrics.incr m_cg_skipped ~by:skipped;
    Metrics.set m_skipped_ratio ~labels:[ ("app", app) ]
      (if total_methods = 0 then 0.0
       else float_of_int skipped /. float_of_int total_methods)
  end;
  (* Waste join: of the methods the engines touched this run, which back
     a transaction in the final report?  A method contributes when it
     anchors a reported transaction (DP statement, origin) or owns a
     statement of a slice whose demarcation point got reported — the
     same statement evidence the provenance slice steps record per DP,
     joined directly against the slices so profiling does not require
     the provenance recorder to be on. *)
  if Profile.is_enabled Profile.default then begin
    let module Sset = Set.Make (String) in
    let touched =
      Sset.of_list (Profile.methods_since Profile.default prof_mark)
    in
    let reported_dps =
      List.fold_left
        (fun acc (tr : Report.transaction) ->
          Ir.Stmt_set.add tr.Report.tr_dp acc)
        Ir.Stmt_set.empty report.Report.rp_transactions
    in
    let contrib =
      List.fold_left
        (fun acc (tr : Report.transaction) ->
          Sset.add
            (Ir.Method_id.to_string tr.Report.tr_dp.Ir.sid_meth)
            (Sset.add (Ir.Method_id.to_string tr.Report.tr_origin) acc))
        Sset.empty report.Report.rp_transactions
    in
    let contrib =
      List.fold_left
        (fun acc (sl : Slicer.slice) ->
          if Ir.Stmt_set.mem sl.Slicer.sl_dp.Slicer.dp_stmt reported_dps then
            Ir.Stmt_set.fold
              (fun sid acc ->
                Sset.add (Ir.Method_id.to_string sid.Ir.sid_meth) acc)
              sl.Slicer.sl_stmts acc
          else acc)
        contrib
        (slices.Slicer.r_request @ slices.Slicer.r_response)
    in
    let touched_n = Sset.cardinal touched in
    let contributing_n = Sset.cardinal (Sset.inter touched contrib) in
    Profile.record_waste Profile.default ~scope:app ~touched:touched_n
      ~contributing:contributing_n;
    if Metrics.is_enabled Metrics.default then begin
      let labels = [ ("app", app) ] in
      Metrics.set m_touched ~labels (float_of_int touched_n);
      Metrics.set m_contributing ~labels (float_of_int contributing_n);
      Metrics.set m_waste ~labels
        (if touched_n = 0 then 0.0
         else
           float_of_int (touched_n - contributing_n) /. float_of_int touched_n)
    end
  end;
  Log.info (fun m ->
      m "report: %d transactions after dedup (%.3fs)"
        (List.length report.Report.rp_transactions)
        elapsed);
  {
    an_apk = apk;
    an_prog = prog;
    an_cg = cg;
    an_slices = slices;
    an_txs = txs;
    an_pairs = pairs;
    an_report = report;
  }
