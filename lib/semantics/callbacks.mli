(** Implicit call flows (§3.4): thread and HTTP libraries introduce
    callbacks a plain call graph misses — AsyncTask.execute() invokes
    doInBackground/onPostExecute, Timer.schedule() invokes run(), Volley's
    RequestQueue.add() reaches the listener's onResponse(), registered
    click listeners receive onClick(). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

val resolve : Extr_cfg.Callgraph.callback_resolver
(** The callback resolver wired into call-graph construction. *)

val trigger_names : string list
(** Invoke names [resolve] can return callbacks for — the
    [callback_triggers] the demand-driven call graph needs to find
    candidate implicit-edge sites through the method index. *)

val listener_of_request :
  Prog.t -> Ir.meth -> Ir.var -> Ir.method_id list
(** The [onResponse] method(s) of the listener a Volley-style request
    carries: scans the allocating method for the request's constructor
    call and resolves its listener argument's class. *)
