(* Implicit call flows (§3.4): thread and HTTP libraries introduce
   callbacks that a plain call graph misses — AsyncTask.execute() invokes
   doInBackground/onPostExecute, Timer.schedule() invokes TimerTask.run(),
   Volley's RequestQueue.add() eventually invokes the listener's
   onResponse(), a registered click listener receives onClick().  This
   module resolves such edges so the call graph and the taint engine can
   follow them. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

(** The concrete application class of a variable, refined through the
    program hierarchy (receiver static type is the app subclass in the
    generated code). *)
let var_class (v : Ir.var) =
  match v.Ir.vty with Ir.Obj c -> Some c | Ir.Void | Ir.Int | Ir.Bool | Ir.Str | Ir.Arr _ -> None

let method_if_exists prog cls name =
  match Prog.find_method prog { Ir.id_cls = cls; id_name = name } with
  | Some _ -> [ { Ir.id_cls = cls; id_name = name } ]
  | None -> []

(** Given the static class of an argument value, the callback methods the
    library will invoke on it. *)
let callbacks_on_arg prog (value : Ir.value) names =
  match value with
  | Ir.Local v -> (
      match var_class v with
      | Some cls -> List.concat_map (method_if_exists prog cls) names
      | None -> [])
  | Ir.Const _ -> []

(* Every invoke name [resolve] can answer for.  The demand-driven call
   graph finds candidate implicit-caller sites by looking these names up
   in the method index, so a new [resolve] arm MUST register its trigger
   here or its edges become invisible to caller queries in lazy mode. *)
let trigger_names =
  [
    "execute";
    "schedule";
    "setOnClickListener";
    "add";
    "<init>";
    "requestLocationUpdates";
    "subscribe";
  ]

let resolve : Extr_cfg.Callgraph.callback_resolver =
 fun prog invoke ->
  let arg i = List.nth_opt invoke.Ir.iargs i in
  let on_arg i names =
    match arg i with Some v -> callbacks_on_arg prog v names | None -> []
  in
  let on_base names =
    match invoke.Ir.ibase with
    | Some v -> (
        match var_class v with
        | Some cls -> List.concat_map (method_if_exists prog cls) names
        | None -> [])
    | None -> []
  in
  if Api.invoke_is invoke ~cls:Api.async_task ~name:"execute" then
    (* execute(param) → doInBackground(param) → onPostExecute(result) *)
    on_base [ "doInBackground"; "onPostExecute" ]
  else if Api.invoke_is invoke ~cls:Api.timer ~name:"schedule" then
    on_arg 0 [ "run" ]
  else if Api.invoke_is invoke ~cls:Api.view ~name:"setOnClickListener" then
    on_arg 0 [ "onClick" ]
  else if Api.invoke_is invoke ~cls:Api.request_queue ~name:"add" then
    (* The request object's listener (constructor argument) is resolved
       separately; the request's own class may also define onResponse when
       apps subclass StringRequest. *)
    on_arg 0 [ "onResponse" ]
  else if Api.invoke_is invoke ~cls:Api.string_request ~name:"<init>" then
    (* new StringRequest(method, url, listener) registers the listener. *)
    on_arg 2 [ "onResponse" ]
  else if
    Api.invoke_is invoke ~cls:Api.location_manager ~name:"requestLocationUpdates"
  then on_arg 0 [ "onLocationChanged" ]
  else if Api.invoke_is invoke ~cls:Api.firebase_messaging ~name:"subscribe" then
    on_arg 0 [ "onMessage" ]
  else []

(** The listener class carried by a Volley-style request object: the class
    of the third constructor argument of [new StringRequest(m, url, l)].
    Scans the allocating method for the constructor call on [req_var]. *)
let listener_of_request prog (meth : Ir.meth) (req_var : Ir.var) :
    Ir.method_id list =
  let found = ref [] in
  Array.iter
    (fun stmt ->
      match Ir.stmt_invoke stmt with
      | Some ({ Ir.ikind = Ir.Special; ibase = Some b; _ } as i)
        when b.Ir.vname = req_var.Ir.vname
             && Api.invoke_is i ~cls:Api.string_request ~name:"<init>" -> (
          match List.nth_opt i.Ir.iargs 2 with
          | Some (Ir.Local l) -> (
              match var_class l with
              | Some cls -> found := method_if_exists prog cls "onResponse" @ !found
              | None -> ())
          | Some (Ir.Const _) | None -> ())
      | Some _ | None -> ())
    meth.Ir.m_body;
  !found
