(* The modelled Android/Java API surface (§3.2 "Semantic model"): one
   vocabulary shared by the semantic models, the corpus code generator and
   the runtime interpreter.  The paper models org.apache.http,
   android.net.http, com.android.volley, java.net, okhttp and friends, JSON
   and XML libraries, containers, and string manipulation APIs; this module
   declares the same families. *)

module Ir = Extr_ir.Types

(* ---------------- java.lang ---------------- *)
let string_builder = "java.lang.StringBuilder"
let java_string = "java.lang.String"
let java_integer = "java.lang.Integer"
let java_object = "java.lang.Object"

(* ---------------- java.net ---------------- *)
let url_encoder = "java.net.URLEncoder"
let java_url = "java.net.URL"
let http_url_connection = "java.net.HttpURLConnection"
let java_socket = "java.net.Socket"

(* ---------------- java.io ---------------- *)
let input_stream = "java.io.InputStream"
let output_stream = "java.io.OutputStream"
let io_utils = "org.apache.commons.io.IOUtils"

(* ---------------- org.apache.http ---------------- *)
let http_get = "org.apache.http.client.methods.HttpGet"
let http_post = "org.apache.http.client.methods.HttpPost"
let http_put = "org.apache.http.client.methods.HttpPut"
let http_delete = "org.apache.http.client.methods.HttpDelete"
let http_request_base = "org.apache.http.client.methods.HttpRequestBase"
let http_client = "org.apache.http.client.HttpClient"
let default_http_client = "org.apache.http.impl.client.DefaultHttpClient"
let http_response = "org.apache.http.HttpResponse"
let http_entity = "org.apache.http.HttpEntity"
let entity_utils = "org.apache.http.util.EntityUtils"
let string_entity = "org.apache.http.entity.StringEntity"
let form_entity = "org.apache.http.client.entity.UrlEncodedFormEntity"
let name_value_pair = "org.apache.http.message.BasicNameValuePair"

(* ---------------- containers ---------------- *)
let array_list = "java.util.ArrayList"
let hash_map = "java.util.HashMap"

(* ---------------- JSON ---------------- *)
let json_object = "org.json.JSONObject"
let json_array = "org.json.JSONArray"
let gson = "com.google.gson.Gson"

(* ---------------- XML ---------------- *)
let xml_parser = "org.xml.sax.XmlParser"
let xml_element = "org.w3c.dom.Element"

(* ---------------- android ---------------- *)
let activity = "android.app.Activity"
let resources = "android.content.res.Resources"
let view = "android.view.View"
let on_click_listener = "android.view.View$OnClickListener"
let async_task = "android.os.AsyncTask"
let sqlite_database = "android.database.sqlite.SQLiteDatabase"
let content_values = "android.content.ContentValues"
let cursor = "android.database.Cursor"
let media_player = "android.media.MediaPlayer"
let text_view = "android.widget.TextView"
let edit_text = "android.widget.EditText"
let location_manager = "android.location.LocationManager"
let location = "android.location.Location"
let location_listener = "android.location.LocationListener"
let android_log = "android.util.Log"
let intent = "android.content.Intent"
let context = "android.content.Context"
let intent_service = "android.app.IntentService"

(* ---------------- reflection ---------------- *)
let java_class = "java.lang.Class"
let reflect_method = "java.lang.reflect.Method"

(* ---------------- timers / push ---------------- *)
let timer = "java.util.Timer"
let timer_task = "java.util.TimerTask"
let firebase_messaging = "com.google.firebase.messaging.FirebaseMessaging"
let messaging_service = "com.google.firebase.messaging.MessagingService"

(* ---------------- volley ---------------- *)
let request_queue = "com.android.volley.RequestQueue"
let string_request = "com.android.volley.StringRequest"
let volley_listener = "com.android.volley.Response$Listener"

(* ---------------- okhttp ---------------- *)
let okhttp_client = "okhttp3.OkHttpClient"
let okhttp_request = "okhttp3.Request"
let okhttp_builder = "okhttp3.Request$Builder"
let okhttp_body = "okhttp3.RequestBody"
let okhttp_call = "okhttp3.Call"
let okhttp_response = "okhttp3.Response"
let okhttp_response_body = "okhttp3.ResponseBody"

(** All modelled library classes, with superclass links where app classes
    subclass framework classes.  Bodies are empty: library behaviour comes
    from semantic models, never from analyzing library code. *)
let library_classes : Ir.cls list =
  let c ?super name =
    {
      Ir.c_name = name;
      c_super = super;
      c_fields = [];
      c_methods = [];
      c_library = true;
    }
  in
  [
    c java_object;
    c string_builder;
    c java_string;
    c java_integer;
    c url_encoder;
    c java_url;
    c http_url_connection;
    c java_socket;
    c input_stream;
    c output_stream;
    c io_utils;
    c http_request_base;
    c ~super:http_request_base http_get;
    c ~super:http_request_base http_post;
    c ~super:http_request_base http_put;
    c ~super:http_request_base http_delete;
    c http_client;
    c ~super:http_client default_http_client;
    c http_response;
    c http_entity;
    c entity_utils;
    c ~super:http_entity string_entity;
    c ~super:http_entity form_entity;
    c name_value_pair;
    c array_list;
    c hash_map;
    c json_object;
    c json_array;
    c gson;
    c xml_parser;
    c xml_element;
    c activity;
    c resources;
    c view;
    c on_click_listener;
    c async_task;
    c sqlite_database;
    c content_values;
    c cursor;
    c media_player;
    c text_view;
    c edit_text;
    c location_manager;
    c location;
    c location_listener;
    c android_log;
    c intent;
    c context;
    c intent_service;
    c java_class;
    c reflect_method;
    c timer;
    c timer_task;
    c firebase_messaging;
    c messaging_service;
    c request_queue;
    c string_request;
    c volley_listener;
    c okhttp_client;
    c okhttp_request;
    c okhttp_builder;
    c okhttp_body;
    c okhttp_call;
    c okhttp_response;
    c okhttp_response_body;
  ]

let library_class_names =
  List.map (fun c -> c.Ir.c_name) library_classes

(* Hash set over the names: [is_library_class] runs on hot interpreter and
   taint paths, where a linear scan of the registry adds up. *)
let library_class_set =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter (fun n -> Hashtbl.replace h n ()) library_class_names;
     h)

(** Is [name] one of the modelled library classes (by exact name)? *)
let is_library_class name = Hashtbl.mem (Lazy.force library_class_set) name

(** Superclass of a library class inside the static library hierarchy. *)
let library_super name =
  List.find_map
    (fun c -> if c.Ir.c_name = name then c.Ir.c_super else None)
    library_classes

(** Does library class [sub] equal or extend library class [super]? *)
let rec library_subclass ~sub ~super =
  sub = super
  ||
  match library_super sub with
  | Some s -> library_subclass ~sub:s ~super
  | None -> false

(** Matches an invoke against class + method name.  The class matches when
    either the method reference's class or the receiver's static class is
    [cls] or a library subclass of [cls] (e.g. [DefaultHttpClient.execute]
    matches [HttpClient.execute]). *)
let invoke_is (i : Ir.invoke) ~cls ~name =
  i.Ir.iref.Ir.mname = name
  && (library_subclass ~sub:i.Ir.iref.Ir.mcls ~super:cls
     ||
     match i.Ir.ibase with
     | Some { Ir.vty = Ir.Obj c; _ } -> library_subclass ~sub:c ~super:cls
     | Some _ | None -> false)
