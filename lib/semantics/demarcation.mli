(** Demarcation points (§3.1): the HTTP access functions from which
    Extractocol performs bi-directional taint propagation.  A demarcation
    point separates the backward (request) slice from the forward
    (response) slice. *)

module Ir = Extr_ir.Types

(** How the response flows out of a demarcation point. *)
type response_binding =
  | Ret  (** the call's return value is the response object *)
  | Base  (** the receiver itself yields the response *)
  | Listener_callback of { arg_idx : int; callback : string }
      (** the response arrives as the first parameter of [callback] on the
          listener carried by argument [arg_idx] (Volley style) *)
  | Opaque_sink  (** the response is consumed internally (MediaPlayer) *)

(** What part of the invoke carries the request. *)
type request_binding =
  | Arg of int  (** argument [i] is the request object *)
  | Recv  (** the receiver is the request (okhttp Call, URLConnection, Socket) *)

type t = {
  dp_cls : string;
  dp_meth : string;
  dp_request : request_binding;
  dp_response : response_binding;
  dp_desc : string;
}

val registry : t list
(** The modelled demarcation points across org.apache.http, java.net
    (HttpURLConnection and the §4 raw-socket extension), volley, okhttp
    and android.media. *)

val method_names : string list
(** Distinct invoked-method names of the registry, sorted — the index
    keys demand-driven demarcation discovery scans. *)

val find : Ir.invoke -> t option
val is_demarcation : Ir.invoke -> bool

val stats : unit -> int * int
(** (demarcation points, classes) in the registry — the synthetic-API
    counterpart of the paper's 39 DPs from 16 classes. *)
