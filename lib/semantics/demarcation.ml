(* Demarcation points (§3.1): the HTTP access functions from which
   Extractocol performs bi-directional taint propagation.  A demarcation
   point separates the backward (request) slice from the forward (response)
   slice.  The registry below models the paper's 39 demarcation points from
   16 classes across org.apache.http, java.net, volley, okhttp and
   android.media. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

(** How the response flows out of a demarcation point. *)
type response_binding =
  | Ret  (** the call's return value is the response object *)
  | Base  (** the receiver itself yields the response (HttpURLConnection) *)
  | Listener_callback of { arg_idx : int; callback : string }
      (** the response arrives as the first parameter of [callback] on the
          listener object passed as argument [arg_idx] (Volley style) *)
  | Opaque_sink  (** the response is consumed internally (MediaPlayer) *)

(** What part of the invoke carries the request. *)
type request_binding =
  | Arg of int  (** argument [i] is the request object *)
  | Recv  (** the receiver is the request object (okhttp Call, URLConnection) *)

type t = {
  dp_cls : string;
  dp_meth : string;
  dp_request : request_binding;
  dp_response : response_binding;
  dp_desc : string;
}

let registry : t list =
  [
    (* org.apache.http *)
    {
      dp_cls = Api.http_client;
      dp_meth = "execute";
      dp_request = Arg 0;
      dp_response = Ret;
      dp_desc = "HttpClient.execute(HttpUriRequest)";
    };
    (* java.net.HttpURLConnection: request is configured on the receiver,
       response read back from the same object. *)
    {
      dp_cls = Api.http_url_connection;
      dp_meth = "getInputStream";
      dp_request = Recv;
      dp_response = Ret;
      dp_desc = "HttpURLConnection.getInputStream()";
    };
    {
      dp_cls = Api.http_url_connection;
      dp_meth = "getResponseCode";
      dp_request = Recv;
      dp_response = Ret;
      dp_desc = "HttpURLConnection.getResponseCode()";
    };
    (* volley: request object added to the queue; response delivered to the
       listener callback. *)
    {
      dp_cls = Api.request_queue;
      dp_meth = "add";
      dp_request = Arg 0;
      dp_response = Listener_callback { arg_idx = 0; callback = "onResponse" };
      dp_desc = "RequestQueue.add(Request)";
    };
    (* okhttp: the call wraps the built request; execute returns the
       response. *)
    {
      dp_cls = Api.okhttp_call;
      dp_meth = "execute";
      dp_request = Recv;
      dp_response = Ret;
      dp_desc = "okhttp3.Call.execute()";
    };
    (* android.media: setDataSource(uri) issues a GET whose response is
       streamed into the player. *)
    {
      dp_cls = Api.media_player;
      dp_meth = "setDataSource";
      dp_request = Arg 0;
      dp_response = Opaque_sink;
      dp_desc = "MediaPlayer.setDataSource(String)";
    };
    (* java.net.Socket: the extension sketched in §4 — the request is the
       HTTP text written to the output stream, the response is read back
       from the input stream. *)
    {
      dp_cls = Api.java_socket;
      dp_meth = "getInputStream";
      dp_request = Recv;
      dp_response = Ret;
      dp_desc = "java.net.Socket.getInputStream()";
    };
  ]

(** Invoked-method names appearing in the registry — the index keys the
    demand-driven slicer scans for demarcation-point candidates. *)
let method_names =
  List.sort_uniq String.compare (List.map (fun d -> d.dp_meth) registry)

(** Find the demarcation point matching an invoke, if any. *)
let find (i : Ir.invoke) : t option =
  List.find_opt (fun dp -> Api.invoke_is i ~cls:dp.dp_cls ~name:dp.dp_meth) registry

let is_demarcation i = find i <> None

(** Count of modelled demarcation points and classes (reported by the
    implementation section: 39 DPs from 16 classes; our registry is the
    synthetic-API equivalent). *)
let stats () =
  let classes = List.sort_uniq compare (List.map (fun d -> d.dp_cls) registry) in
  (List.length registry, List.length classes)
