(* Call graph over application methods, built with class-hierarchy analysis
   plus pluggable implicit-callback resolution.  Implicit call flows through
   thread/HTTP libraries (AsyncTask, Volley, Retrofit — §3.4) are injected
   by the semantics layer through [callback_resolver], mirroring how the
   paper adds EDGEMINER-style callback edges that FlowDroid misses.

   Two construction modes share one per-method resolution function:

   - [build] resolves every application method up front (the historical
     whole-program construction);
   - [lazy_build] resolves methods only on first visit, seeded by the
     slicer from the method index (ROADMAP item 1, after BackDroid's
     index-then-explore design).  Caller lookups go through the index:
     every direct callee of an invoke shares the invoke's method name, so
     the index's per-name site list plus the registered callback-trigger
     names over-approximate any method's caller set; resolving just those
     candidate sites confirms it.

   Both modes produce identical call-site records, caller lists and
   reachability sets — the demand-driven pipeline must stay byte-identical
   with the eager escape hatch, including worklist visit order in the
   taint engines downstream. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Index = Extr_ir.Index
module Metrics = Extr_telemetry.Metrics

let m_resolved =
  Metrics.counter ~help:"methods whose call sites were resolved (CHA + callbacks)"
    "callgraph.methods_resolved"

type callsite = {
  cs_stmt : Ir.stmt_id;
  cs_invoke : Ir.invoke;
  cs_callees : Ir.method_id list;  (** resolved application-method targets *)
  cs_implicit : bool;  (** true when the edge comes from a callback model *)
}

(** [callback_resolver prog invoke] returns the application methods that
    the library call [invoke] will eventually invoke (e.g. [task.execute()]
    → [C.doInBackground] and [C.onPostExecute]). *)
type callback_resolver = Prog.t -> Ir.invoke -> Ir.method_id list

let no_callbacks : callback_resolver = fun _ _ -> []

(* Per-method resolution result: the record list in scan order, plus the
   same records bucketed by statement index for O(1) [callsite_at]. *)
type resolved = {
  rs_sites : callsite list;
  rs_by_idx : callsite list array;
}

let empty_resolved = { rs_sites = []; rs_by_idx = [||] }

type mode =
  | Eager of { callers_of : Ir.stmt_id list Ir.Method_map.t }
  | Demand of {
      index : Index.t;
      trigger_names : string list;
          (** invoke names the callback resolver can answer for; candidate
              implicit-caller sites are found through these *)
      callers_memo : (Ir.method_id, Ir.stmt_id list) Hashtbl.t;
      mutable trigger_map : (Ir.method_id, (int * Ir.stmt_id) list) Hashtbl.t option;
          (** callee → caller sites among the trigger-name call sites, in
              scan order — built once on the first caller query.  Trigger
              names include ["<init>"], so rescanning every trigger site
              per query made caller lookups quadratic in practice. *)
    }

type t = {
  prog : Prog.t;
  resolver : callback_resolver;
  resolved_tbl : (Ir.method_id, resolved) Hashtbl.t;
  mode : mode;
  (* Statement-level flow arrays, shared by every taint engine of the run
     (they used to be rebuilt per engine, for all methods, per slice). *)
  preds_memo : (Ir.method_id, int list array) Hashtbl.t;
  succs_memo : (Ir.method_id, int list array) Hashtbl.t;
}

(* One method's call-site records, exactly as the historical eager scan
   produced them: statements in order, the direct (CHA) record before the
   implicit (callback) record at the same statement. *)
let resolve_method t (mid : Ir.method_id) : resolved =
  match Hashtbl.find_opt t.resolved_tbl mid with
  | Some r -> r
  | None -> (
      match Prog.find_method t.prog mid with
      | None -> empty_resolved
      | Some m ->
          let n = Array.length m.Ir.m_body in
          let by_idx = Array.make n [] in
          let sites = ref [] in
          Array.iteri
            (fun idx stmt ->
              match Ir.stmt_invoke stmt with
              | None -> ()
              | Some invoke ->
                  let sid = { Ir.sid_meth = mid; sid_idx = idx } in
                  let direct =
                    Prog.callees t.prog invoke |> List.map Ir.method_id_of_meth
                  in
                  let implicit = t.resolver t.prog invoke in
                  (* Keep only callbacks that exist as application methods. *)
                  let implicit =
                    List.filter
                      (fun id ->
                        match Prog.find_method t.prog id with
                        | Some _ -> not (List.mem id direct)
                        | None -> false)
                      implicit
                  in
                  let records = ref [] in
                  if direct <> [] then
                    records :=
                      { cs_stmt = sid; cs_invoke = invoke; cs_callees = direct;
                        cs_implicit = false }
                      :: !records;
                  if implicit <> [] then
                    records :=
                      { cs_stmt = sid; cs_invoke = invoke; cs_callees = implicit;
                        cs_implicit = true }
                      :: !records;
                  let records = List.rev !records in
                  by_idx.(idx) <- records;
                  sites := List.rev_append records !sites)
            m.Ir.m_body;
          let r = { rs_sites = List.rev !sites; rs_by_idx = by_idx } in
          Hashtbl.replace t.resolved_tbl mid r;
          Metrics.incr m_resolved;
          r)

let make ~resolver ~mode prog =
  {
    prog;
    resolver;
    resolved_tbl = Hashtbl.create 256;
    mode;
    preds_memo = Hashtbl.create 256;
    succs_memo = Hashtbl.create 256;
  }

let build ?(callback_resolver = no_callbacks) (prog : Prog.t) : t =
  let t = make ~resolver:callback_resolver ~mode:(Eager { callers_of = Ir.Method_map.empty }) prog in
  let callers_of = ref Ir.Method_map.empty in
  let add_caller callee sid =
    callers_of :=
      Ir.Method_map.update callee
        (function None -> Some [ sid ] | Some l -> Some (sid :: l))
        !callers_of
  in
  List.iter
    (fun (m : Ir.meth) ->
      let mid = Ir.method_id_of_meth m in
      let r = resolve_method t mid in
      List.iter
        (fun cs -> List.iter (fun c -> add_caller c cs.cs_stmt) cs.cs_callees)
        r.rs_sites)
    (Prog.app_methods prog);
  { t with mode = Eager { callers_of = !callers_of } }

let lazy_build ?(callback_resolver = no_callbacks) ?(callback_triggers = [])
    (prog : Prog.t) : t =
  make ~resolver:callback_resolver
    ~mode:
      (Demand
         {
           index = Index.build prog;
           trigger_names = callback_triggers;
           callers_memo = Hashtbl.create 64;
           trigger_map = None;
         })
    prog

let callsites t mid = (resolve_method t mid).rs_sites

let callsite_at t (sid : Ir.stmt_id) =
  let r = resolve_method t sid.Ir.sid_meth in
  if sid.Ir.sid_idx >= 0 && sid.Ir.sid_idx < Array.length r.rs_by_idx then
    r.rs_by_idx.(sid.Ir.sid_idx)
  else []

(* Demand-driven caller lookup.  Direct edges to a callee can only come
   from sites invoking the callee's own name; implicit edges only from
   sites invoking a registered trigger name.  All trigger-name sites are
   resolved once into a callee-keyed map ([trigger_map]) — the trigger
   registry includes ["<init>"], so the per-query rescans this replaces
   walked most constructor sites of the program on every lookup.  The
   result replicates the eager construction exactly: the eager map conses
   sids during the forward scan, so its lists are in reverse scan order,
   with one entry per occurrence of the callee in a record's target list;
   here the two ord-ascending hit streams are merged then reversed. *)
let trigger_map_of t ~index ~trigger_names (d : mode) =
  match d with
  | Eager _ -> assert false
  | Demand dm -> (
      match dm.trigger_map with
      | Some m -> m
      | None ->
          let sites =
            List.concat_map
              (Index.sites_invoking index)
              (List.sort_uniq String.compare trigger_names)
            |> List.sort (fun (a : Index.site) b ->
                   Int.compare a.Index.st_ord b.Index.st_ord)
          in
          let map = Hashtbl.create 64 in
          List.iter
            (fun (s : Index.site) ->
              List.iter
                (fun cs ->
                  List.iter
                    (fun c ->
                      let prev =
                        Option.value (Hashtbl.find_opt map c) ~default:[]
                      in
                      Hashtbl.replace map c ((s.Index.st_ord, s.Index.st_stmt) :: prev))
                    cs.cs_callees)
                (callsite_at t s.Index.st_stmt))
            sites;
          (* Consed while walking ascending ords: flip back to scan order. *)
          Hashtbl.iter (fun k v -> Hashtbl.replace map k (List.rev v))
            (Hashtbl.copy map);
          dm.trigger_map <- Some map;
          map)

let demand_callers t ~index ~trigger_names ~callers_memo mode callee =
  match Hashtbl.find_opt callers_memo callee with
  | Some l -> l
  | None ->
      let tmap = trigger_map_of t ~index ~trigger_names mode in
      let implicit = Option.value (Hashtbl.find_opt tmap callee) ~default:[] in
      let result =
        if List.exists (String.equal callee.Ir.id_name) trigger_names then
          (* The callee's own name is a trigger, so its name sites are
             already covered by the map. *)
          List.rev_map snd implicit
        else begin
          let name_hits =
            List.concat_map
              (fun (s : Index.site) ->
                List.concat_map
                  (fun cs ->
                    List.filter_map
                      (fun c ->
                        if Ir.Method_id.equal c callee then
                          Some (s.Index.st_ord, s.Index.st_stmt)
                        else None)
                      cs.cs_callees)
                  (callsite_at t s.Index.st_stmt))
              (Index.sites_invoking index callee.Ir.id_name)
          in
          (* Merge the ord-ascending streams; consing as we go leaves the
             final list in the eager map's reverse scan order. *)
          let rec merge acc a b =
            match (a, b) with
            | [], rest | rest, [] ->
                List.fold_left (fun acc (_, sid) -> sid :: acc) acc rest
            | (o1, s1) :: ta, (o2, _) :: _ when o1 < o2 -> merge (s1 :: acc) ta b
            | _, (_, s2) :: tb -> merge (s2 :: acc) a tb
          in
          merge [] name_hits implicit
        end
      in
      Hashtbl.replace callers_memo callee result;
      result

let callers t callee =
  match t.mode with
  | Eager { callers_of } ->
      Option.value (Ir.Method_map.find_opt callee callers_of) ~default:[]
  | Demand { index; trigger_names; callers_memo; _ } ->
      demand_callers t ~index ~trigger_names ~callers_memo t.mode callee

let index t = match t.mode with Eager _ -> None | Demand d -> Some d.index

let resolved_count t = Hashtbl.length t.resolved_tbl

(** All application methods transitively reachable from the entry points,
    following both explicit and implicit edges.  Explicit work-stack: deep
    synthetic call chains (--gen corpora) used to blow the OCaml stack
    here and surface as a spurious [crashed] quarantine. *)
let reachable_from t (entries : Ir.method_id list) =
  let seen = ref Ir.Method_set.empty in
  let stack = ref entries in
  let rec drain () =
    match !stack with
    | [] -> ()
    | mid :: rest ->
        stack := rest;
        if not (Ir.Method_set.mem mid !seen) then begin
          seen := Ir.Method_set.add mid !seen;
          List.iter
            (fun cs ->
              List.iter (fun c -> stack := c :: !stack) cs.cs_callees)
            (callsites t mid)
        end;
        drain ()
  in
  drain ();
  !seen

let stmt_preds t (mid : Ir.method_id) =
  match Hashtbl.find_opt t.preds_memo mid with
  | Some a -> Some a
  | None -> (
      match Prog.find_method t.prog mid with
      | None -> None
      | Some m ->
          let a = Cfg.stmt_predecessors m in
          Hashtbl.replace t.preds_memo mid a;
          Some a)

let stmt_succs t (mid : Ir.method_id) =
  match Hashtbl.find_opt t.succs_memo mid with
  | Some a -> Some a
  | None -> (
      match Prog.find_method t.prog mid with
      | None -> None
      | Some m ->
          let a = Cfg.stmt_successors m in
          Hashtbl.replace t.succs_memo mid a;
          Some a)
