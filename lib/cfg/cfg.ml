(* Intra-procedural control-flow graphs over Limple method bodies: basic
   blocks, successor/predecessor edges, dominators, natural loops and a
   loop-aware topological order.  The signature builder (§3.2) processes
   basic blocks in topological order and needs to know which confluence
   points are loop headers or latches. *)

module Ir = Extr_ir.Types

type block = {
  b_id : int;
  b_first : int;  (** index of the first statement *)
  b_last : int;  (** index of the last statement (inclusive) *)
}

type t = {
  meth : Ir.meth;
  blocks : block array;
  succs : int list array;
  preds : int list array;
  block_of_stmt : int array;  (** statement index → block id *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let label_table (body : Ir.stmt array) =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i s -> match s with Ir.Lab l -> Hashtbl.replace tbl l i | _ -> ())
    body;
  tbl

(** Statement-level successors.  A branch whose label does not exist
    (truncated or corrupt bytecode) is treated as a jump out of the
    method: no successor, like a return — the graph stays well-formed
    instead of the build raising. *)
let stmt_succs body labels i =
  let n = Array.length body in
  let fallthrough = if i + 1 < n then [ i + 1 ] else [] in
  match body.(i) with
  | Ir.Goto l -> (
      match Hashtbl.find_opt labels l with Some j -> [ j ] | None -> [])
  | Ir.If (_, l) -> (
      match Hashtbl.find_opt labels l with
      | Some j -> j :: fallthrough
      | None -> fallthrough)
  | Ir.Return _ -> []
  | Ir.Assign _ | Ir.InvokeStmt _ | Ir.Lab _ | Ir.Nop -> fallthrough

let build (meth : Ir.meth) : t =
  let body = meth.Ir.m_body in
  let n = Array.length body in
  if n = 0 then
    {
      meth;
      blocks = [| { b_id = 0; b_first = 0; b_last = -1 } |];
      succs = [| [] |];
      preds = [| [] |];
      block_of_stmt = [||];
    }
  else begin
    let labels = label_table body in
    (* Leaders: first statement, branch targets, statements following a
       branch or return. *)
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i s ->
        match s with
        | Ir.Goto l | Ir.If (_, l) ->
            (match Hashtbl.find_opt labels l with
            | Some j -> leader.(j) <- true
            | None -> () (* dangling label: edge dropped in stmt_succs *));
            if i + 1 < n then leader.(i + 1) <- true
        | Ir.Return _ -> if i + 1 < n then leader.(i + 1) <- true
        | Ir.Assign _ | Ir.InvokeStmt _ | Ir.Lab _ | Ir.Nop -> ())
      body;
    let block_of_stmt = Array.make n (-1) in
    let blocks = ref [] in
    let current_first = ref 0 in
    let n_blocks = ref 0 in
    for i = 0 to n - 1 do
      if i > 0 && leader.(i) then begin
        blocks := { b_id = !n_blocks; b_first = !current_first; b_last = i - 1 } :: !blocks;
        incr n_blocks;
        current_first := i
      end;
      block_of_stmt.(i) <- !n_blocks
    done;
    blocks := { b_id = !n_blocks; b_first = !current_first; b_last = n - 1 } :: !blocks;
    let blocks = Array.of_list (List.rev !blocks) in
    let nb = Array.length blocks in
    let succs = Array.make nb [] and preds = Array.make nb [] in
    Array.iter
      (fun blk ->
        let targets = stmt_succs body labels blk.b_last in
        List.iter
          (fun t ->
            let tb = block_of_stmt.(t) in
            if not (List.mem tb succs.(blk.b_id)) then begin
              succs.(blk.b_id) <- tb :: succs.(blk.b_id);
              preds.(tb) <- blk.b_id :: preds.(tb)
            end)
          targets)
      blocks;
    { meth; blocks; succs; preds; block_of_stmt }
  end

let n_blocks t = Array.length t.blocks

let block_stmts t b =
  let blk = t.blocks.(b) in
  let rec go i acc = if i < blk.b_first then acc else go (i - 1) (i :: acc) in
  if blk.b_last < blk.b_first then [] else go blk.b_last []

(* ------------------------------------------------------------------ *)
(* Reachability and dominators                                        *)
(* ------------------------------------------------------------------ *)

let reachable t =
  let seen = Array.make (n_blocks t) false in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit t.succs.(b)
    end
  in
  visit 0;
  seen

(** Dominator sets by iterative data-flow (small methods; simplicity wins
    over Lengauer-Tarjan). [doms.(b)] is the set of blocks dominating b. *)
let dominators t =
  let nb = n_blocks t in
  let reach = reachable t in
  let full = List.init nb Fun.id in
  let doms = Array.make nb full in
  doms.(0) <- [ 0 ];
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to nb - 1 do
      if reach.(b) then begin
        let pred_doms =
          List.filter_map
            (fun p -> if reach.(p) then Some doms.(p) else None)
            t.preds.(b)
        in
        let inter =
          match pred_doms with
          | [] -> [ b ]
          | first :: rest ->
              List.fold_left
                (fun acc s -> List.filter (fun x -> List.mem x s) acc)
                first rest
        in
        let new_doms = List.sort_uniq compare (b :: inter) in
        if new_doms <> doms.(b) then begin
          doms.(b) <- new_doms;
          changed := true
        end
      end
    done
  done;
  doms

(* ------------------------------------------------------------------ *)
(* Loops                                                              *)
(* ------------------------------------------------------------------ *)

type loop_info = {
  headers : int list;  (** loop header blocks *)
  latches : int list;  (** blocks with a back edge to a header *)
  back_edges : (int * int) list;  (** (latch, header) *)
}

(** Natural-loop detection: a back edge is an edge u→v where v dominates
    u.  §3.2 needs to know whether a confluence point is a loop header or
    latch (rep vs ∨ when merging signatures). *)
let loops t =
  let doms = dominators t in
  let reach = reachable t in
  let back_edges = ref [] in
  Array.iteri
    (fun u succs ->
      if reach.(u) then
        List.iter (fun v -> if List.mem v doms.(u) then back_edges := (u, v) :: !back_edges) succs)
    t.succs;
  let back_edges = !back_edges in
  {
    headers = List.sort_uniq compare (List.map snd back_edges);
    latches = List.sort_uniq compare (List.map fst back_edges);
    back_edges;
  }

(* ------------------------------------------------------------------ *)
(* Topological order                                                  *)
(* ------------------------------------------------------------------ *)

(** Topological order of reachable blocks ignoring back edges (the order in
    which the signature builder visits blocks). *)
let topological_order t =
  let { back_edges; _ } = loops t in
  let is_back u v = List.mem (u, v) back_edges in
  let nb = n_blocks t in
  let reach = reachable t in
  let temp = Array.make nb false and perm = Array.make nb false in
  let order = ref [] in
  let rec visit b =
    if perm.(b) then ()
    else if temp.(b) then () (* residual cycle: irreducible graph; cut it *)
    else begin
      temp.(b) <- true;
      List.iter (fun s -> if not (is_back b s) then visit s) t.succs.(b);
      perm.(b) <- true;
      order := b :: !order
    end
  in
  for b = 0 to nb - 1 do
    if reach.(b) && not perm.(b) then visit b
  done;
  List.filter (fun b -> reach.(b)) !order

(** Predecessors of [b] along forward (non-back) edges — the flows merged
    at a confluence point. *)
let forward_preds t b =
  let { back_edges; _ } = loops t in
  List.filter (fun p -> not (List.mem (p, b) back_edges)) t.preds.(b)

(* ------------------------------------------------------------------ *)
(* Statement-level flow (used by the taint engines)                    *)
(* ------------------------------------------------------------------ *)

(** Successor statement indices for every statement of a method. *)
let stmt_successors (meth : Ir.meth) : int list array =
  let body = meth.Ir.m_body in
  let labels = label_table body in
  Array.init (Array.length body) (fun i -> stmt_succs body labels i)

(** Predecessor statement indices for every statement of a method. *)
let stmt_predecessors (meth : Ir.meth) : int list array =
  let succs = stmt_successors meth in
  let preds = Array.make (Array.length meth.Ir.m_body) [] in
  Array.iteri (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss) succs;
  preds

(** Indices of all return statements of a method. *)
let return_indices (meth : Ir.meth) =
  let acc = ref [] in
  Array.iteri
    (fun i s -> match s with Ir.Return _ -> acc := i :: !acc | _ -> ())
    meth.Ir.m_body;
  List.rev !acc
