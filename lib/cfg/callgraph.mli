(** Call graph over application methods, built with class-hierarchy
    analysis plus pluggable implicit-callback resolution.  Implicit call
    flows through thread/HTTP libraries (AsyncTask, Volley — §3.4) are
    injected by the semantics layer through the resolver hook.

    [build] resolves every application method up front; [lazy_build]
    resolves on first visit, answering caller queries through the method
    index (BackDroid-style index-then-explore, ROADMAP item 1).  The two
    modes return identical call-site records, caller lists and
    reachability sets. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

type callsite = {
  cs_stmt : Ir.stmt_id;
  cs_invoke : Ir.invoke;
  cs_callees : Ir.method_id list;  (** resolved application-method targets *)
  cs_implicit : bool;  (** true when the edge comes from a callback model *)
}

type t

type callback_resolver = Prog.t -> Ir.invoke -> Ir.method_id list
(** [resolver prog invoke] returns the application methods a library call
    will eventually invoke (e.g. [task.execute()] → [doInBackground]). *)

val no_callbacks : callback_resolver

val build : ?callback_resolver:callback_resolver -> Prog.t -> t
(** Whole-program construction: every application method resolved up
    front (the --eager-callgraph escape hatch). *)

val lazy_build :
  ?callback_resolver:callback_resolver ->
  ?callback_triggers:string list ->
  Prog.t ->
  t
(** Demand-driven construction: builds the method index only; methods are
    resolved (memoized) on first visit.  [callback_triggers] must list
    every invoke name the resolver can return callbacks for — caller
    queries find candidate implicit-edge sites through these names. *)

val callsites : t -> Ir.method_id -> callsite list
(** Call sites inside a method (resolved on demand in lazy mode). *)

val callsite_at : t -> Ir.stmt_id -> callsite list
(** Call-site records anchored at one statement (possibly one explicit
    and one implicit).  O(1) after the statement's method is resolved. *)

val callers : t -> Ir.method_id -> Ir.stmt_id list
(** Statements that may call the given method.  Identical list (contents
    and order) in both modes. *)

val reachable_from : t -> Ir.method_id list -> Ir.Method_set.t
(** Application methods transitively reachable from the entries, following
    both explicit and implicit edges.  Iterative: safe on arbitrarily deep
    call chains. *)

val index : t -> Extr_ir.Index.t option
(** The method index ([Some] only for [lazy_build] graphs); lets the
    slicer discover demarcation points and field stores without a
    whole-program scan. *)

val resolved_count : t -> int
(** Application methods resolved so far — equals the full method count for
    eager graphs; the pipeline derives [callgraph.methods_skipped] and the
    [slicer.skipped_method_ratio] gauge from it. *)

val stmt_preds : t -> Ir.method_id -> int list array option
(** Statement-level predecessor arrays, memoized on the graph and shared
    by every taint engine of the run ([None] for non-application
    methods). *)

val stmt_succs : t -> Ir.method_id -> int list array option
(** Statement-level successor arrays, memoized like {!stmt_preds}. *)
