(* Content-addressed result cache.

   The address of an analysis result is a digest over everything that
   determines it: the app content (the textual Limple program is the
   canonical serialization — the printer/parser round-trip guarantees it
   captures the whole program), the analysis configuration fingerprint,
   and a bumpable implementation version.  Any change to any of the
   three moves the address, so stale entries are never *invalidated*,
   only orphaned — the cache needs no eviction protocol to stay
   correct. *)

module Ir = Extr_ir.Types
module Pp = Extr_ir.Pp
module Apk = Extr_apk.Apk
module Export = Extr_telemetry.Export
module Metrics = Extr_telemetry.Metrics

let src = Logs.Src.create "extractocol.store" ~doc:"Content-addressed result cache"

module Log = (val Logs.src_log src : Logs.LOG)

(* Bump on any change that alters the pipeline's output for an unchanged
   input (the report JSON shape counts: cached entries are served
   verbatim). *)
let analysis_version = 1

type key = string

let key ?(version = analysis_version) ~config (apk : Apk.t) : key =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "version=%d\n" version);
  Buffer.add_string buf (Printf.sprintf "config=%s\n" config);
  let mf = apk.Apk.manifest in
  Buffer.add_string buf
    (Printf.sprintf "manifest=%s|%s|%s\n" mf.Apk.mf_package mf.Apk.mf_label
       (String.concat "," mf.Apk.mf_activities));
  List.iter
    (fun (id, s) -> Buffer.add_string buf (Printf.sprintf "res=%d:%s\n" id s))
    apk.Apk.resources;
  Buffer.add_string buf (Pp.program_to_string apk.Apk.program);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key_to_string k = k

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let key_of_string s =
  if String.length s = 32 && String.for_all is_hex s then Some s else None

type t = { st_dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { st_dir = dir }

let dir t = t.st_dir

let entry_path t k = Filename.concat t.st_dir (k ^ ".json")

let m_hits =
  Metrics.counter ~help:"result-cache lookups that found an entry" "cache.hits"

let m_misses =
  Metrics.counter ~help:"result-cache lookups that found nothing"
    "cache.misses"

let find t k =
  let path = entry_path t k in
  let hit =
    if Sys.file_exists path then
      try Some (In_channel.with_open_text path In_channel.input_all)
      with Sys_error msg ->
        Log.warn (fun m -> m "unreadable cache entry %s: %s" path msg);
        None
    else None
  in
  if Metrics.is_enabled Metrics.default then
    Metrics.incr (match hit with Some _ -> m_hits | None -> m_misses);
  hit

let store t k contents = Export.write_file (entry_path t k) contents
