(* Content-addressed result cache.

   The address of an analysis result is a digest over everything that
   determines it: the app content (the textual Limple program is the
   canonical serialization — the printer/parser round-trip guarantees it
   captures the whole program), the analysis configuration fingerprint,
   and a bumpable implementation version.  Any change to any of the
   three moves the address, so stale entries are never *invalidated*,
   only orphaned — the cache needs no eviction protocol to stay
   correct. *)

module Ir = Extr_ir.Types
module Pp = Extr_ir.Pp
module Apk = Extr_apk.Apk
module Export = Extr_telemetry.Export
module Metrics = Extr_telemetry.Metrics
module Fault = Extr_resilience.Fault

let src = Logs.Src.create "extractocol.store" ~doc:"Content-addressed result cache"

module Log = (val Logs.src_log src : Logs.LOG)

(* Bump on any change that alters the pipeline's output for an unchanged
   input (the report JSON shape counts: cached entries are served
   verbatim). *)
let analysis_version = 1

type key = string

let key ?(version = analysis_version) ~config (apk : Apk.t) : key =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "version=%d\n" version);
  Buffer.add_string buf (Printf.sprintf "config=%s\n" config);
  let mf = apk.Apk.manifest in
  Buffer.add_string buf
    (Printf.sprintf "manifest=%s|%s|%s\n" mf.Apk.mf_package mf.Apk.mf_label
       (String.concat "," mf.Apk.mf_activities));
  List.iter
    (fun (id, s) -> Buffer.add_string buf (Printf.sprintf "res=%d:%s\n" id s))
    apk.Apk.resources;
  Buffer.add_string buf (Pp.program_to_string apk.Apk.program);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key_to_string k = k

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let key_of_string s =
  if String.length s = 32 && String.for_all is_hex s then Some s else None

type t = { st_dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let m_temps_swept =
  Metrics.counter ~help:"orphaned temp files removed on cache open"
    "cache.temps.swept"

let open_ ?(sweep_age_s = 3600.) ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  (* A writer SIGKILLed between temp and rename leaves an orphan; the
     cache directory is the long-lived artifact directory those
     accumulate in, so runner/merge startup is the natural GC point. *)
  let swept = Export.sweep_temps ~max_age_s:sweep_age_s ~dir () in
  if swept > 0 then begin
    if Metrics.is_enabled Metrics.default then
      Metrics.incr ~by:swept m_temps_swept;
    Log.info (fun m -> m "%s: swept %d orphaned temp file(s)" dir swept)
  end;
  { st_dir = dir }

let dir t = t.st_dir

let entry_path t k = Filename.concat t.st_dir (k ^ ".json")

let m_hits =
  Metrics.counter ~help:"result-cache lookups that found an entry" "cache.hits"

let m_misses =
  Metrics.counter ~help:"result-cache lookups that found nothing"
    "cache.misses"

let m_corrupt =
  Metrics.counter
    ~help:"cache entries that failed their content digest (served as misses)"
    "cache.corrupt"

(* ------------------------------------------------------------------ *)
(* Entry integrity                                                    *)
(* ------------------------------------------------------------------ *)

(* Entries are sealed with a one-line header ["%EXTR1 <md5hex>\n"]
   covering the payload, verified on every read.  A mismatch — bit rot,
   a torn write from a lying filesystem — makes the entry a miss (plus
   a warning and the cache.corrupt counter), never a wrong answer: the
   app simply re-runs and the fresh store heals the entry.  Headerless
   entries (caches from before integrity existed) are served as-is. *)

let integrity = ref true
let set_integrity b = integrity := b

let magic = "%EXTR1 "
let header_len = String.length magic + 32 + 1  (* digest hex + '\n' *)

let seal contents = magic ^ Digest.to_hex (Digest.string contents) ^ "\n" ^ contents

let decode raw =
  let n = String.length raw in
  if n < String.length magic || String.sub raw 0 (String.length magic) <> magic
  then Result.Ok raw
  else if n < header_len || raw.[header_len - 1] <> '\n' then
    Result.Error "malformed integrity header"
  else
    let digest = String.sub raw (String.length magic) 32 in
    let payload = String.sub raw header_len (n - header_len) in
    if String.for_all is_hex digest
       && Digest.to_hex (Digest.string payload) = digest
    then Result.Ok payload
    else Result.Error "content digest mismatch"

let flip_byte s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Bytes.length b - 1 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  end

let find t k =
  let path = entry_path t k in
  let raw =
    if Sys.file_exists path then
      try Some (In_channel.with_open_text path In_channel.input_all)
      with Sys_error msg ->
        Log.warn (fun m -> m "unreadable cache entry %s: %s" path msg);
        None
    else None
  in
  let raw =
    match Fault.fire "store.read" with
    | Some "miss" -> None
    | Some "bitflip" -> Option.map flip_byte raw
    | Some _ | None -> raw
  in
  let hit =
    match raw with
    | None -> None
    | Some raw -> (
        match decode raw with
        | Result.Ok payload -> Some payload
        | Result.Error reason ->
            Log.warn (fun m ->
                m "corrupt cache entry %s (%s); treating as a miss" path reason);
            if Metrics.is_enabled Metrics.default then Metrics.incr m_corrupt;
            None)
  in
  if Metrics.is_enabled Metrics.default then
    Metrics.incr (match hit with Some _ -> m_hits | None -> m_misses);
  hit

let store t k contents =
  let data = if !integrity then seal contents else contents in
  let data =
    match Fault.fire "store.write" with
    | Some "bitflip" -> Some (flip_byte data)
    | Some "drop" -> None
    | Some _ | None -> Some data
  in
  match data with
  | Some data -> Export.write_file (entry_path t k) data
  | None -> ()

(* Offline integrity audit for [stats --verify]: decode every entry in
   a cache directory without serving it. *)
let audit ~dir =
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun (total, corrupt) name ->
      if Filename.check_suffix name ".json" && name.[0] <> '.' then
        let path = Filename.concat dir name in
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg -> (total + 1, (name, msg) :: corrupt)
        | raw -> (
            match decode raw with
            | Result.Ok _ -> (total + 1, corrupt)
            | Result.Error reason -> (total + 1, (name, reason) :: corrupt))
      else (total, corrupt))
    (0, []) names
  |> fun (total, corrupt) -> (total, List.rev corrupt)
