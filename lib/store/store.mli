(** Content-addressed result cache for corpus runs.

    A corpus re-run over unchanged apps should not redo static analysis:
    the result of analyzing an app is fully determined by the app's
    Limple program (plus manifest and resources), the analysis
    configuration, and the analysis implementation itself.  {!key}
    digests all three into a hex address; {!find}/{!store} read and
    write the serialized result under that address in a cache
    directory, counting ["cache.hits"]/["cache.misses"] in the metrics
    registry.  Writes go through the telemetry temp+rename discipline,
    so a crash mid-store never leaves a truncated entry behind. *)

module Apk = Extr_apk.Apk

val analysis_version : int
(** Bumpable invalidation lever: part of every {!key}.  Bump it whenever
    the pipeline's output for an unchanged input changes (new analysis
    features, fixed bugs, report-format changes), and every previously
    cached result becomes unreachable without touching the cache
    directory. *)

type key = private string
(** A hex digest addressing one analysis result. *)

val key : ?version:int -> config:string -> Apk.t -> key
(** Digest of the app content (textual Limple program, manifest,
    resource table), the [config] fingerprint (see
    {!Extr_extractocol.Pipeline.options_fingerprint}) and the analysis
    [version] (default {!analysis_version}). *)

val key_to_string : key -> string
val key_of_string : string -> key option
(** Validates the hex-digest shape; [None] otherwise. *)

type t
(** An open cache rooted at a directory. *)

val open_ : ?sweep_age_s:float -> dir:string -> unit -> t
(** Open (creating the directory if needed), garbage-collecting
    orphaned write temps older than [sweep_age_s] (default one hour;
    see {!Extr_telemetry.Export.sweep_temps}) — the startup sweep that
    keeps a long-lived artifact directory free of dead writers'
    leftovers.  Swept files count into ["cache.temps.swept"].
    @raise Sys_error when the directory cannot be created. *)

val dir : t -> string

val find : t -> key -> string option
(** The stored contents, or [None].  Bumps ["cache.hits"] or
    ["cache.misses"] when the metrics registry is enabled.  An
    unreadable entry is a miss, never an error — and so is an entry
    that fails its content digest (["cache.corrupt"] counts it): a
    corrupt artifact is never served, the app re-runs, and the fresh
    {!store} heals the entry.  Consults the {!Extr_resilience.Fault}
    site ["store.read"] (modes [bitflip], [miss]). *)

val store : t -> key -> string -> unit
(** Atomically write the entry (temp file + rename), sealed with a
    content digest ({!decode} strips and verifies it).  Consults the
    {!Extr_resilience.Fault} site ["store.write"] (modes [bitflip],
    [drop]).
    @raise Sys_error when the cache directory is not writable. *)

val seal : string -> string
(** Prefix the integrity header (["%EXTR1 <md5hex>\n"]) covering the
    payload — what {!store} writes. *)

val decode : string -> (string, string) result
(** Verify and strip a sealed entry back to its payload.  Headerless
    contents (entries from before integrity existed) pass through
    unverified; [Error reason] is a digest mismatch or a malformed
    header — the caller must treat the entry as missing. *)

val set_integrity : bool -> unit
(** Benchmark knob: [false] stores unsealed (legacy) entries so the
    digest overhead can be measured differentially.  Default [true]. *)

val audit : dir:string -> int * (string * string) list
(** Offline integrity audit ([stats --verify]): decode every [*.json]
    entry under [dir]; returns the entry count and the corrupt ones as
    [(filename, reason)]. *)
