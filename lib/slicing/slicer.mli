(** Network-aware program slicing (§3.1).  For every demarcation point in
    the application: the backward (request) slice, the forward (response)
    slice, object-aware augmentation, and the asynchronous-event heuristic
    (§3.4). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Demarcation = Extr_semantics.Demarcation
module Resilience = Extr_resilience.Resilience

type dp_site = {
  dp_stmt : Ir.stmt_id;
  dp_invoke : Ir.invoke;
  dp_info : Demarcation.t;
}

type slice = { sl_dp : dp_site; sl_stmts : Ir.Stmt_set.t }

type result = {
  r_dps : dp_site list;
  r_request : slice list;  (** one request slice per demarcation point *)
  r_response : slice list;  (** one response slice per demarcation point *)
  r_stats : stats;
}

and stats = {
  st_total_stmts : int;
  st_slice_stmts : int;  (** statements in the union of all slices *)
}

val find_demarcation_points :
  ?scope:string -> ?index:Extr_ir.Index.t -> Prog.t -> dp_site list
(** Scan for demarcation-point invokes; [scope] restricts discovery to
    classes with the given prefix (§5.3).  With an [index] only candidate
    call sites (by invoked name) are examined, in the same order a full
    scan would visit them. *)

val augment_response_slice : Prog.t -> slice -> slice
(** Object-aware augmentation (§3.1): add the initialization context of
    objects the forward slice uses, to a fixed point. *)

type options = {
  opt_async_heuristic : bool;  (** §3.4 heuristic (on for closed-source) *)
  opt_async_iterations : int;
      (** heap-carrier hops to follow: 1 = the paper's implementation,
          higher values are its suggested multi-iteration extension *)
  opt_augmentation : bool;  (** object-aware augmentation *)
  opt_scope : string option;  (** class-prefix scope (§5.3) *)
  opt_budget : Resilience.Budget.t option;
      (** shared per-run budget the taint engines spend from; [None]
          gives each engine its own historical 2M-step bound *)
}

val default_options : options

val run : ?options:options -> Prog.t -> Callgraph.t -> result

val slice_fraction : result -> float
(** Fraction of application code covered by the slices (Figure 3 reports
    6.3 % for Diode). *)
