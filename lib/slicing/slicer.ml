(* Network-aware program slicing (§3.1).  For every demarcation point in
   the application, compute:
     - the request slice: backward taint propagation from the request
       object (URI construction, body construction, headers);
     - the response slice: forward taint propagation from the response
       object (parsing, consumption);
     - object-aware augmentation: initialization context of objects used in
       forward slices;
     - the asynchronous-event heuristic (§3.4): backward propagation from
       setter statements of heap objects that carry request parts.  *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Demarcation = Extr_semantics.Demarcation
module Callbacks = Extr_semantics.Callbacks
module Fact = Extr_taint.Fact
module Forward = Extr_taint.Forward
module Backward = Extr_taint.Backward
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Resilience = Extr_resilience.Resilience

let src = Logs.Src.create "extractocol.slicer" ~doc:"Network-aware program slicing"

module Log = (val Logs.src_log src : Logs.LOG)

let m_dps =
  Metrics.counter ~help:"demarcation points discovered"
    "slicer.demarcation_points"

let m_slice_stmts =
  Metrics.histogram ~help:"per-DP slice sizes in statements (kind=request|response)"
    "slicer.slice_stmts"

let m_augmented =
  Metrics.counter ~help:"statements added by object-aware augmentation"
    "slicer.augmented_stmts"

type dp_site = {
  dp_stmt : Ir.stmt_id;
  dp_invoke : Ir.invoke;
  dp_info : Demarcation.t;
}

type slice = {
  sl_dp : dp_site;
  sl_stmts : Ir.Stmt_set.t;
}

type result = {
  r_dps : dp_site list;
  r_request : slice list;  (** one request slice per demarcation point *)
  r_response : slice list;  (** one response slice per demarcation point *)
  r_stats : stats;
}

and stats = {
  st_total_stmts : int;
  st_slice_stmts : int;  (** statements in the union of all slices *)
}

(* ------------------------------------------------------------------ *)
(* Demarcation point discovery                                        *)
(* ------------------------------------------------------------------ *)

(** Scan for demarcation-point invokes.  [scope] optionally restricts
    discovery to classes with the given prefix (the Kayak analysis scopes
    to com.kayak classes, §5.3).  With an [index] (demand-driven mode)
    only the call sites whose invoked name matches a registry entry are
    examined — BackDroid's bytecode-search step — instead of every
    statement of every method; candidate sites are replayed in global
    scan order so the discovered list is identical to the full scan's. *)
let find_demarcation_points ?scope ?index (prog : Prog.t) : dp_site list =
  let in_scope_cls cls =
    match scope with
    | None -> true
    | Some prefix ->
        String.length cls >= String.length prefix
        && String.sub cls 0 (String.length prefix) = prefix
  in
  match index with
  | Some ix ->
      List.concat_map (Extr_ir.Index.sites_invoking ix) Demarcation.method_names
      |> List.sort (fun (a : Extr_ir.Index.site) b ->
             compare a.Extr_ir.Index.st_ord b.Extr_ir.Index.st_ord)
      |> List.filter_map (fun (s : Extr_ir.Index.site) ->
             if not (in_scope_cls s.Extr_ir.Index.st_stmt.Ir.sid_meth.Ir.id_cls)
             then None
             else
               match Demarcation.find s.Extr_ir.Index.st_invoke with
               | Some info ->
                   Some
                     {
                       dp_stmt = s.Extr_ir.Index.st_stmt;
                       dp_invoke = s.Extr_ir.Index.st_invoke;
                       dp_info = info;
                     }
               | None -> None)
  | None ->
      List.concat_map
        (fun (m : Ir.meth) ->
          if not (in_scope_cls m.Ir.m_cls) then []
          else begin
            let mid = Ir.method_id_of_meth m in
            let acc = ref [] in
            Array.iteri
              (fun idx stmt ->
                match Ir.stmt_invoke stmt with
                | Some invoke -> (
                    match Demarcation.find invoke with
                    | Some info ->
                        acc :=
                          {
                            dp_stmt = { Ir.sid_meth = mid; sid_idx = idx };
                            dp_invoke = invoke;
                            dp_info = info;
                          }
                          :: !acc
                    | None -> ())
                | None -> ())
              m.Ir.m_body;
            List.rev !acc
          end)
        (Prog.app_methods prog)

(* ------------------------------------------------------------------ *)
(* Request (backward) slices                                          *)
(* ------------------------------------------------------------------ *)

let request_root (dp : dp_site) : Ir.var option =
  match dp.dp_info.Demarcation.dp_request with
  | Demarcation.Arg i -> (
      match List.nth_opt dp.dp_invoke.Ir.iargs i with
      | Some (Ir.Local v) -> Some v
      | Some (Ir.Const _) | None -> None)
  | Demarcation.Recv -> dp.dp_invoke.Ir.ibase

(** Statements storing to one of the given instance fields, anywhere in the
    program — the setter statements the async heuristic restarts from.
    With an [index], only the per-field store lists are consulted (merged
    back into global scan order). *)
let field_store_sites ?index (prog : Prog.t) (fields : (string * string) list) =
  match index with
  | Some ix ->
      List.concat_map (Extr_ir.Index.field_stores ix) fields
      |> List.sort (fun (a : Extr_ir.Index.store) b ->
             compare a.Extr_ir.Index.fs_ord b.Extr_ir.Index.fs_ord)
      |> List.map (fun (s : Extr_ir.Index.store) ->
             let mid = s.Extr_ir.Index.fs_stmt.Ir.sid_meth in
             ( s.Extr_ir.Index.fs_stmt,
               Fact.local_path mid s.Extr_ir.Index.fs_var
                 s.Extr_ir.Index.fs_field.Ir.fname ))
  | None ->
      List.concat_map
        (fun (m : Ir.meth) ->
          let mid = Ir.method_id_of_meth m in
          let acc = ref [] in
          Array.iteri
            (fun idx stmt ->
              match stmt with
              | Ir.Assign (Ir.Lfield (x, f), _)
                when List.mem (f.Ir.fcls, f.Ir.fname) fields ->
                  acc :=
                    ({ Ir.sid_meth = mid; sid_idx = idx }, Fact.local_path mid x f.Ir.fname)
                    :: !acc
              | _ -> ())
            m.Ir.m_body;
          List.rev !acc)
        (Prog.app_methods prog)

let request_slice ?budget ~async_heuristic ~async_iterations prog cg
    (dp : dp_site) : slice =
  let engine = Backward.create prog cg in
  (match request_root dp with
  | Some v ->
      Backward.inject_at engine dp.dp_stmt
        [ Fact.local dp.dp_stmt.Ir.sid_meth v ]
  | None -> ());
  Backward.run ?budget engine;
  let stmts, async_setters =
    if not async_heuristic then (Backward.touched_stmts engine, [])
    else begin
      (* §3.4: for each heap object carrying request parts, restart
         backward propagation from its setter statements.  The default is
         one hop; the paper's multiple-iterations variant repeats until no
         new heap carriers appear (bounded by [async_iterations]).  The
         engine is resumed, not rebuilt: the fixpoint already reached is a
         sound intermediate point of the extended one (injections only
         grow), so resuming converges to the identical fixpoint without
         re-deriving the whole first round. *)
      let rec iterate k setters known_fields =
        let fields =
          List.sort_uniq compare (Fact.field_facts (Backward.all_facts engine))
        in
        if k <= 0 || fields = known_fields then
          (Backward.touched_stmts engine, setters)
        else begin
          let setters' =
            field_store_sites ?index:(Callgraph.index cg) prog fields
          in
          List.iter
            (fun (sid, fact) -> Backward.inject_at engine sid [ fact ])
            setters';
          Backward.run ?budget engine;
          iterate (k - 1) setters' fields
        end
      in
      iterate (max 1 async_iterations) [] []
    end
  in
  if Provenance.is_enabled Provenance.default then begin
    let dp_sid = dp.dp_stmt in
    Provenance.record_slice_step Provenance.default ~dp:dp_sid ~stmt:dp_sid
      Provenance.Dp_discovered;
    let setter_sids = List.map fst async_setters in
    List.iter
      (fun sid ->
        Provenance.record_slice_step Provenance.default ~dp:dp_sid ~stmt:sid
          Provenance.Async_setter)
      setter_sids;
    (* Set membership, not List.mem: the touched set times the setter list
       made this loop quadratic with --explain on. *)
    let setter_set = Ir.Stmt_set.of_list setter_sids in
    Ir.Stmt_set.iter
      (fun sid ->
        if (not (Ir.Stmt_id.equal sid dp_sid)) && not (Ir.Stmt_set.mem sid setter_set)
        then
          Provenance.record_slice_step Provenance.default ~dp:dp_sid ~stmt:sid
            Provenance.Backward_taint)
      stmts
  end;
  { sl_dp = dp; sl_stmts = Ir.Stmt_set.add dp.dp_stmt stmts }

(* ------------------------------------------------------------------ *)
(* Response (forward) slices                                          *)
(* ------------------------------------------------------------------ *)

(** The variable receiving the response at the demarcation point (for
    [Ret]-style bindings): the definition of the assign statement. *)
let response_def prog (dp : dp_site) : Ir.var option =
  match Prog.stmt_at prog dp.dp_stmt with
  | Some (Ir.Assign (Ir.Lvar v, Ir.Invoke _)) -> Some v
  | Some _ | None -> None

(** Callback entry points receiving the response for listener-style DPs. *)
let response_callback_roots prog (dp : dp_site) : (Ir.method_id * Ir.var) list =
  match dp.dp_info.Demarcation.dp_response with
  | Demarcation.Listener_callback { arg_idx; callback = _ } -> (
      match List.nth_opt dp.dp_invoke.Ir.iargs arg_idx with
      | Some (Ir.Local req_var) -> (
          match Prog.find_method prog dp.dp_stmt.Ir.sid_meth with
          | Some meth ->
              Callbacks.listener_of_request prog meth req_var
              |> List.filter_map (fun cb_id ->
                     match Prog.find_method prog cb_id with
                     | Some cb -> (
                         match cb.Ir.m_params with
                         | p :: _ -> Some (cb_id, p)
                         | [] -> None)
                     | None -> None)
          | None -> [])
      | Some (Ir.Const _) | None -> [])
  | Demarcation.Ret | Demarcation.Base | Demarcation.Opaque_sink -> []

let response_slice ?budget prog cg (dp : dp_site) : slice =
  let engine = Forward.create prog cg in
  (match dp.dp_info.Demarcation.dp_response with
  | Demarcation.Ret | Demarcation.Base -> (
      match response_def prog dp with
      | Some v ->
          Forward.inject_after engine dp.dp_stmt
            [ Fact.local dp.dp_stmt.Ir.sid_meth v ]
      | None -> ())
  | Demarcation.Listener_callback _ ->
      List.iter
        (fun (cb_id, param) ->
          Forward.inject_at_entry engine cb_id [ Fact.local cb_id param ])
        (response_callback_roots prog dp)
  | Demarcation.Opaque_sink -> ());
  Forward.run ?budget engine;
  let stmts = Forward.tainted_stmts engine in
  if Provenance.is_enabled Provenance.default then
    Ir.Stmt_set.iter
      (fun sid ->
        Provenance.record_slice_step Provenance.default ~dp:dp.dp_stmt ~stmt:sid
          Provenance.Forward_taint)
      stmts;
  { sl_dp = dp; sl_stmts = stmts }

(* ------------------------------------------------------------------ *)
(* Object-aware slice augmentation (§3.1)                              *)
(* ------------------------------------------------------------------ *)

(** Augment a forward slice with the complete context of the objects it
    uses: repeatedly add statements (in the same methods) that define a
    variable or write a field that an already-included statement reads,
    until no statements are added. *)
let augment_response_slice prog (sl : slice) : slice =
  let methods =
    Ir.Stmt_set.fold
      (fun sid acc -> Ir.Method_set.add sid.Ir.sid_meth acc)
      sl.sl_stmts Ir.Method_set.empty
  in
  let included = ref sl.sl_stmts in
  let prof =
    Profile.cursor ~phase:"slicing.augment" ~render:Ir.Method_id.to_string ()
  in
  (* Augmentation never crosses a method boundary (uses and the defining
     statements added for them live in the same body), so each method
     closes independently — a local fixpoint per method reaches the same
     closure as the old global re-scan-everything loop, without rescanning
     stable methods every time any method grows. *)
  Ir.Method_set.iter
    (fun mid ->
      Profile.visit prof mid;
      match Prog.find_method prog mid with
      | None -> ()
      | Some m ->
          let changed = ref true in
          while !changed do
            changed := false;
            (* Variables and fields read by included statements of m. *)
            let used_vars = Hashtbl.create 16 in
            let used_fields = Hashtbl.create 16 in
            Array.iteri
              (fun idx stmt ->
                let sid = { Ir.sid_meth = mid; sid_idx = idx } in
                if Ir.Stmt_set.mem sid !included then begin
                  List.iter
                    (fun (v : Ir.var) -> Hashtbl.replace used_vars v.Ir.vname ())
                    (Ir.stmt_uses stmt);
                  match stmt with
                  | Ir.Assign (_, Ir.IField (_, f)) ->
                      Hashtbl.replace used_fields (f.Ir.fcls, f.Ir.fname) ()
                  | _ -> ()
                end)
              m.Ir.m_body;
            (* Add defining statements not yet included. *)
            Array.iteri
              (fun idx stmt ->
                let sid = { Ir.sid_meth = mid; sid_idx = idx } in
                if not (Ir.Stmt_set.mem sid !included) then begin
                  let defines_used =
                    match Ir.stmt_def stmt with
                    | Some v -> Hashtbl.mem used_vars v.Ir.vname
                    | None -> (
                        match stmt with
                        | Ir.Assign (Ir.Lfield (_, f), _) ->
                            Hashtbl.mem used_fields (f.Ir.fcls, f.Ir.fname)
                        | Ir.InvokeStmt { Ir.ibase = Some b; _ } ->
                            (* Mutating calls on used objects (constructors,
                               builder appends) complete the object context. *)
                            Hashtbl.mem used_vars b.Ir.vname
                        | _ -> false)
                  in
                  if defines_used then begin
                    included := Ir.Stmt_set.add sid !included;
                    Profile.add_facts prof 1;
                    changed := true
                  end
                end)
              m.Ir.m_body
          done)
    methods;
  Profile.close prof;
  if Provenance.is_enabled Provenance.default then
    Ir.Stmt_set.iter
      (fun sid ->
        if not (Ir.Stmt_set.mem sid sl.sl_stmts) then
          Provenance.record_slice_step Provenance.default ~dp:sl.sl_dp.dp_stmt
            ~stmt:sid Provenance.Augmented)
      !included;
  { sl with sl_stmts = !included }

(* ------------------------------------------------------------------ *)
(* End-to-end slicing                                                 *)
(* ------------------------------------------------------------------ *)

type options = {
  opt_async_heuristic : bool;  (** §3.4 heuristic (on for closed-source) *)
  opt_async_iterations : int;
      (** heap-carrier hops to follow: 1 = the paper's implementation,
          higher values are its suggested multi-iteration extension *)
  opt_augmentation : bool;  (** object-aware augmentation *)
  opt_scope : string option;  (** class-prefix scope (§5.3) *)
  opt_budget : Resilience.Budget.t option;
      (** shared per-run budget the taint engines spend from; [None]
          gives each engine its own historical 2M-step bound *)
}

let default_options =
  {
    opt_async_heuristic = false;
    opt_async_iterations = 1;
    opt_augmentation = true;
    opt_scope = None;
    opt_budget = None;
  }

let run ?(options = default_options) (prog : Prog.t) (cg : Callgraph.t) : result =
  let telemetry = Metrics.is_enabled Metrics.default in
  let dps =
    find_demarcation_points ?scope:options.opt_scope
      ?index:(Callgraph.index cg) prog
  in
  Metrics.incr m_dps ~by:(List.length dps);
  let observe_size kind sl =
    if telemetry then
      Metrics.observe m_slice_stmts
        ~labels:[ ("kind", kind) ]
        (float_of_int (Ir.Stmt_set.cardinal sl.sl_stmts))
  in
  let request =
    List.map
      (fun dp ->
        let sl =
          request_slice ?budget:options.opt_budget
            ~async_heuristic:options.opt_async_heuristic
            ~async_iterations:options.opt_async_iterations prog cg dp
        in
        observe_size "request" sl;
        sl)
      dps
  in
  let response =
    List.map
      (fun dp ->
        let sl = response_slice ?budget:options.opt_budget prog cg dp in
        let sl =
          if options.opt_augmentation then begin
            let augmented = augment_response_slice prog sl in
            if telemetry then
              Metrics.incr m_augmented
                ~by:
                  (Ir.Stmt_set.cardinal augmented.sl_stmts
                  - Ir.Stmt_set.cardinal sl.sl_stmts);
            augmented
          end
          else sl
        in
        observe_size "response" sl;
        sl)
      dps
  in
  let union =
    List.fold_left
      (fun acc sl -> Ir.Stmt_set.union acc sl.sl_stmts)
      Ir.Stmt_set.empty (request @ response)
  in
  let slice_stmts = Ir.Stmt_set.cardinal union in
  let total_stmts = Prog.app_stmt_count prog in
  Log.info (fun m ->
      m "slicing: %d demarcation points, %d/%d statements in slices"
        (List.length dps) slice_stmts total_stmts);
  {
    r_dps = dps;
    r_request = request;
    r_response = response;
    r_stats = { st_total_stmts = total_stmts; st_slice_stmts = slice_stmts };
  }

(** Fraction of application code covered by the slices (Figure 3 reports
    6.3 % for Diode). *)
let slice_fraction (r : result) =
  if r.r_stats.st_total_stmts = 0 then 0.0
  else float_of_int r.r_stats.st_slice_stmts /. float_of_int r.r_stats.st_total_stmts
