(* Exporters.  JSON is emitted by hand: the telemetry layer sits below
   every other library in the dependency graph, so it cannot reuse
   lib/httpmodel's JSON values. *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no infinity; histogram overflow bounds print as a string.
   Finite values print at the shortest precision that round-trips, so
   microsecond timestamps near 1e15 keep their low digits. *)
let buf_add_json_float buf f =
  if Float.is_integer f && Float.abs f < 1e18 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then begin
    let short = Printf.sprintf "%.12g" f in
    Buffer.add_string buf
      (if float_of_string short = f then short else Printf.sprintf "%.17g" f)
  end
  else buf_add_json_string buf (if f > 0.0 then "+inf" else "-inf")

let buf_add_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, add_v) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      add_v buf)
    fields;
  Buffer.add_char buf '}'

let str s buf = buf_add_json_string buf s
let num f buf = buf_add_json_float buf f
let int n buf = Buffer.add_string buf (string_of_int n)

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                *)
(* ------------------------------------------------------------------ *)

let us f = Float.round (f *. 1e6)

let buf_add_span_event buf ~pid ~tid ~epoch (sp : Span.span) =
  let args =
    List.map (fun (k, v) -> (k, str v)) sp.Span.sp_args
    @ [
        ("alloc_words", num sp.Span.sp_alloc_words);
        ("major_collections", int sp.Span.sp_major_collections);
        ("depth", int sp.Span.sp_depth);
      ]
  in
  buf_add_fields buf
    [
      ("name", str sp.Span.sp_name);
      ("ph", str "X");
      ("ts", num (us (sp.Span.sp_begin_s -. epoch)));
      ("dur", num (us (Span.duration_s sp)));
      ("pid", int pid);
      ("tid", int tid);
      ("args", fun buf -> buf_add_fields buf args);
    ]

(* The common epoch every lane is rebased against: the earliest span
   begin across the whole fleet, so coordinator and worker lanes line up
   on one time axis (fork shares the clock domain, and the injectable
   test clocks are shared the same way). *)
let lanes_epoch lanes =
  let epoch =
    List.fold_left
      (fun acc (_, _, spans) ->
        List.fold_left
          (fun acc (sp : Span.span) -> Float.min acc sp.Span.sp_begin_s)
          acc spans)
      infinity lanes
  in
  if Float.is_finite epoch then epoch else 0.0

let chrome_trace_lanes ?(pid = 1) lanes : string =
  let epoch = lanes_epoch lanes in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun (label, tid, spans) ->
      (* One thread_name metadata record per lane, then the lane's spans
         in begin order — shipped batches arrive in completion order, so
         re-sort here to keep per-lane timestamps monotonic. *)
      sep ();
      buf_add_fields buf
        [
          ("name", str "thread_name");
          ("ph", str "M");
          ("pid", int pid);
          ("tid", int tid);
          ("args", fun buf -> buf_add_fields buf [ ("name", str label) ]);
        ];
      let spans =
        List.stable_sort
          (fun (a : Span.span) (b : Span.span) ->
            match compare a.Span.sp_begin_s b.Span.sp_begin_s with
            | 0 -> compare a.Span.sp_seq b.Span.sp_seq
            | c -> c)
          spans
      in
      List.iter
        (fun sp ->
          sep ();
          buf_add_span_event buf ~pid ~tid ~epoch sp)
        spans)
    lanes;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let chrome_trace ?(pid = 1) (spans : Span.span list) : string =
  (* Rebase timestamps to the first span so [ts] stays small; absolute
     epoch microseconds push viewers into float-precision trouble. *)
  let epoch = lanes_epoch [ ("", 1, spans) ] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (sp : Span.span) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_span_event buf ~pid ~tid:1 ~epoch sp)
    spans;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* Atomic write: a crash mid-export must never leave a truncated file
   behind.  Write to a temp file in the destination directory (rename is
   only atomic within one filesystem), then rename over the target.

   The temp name carries the pid and a per-process counter rather than
   going through [Filename.temp_file]: forked worker processes inherit
   the stdlib's temp-name PRNG state, so siblings writing into a shared
   cache directory would draw identical name sequences and race on the
   same temp file.  Pid alone is not enough once shards share an
   artifact directory across machines (or a pid is reused after a
   respawn), so each name also carries a random suffix drawn from
   /dev/urandom-seeded state private to this module. *)
let temp_counter = ref 0

let temp_rng =
  (* Seeded independently of the stdlib's default generator so forked
     workers and [Filename.temp_file] users never share a sequence. *)
  lazy
    (Random.State.make
       [|
         Unix.getpid ();
         int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF;
         Hashtbl.hash (Unix.gethostname ());
       |])

(* Injectable write fault (installed by the resilience layer's fault
   plan, which lives above this library): consulted once per write with
   the destination path; the returned mode selects the failure.  The
   default hook injects nothing. *)
let write_fault : (string -> string option) ref = ref (fun _ -> None)
let set_write_fault f = write_fault := f

exception Orphaned_temp of string

let write_file path contents =
  let dir = Filename.dirname path in
  incr temp_counter;
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.%d.%d.%06x.tmp" (Filename.basename path)
         (Unix.getpid ()) !temp_counter
         (Random.State.int (Lazy.force temp_rng) 0x1000000))
  in
  let fault = !write_fault path in
  (try
     Out_channel.with_open_text tmp (fun oc ->
         match fault with
         | Some "enospc" ->
             (* A partial write followed by the errno a full disk
                raises; the cleanup below removes the temp, exactly as
                on a real ENOSPC. *)
             Out_channel.output_string oc
               (String.sub contents 0 (String.length contents / 2));
             raise (Sys_error (path ^ ": No space left on device (injected)"))
         | Some "orphan" ->
             (* Simulate SIGKILL mid-write: the temp file survives
                because the process never reached its cleanup — the
                shape the startup sweep exists for. *)
             Out_channel.output_string oc
               (String.sub contents 0 (String.length contents / 2));
             raise (Orphaned_temp tmp)
         | Some "short" ->
             (* A filesystem that lied about durability: the write
                "succeeds" but the renamed target is truncated.
                Downstream integrity checks must catch it. *)
             Out_channel.output_string oc
               (String.sub contents 0 (String.length contents / 2))
         | _ -> Out_channel.output_string oc contents)
   with
  | Orphaned_temp _ ->
      raise (Sys_error (path ^ ": writer killed mid-write (injected)"))
  | e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* Temp-file garbage collection: a process SIGKILLed between writing its
   temp and renaming it leaves an orphan behind (the atomicity contract
   above trades a possible orphan for never leaving a torn target).
   Orphans match the name shape written above and are only ever interim
   files, so any that have outlived a generous age are dead writers'
   leftovers, safe to unlink.  The age floor protects concurrent live
   writers in a shared artifact directory: their temps exist for
   milliseconds. *)
let is_temp_name name =
  String.length name > 5
  && name.[0] = '.'
  && Filename.check_suffix name ".tmp"

let sweep_temps ?(max_age_s = 3600.) ~dir () =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun swept name ->
          if not (is_temp_name name) then swept
          else
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> swept
            | st ->
                if
                  st.Unix.st_kind = Unix.S_REG
                  && now -. st.Unix.st_mtime > max_age_s
                then (
                  match Sys.remove path with
                  | () -> swept + 1
                  | exception Sys_error _ -> swept)
                else swept)
        0 names

let write_chrome_trace ?pid path tracer =
  write_file path (chrome_trace ?pid (Span.spans tracer))

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                   *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let metrics_json (registry : Metrics.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i (s : Metrics.sample) ->
      if i > 0 then Buffer.add_char buf ',';
      let fields =
        [
          ("name", str s.Metrics.sa_name);
          ("kind", str (kind_name s.Metrics.sa_kind));
          ( "labels",
            fun buf ->
              buf_add_fields buf
                (List.map (fun (k, v) -> (k, str v)) s.Metrics.sa_labels) );
          ("count", int s.Metrics.sa_count);
          ("sum", num s.Metrics.sa_sum);
        ]
        @
        match s.Metrics.sa_buckets with
        | [] -> []
        | buckets ->
            [
              ( "buckets",
                fun buf ->
                  Buffer.add_char buf '[';
                  List.iteri
                    (fun j (bound, count) ->
                      if j > 0 then Buffer.add_char buf ',';
                      buf_add_fields buf [ ("le", num bound); ("n", int count) ])
                    buckets;
                  Buffer.add_char buf ']' );
            ]
            (* Percentile summaries alongside the raw buckets, so offline
               consumers (extractocol stats, the bench JSON) don't have
               to re-derive the estimate. *)
            @ List.filter_map
                (fun (name, q) ->
                  Option.map
                    (fun v -> (name, num v))
                    (Metrics.percentile s q))
                [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ]
      in
      buf_add_fields buf fields)
    (Metrics.snapshot registry);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_metrics path registry = write_file path (metrics_json registry)

(* ------------------------------------------------------------------ *)
(* Collapsed stacks (flamegraph folded format)                        *)
(* ------------------------------------------------------------------ *)

(* One line per distinct stack: frames root-first joined by ';', a
   space, then the sample weight — self time in integer microseconds,
   so flamegraph.pl / speedscope render the span tree directly.  Lanes
   are folded independently (each is its own properly-nested recording)
   and merged by summing; lines are sorted so the output is
   deterministic under any lane order. *)
let folded_lanes (lanes : Span.span list list) : string =
  let weights : (string, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun spans ->
      List.iter
        (fun (path, _, self_s) ->
          let key = String.concat ";" path in
          Hashtbl.replace weights key
            (Float.max 0.0 (self_s *. 1e6)
            +. Option.value ~default:0.0 (Hashtbl.find_opt weights key)))
        (Span.stacked spans))
    lanes;
  let lines =
    Hashtbl.fold
      (fun stack w acc -> Printf.sprintf "%s %.0f" stack w :: acc)
      weights []
  in
  String.concat "\n" (List.sort compare lines) ^ "\n"

let folded spans = folded_lanes [ spans ]

(* ------------------------------------------------------------------ *)
(* Per-method profile                                                 *)
(* ------------------------------------------------------------------ *)

(* Cumulative and self seconds per span name, summed over every
   occurrence in every lane — the per-phase envelope the per-method
   attribution must stay inside. *)
let phase_rollup (lanes : Span.span list list) : (string * float * float) list =
  let tbl : (string, float * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun spans ->
      List.iter
        (fun (_, (sp : Span.span), self_s) ->
          let cum, self =
            Option.value ~default:(0.0, 0.0)
              (Hashtbl.find_opt tbl sp.Span.sp_name)
          in
          Hashtbl.replace tbl sp.Span.sp_name
            (cum +. Span.duration_s sp, self +. self_s))
        (Span.stacked spans))
    lanes;
  Hashtbl.fold (fun name (cum, self) acc -> (name, cum, self) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let profile_json ?(phases = []) (profile : Profile.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"profile\":[";
  List.iteri
    (fun i (e : Profile.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_fields buf
        [
          ("method", str e.Profile.e_meth);
          ("phase", str e.Profile.e_phase);
          ("time_s", num e.Profile.e_time_s);
          ("fuel", int e.Profile.e_fuel);
          ("visits", int e.Profile.e_visits);
          ("facts", int e.Profile.e_facts);
        ])
    (Profile.entries profile);
  Buffer.add_string buf "],\"waste\":[";
  List.iteri
    (fun i (w : Profile.waste) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_fields buf
        [
          ("scope", str w.Profile.w_scope);
          ("touched_methods", int w.Profile.w_touched);
          ("contributing_methods", int w.Profile.w_contributing);
          ("waste_ratio", num (Profile.waste_ratio w));
        ])
    (Profile.wastes profile);
  Buffer.add_string buf "],\"phases\":[";
  List.iteri
    (fun i (name, cum_s, self_s) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_fields buf
        [ ("phase", str name); ("cum_s", num cum_s); ("self_s", num self_s) ])
    phases;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* The --hotspots table: top-K (method, phase) rows by attributed time;
   the cum column is the method's total across all phases, so a method
   split between the slicer and the interpreter still reads as one hot
   method. *)
let pp_hotspots ?(k = 20) fmt (profile : Profile.t) =
  let entries = Profile.entries profile in
  let method_total : (string, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Profile.entry) ->
      Hashtbl.replace method_total e.Profile.e_meth
        (e.Profile.e_time_s
        +. Option.value ~default:0.0
             (Hashtbl.find_opt method_total e.Profile.e_meth)))
    entries;
  let top =
    List.stable_sort
      (fun (a : Profile.entry) (b : Profile.entry) ->
        compare b.Profile.e_time_s a.Profile.e_time_s)
      entries
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Fmt.pf fmt "%-52s %-20s %10s %10s %10s %10s %8s@\n" "method" "phase"
    "self (ms)" "cum (ms)" "fuel" "visits" "facts";
  List.iter
    (fun (e : Profile.entry) ->
      Fmt.pf fmt "%-52s %-20s %10.3f %10.3f %10d %10d %8d@\n" e.Profile.e_meth
        e.Profile.e_phase
        (1e3 *. e.Profile.e_time_s)
        (1e3
        *. Option.value ~default:0.0
             (Hashtbl.find_opt method_total e.Profile.e_meth))
        e.Profile.e_fuel e.Profile.e_visits e.Profile.e_facts)
    (take k top);
  List.iter
    (fun (w : Profile.waste) ->
      Fmt.pf fmt "waste[%s]: %d methods touched, %d contributing, ratio %.3f@\n"
        w.Profile.w_scope w.Profile.w_touched w.Profile.w_contributing
        (Profile.waste_ratio w))
    (Profile.wastes profile)

(* ------------------------------------------------------------------ *)
(* Profile table                                                      *)
(* ------------------------------------------------------------------ *)

let pp_profile fmt tracer =
  let spans = Span.spans tracer in
  Fmt.pf fmt "%-40s %12s %14s %7s@\n" "span" "wall (ms)" "alloc (words)" "majgc";
  List.iter
    (fun (sp : Span.span) ->
      let indent = String.make (2 * sp.Span.sp_depth) ' ' in
      Fmt.pf fmt "%-40s %12.3f %14.0f %7d@\n"
        (indent ^ sp.Span.sp_name)
        (1e3 *. Span.duration_s sp)
        sp.Span.sp_alloc_words sp.Span.sp_major_collections)
    spans
