(** Exporters: Chrome trace-event JSON (loadable in Perfetto or
    chrome://tracing), a flat JSON metrics snapshot, and an Fmt-rendered
    profile table. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes atomically: contents go to a temp
    file in [path]'s directory which is then renamed over [path].

    The atomicity contract: readers of [path] see either the previous
    complete contents or the new complete contents, never a prefix — a
    crash mid-export leaves at most an orphaned [.*.tmp] file, never a
    truncated [path].  The temp file lives in [path]'s own directory
    because rename is only atomic within one filesystem.  Temp names
    carry the pid, a per-process counter {e and} a random suffix, so
    concurrent writers never collide even when they are forked workers
    (which inherit the stdlib temp-name PRNG state), distinct shard
    processes on different machines sharing one artifact directory, or
    a pid reused after a respawn.  Used by every exporter here, by the
    provenance export, and by the result cache and merge outputs. *)

val set_write_fault : (string -> string option) -> unit
(** Install the write-fault hook ({!Extr_resilience.Fault} arms it; this
    library sits below the fault plan, so injection reaches it by
    inversion).  The hook is consulted once per {!write_file} with the
    destination path; returning [Some mode] injects: ["enospc"] (partial
    temp write, then [Sys_error], temp cleaned up), ["orphan"] (partial
    temp write, then [Sys_error] {e without} cleanup — a simulated
    SIGKILL mid-write), ["short"] (the write "succeeds" but the renamed
    target is truncated to half the contents).  Unknown modes write
    normally. *)

val sweep_temps : ?max_age_s:float -> dir:string -> unit -> int
(** Remove orphaned {!write_file} temp files ([.*.tmp]) in [dir] older
    than [max_age_s] (default one hour — far beyond any live writer's
    temp lifetime, so concurrent shards sharing the directory are never
    disturbed), returning how many were removed.  A missing or
    unreadable directory sweeps nothing.  Run by the result cache on
    open, i.e. on runner and merge startup. *)

val chrome_trace : ?pid:int -> Span.span list -> string
(** The spans as a [{"traceEvents": [...]}] document of complete ("X")
    events; timestamps and durations in microseconds, GC deltas in each
    event's [args]. *)

val chrome_trace_lanes : ?pid:int -> (string * int * Span.span list) list -> string
(** [chrome_trace_lanes lanes] merges several processes' spans into one
    Chrome trace: each [(label, tid, spans)] lane becomes a named thread
    (a [thread_name] metadata record followed by the lane's spans, which
    are re-sorted by begin time so per-lane timestamps are monotonic).
    All lanes share one epoch — the earliest span begin across the fleet
    — so a coordinator lane and the worker lanes shipped back over the
    pool pipe line up on a single time axis. *)

val write_chrome_trace : ?pid:int -> string -> Span.t -> unit
(** Write {!chrome_trace} of the tracer's completed spans to a file. *)

val metrics_json : Metrics.t -> string
(** The registry snapshot as a flat JSON document:
    [{"metrics": [{"name", "kind", "labels", "count", "sum", "buckets"?,
    "p50"?, "p95"?, "p99"?}]}] — histogram series additionally carry
    {!Metrics.percentile} summaries alongside the raw buckets. *)

val write_metrics : string -> Metrics.t -> unit

val folded : Span.span list -> string
(** The spans as collapsed stacks (the flamegraph.pl / speedscope
    "folded" format): one line per distinct stack — frames root-first
    joined by [';'], a space, and the stack's summed {e self} time in
    integer microseconds.  Lines are sorted, so equal recordings fold
    to byte-identical output. *)

val folded_lanes : Span.span list list -> string
(** {!folded} over several independent recordings (coordinator + worker
    lanes): each lane folds on its own nesting, equal stacks merge by
    summing. *)

val phase_rollup : Span.span list list -> (string * float * float) list
(** Per-span-name [(name, cumulative_s, self_s)] totals across all
    lanes, sorted by name — the per-phase envelope a per-method
    attribution must sum inside. *)

val profile_json : ?phases:(string * float * float) list -> Profile.t -> string
(** The profiler table as JSON:
    [{"profile": [{"method", "phase", "time_s", "fuel", "visits",
    "facts"}], "waste": [{"scope", "touched_methods",
    "contributing_methods", "waste_ratio"}], "phases": [{"phase",
    "cum_s", "self_s"}]}] — [phases] is typically {!phase_rollup} of the
    run's span lanes. *)

val pp_hotspots : ?k:int -> Format.formatter -> Profile.t -> unit
(** Top-[k] hot-method table (method, phase, self/cumulative time,
    fuel, visits, facts) followed by one waste line per recorded
    scope. *)

val pp_profile : Format.formatter -> Span.t -> unit
(** Per-span profile table: duration, allocation and major-GC deltas,
    indented by nesting depth, in begin order. *)
