(** Per-method cost profiler: an enabled-gated accumulator keyed by
    (phase, method id) counting wall time (through the injectable
    {!Clock.t}), budget fuel spent, worklist visits / statements
    processed, and facts produced.

    The hot-loop API is the {!cursor}: the worklist engines tell it which
    method every popped item belongs to, and the cursor charges the wall
    time between switches to the method the engine was working on — one
    clock read per method {e switch}, not per iteration.  Disabled
    recording costs a single [enabled] check, like provenance. *)

type t

val create : ?clock:Clock.t -> ?enabled:bool -> unit -> t
(** A fresh profiler (default: wall clock, disabled). *)

val default : t
(** The process-wide profiler the pipeline instrumentation uses. *)

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

val reset : t -> unit
(** Drop all accumulated slots, waste records and run marks. *)

(** {1 Hot-loop cursors} *)

type 'k cursor
(** A phase-bound attribution point.  ['k] is the caller's method-id
    type; it is only rendered to a string when the cursor switches
    methods, so per-iteration calls never allocate. *)

val cursor :
  ?profile:t -> phase:string -> render:('k -> string) -> unit -> 'k cursor
(** A cursor charging work to [phase] rows of [profile] (default:
    {!default}).  Create one per engine run and {!close} it when the
    loop exits. *)

val visit : 'k cursor -> 'k -> unit
(** The engine is now working on method [k]: counts one visit and, when
    [k] differs from the previous visit, flushes the elapsed wall time
    to the previous method. *)

val spend : 'k cursor -> int -> unit
(** Charge [n] budget-fuel steps to the method last visited. *)

val add_facts : 'k cursor -> int -> unit
(** Charge [n] produced facts to the method last visited. *)

val close : 'k cursor -> unit
(** Flush the outstanding elapsed time and detach the cursor.  The
    cursor may be reused (the next {!visit} restarts timing). *)

(** {1 Run marks and waste records} *)

val mark : t -> int
(** Start a new touched-generation and return it: slots a cursor lands
    on from now on are stamped with it, so a run can ask afterwards
    which methods it touched even though the table accumulates across a
    whole corpus run. *)

val methods_since : t -> int -> string list
(** Distinct (sorted) method ids touched since the given {!mark}. *)

type waste = {
  w_scope : string;  (** the app the run analyzed *)
  w_touched : int;  (** distinct methods the engines worked on *)
  w_contributing : int;
      (** of those, methods whose statements back a transaction in the
          final report *)
}

val record_waste : t -> scope:string -> touched:int -> contributing:int -> unit
(** Record one run's touched-vs-contributing join (no-op when
    disabled). *)

val wastes : t -> waste list
(** All recorded waste rows, stable-sorted by scope so merged worker
    deltas render identically regardless of completion order. *)

val waste_ratio : waste -> float
(** [(touched - contributing) / touched], 0 when nothing was touched —
    the fraction of analyzed methods that never contributed to any
    reported transaction. *)

(** {1 Snapshots} *)

type entry = {
  e_phase : string;
  e_meth : string;
  e_time_s : float;
  e_fuel : int;
  e_visits : int;
  e_facts : int;
}

type snapshot = { sn_entries : entry list; sn_wastes : waste list }

val entries : t -> entry list
(** The accumulated table, sorted by (phase, method). *)

val snapshot : t -> snapshot
(** {!entries} plus {!wastes} — marshalable, for shipping worker deltas
    over the pool pipe. *)

val merge : t -> snapshot -> unit
(** Fold a shipped delta into the table: counts and times add, waste
    rows append.  Addition is commutative, so merging in any arrival
    order yields identical counts — the basis of the [--jobs N] ==
    [--jobs 1] aggregation guarantee (times are summed, never
    compared). *)
