(** Hierarchical wall-clock spans with GC deltas.

    A tracer records one {!span} per [with_span] call: begin/end
    timestamps from its injectable {!Clock.t}, the nesting depth, and the
    allocation (minor+major words) and major-collection deltas across the
    span.  Disabled tracers run the thunk directly — the cost is a single
    [enabled] check. *)

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_begin_s : float;
  sp_end_s : float;
  sp_depth : int;  (** 0 = root *)
  sp_seq : int;  (** begin order, 0-based *)
  sp_alloc_words : float;  (** minor+major words allocated in the span *)
  sp_major_collections : int;
}

type t

val create : ?clock:Clock.t -> ?enabled:bool -> unit -> t
(** A fresh tracer (default: wall clock, disabled). *)

val default : t
(** The process-wide tracer the pipeline instrumentation uses. *)

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

val clock : t -> Clock.t
(** The tracer's time source (for non-span elapsed measurements that must
    stay consistent with the trace). *)

val reset : t -> unit
(** Drop recorded spans and restart the sequence counter. *)

val with_span : ?tracer:t -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a span (default tracer: {!default}).  The span is
    recorded even when the thunk raises. *)

val spans : t -> span list
(** Completed spans in begin order. *)

val duration_s : span -> float

val find : t -> string -> span option
(** First completed span with the given name. *)

val stacked : span list -> (string list * span * float) list
(** The spans with their nesting reconstructed, in begin order: each
    span's root-first ancestor path (ending in the span's own name) and
    its {e self} time — duration minus the summed durations of its
    direct children, so for any span self + children == cumulative.
    Input is a complete, properly-nested recording (what {!spans}
    returns). *)

val self_s : span list -> span -> float
(** The span's self time within the given recording ([duration_s] if
    the span is not part of it). *)
