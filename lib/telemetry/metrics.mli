(** Global registry of named counters, gauges and latency histograms with
    label support (e.g. [slicer.slice_stmts{kind="request"}]).

    Instruments register handles once at module initialization; the hot
    path ([incr] / [set] / [observe]) checks a single [enabled] flag and
    is a no-op when telemetry is off, so disabled instrumentation adds no
    observable overhead. *)

type t
(** A metrics registry. *)

type labels = (string * string) list

val create : ?enabled:bool -> unit -> t
(** A fresh registry (default: disabled). *)

val default : t
(** The process-wide registry all built-in instrumentation uses. *)

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

val reset : t -> unit
(** Drop every recorded series (registered metric names survive). *)

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : ?registry:t -> ?help:string -> string -> counter
(** Register (or look up) a monotone counter by name. *)

val incr : ?labels:labels -> ?by:int -> counter -> unit

val gauge : ?registry:t -> ?help:string -> string -> gauge
(** Register (or look up) a last-value-wins gauge. *)

val set : ?labels:labels -> gauge -> float -> unit

val histogram : ?registry:t -> ?help:string -> ?buckets:float list -> string -> histogram
(** Register (or look up) a histogram with the given upper bucket bounds
    (default: a 1–100k logarithmic ladder suitable for sizes and for
    latencies expressed in microseconds). *)

val observe : ?labels:labels -> histogram -> float -> unit

(** {1 Snapshots} *)

type sample = {
  sa_name : string;
  sa_kind : [ `Counter | `Gauge | `Histogram ];
  sa_help : string;
  sa_labels : labels;
  sa_count : int;  (** counter value / number of observations *)
  sa_sum : float;  (** gauge value / sum of observations *)
  sa_buckets : (float * int) list;  (** cumulative; histograms only *)
}

val snapshot : t -> sample list
(** Every recorded series, sorted by name then labels. *)

val merge_samples : t -> sample list -> unit
(** [merge_samples t samples] folds a snapshot taken in another registry
    — typically a forked worker process reporting back over a pipe —
    into [t].  Counter counts and sums add; gauges merge by {e labelled
    max} (commutative, so the merged value does not depend on worker
    arrival order — gauges that must stay distinct carry a
    distinguishing label); histogram buckets are decumulated from the
    snapshot's cumulative counts and added slot-wise.  Unknown metrics
    are registered on the fly.  Merging bypasses {!is_enabled}: the
    samples were already recorded under the worker's own flag. *)

val percentile : sample -> float -> float option
(** [percentile s q] estimates the [q]-th percentile (0–100) of a
    histogram sample from its cumulative bucket counts, interpolating
    linearly inside the bucket the rank falls in (the
    [histogram_quantile] estimate).  Ranks landing in the overflow
    bucket report the largest finite bound.  [None] for non-histograms
    and empty series. *)

val find : ?labels:labels -> t -> string -> sample option
(** The series with exactly the given name and labels, if recorded. *)

val value : ?labels:labels -> t -> string -> float
(** Convenience: the counter value / gauge value / observation sum of a
    series, or 0 if absent. *)

val pp_summary : Format.formatter -> t -> unit
(** Fmt-rendered table of every series in the registry. *)
