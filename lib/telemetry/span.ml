(* Hierarchical spans: a stack-shaped recorder around thunks.  GC deltas
   come from [Gc.minor_words] and [Gc.quick_stat], which read counters
   without walking the heap, so an enabled span costs two clock reads
   and two stat reads. *)

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_begin_s : float;
  sp_end_s : float;
  sp_depth : int;
  sp_seq : int;
  sp_alloc_words : float;
  sp_major_collections : int;
}

type t = {
  mutable enabled : bool;
  t_clock : Clock.t;
  mutable depth : int;
  mutable seq : int;
  mutable completed : span list;  (* reverse completion order *)
}

let create ?(clock = Clock.wall) ?(enabled = false) () =
  { enabled; t_clock = clock; depth = 0; seq = 0; completed = [] }

let default = create ()
let set_enabled t b = t.enabled <- b
let is_enabled t = t.enabled
let clock t = t.t_clock

let reset t =
  t.depth <- 0;
  t.seq <- 0;
  t.completed <- []

(* [Gc.quick_stat]'s word counters only advance at collections; the
   [Gc.minor_words] primitive also counts words sitting in the current
   minor heap, so short spans don't read as zero allocation. *)
let alloc_words minor (st : Gc.stat) =
  minor +. st.Gc.major_words -. st.Gc.promoted_words

let with_span ?(tracer = default) ?(args = []) name f =
  if not tracer.enabled then f ()
  else begin
    let seq = tracer.seq in
    tracer.seq <- seq + 1;
    let depth = tracer.depth in
    tracer.depth <- depth + 1;
    let gc0 = Gc.quick_stat () in
    let m0 = Gc.minor_words () in
    let t0 = tracer.t_clock () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = tracer.t_clock () in
        let m1 = Gc.minor_words () in
        let gc1 = Gc.quick_stat () in
        tracer.depth <- depth;
        tracer.completed <-
          {
            sp_name = name;
            sp_args = args;
            sp_begin_s = t0;
            sp_end_s = t1;
            sp_depth = depth;
            sp_seq = seq;
            sp_alloc_words = alloc_words m1 gc1 -. alloc_words m0 gc0;
            sp_major_collections =
              gc1.Gc.major_collections - gc0.Gc.major_collections;
          }
          :: tracer.completed)
      f
  end

let spans t =
  List.sort (fun a b -> compare a.sp_seq b.sp_seq) (List.rev t.completed)

let duration_s sp = sp.sp_end_s -. sp.sp_begin_s

let find t name = List.find_opt (fun sp -> sp.sp_name = name) (spans t)

(* Reconstruct the nesting tree from the flat completed-span list.
   [with_span] records depth and begin order (seq), and spans nest
   properly, so walking in begin order with an ancestor stack recovers
   every span's path: a new span at depth d pops everything at depth
   >= d — whatever remains at depths 0..d-1 is exactly its open
   ancestor chain.  Self time is the span's duration minus its direct
   children's durations. *)
let stacked (spans : span list) =
  let spans = List.sort (fun a b -> compare a.sp_seq b.sp_seq) spans in
  let child_sum : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  (* First pass: record each span's ancestor path and charge its
     duration to its direct parent. *)
  let paths =
    List.map
      (fun sp ->
        stack := List.filter (fun s -> s.sp_depth < sp.sp_depth) !stack;
        (match !stack with
        | parent :: _ ->
            Hashtbl.replace child_sum parent.sp_seq
              (duration_s sp
              +. Option.value ~default:0.0
                   (Hashtbl.find_opt child_sum parent.sp_seq))
        | [] -> ());
        (* The stack is innermost-first; the path is root-first. *)
        let path = List.rev_map (fun s -> s.sp_name) !stack @ [ sp.sp_name ] in
        stack := sp :: !stack;
        (path, sp))
      spans
  in
  (* Second pass: child sums are complete only once every span has been
     visited, so self time resolves here. *)
  List.map
    (fun (path, sp) ->
      let children =
        Option.value ~default:0.0 (Hashtbl.find_opt child_sum sp.sp_seq)
      in
      (path, sp, duration_s sp -. children))
    paths

let self_s spans sp =
  match
    List.find_opt (fun (_, sp', _) -> sp'.sp_seq = sp.sp_seq) (stacked spans)
  with
  | Some (_, _, self) -> self
  | None -> duration_s sp
