(* Named counters, gauges and histograms with labels.  Handles capture
   their registry; every mutation first reads one mutable [enabled] bool,
   which is the whole disabled-path cost. *)

type labels = (string * string) list

type kind = [ `Counter | `Gauge | `Histogram ]

type series = {
  se_labels : labels;
  mutable se_count : int;
  mutable se_sum : float;
  se_bucket_counts : int array;  (* one slot per bound, +1 for overflow *)
}

type metric = {
  m_name : string;
  m_kind : kind;
  m_help : string;
  m_buckets : float array;
  m_series : (string, series) Hashtbl.t;  (* rendered label key -> series *)
}

type t = {
  mutable enabled : bool;
  metrics : (string, metric) Hashtbl.t;
}

type counter = metric * t
type gauge = metric * t
type histogram = metric * t

let create ?(enabled = false) () = { enabled; metrics = Hashtbl.create 32 }
let default = create ()
let set_enabled t b = t.enabled <- b
let is_enabled t = t.enabled

let reset t =
  Hashtbl.iter (fun _ m -> Hashtbl.reset m.m_series) t.metrics

(* The default ladder covers sizes (statements, facts) and latencies in
   microseconds without per-metric tuning. *)
let default_buckets =
  [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.;
    10_000.; 20_000.; 50_000.; 100_000. ]

let register t name kind help buckets : metric =
  match Hashtbl.find_opt t.metrics name with
  | Some m when m.m_kind = kind -> m
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics: %s re-registered with a different kind" name)
  | None ->
      let m =
        {
          m_name = name;
          m_kind = kind;
          m_help = help;
          m_buckets = Array.of_list (List.sort_uniq compare buckets);
          m_series = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.metrics name m;
      m

let counter ?(registry = default) ?(help = "") name : counter =
  (register registry name `Counter help [], registry)

let gauge ?(registry = default) ?(help = "") name : gauge =
  (register registry name `Gauge help [], registry)

let histogram ?(registry = default) ?(help = "") ?(buckets = default_buckets)
    name : histogram =
  (register registry name `Histogram help buckets, registry)

let label_key (labels : labels) =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let series_of m labels =
  let labels = List.sort compare labels in
  let key = label_key labels in
  match Hashtbl.find_opt m.m_series key with
  | Some s -> s
  | None ->
      let s =
        {
          se_labels = labels;
          se_count = 0;
          se_sum = 0.0;
          se_bucket_counts = Array.make (Array.length m.m_buckets + 1) 0;
        }
      in
      Hashtbl.replace m.m_series key s;
      s

let incr ?(labels = []) ?(by = 1) ((m, t) : counter) =
  if t.enabled then begin
    let s = series_of m labels in
    s.se_count <- s.se_count + by;
    s.se_sum <- s.se_sum +. float_of_int by
  end

let set ?(labels = []) ((m, t) : gauge) v =
  if t.enabled then begin
    let s = series_of m labels in
    s.se_count <- s.se_count + 1;
    s.se_sum <- v
  end

let bucket_index buckets v =
  let n = Array.length buckets in
  let rec find i = if i >= n || v <= buckets.(i) then i else find (i + 1) in
  find 0

let observe ?(labels = []) ((m, t) : histogram) v =
  if t.enabled then begin
    let s = series_of m labels in
    s.se_count <- s.se_count + 1;
    s.se_sum <- s.se_sum +. v;
    let i = bucket_index m.m_buckets v in
    s.se_bucket_counts.(i) <- s.se_bucket_counts.(i) + 1
  end

type sample = {
  sa_name : string;
  sa_kind : kind;
  sa_help : string;
  sa_labels : labels;
  sa_count : int;
  sa_sum : float;
  sa_buckets : (float * int) list;
}

let sample_of m (s : series) =
  let buckets =
    match m.m_kind with
    | `Histogram ->
        (* Cumulative counts, Prometheus-style; the overflow slot is +inf. *)
        let acc = ref 0 in
        let le =
          Array.to_list
            (Array.mapi
               (fun i bound ->
                 acc := !acc + s.se_bucket_counts.(i);
                 (bound, !acc))
               m.m_buckets)
        in
        le @ [ (infinity, s.se_count) ]
    | `Counter | `Gauge -> []
  in
  {
    sa_name = m.m_name;
    sa_kind = m.m_kind;
    sa_help = m.m_help;
    sa_labels = s.se_labels;
    sa_count = s.se_count;
    sa_sum = s.se_sum;
    sa_buckets = buckets;
  }

let snapshot t : sample list =
  Hashtbl.fold
    (fun _ m acc ->
      Hashtbl.fold (fun _ s acc -> sample_of m s :: acc) m.m_series acc)
    t.metrics []
  |> List.sort (fun a b ->
         match compare a.sa_name b.sa_name with
         | 0 -> compare a.sa_labels b.sa_labels
         | c -> c)

(* Fold a snapshot taken in another registry (typically a forked worker
   process) into [t].  Registration is by name, so a metric the samples
   mention that [t] has never seen is registered on the fly with the
   sample's own bucket bounds.  Merging bypasses the [enabled] flag:
   the samples were recorded under the worker's flag, and dropping them
   here would silently lose that work. *)
let merge_samples t (samples : sample list) =
  List.iter
    (fun s ->
      let bounds =
        List.filter_map
          (fun (b, _) -> if Float.is_finite b then Some b else None)
          s.sa_buckets
      in
      let m = register t s.sa_name s.sa_kind s.sa_help bounds in
      let sr = series_of m s.sa_labels in
      match s.sa_kind with
      | `Gauge ->
          (* Labelled max, not last-win: worker deltas arrive in pool
             completion order, which depends on scheduling — a gauge
             that kept the latest arrival would make the merged registry
             nondeterministic under --jobs N.  Max is commutative and
             associative, so any arrival order yields the same value.
             Gauges that must not be max-merged should carry a
             distinguishing label (the per-app gauges already do). *)
          if s.sa_count > 0 then
            sr.se_sum <-
              (if sr.se_count = 0 then s.sa_sum
               else Float.max sr.se_sum s.sa_sum);
          sr.se_count <- sr.se_count + s.sa_count
      | `Counter ->
          sr.se_count <- sr.se_count + s.sa_count;
          sr.se_sum <- sr.se_sum +. s.sa_sum
      | `Histogram ->
          sr.se_count <- sr.se_count + s.sa_count;
          sr.se_sum <- sr.se_sum +. s.sa_sum;
          (* Snapshots carry cumulative counts; decumulate back into the
             per-bound slots (the overflow slot is the +inf entry). *)
          let prev = ref 0 in
          List.iter
            (fun (bound, cum) ->
              let i =
                if Float.is_finite bound then bucket_index m.m_buckets bound
                else Array.length m.m_buckets
              in
              sr.se_bucket_counts.(i) <-
                sr.se_bucket_counts.(i) + (cum - !prev);
              prev := cum)
            s.sa_buckets)
    samples

(* Percentile estimation from the cumulative bucket counts, in the style
   of Prometheus' histogram_quantile: find the bucket the rank falls in
   and interpolate linearly inside it.  The overflow (+inf) bucket has
   no upper edge, so ranks landing there report the largest finite
   bound — a lower bound on the true percentile, clearly marked by
   being exactly a bucket edge. *)
let percentile (s : sample) q =
  if s.sa_kind <> `Histogram || s.sa_count = 0 || s.sa_buckets = [] then None
  else begin
    let q = Float.max 0.0 (Float.min 100.0 q) in
    let rank = q /. 100.0 *. float_of_int s.sa_count in
    let finite_max =
      List.fold_left
        (fun acc (b, _) -> if Float.is_finite b then Float.max acc b else acc)
        0.0 s.sa_buckets
    in
    let rec go lo_bound lo_cum = function
      | [] -> Some finite_max
      | (bound, cum) :: rest ->
          if float_of_int cum >= rank && cum > lo_cum then
            if Float.is_finite bound then
              (* Interpolate between this bucket's edges by the rank's
                 position among its occupants. *)
              let frac =
                (rank -. float_of_int lo_cum)
                /. float_of_int (cum - lo_cum)
              in
              Some (lo_bound +. ((bound -. lo_bound) *. Float.max 0.0 frac))
            else Some finite_max
          else go (if Float.is_finite bound then bound else lo_bound) cum rest
    in
    go 0.0 0 s.sa_buckets
  end

let find ?(labels = []) t name =
  let labels = List.sort compare labels in
  match Hashtbl.find_opt t.metrics name with
  | None -> None
  | Some m ->
      Option.map (sample_of m) (Hashtbl.find_opt m.m_series (label_key labels))

let value ?labels t name =
  match find ?labels t name with
  | Some { sa_kind = `Counter; sa_count; _ } -> float_of_int sa_count
  | Some s -> s.sa_sum
  | None -> 0.0

let pp_labels fmt = function
  | [] -> ()
  | ls ->
      Fmt.pf fmt "{%a}"
        (Fmt.list ~sep:Fmt.comma (fun fmt (k, v) -> Fmt.pf fmt "%s=%S" k v))
        ls

let pp_summary fmt t =
  let samples = snapshot t in
  Fmt.pf fmt "%-44s %10s %14s@\n" "metric" "count" "sum";
  List.iter
    (fun s ->
      Fmt.pf fmt "%-44s %10d %14.2f@\n"
        (Fmt.str "%s%a" s.sa_name pp_labels s.sa_labels)
        s.sa_count s.sa_sum)
    samples
