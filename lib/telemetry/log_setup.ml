let installed = ref false

let init ?(level = Logs.Warning) () =
  if not !installed then begin
    installed := true;
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ())
  end;
  Logs.set_level (Some level)
