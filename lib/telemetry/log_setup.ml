let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ())
  end

let init ?(level = Logs.Warning) () =
  install ();
  Logs.set_level (Some level)

let init_opt level =
  install ();
  Logs.set_level level

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "off" | "none" -> Ok None
  | "app" -> Ok (Some Logs.App)
  | "error" -> Ok (Some Logs.Error)
  | "warning" | "warn" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | other ->
      Error
        (Printf.sprintf
           "unknown log level %S (expected quiet, app, error, warning, info \
            or debug)"
           other)
