(** Shared [Logs] reporter installation for the binaries.  Without a
    reporter, [Logs] drops every message silently; each executable calls
    {!init} once at startup. *)

val init : ?level:Logs.level -> unit -> unit
(** Install a TTY-aware Fmt reporter on stderr and set the global level
    (default [Logs.Warning]).  Idempotent: later calls only adjust the
    level. *)
