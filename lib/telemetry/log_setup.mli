(** Shared [Logs] reporter installation for the binaries.  Without a
    reporter, [Logs] drops every message silently; each executable calls
    {!init} (or {!init_opt}) once at startup. *)

val init : ?level:Logs.level -> unit -> unit
(** Install a TTY-aware Fmt reporter on stderr and set the global level
    (default [Logs.Warning]).  Idempotent: later calls only adjust the
    level. *)

val init_opt : Logs.level option -> unit
(** Like {!init} but accepts [None] to silence logging entirely (the
    "quiet" level of [--log-level]). *)

val level_of_string : string -> (Logs.level option, string) result
(** Parse a [--log-level] argument: "quiet"/"off"/"none" mean no logging,
    otherwise one of "app", "error", "warning" (or "warn"), "info",
    "debug" (case-insensitive).  The error message names the input. *)
