(* Per-method cost accumulator.  The worklist engines and the abstract
   interpreter attribute their work to the method currently being
   processed, keyed by (phase, method); the table answers "which methods
   does the analysis burn time on" at a granularity the phase spans
   cannot.

   The hot-loop API is a {!cursor}: instead of a hashtable lookup and a
   clock read per worklist iteration, the cursor caches the slot of the
   method currently under the engine's hands and only flushes elapsed
   time when the method changes.  Iterations that stay inside one method
   — the overwhelmingly common case, since worklists drain per-statement
   — cost one enabled check, one key comparison and two integer writes.

   Disabled recording is a single [enabled] check, like provenance. *)

type slot = {
  mutable sl_time_s : float;  (* wall time attributed to the key *)
  mutable sl_fuel : int;  (* budget steps spent while on the key *)
  mutable sl_visits : int;  (* worklist visits / statements processed *)
  mutable sl_facts : int;  (* facts (or artifacts) produced on the key *)
  mutable sl_tick : int;  (* last {!mark} generation that touched it *)
}

type waste = {
  w_scope : string;  (* the app the run analyzed *)
  w_touched : int;  (* distinct methods the engines worked on *)
  w_contributing : int;  (* of those, methods behind a reported transaction *)
}

type t = {
  mutable enabled : bool;
  p_clock : Clock.t;
  slots : (string * string, slot) Hashtbl.t;  (* (phase, method) *)
  mutable tick : int;
  mutable wastes : waste list;  (* reverse record order *)
}

let create ?(clock = Clock.wall) ?(enabled = false) () =
  { enabled; p_clock = clock; slots = Hashtbl.create 256; tick = 0; wastes = [] }

let default = create ()
let set_enabled t b = t.enabled <- b
let is_enabled t = t.enabled

let reset t =
  Hashtbl.reset t.slots;
  t.tick <- 0;
  t.wastes <- []

let slot t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
      let s =
        { sl_time_s = 0.0; sl_fuel = 0; sl_visits = 0; sl_facts = 0; sl_tick = 0 }
      in
      Hashtbl.replace t.slots key s;
      s

(* ------------------------------------------------------------------ *)
(* Hot-loop cursors                                                   *)
(* ------------------------------------------------------------------ *)

type 'k cursor = {
  cu_t : t;
  cu_phase : string;
  cu_render : 'k -> string;
  mutable cu_key : 'k option;  (* the method time is currently charged to *)
  mutable cu_slot : slot option;  (* its slot (cached across iterations) *)
  mutable cu_since : float;  (* clock reading at the last switch *)
}

let cursor ?(profile = default) ~phase ~render () =
  { cu_t = profile; cu_phase = phase; cu_render = render; cu_key = None;
    cu_slot = None; cu_since = 0.0 }

(* Charge the elapsed wall time to the current slot and move the cursor
   onto [k].  Only called on method switches, so the render allocation
   and hashtable probe are per-switch, not per-iteration. *)
let switch c k =
  let now = c.cu_t.p_clock () in
  (match c.cu_slot with
  | Some s -> s.sl_time_s <- s.sl_time_s +. (now -. c.cu_since)
  | None -> ());
  let s = slot c.cu_t (c.cu_phase, c.cu_render k) in
  s.sl_tick <- c.cu_t.tick;
  c.cu_key <- Some k;
  c.cu_slot <- Some s;
  c.cu_since <- now

let visit c k =
  if c.cu_t.enabled then begin
    (match c.cu_key with Some k0 when k0 = k -> () | Some _ | None -> switch c k);
    match c.cu_slot with
    | Some s -> s.sl_visits <- s.sl_visits + 1
    | None -> ()
  end

let spend c n =
  if c.cu_t.enabled then
    match c.cu_slot with
    | Some s -> s.sl_fuel <- s.sl_fuel + n
    | None -> ()

let add_facts c n =
  if c.cu_t.enabled then
    match c.cu_slot with
    | Some s -> s.sl_facts <- s.sl_facts + n
    | None -> ()

let close c =
  if c.cu_t.enabled then begin
    (match c.cu_slot with
    | Some s ->
        let now = c.cu_t.p_clock () in
        s.sl_time_s <- s.sl_time_s +. (now -. c.cu_since)
    | None -> ());
    c.cu_key <- None;
    c.cu_slot <- None
  end

(* ------------------------------------------------------------------ *)
(* Run marks (per-run touched sets)                                   *)
(* ------------------------------------------------------------------ *)

(* The table accumulates across a whole --all run; a run marks the table
   before it starts and asks afterwards which methods were touched since
   — slots stamp the current generation whenever a cursor lands on
   them. *)
let mark t =
  t.tick <- t.tick + 1;
  t.tick

module Sset = Set.Make (String)

let methods_since t generation =
  Hashtbl.fold
    (fun (_, meth) s acc ->
      if s.sl_tick >= generation then Sset.add meth acc else acc)
    t.slots Sset.empty
  |> Sset.elements

let record_waste t ~scope ~touched ~contributing =
  if t.enabled then
    t.wastes <- { w_scope = scope; w_touched = touched; w_contributing = contributing }
                :: t.wastes

(* Stable-sorted by scope so merged worker deltas render identically no
   matter the completion order; a scope's own records (retries of one
   app) keep their record order. *)
let wastes t =
  List.stable_sort
    (fun a b -> compare a.w_scope b.w_scope)
    (List.rev t.wastes)

let waste_ratio w =
  if w.w_touched = 0 then 0.0
  else
    float_of_int (w.w_touched - w.w_contributing) /. float_of_int w.w_touched

(* ------------------------------------------------------------------ *)
(* Snapshots (export + cross-process shipping)                        *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_phase : string;
  e_meth : string;
  e_time_s : float;
  e_fuel : int;
  e_visits : int;
  e_facts : int;
}

type snapshot = { sn_entries : entry list; sn_wastes : waste list }

let entries t =
  Hashtbl.fold
    (fun (phase, meth) s acc ->
      {
        e_phase = phase;
        e_meth = meth;
        e_time_s = s.sl_time_s;
        e_fuel = s.sl_fuel;
        e_visits = s.sl_visits;
        e_facts = s.sl_facts;
      }
      :: acc)
    t.slots []
  |> List.sort (fun a b ->
         match compare a.e_phase b.e_phase with
         | 0 -> compare a.e_meth b.e_meth
         | c -> c)

let snapshot t = { sn_entries = entries t; sn_wastes = wastes t }

(* Counts add, times add: merging worker deltas in any order yields the
   same counts, so the aggregated method table under --jobs N matches
   --jobs 1 exactly on everything except measured wall time (which is
   summed, not compared). *)
let merge t (sn : snapshot) =
  List.iter
    (fun e ->
      let s = slot t (e.e_phase, e.e_meth) in
      s.sl_time_s <- s.sl_time_s +. e.e_time_s;
      s.sl_fuel <- s.sl_fuel + e.e_fuel;
      s.sl_visits <- s.sl_visits + e.e_visits;
      s.sl_facts <- s.sl_facts + e.e_facts)
    sn.sn_entries;
  t.wastes <- List.rev_append sn.sn_wastes t.wastes
