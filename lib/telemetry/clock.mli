(** Injectable time source.  All telemetry timing goes through a [t] so
    tests can substitute a deterministic clock and the rest of the system
    never calls [Unix.gettimeofday] directly. *)

type t = unit -> float
(** Returns a timestamp in seconds.  Only differences are meaningful. *)

val wall : t
(** The process wall clock ([Unix.gettimeofday]). *)

val fake : ?start:float -> ?step:float -> unit -> t
(** A deterministic clock: the first read returns [start] (default 0.0)
    and every subsequent read advances by [step] (default 1.0). *)

val manual : ?start:float -> unit -> t * (float -> unit)
(** A clock that stands still plus an [advance] function adding the given
    number of seconds — for tests that control time explicitly. *)

type sleep = float -> unit
(** Block the caller for the given number of seconds.  Injectable for the
    same reason as {!t}: retry backoff must be testable without real
    sleeps. *)

val sleep_wall : sleep
(** [Unix.sleepf]. *)

val sleep_recording : unit -> sleep * (unit -> float list)
(** A sleep that returns immediately but records every requested
    duration, in call order — for asserting deterministic backoff. *)
