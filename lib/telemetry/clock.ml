(* Injectable time source: the single place the telemetry layer reads
   time, so deterministic clocks can stand in during tests. *)

type t = unit -> float

let wall : t = Unix.gettimeofday

let fake ?(start = 0.0) ?(step = 1.0) () : t =
  let now = ref (start -. step) in
  fun () ->
    now := !now +. step;
    !now

let manual ?(start = 0.0) () : t * (float -> unit) =
  let now = ref start in
  ((fun () -> !now), fun d -> now := !now +. d)

type sleep = float -> unit

let sleep_wall : sleep = Unix.sleepf

let sleep_recording () : sleep * (unit -> float list) =
  let slept = ref [] in
  ((fun d -> slept := d :: !slept), fun () -> List.rev !slept)
