(* Semantic-model tests: demarcation-point matching (including library
   subclassing), implicit-callback resolution, taint transfer models,
   consumer sinks, and the §3.4 library de-obfuscation. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Demarcation = Extr_semantics.Demarcation
module Callbacks = Extr_semantics.Callbacks
module Taint_model = Extr_semantics.Taint_model
module Consumers = Extr_semantics.Consumers
module Apk = Extr_apk.Apk
module Obfuscator = Extr_apk.Obfuscator
module Deobfuscator = Extr_apk.Deobfuscator

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* API matching                                                       *)
(* ------------------------------------------------------------------ *)

let test_invoke_is_direct () =
  let sb = B.local "sb" (Ir.Obj Api.string_builder) in
  let i = B.virtual_call sb Api.string_builder "append" [ B.vstr "x" ] in
  check Alcotest.bool "direct class" true
    (Api.invoke_is i ~cls:Api.string_builder ~name:"append");
  check Alcotest.bool "wrong name" false
    (Api.invoke_is i ~cls:Api.string_builder ~name:"toString")

let test_invoke_is_subclass () =
  (* DefaultHttpClient.execute matches the HttpClient interface. *)
  let c = B.local "c" (Ir.Obj Api.default_http_client) in
  let i = B.virtual_call c Api.default_http_client "execute" [ B.vstr "r" ] in
  check Alcotest.bool "library subclass matches" true
    (Api.invoke_is i ~cls:Api.http_client ~name:"execute")

let test_library_subclass () =
  check Alcotest.bool "HttpGet extends request base" true
    (Api.library_subclass ~sub:Api.http_get ~super:Api.http_request_base);
  check Alcotest.bool "not reflexive across trees" false
    (Api.library_subclass ~sub:Api.http_get ~super:Api.json_object)

(* ------------------------------------------------------------------ *)
(* Demarcation points                                                 *)
(* ------------------------------------------------------------------ *)

let test_demarcation_find () =
  let c = B.local "c" (Ir.Obj Api.default_http_client) in
  let i = B.virtual_call c Api.http_client "execute" [ B.vstr "r" ] in
  check Alcotest.bool "execute is a DP" true (Demarcation.is_demarcation i);
  let sb = B.local "sb" (Ir.Obj Api.string_builder) in
  let j = B.virtual_call sb Api.string_builder "append" [ B.vstr "x" ] in
  check Alcotest.bool "append is not" false (Demarcation.is_demarcation j)

let test_demarcation_bindings () =
  let c = B.local "c" (Ir.Obj Api.default_http_client) in
  let i = B.virtual_call c Api.http_client "execute" [ B.vstr "r" ] in
  match Demarcation.find i with
  | Some dp ->
      check Alcotest.bool "request is arg 0" true
        (dp.Demarcation.dp_request = Demarcation.Arg 0);
      check Alcotest.bool "response is the return" true
        (dp.Demarcation.dp_response = Demarcation.Ret)
  | None -> Alcotest.fail "execute not found"

let test_demarcation_socket_extension () =
  let s = B.local "s" (Ir.Obj Api.java_socket) in
  let i = B.virtual_call s Api.java_socket "getInputStream" [] in
  check Alcotest.bool "socket getInputStream is a DP" true
    (Demarcation.is_demarcation i)

(* ------------------------------------------------------------------ *)
(* Callbacks                                                          *)
(* ------------------------------------------------------------------ *)

let test_callbacks_asynctask () =
  let task_cls = "T" in
  let dib =
    B.mk_meth ~cls:task_cls ~name:"doInBackground"
      ~params:[ B.local "u" Ir.Str ]
      ~ret:Ir.Str
      (fun b -> B.return_value b (B.vstr ""))
  in
  let prog =
    Prog.of_program
      {
        Ir.p_classes =
          B.mk_cls ~super:Api.async_task task_cls [ dib ] :: Api.library_classes;
        p_entries = [];
      }
  in
  let t = B.local "t" (Ir.Obj task_cls) in
  let i = B.virtual_call t Api.async_task "execute" [ B.vstr "u" ] in
  check Alcotest.bool "doInBackground resolved" true
    (List.mem
       { Ir.id_cls = task_cls; id_name = "doInBackground" }
       (Callbacks.resolve prog i))

let test_callbacks_click () =
  let lsn_cls = "L" in
  let on_click =
    B.mk_meth ~cls:lsn_cls ~name:"onClick"
      ~params:[ B.local "v" (Ir.Obj Api.view) ]
      ~ret:Ir.Void
      (fun _ -> ())
  in
  let prog =
    Prog.of_program
      {
        Ir.p_classes =
          B.mk_cls ~super:Api.on_click_listener lsn_cls [ on_click ]
          :: Api.library_classes;
        p_entries = [];
      }
  in
  let view = B.local "v" (Ir.Obj Api.view) in
  let l = B.local "l" (Ir.Obj lsn_cls) in
  let i = B.virtual_call view Api.view "setOnClickListener" [ B.vl l ] in
  check Alcotest.bool "onClick resolved" true
    (List.mem { Ir.id_cls = lsn_cls; id_name = "onClick" } (Callbacks.resolve prog i))

(* ------------------------------------------------------------------ *)
(* Taint transfer model                                               *)
(* ------------------------------------------------------------------ *)

let test_taint_default_flow () =
  let sb = B.local "sb" (Ir.Obj Api.string_builder) in
  let i = B.virtual_call sb Api.string_builder "append" [ B.vstr "x" ] in
  let e = Taint_model.transfer i ~base_tainted:false ~args_tainted:[ true ] in
  check Alcotest.bool "ret tainted" true e.Taint_model.taint_ret;
  check Alcotest.bool "receiver accumulates" true e.Taint_model.taint_base

let test_taint_sanitizer () =
  let i = B.static_call Api.android_log "d" [ B.vstr "t"; B.vstr "m" ] in
  let e = Taint_model.transfer i ~base_tainted:false ~args_tainted:[ false; true ] in
  check Alcotest.bool "log does not flow" false e.Taint_model.taint_ret

let test_taint_db_store () =
  let db = B.local "db" (Ir.Obj Api.sqlite_database) in
  let cv = B.local "cv" (Ir.Obj Api.content_values) in
  let i = B.virtual_call db Api.sqlite_database "insert" [ B.vstr "talks"; B.vl cv ] in
  let e = Taint_model.transfer i ~base_tainted:false ~args_tainted:[ false; true ] in
  check Alcotest.(option string) "tainted table recorded" (Some "talks")
    e.Taint_model.db_write;
  let q = B.virtual_call db Api.sqlite_database "query" [ B.vstr "talks" ] in
  let e2 = Taint_model.transfer q ~base_tainted:false ~args_tainted:[ false ] in
  check Alcotest.(option string) "query reads the store" (Some "talks")
    e2.Taint_model.db_read

let test_source_tag () =
  let loc = B.local "loc" (Ir.Obj Api.location) in
  let i = B.virtual_call ~ret:Ir.Str loc Api.location "getLat" [] in
  check Alcotest.(option string) "gps origin" (Some "gps") (Taint_model.source_tag i)

(* ------------------------------------------------------------------ *)
(* Consumers                                                          *)
(* ------------------------------------------------------------------ *)

let test_consumers () =
  let mp = B.local "mp" (Ir.Obj Api.media_player) in
  let i = B.virtual_call mp Api.media_player "setDataSource" [ B.vstr "u" ] in
  (match Consumers.find i with
  | Some (Consumers.Media_player, [ 0 ]) -> ()
  | _ -> Alcotest.fail "media player sink");
  let db = B.local "db" (Ir.Obj Api.sqlite_database) in
  let cv = B.local "cv" (Ir.Obj Api.content_values) in
  let j = B.virtual_call db Api.sqlite_database "insert" [ B.vstr "t"; B.vl cv ] in
  match Consumers.find j with
  | Some (Consumers.Database "t", [ 1 ]) -> ()
  | _ -> Alcotest.fail "database sink"

(* ------------------------------------------------------------------ *)
(* Library de-obfuscation: unit-level discriminators                   *)
(* ------------------------------------------------------------------ *)

(* A minimal app exercising the given builder body, wrapped into an APK
   with the full library surface so obfuscation/recovery can run. *)
let mini_apk build =
  let run =
    B.mk_meth ~cls:"com.mini.App" ~name:"run" ~params:[] ~ret:Ir.Void build
  in
  let cls = B.mk_cls "com.mini.App" [ run ] in
  let program =
    { Ir.p_classes = cls :: Api.library_classes; p_entries = [] }
  in
  Apk.make ~package:"com.mini" program

(* Recover the library map of [apk] and return [find]: truth class name →
   recovered class name (or "-" when unrecovered). *)
let recovered_of apk =
  let obf, truth = Obfuscator.obfuscate_libraries apk in
  let _, mapping = Deobfuscator.deobfuscate obf in
  fun cls ->
    let obf_name = Obfuscator.rename_class truth cls in
    Option.value
      (List.assoc_opt obf_name mapping.Deobfuscator.dm_classes)
      ~default:"-"

let test_deobf_get_post () =
  (* Only the entity-enclosing request receives setEntity; that single
     usage must separate the constructor-identical GET and POST. *)
  let apk =
    mini_apk (fun b ->
        let client = B.new_obj b Api.default_http_client [] in
        let get = B.new_obj b Api.http_get [ B.vstr "http://x/a" ] in
        let post = B.new_obj b Api.http_post [ B.vstr "http://x/b" ] in
        let body = B.new_obj b Api.string_entity [ B.vstr "k=v" ] in
        B.call b
          (B.virtual_call post Api.http_request_base "setEntity" [ B.vl body ]);
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
             Api.http_client "execute" [ B.vl get ]);
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
             Api.http_client "execute" [ B.vl post ]);
        B.return_void b)
  in
  let find = recovered_of apk in
  check Alcotest.string "post" Api.http_post (find Api.http_post);
  check Alcotest.string "get" Api.http_get (find Api.http_get);
  check Alcotest.string "entity" Api.string_entity (find Api.string_entity)

let test_deobf_builder_self_return () =
  (* StringBuilder's self-returning append and JSONObject's string-keyed
     reads have the same name-free shapes; both must still round-trip. *)
  let apk =
    mini_apk (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://x/?q=" ] in
        let sb2 =
          B.call_ret b (Ir.Obj Api.string_builder)
            (B.virtual_call
               ~ret:(Ir.Obj Api.string_builder)
               sb Api.string_builder "append" [ B.vstr "1" ])
        in
        let s =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb2 Api.string_builder "toString" [])
        in
        let j = B.new_obj b Api.json_object [ B.vl s ] in
        let v =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "user" ])
        in
        ignore v;
        B.return_void b)
  in
  let find = recovered_of apk in
  check Alcotest.string "string builder" Api.string_builder
    (find Api.string_builder);
  check Alcotest.string "json object" Api.json_object (find Api.json_object)

let test_deobf_ret_chain () =
  (* The okhttp chain has almost no distinctive per-class shapes; identity
     must flow through declared return classes (client → call → response
     → body). *)
  let apk =
    mini_apk (fun b ->
        let client = B.new_obj b Api.okhttp_client [] in
        let bld = B.new_obj b Api.okhttp_builder [] in
        let bld =
          B.call_ret b (Ir.Obj Api.okhttp_builder)
            (B.virtual_call
               ~ret:(Ir.Obj Api.okhttp_builder)
               bld Api.okhttp_builder "url" [ B.vstr "http://x/c" ])
        in
        let req =
          B.call_ret b (Ir.Obj Api.okhttp_request)
            (B.virtual_call
               ~ret:(Ir.Obj Api.okhttp_request)
               bld Api.okhttp_builder "build" [])
        in
        let call =
          B.call_ret b (Ir.Obj Api.okhttp_call)
            (B.virtual_call ~ret:(Ir.Obj Api.okhttp_call) client
               Api.okhttp_client "newCall" [ B.vl req ])
        in
        let resp =
          B.call_ret b (Ir.Obj Api.okhttp_response)
            (B.virtual_call
               ~ret:(Ir.Obj Api.okhttp_response)
               call Api.okhttp_call "execute" [])
        in
        let body =
          B.call_ret b (Ir.Obj Api.okhttp_response_body)
            (B.virtual_call
               ~ret:(Ir.Obj Api.okhttp_response_body)
               resp Api.okhttp_response "body" [])
        in
        let s =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str body Api.okhttp_response_body "string"
               [])
        in
        ignore s;
        B.return_void b)
  in
  let find = recovered_of apk in
  List.iter
    (fun cls -> check Alcotest.string cls cls (find cls))
    [
      Api.okhttp_client; Api.okhttp_builder; Api.okhttp_request;
      Api.okhttp_call; Api.okhttp_response; Api.okhttp_response_body;
    ]

let test_usage_profiles_attribution () =
  (* Calls resolve to the receiver's static class, not the method
     reference's declaring class: HttpPost.setEntity declared on the
     request base must profile under the HttpPost receiver. *)
  let apk =
    mini_apk (fun b ->
        let post = B.new_obj b Api.http_post [ B.vstr "http://x/b" ] in
        let body = B.new_obj b Api.string_entity [ B.vstr "k=v" ] in
        B.call b
          (B.virtual_call post Api.http_request_base "setEntity" [ B.vl body ]);
        B.return_void b)
  in
  let profiles = Deobfuscator.usage_profiles apk.Apk.program in
  let post_usages =
    Option.value (Hashtbl.find_opt profiles Api.http_post) ~default:[]
  in
  check Alcotest.bool "setEntity attributed to the HttpPost receiver" true
    (List.exists
       (fun (u : Deobfuscator.usage) ->
         u.Deobfuscator.u_name = "setEntity"
         && u.u_args = [ Deobfuscator.Sobj ]
         && u.u_arg_obs = [ Deobfuscator.Obs_lib Api.string_entity ])
       post_usages);
  check Alcotest.bool "nothing attributed to the declaring base class" true
    (not (Hashtbl.mem profiles Api.http_request_base))

let test_deobf_restores_demarcation () =
  (* Under library obfuscation no demarcation point matches; after
     recovery the DP registry fires again. *)
  let apk =
    mini_apk (fun b ->
        let client = B.new_obj b Api.default_http_client [] in
        let get = B.new_obj b Api.http_get [ B.vstr "http://x/a" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
             Api.http_client "execute" [ B.vl get ]);
        B.return_void b)
  in
  let count_dps (apk : Apk.t) =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        if c.Ir.c_library then acc
        else
          List.fold_left
            (fun acc (m : Ir.meth) ->
              Array.fold_left
                (fun acc stmt ->
                  match Ir.stmt_invoke stmt with
                  | Some i when Demarcation.is_demarcation i -> acc + 1
                  | Some _ | None -> acc)
                acc m.Ir.m_body)
            acc c.Ir.c_methods)
      0 apk.Apk.program.Ir.p_classes
  in
  let obf, _ = Obfuscator.obfuscate_libraries apk in
  let restored, _ = Deobfuscator.deobfuscate obf in
  check Alcotest.int "no DP while obfuscated" 0 (count_dps obf);
  check Alcotest.int "DP restored" 1 (count_dps restored)

(* ------------------------------------------------------------------ *)
(* Library de-obfuscation on the whole corpus sample                   *)
(* ------------------------------------------------------------------ *)

let test_deobfuscation_roundtrip_apps () =
  List.iter
    (fun name ->
      let entries = Extr_corpus.Corpus.case_studies () in
      let e = Option.get (Extr_corpus.Corpus.find entries name) in
      let apk = Lazy.force e.Extr_corpus.Corpus.c_apk in
      let obf, truth = Obfuscator.obfuscate_libraries apk in
      let _, mapping = Deobfuscator.deobfuscate obf in
      (* Every library class the app actually invokes must round-trip. *)
      let used = Hashtbl.create 16 in
      List.iter
        (fun (c : Ir.cls) ->
          if not c.Ir.c_library then
            List.iter
              (fun (m : Ir.meth) ->
                Array.iter
                  (fun stmt ->
                    match Ir.stmt_invoke stmt with
                    | Some i when Api.is_library_class i.Ir.iref.Ir.mcls ->
                        Hashtbl.replace used i.Ir.iref.Ir.mcls ()
                    | Some _ | None -> ())
                  m.Ir.m_body)
              c.Ir.c_methods)
        apk.Apk.program.Ir.p_classes;
      Hashtbl.iter
        (fun cls () ->
          let obf_name = Obfuscator.rename_class truth cls in
          match List.assoc_opt obf_name mapping.Deobfuscator.dm_classes with
          | Some known ->
              check Alcotest.string
                (Printf.sprintf "%s: %s" name cls)
                cls known
          | None ->
              Alcotest.failf "%s: class %s (%s) unrecovered" name cls obf_name)
        used)
    [
      "radio reddit";
      "TED (case study)";
      "SharedDP";
      "Diode";
      "Kayak (case study)";
    ]

let () =
  Alcotest.run "semantics"
    [
      ( "api",
        [
          tc "invoke_is direct" test_invoke_is_direct;
          tc "invoke_is subclass" test_invoke_is_subclass;
          tc "library subclass" test_library_subclass;
        ] );
      ( "demarcation",
        [
          tc "find" test_demarcation_find;
          tc "bindings" test_demarcation_bindings;
          tc "socket extension" test_demarcation_socket_extension;
        ] );
      ( "callbacks",
        [
          tc "asynctask" test_callbacks_asynctask;
          tc "click" test_callbacks_click;
        ] );
      ( "taint-model",
        [
          tc "default flow" test_taint_default_flow;
          tc "sanitizer" test_taint_sanitizer;
          tc "db store" test_taint_db_store;
          tc "source tag" test_source_tag;
        ] );
      ("consumers", [ tc "sinks" test_consumers ]);
      ( "deobfuscation",
        [
          tc "get/post entity discriminator" test_deobf_get_post;
          tc "builder self-return" test_deobf_builder_self_return;
          tc "okhttp return-class chain" test_deobf_ret_chain;
          tc "profile receiver attribution" test_usage_profiles_attribution;
          tc "recovery restores demarcation" test_deobf_restores_demarcation;
          tc "round trip on corpus apps" test_deobfuscation_roundtrip_apps;
        ] );
    ]
