(* HTTP model tests: JSON and XML parsers/printers, URI handling with raw
   preservation, HTTP message helpers, and round-trip properties. *)

module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml
module Uri = Extr_httpmodel.Uri
module Http = Extr_httpmodel.Http

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_scalars () =
  check Alcotest.bool "null" true (Json.of_string "null" = Json.Null);
  check Alcotest.bool "true" true (Json.of_string "true" = Json.Bool true);
  check Alcotest.bool "int" true (Json.of_string "42" = Json.Int 42);
  check Alcotest.bool "negative" true (Json.of_string "-7" = Json.Int (-7));
  check Alcotest.bool "float" true (Json.of_string "1.5" = Json.Float 1.5);
  check Alcotest.bool "string" true (Json.of_string {|"hi"|} = Json.Str "hi")

let test_json_structures () =
  match Json.of_string {|{"a":[1,2,{"b":null}],"c":{}}|} with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [ ("b", Json.Null) ] ]); ("c", Json.Obj []) ]
    ->
      ()
  | _ -> Alcotest.fail "structure mismatch"

let test_json_escapes () =
  check Alcotest.bool "escaped quote" true
    (Json.of_string {|"a\"b"|} = Json.Str {|a"b|});
  check Alcotest.bool "newline" true (Json.of_string {|"a\nb"|} = Json.Str "a\nb");
  check Alcotest.bool "unicode ascii" true (Json.of_string {|"A"|} = Json.Str "A")

let test_json_errors () =
  check Alcotest.bool "trailing garbage" true (Json.of_string_opt "1 x" = None);
  check Alcotest.bool "unterminated" true (Json.of_string_opt "{\"a\":" = None);
  check Alcotest.bool "bare word" true (Json.of_string_opt "zonk" = None)

let test_json_member_and_path () =
  let v = Json.of_string {|{"a":{"b":{"c":7}}}|} in
  check Alcotest.bool "member" true (Json.member "a" v <> None);
  check Alcotest.bool "find_path" true
    (Json.find_path [ "a"; "b"; "c" ] v = Some (Json.Int 7));
  check Alcotest.bool "missing path" true (Json.find_path [ "a"; "z" ] v = None)

let test_json_keys () =
  let v = Json.of_string {|{"a":1,"b":[{"c":2},{"c":3}]}|} in
  check Alcotest.(list string) "distinct keys" [ "a"; "b"; "c" ] (Json.distinct_keys v)

let prop_json_roundtrip =
  let gen =
    let open QCheck.Gen in
    let rec gen_v depth =
      if depth = 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun n -> Json.Int n) small_signed_int;
            map (fun s -> Json.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
          ]
      else
        oneof
          [
            gen_v 0;
            map (fun items -> Json.List items) (list_size (int_range 0 4) (gen_v (depth - 1)));
            map
              (fun pairs ->
                (* distinct keys *)
                let pairs =
                  List.mapi (fun i (k, v) -> (Printf.sprintf "%s%d" k i, v)) pairs
                in
                Json.Obj pairs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) (gen_v (depth - 1))));
          ]
    in
    gen_v 2
  in
  QCheck.Test.make ~count:300 ~name:"json print/parse round-trip" (QCheck.make gen)
    (fun v -> Json.equal (Json.of_string (Json.to_string v)) v)

(* ------------------------------------------------------------------ *)
(* XML                                                                *)
(* ------------------------------------------------------------------ *)

let test_xml_basic () =
  let e = Xml.of_string {|<a x="1"><b>t</b><c/></a>|} in
  check Alcotest.string "tag" "a" e.Xml.tag;
  check Alcotest.(list (pair string string)) "attrs" [ ("x", "1") ] e.Xml.attrs;
  check Alcotest.int "children" 2 (List.length e.Xml.children)

let test_xml_text_and_entities () =
  let e = Xml.of_string "<a>x &amp; y</a>" in
  match e.Xml.children with
  | [ Xml.Text t ] -> check Alcotest.string "unescaped" "x & y" t
  | _ -> Alcotest.fail "expected one text node"

let test_xml_roundtrip () =
  let e =
    Xml.element "root"
      ~attrs:[ ("v", "a\"b") ]
      [ Xml.Elem (Xml.element "kid" [ Xml.text "t<>&" ]); Xml.text "tail" ]
  in
  let e' = Xml.of_string (Xml.to_string e) in
  check Alcotest.string "roundtrip" (Xml.to_string e) (Xml.to_string e')

let test_xml_declaration_skipped () =
  let e = Xml.of_string {|<?xml version="1.0"?><doc/>|} in
  check Alcotest.string "root after declaration" "doc" e.Xml.tag

let test_xml_errors () =
  check Alcotest.bool "mismatched close" true (Xml.of_string_opt "<a></b>" = None);
  check Alcotest.bool "unterminated" true (Xml.of_string_opt "<a>" = None)

let test_xml_keywords () =
  let e = Xml.of_string {|<a k="1"><b><c/></b></a>|} in
  check Alcotest.(list string) "keywords" [ "a"; "b"; "c"; "k" ]
    (Xml.distinct_keywords e)

(* ------------------------------------------------------------------ *)
(* URI                                                                *)
(* ------------------------------------------------------------------ *)

let test_uri_parse () =
  let u = Uri.of_string "https://h.example/a/b?x=1&y=two" in
  check Alcotest.string "scheme" "https" u.Uri.scheme;
  check Alcotest.string "host" "h.example" u.Uri.host;
  check Alcotest.string "path" "/a/b" u.Uri.path;
  check Alcotest.(list (pair string string)) "query" [ ("x", "1"); ("y", "two") ]
    u.Uri.query

let test_uri_raw_preserved () =
  (* The wire form survives parse→print even when not canonical. *)
  let raw = "http://h/x.json?&" in
  check Alcotest.string "raw round-trip" raw (Uri.to_string (Uri.of_string raw))

let test_uri_missing_scheme () =
  check Alcotest.bool "rejects schemeless" true (Uri.of_string_opt "h/x" = None)

let test_uri_percent () =
  check Alcotest.string "encode" "a%20b%26c" (Uri.percent_encode "a b&c");
  check Alcotest.string "decode" "a b&c" (Uri.percent_decode "a%20b%26c");
  check Alcotest.string "plus decodes to space" "a b" (Uri.percent_decode "a+b")

let test_uri_query_string () =
  check Alcotest.string "print" "a=1&b=x%26y"
    (Uri.query_to_string [ ("a", "1"); ("b", "x&y") ]);
  check Alcotest.(list (pair string string)) "parse" [ ("a", "1"); ("b", "x&y") ]
    (Uri.query_of_string "a=1&b=x%26y")

let test_uri_path_segments () =
  let u = Uri.of_string "http://h/a//b/c" in
  check Alcotest.(list string) "segments" [ "a"; "b"; "c" ] (Uri.path_segments u)

(* ------------------------------------------------------------------ *)
(* Http                                                               *)
(* ------------------------------------------------------------------ *)

let test_http_meth_roundtrip () =
  List.iter
    (fun m ->
      check Alcotest.bool "meth round-trip" true
        (Http.meth_of_string (Http.meth_to_string m) = Some m))
    [ Http.GET; Http.POST; Http.PUT; Http.DELETE ];
  check Alcotest.bool "unknown meth" true (Http.meth_of_string "BREW" = None)

let test_http_header_lookup () =
  let headers = [ ("User-Agent", "x"); ("Cookie", "y") ] in
  check Alcotest.(option string) "case-insensitive" (Some "x")
    (Http.header "user-agent" headers);
  check Alcotest.(option string) "missing" None (Http.header "etag" headers)

let test_http_body_kinds () =
  check Alcotest.string "json" "json" (Http.body_kind (Http.Json Json.Null));
  check Alcotest.string "query" "query" (Http.body_kind (Http.Query []));
  check Alcotest.string "none" "none" (Http.body_kind Http.No_body)

let test_http_body_to_string () =
  check Alcotest.string "query body" "a=1&b=2"
    (Http.body_to_string (Http.Query [ ("a", "1"); ("b", "2") ]));
  check Alcotest.string "json body" "{\"k\":1}"
    (Http.body_to_string (Http.Json (Json.Obj [ ("k", Json.Int 1) ])))

let test_trigger_labels () =
  check Alcotest.string "click" "click:x" (Http.trigger_to_string (Http.Ui_click "x"));
  check Alcotest.string "push" "push:y" (Http.trigger_to_string (Http.Server_push "y"))

(* ------------------------------------------------------------------ *)
(* Trace archive (negative cases; round-trip is property-tested)       *)
(* ------------------------------------------------------------------ *)

module Har = Extr_httpmodel.Har

let test_har_body_tags () =
  let rt b = Har.body_of_json (Har.json_of_body b) in
  check Alcotest.bool "none" true (rt Http.No_body = Some Http.No_body);
  check Alcotest.bool "query" true
    (rt (Http.Query [ ("a", "1") ]) = Some (Http.Query [ ("a", "1") ]));
  check Alcotest.bool "binary" true
    (rt (Http.Binary "xx") = Some (Http.Binary "xx"));
  check Alcotest.bool "unknown kind rejected" true
    (Har.body_of_json (Json.Obj [ ("kind", Json.Str "blob") ]) = None);
  check Alcotest.bool "missing kind rejected" true
    (Har.body_of_json (Json.Obj []) = None)

let test_har_rejects_truncated () =
  (* A dump with one malformed entry fails as a whole — no silent loss. *)
  check Alcotest.bool "bad entry" true
    (Har.of_string
       {|{"app":"x","entries":[{"request":{"method":"GET"}}]}|}
    = None);
  check Alcotest.bool "not json" true (Har.of_string "%%%" = None);
  check Alcotest.bool "wrong shape" true (Har.of_string "[1,2]" = None)

let test_har_trigger_tags () =
  List.iter
    (fun t ->
      check Alcotest.bool "trigger round-trips" true
        (Har.trigger_of_json (Har.json_of_trigger t) = Some t))
    [
      Http.Ui_click "a"; Http.Ui_custom "b"; Http.Ui_action "c";
      Http.Timer "d"; Http.Server_push "e"; Http.App_internal "f";
    ];
  check Alcotest.bool "unknown trigger rejected" true
    (Har.trigger_of_json
       (Json.Obj [ ("kind", Json.Str "psychic"); ("label", Json.Str "x") ])
    = None)

let () =
  Alcotest.run "httpmodel"
    [
      ( "json",
        [
          tc "scalars" test_json_scalars;
          tc "structures" test_json_structures;
          tc "escapes" test_json_escapes;
          tc "errors" test_json_errors;
          tc "member/path" test_json_member_and_path;
          tc "keys" test_json_keys;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "xml",
        [
          tc "basic" test_xml_basic;
          tc "text/entities" test_xml_text_and_entities;
          tc "roundtrip" test_xml_roundtrip;
          tc "declaration" test_xml_declaration_skipped;
          tc "errors" test_xml_errors;
          tc "keywords" test_xml_keywords;
        ] );
      ( "uri",
        [
          tc "parse" test_uri_parse;
          tc "raw preserved" test_uri_raw_preserved;
          tc "missing scheme" test_uri_missing_scheme;
          tc "percent" test_uri_percent;
          tc "query string" test_uri_query_string;
          tc "path segments" test_uri_path_segments;
        ] );
      ( "http",
        [
          tc "meth roundtrip" test_http_meth_roundtrip;
          tc "header lookup" test_http_header_lookup;
          tc "body kinds" test_http_body_kinds;
          tc "body to string" test_http_body_to_string;
          tc "trigger labels" test_trigger_labels;
        ] );
      ( "trace-archive",
        [
          tc "body tags" test_har_body_tags;
          tc "truncated dumps rejected" test_har_rejects_truncated;
          tc "trigger tags" test_har_trigger_tags;
        ] );
    ]
