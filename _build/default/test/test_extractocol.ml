(* Core-pipeline tests: abstract values (merge/widen), signature building
   through every modelled HTTP stack, loop widening into rep, reflection
   (gson) and XML parsing, dependency and consumer tracking, pairing, and
   report deduplication. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Http = Extr_httpmodel.Http
module Strsig = Extr_siglang.Strsig
module Jsonsig = Extr_siglang.Jsonsig
module Msgsig = Extr_siglang.Msgsig
module Regex = Extr_siglang.Regex
module Absval = Extr_extractocol.Absval
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Txn = Extr_extractocol.Txn

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Absval                                                             *)
(* ------------------------------------------------------------------ *)

let test_strip_prefix () =
  let a = Strsig.concat [ Strsig.lit "base"; Strsig.unknown ] in
  let b = Strsig.concat [ Strsig.lit "base"; Strsig.unknown; Strsig.lit "&x=" ] in
  match Absval.strip_prefix a b with
  | Some delta -> check Alcotest.bool "delta is suffix" true (Strsig.equal delta (Strsig.lit "&x="))
  | None -> Alcotest.fail "prefix should strip"

let test_widen_sig_rep () =
  let base = Strsig.lit "a" in
  let grown = Strsig.concat [ Strsig.lit "a"; Strsig.lit "X" ] in
  let w = Absval.widen_sig base grown in
  (* Widening marks the growing tail as repetition. *)
  check Alcotest.bool "rep appears" true
    (match w with
    | Strsig.Concat parts -> List.exists (function Strsig.Rep _ -> true | _ -> false) parts
    | Strsig.Rep _ -> true
    | _ -> false);
  (* And is stable: widening again with one more X changes nothing. *)
  let grown2 = Strsig.concat [ Strsig.lit "aX"; Strsig.lit "X" ] in
  check Alcotest.bool "stable" true (Strsig.equal (Absval.widen_sig w grown2) w)

let test_state_merger_objects () =
  let href = ref Absval.empty_heap in
  let o = Absval.halloc href "C" in
  let h1 = Absval.IMap.add o.Absval.o_id (Absval.SMap.singleton "f" (Absval.str_lit "x")) !href in
  let h2 = Absval.IMap.add o.Absval.o_id (Absval.SMap.singleton "f" (Absval.str_lit "y")) !href in
  let mval, final = Absval.state_merger ~combine_sig:(fun a b -> Strsig.alt [ a; b ]) h1 h2 in
  (match mval (Absval.Vobj o) (Absval.Vobj o) with
  | Absval.Vobj _ -> ()
  | _ -> Alcotest.fail "object merge");
  let merged = final () in
  match Absval.IMap.find_opt o.Absval.o_id merged with
  | Some slots -> (
      match Absval.SMap.find_opt "f" slots with
      | Some (Absval.Vstr { sg = Strsig.Alt _; _ }) -> ()
      | _ -> Alcotest.fail "slot should be the disjunction of both branches")
  | None -> Alcotest.fail "object lost in merge"

let test_collect_prov_through_heap () =
  let href = ref Absval.empty_heap in
  let o = Absval.halloc href "C" in
  let p = { Absval.p_tx = 3; p_path = [ "k" ]; p_via = None } in
  Absval.hset href o "slot" (Absval.str_of_sig ~prov:[ p ] Strsig.unknown);
  check Alcotest.int "prov found" 1
    (List.length (Absval.collect_prov !href (Absval.Vobj o)))

(* ------------------------------------------------------------------ *)
(* Pipeline helpers                                                   *)
(* ------------------------------------------------------------------ *)

let analyze_activity ?(resources = []) build =
  let cls = "com.t.Main" in
  let on_create = B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void build in
  let program =
    { Ir.p_classes = [ B.mk_cls ~super:Api.activity cls [ on_create ] ]; p_entries = [] }
  in
  let apk = Apk.make ~package:"com.t" ~activities:[ cls ] ~resources program in
  (Pipeline.analyze apk).Pipeline.an_report

let only_tx report =
  match report.Report.rp_transactions with
  | [ tr ] -> tr
  | txs -> Alcotest.failf "expected one transaction, got %d" (List.length txs)

let uri_regex tr = Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri

(* Shared snippet: apache GET of a URL variable. *)
let apache_get b url =
  let req = B.new_obj b Api.http_get [ B.vl url ] in
  let client = B.new_obj b Api.default_http_client [] in
  B.call_ret b (Ir.Obj Api.http_response)
    (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
       "execute" [ B.vl req ])

(* ------------------------------------------------------------------ *)
(* Signature building per feature                                     *)
(* ------------------------------------------------------------------ *)

let test_loop_produces_rep () =
  let report =
    analyze_activity (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/ids?" ] in
        let i = B.define b Ir.Int (Ir.Val (B.vint 0)) in
        B.while_ b
          (fun b -> B.vl (B.define b Ir.Bool (Ir.Binop (Ir.Lt, B.vl i, B.vint 3))))
          (fun b ->
            B.call b
              (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb
                 Api.string_builder "append" [ B.vstr "id=7&" ]);
            B.assign b i (Ir.Binop (Ir.Add, B.vl i, B.vint 1)));
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        ignore (apache_get b url))
  in
  let tr = only_tx report in
  let regex = uri_regex tr in
  (* rep compiles to a Kleene star that matches any number of repetitions. *)
  check Alcotest.bool "regex has star" true (String.contains regex '*');
  List.iter
    (fun s ->
      check Alcotest.bool ("matches " ^ s) true (Regex.string_matches ~pattern:regex s))
    [ "http://h/ids?"; "http://h/ids?id=7&"; "http://h/ids?id=7&id=7&id=7&" ]

let test_resource_lookup_in_signature () =
  let report =
    analyze_activity ~resources:[ (42, "sekret-key") ] (fun b ->
        let this = Ir.this_var "com.t.Main" in
        let res =
          B.call_ret b (Ir.Obj Api.resources)
            (B.virtual_call ~ret:(Ir.Obj Api.resources) this Api.activity
               "getResources" [])
        in
        let key =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str res Api.resources "getString" [ B.vint 42 ])
        in
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/a?k=" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl key ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        ignore (apache_get b url))
  in
  let tr = only_tx report in
  check Alcotest.string "resource resolved to constant"
    "http://h/a\\?k=sekret-key" (uri_regex tr)

let test_post_form_body () =
  let report =
    analyze_activity (fun b ->
        let params = B.new_obj b Api.array_list [] in
        let pair = B.new_obj b Api.name_value_pair [ B.vstr "user"; B.vstr "u1" ] in
        B.call b (B.virtual_call params Api.array_list "add" [ B.vl pair ]);
        let entity = B.new_obj b Api.form_entity [ B.vl params ] in
        let url = B.define b Ir.Str (Ir.Val (B.vstr "https://h/login")) in
        let req = B.new_obj b Api.http_post [ B.vl url ] in
        B.call b
          (B.virtual_call req Api.http_request_base "setEntity" [ B.vl entity ]);
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  let tr = only_tx report in
  check Alcotest.bool "POST" true (tr.Report.tr_request.Msgsig.rs_meth = Http.POST);
  match tr.Report.tr_request.Msgsig.rs_body with
  | Msgsig.Bquery [ ("user", Strsig.Lit "u1") ] -> ()
  | b -> Alcotest.failf "unexpected body %a" Msgsig.pp_body_sig b

let test_json_builder_body () =
  let report =
    analyze_activity (fun b ->
        let j = B.new_obj b Api.json_object [] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.json_object) j Api.json_object "put"
             [ B.vstr "q"; B.vstr "term" ]);
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.json_object) j Api.json_object "put"
             [ B.vstr "page"; B.vint 2 ]);
        let body =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "toString" [])
        in
        let entity = B.new_obj b Api.string_entity [ B.vl body ] in
        let url = B.define b Ir.Str (Ir.Val (B.vstr "https://h/search")) in
        let req = B.new_obj b Api.http_post [ B.vl url ] in
        B.call b (B.virtual_call req Api.http_request_base "setEntity" [ B.vl entity ]);
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  let tr = only_tx report in
  match tr.Report.tr_request.Msgsig.rs_body with
  | Msgsig.Bjson (Jsonsig.Jobj fields) ->
      check Alcotest.(list string) "json keys" [ "page"; "q" ]
        (List.sort compare (List.map fst fields))
  | b -> Alcotest.failf "unexpected body %a" Msgsig.pp_body_sig b

let test_urlconn_stack () =
  let report =
    analyze_activity (fun b ->
        let url_s = B.define b Ir.Str (Ir.Val (B.vstr "http://h/conn?z=1")) in
        let u = B.new_obj b Api.java_url [ B.vl url_s ] in
        let conn =
          B.call_ret b (Ir.Obj Api.http_url_connection)
            (B.virtual_call ~ret:(Ir.Obj Api.http_url_connection) u Api.java_url
               "openConnection" [])
        in
        B.call b
          (B.virtual_call conn Api.http_url_connection "setRequestMethod"
             [ B.vstr "POST" ]);
        B.call b
          (B.virtual_call conn Api.http_url_connection "setRequestProperty"
             [ B.vstr "X-Token"; B.vstr "abc" ]);
        let os =
          B.call_ret b (Ir.Obj Api.output_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.output_stream) conn
               Api.http_url_connection "getOutputStream" [])
        in
        B.call b (B.virtual_call os Api.output_stream "write" [ B.vstr "a=1&b=2" ]);
        let input =
          B.call_ret b (Ir.Obj Api.input_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.input_stream) conn
               Api.http_url_connection "getInputStream" [])
        in
        ignore input)
  in
  let tr = only_tx report in
  check Alcotest.bool "POST via setRequestMethod" true
    (tr.Report.tr_request.Msgsig.rs_meth = Http.POST);
  check Alcotest.bool "header captured" true
    (List.mem_assoc "X-Token" tr.Report.tr_request.Msgsig.rs_headers);
  match tr.Report.tr_request.Msgsig.rs_body with
  | Msgsig.Bquery pairs ->
      check Alcotest.(list string) "body keys" [ "a"; "b" ]
        (List.sort compare (List.map fst pairs))
  | b -> Alcotest.failf "unexpected body %a" Msgsig.pp_body_sig b

let test_okhttp_stack () =
  let report =
    analyze_activity (fun b ->
        let bld = B.new_obj b Api.okhttp_builder [] in
        B.call b (B.virtual_call bld Api.okhttp_builder "url" [ B.vstr "https://h/ok" ]);
        let rb =
          B.call_ret b (Ir.Obj Api.okhttp_body)
            (B.static_call ~ret:(Ir.Obj Api.okhttp_body) Api.okhttp_body "create"
               [ B.vstr "k=v" ])
        in
        B.call b (B.virtual_call bld Api.okhttp_builder "post" [ B.vl rb ]);
        let req =
          B.call_ret b (Ir.Obj Api.okhttp_request)
            (B.virtual_call ~ret:(Ir.Obj Api.okhttp_request) bld Api.okhttp_builder
               "build" [])
        in
        let client = B.new_obj b Api.okhttp_client [] in
        let call =
          B.call_ret b (Ir.Obj Api.okhttp_call)
            (B.virtual_call ~ret:(Ir.Obj Api.okhttp_call) client Api.okhttp_client
               "newCall" [ B.vl req ])
        in
        let resp =
          B.call_ret b (Ir.Obj Api.okhttp_response)
            (B.virtual_call ~ret:(Ir.Obj Api.okhttp_response) call Api.okhttp_call
               "execute" [])
        in
        ignore resp)
  in
  let tr = only_tx report in
  check Alcotest.bool "POST" true (tr.Report.tr_request.Msgsig.rs_meth = Http.POST);
  check Alcotest.string "uri" "https://h/ok" (uri_regex tr)

let test_gson_response_fields () =
  let data_cls = "com.t.Resp" in
  let cls = "com.t.Main" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/g")) in
        let resp = apache_get b url in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let g = B.new_obj b Api.gson [] in
        let o =
          B.call_ret b (Ir.Obj data_cls)
            (B.virtual_call ~ret:(Ir.Obj data_cls) g Api.gson "fromJson"
               [ B.vl body; B.vstr data_cls ])
        in
        (* Reading fields of the deserialized object records JSON keys. *)
        let name = B.get_field b o { Ir.fcls = data_cls; fname = "name"; fty = Ir.Str } in
        let age = B.get_field b o { Ir.fcls = data_cls; fname = "age"; fty = Ir.Int } in
        ignore name;
        ignore age)
  in
  let data =
    B.mk_cls ~super:Api.java_object
      ~fields:[ B.mk_field "name" Ir.Str; B.mk_field "age" Ir.Int ]
      data_cls
      [ B.mk_meth ~cls:data_cls ~name:"<init>" ~params:[] ~ret:Ir.Void (fun _ -> ()) ]
  in
  let program =
    {
      Ir.p_classes = [ B.mk_cls ~super:Api.activity cls [ on_create ]; data ];
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.t" ~activities:[ cls ] program in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  let tr = only_tx report in
  check Alcotest.(list string) "reflected keys" [ "age"; "name" ]
    (List.sort compare (Msgsig.body_keywords tr.Report.tr_response.Msgsig.ps_body))

let test_xml_response_signature () =
  let report =
    analyze_activity (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/x")) in
        let resp = apache_get b url in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let root =
          B.call_ret b (Ir.Obj Api.xml_element)
            (B.static_call ~ret:(Ir.Obj Api.xml_element) Api.xml_parser "parse"
               [ B.vl body ])
        in
        let child =
          B.call_ret b (Ir.Obj Api.xml_element)
            (B.virtual_call ~ret:(Ir.Obj Api.xml_element) root Api.xml_element
               "getChild" [ B.vstr "item" ])
        in
        let txt =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str child Api.xml_element "getText" [])
        in
        ignore txt)
  in
  let tr = only_tx report in
  match tr.Report.tr_response.Msgsig.ps_body with
  | Msgsig.Bxml x ->
      check Alcotest.bool "item tag recorded" true
        (List.mem "item" (Extr_siglang.Xmlsig.distinct_keywords x))
  | b -> Alcotest.failf "expected xml response, got %a" Msgsig.pp_body_sig b

let test_consumer_and_dep_tracking () =
  let report =
    analyze_activity (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/list")) in
        let resp = apache_get b url in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let j = B.new_obj b Api.json_object [ B.vl body ] in
        let media_url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "stream" ])
        in
        let mp = B.new_obj b Api.media_player [] in
        B.call b (B.virtual_call mp Api.media_player "setDataSource" [ B.vl media_url ]))
  in
  check Alcotest.int "two transactions" 2 (List.length report.Report.rp_transactions);
  let media_tx =
    List.find
      (fun tr ->
        List.mem Msgsig.To_media_player tr.Report.tr_response.Msgsig.ps_consumers)
      report.Report.rp_transactions
  in
  check Alcotest.bool "uri dep on stream field" true
    (List.exists
       (fun (d : Txn.dep) ->
         d.Txn.dep_to_field = "uri" && d.Txn.dep_from_path = [ "stream" ])
       media_tx.Report.tr_deps);
  check Alcotest.bool "dynamic uri flagged" true media_tx.Report.tr_dynamic_uri

let test_raw_socket_extension () =
  (* §4 extension: the HTTP request text written through a raw socket is
     reconstructed like any other text protocol. *)
  let report =
    analyze_activity (fun b ->
        let sock = B.new_obj b Api.java_socket [ B.vstr "h.example"; B.vint 80 ] in
        let os =
          B.call_ret b (Ir.Obj Api.output_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.output_stream) sock Api.java_socket
               "getOutputStream" [])
        in
        B.call b
          (B.virtual_call os Api.output_stream "write" [ B.vstr "GET /raw/item?id=" ]);
        let et = B.new_obj b Api.edit_text [] in
        let id =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str et Api.edit_text "getText" [])
        in
        B.call b (B.virtual_call os Api.output_stream "write" [ B.vl id ]);
        B.call b
          (B.virtual_call os Api.output_stream "write"
             [ B.vstr " HTTP/1.1\r\nHost: h.example\r\n\r\n" ]);
        let input =
          B.call_ret b (Ir.Obj Api.input_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.input_stream) sock Api.java_socket
               "getInputStream" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.io_utils "toString" [ B.vl input ])
        in
        let j = B.new_obj b Api.json_object [ B.vl body ] in
        let v =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "item" ])
        in
        ignore v)
  in
  let tr = only_tx report in
  check Alcotest.string "socket uri signature" "http://h\\.example/raw/item\\?id=(.*)"
    (uri_regex tr);
  check Alcotest.(list string) "socket response keys" [ "item" ]
    (Msgsig.body_keywords tr.Report.tr_response.Msgsig.ps_body)

let test_report_dedup () =
  (* The same fetch called from two entry points produces one deduped
     transaction. *)
  let cls = "com.t.Main" in
  let fetch =
    B.mk_meth ~cls ~name:"fetch" ~params:[] ~ret:Ir.Void (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/same")) in
        ignore (apache_get b url))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "fetch" []))
  in
  let on_resume =
    B.mk_meth ~cls ~name:"onResume" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "fetch" []))
  in
  let program =
    {
      Ir.p_classes = [ B.mk_cls ~super:Api.activity cls [ on_create; on_resume; fetch ] ];
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.t" ~activities:[ cls ] program in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  check Alcotest.int "deduplicated" 1 (List.length report.Report.rp_transactions)

let () =
  Alcotest.run "extractocol"
    [
      ( "absval",
        [
          tc "strip prefix" test_strip_prefix;
          tc "widen to rep" test_widen_sig_rep;
          tc "state merger objects" test_state_merger_objects;
          tc "prov through heap" test_collect_prov_through_heap;
        ] );
      ( "signatures",
        [
          tc "loop produces rep" test_loop_produces_rep;
          tc "resource lookup" test_resource_lookup_in_signature;
          tc "form body" test_post_form_body;
          tc "json builder body" test_json_builder_body;
          tc "urlconnection stack" test_urlconn_stack;
          tc "okhttp stack" test_okhttp_stack;
          tc "gson reflection" test_gson_response_fields;
          tc "xml response" test_xml_response_signature;
        ] );
      ( "behaviour",
        [
          tc "consumers and deps" test_consumer_and_dep_tracking;
          tc "raw socket extension" test_raw_socket_extension;
          tc "report dedup" test_report_dedup;
        ] );
    ]
