(* End-to-end tests against the paper's evaluation claims: per-app static
   coverage equals Table 1's Extractocol column, dynamic coverage matches
   the spec-derived visibility sets, every captured supported request
   matches a static signature (§5.1 "signature validity"), case studies
   reproduce their tables, obfuscation does not change results, and the
   replay of §5.3 works. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Apk = Extr_apk.Apk
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Regex = Extr_siglang.Regex
module Report = Extr_extractocol.Report
module Pipeline = Extr_extractocol.Pipeline
module Txn = Extr_extractocol.Txn
module Obfuscator = Extr_apk.Obfuscator
module Spec = Extr_corpus.Spec
module Synth = Extr_corpus.Synth
module Corpus = Extr_corpus.Corpus
module Case_studies = Extr_corpus.Case_studies
module Fuzz = Extr_fuzz.Fuzz
module Eval = Extr_eval.Eval
module Replay = Extr_eval.Replay

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* A representative subset of the corpus keeps the suite fast; the full
   sweep runs in the bench harness. *)
let sample_apps = [ "Diode"; "radio reddit"; "iFixIt"; "5miles"; "GEEK"; "Tumblr" ]

let sample_entries () =
  let entries = Corpus.table1 () in
  List.filter_map (fun n -> Corpus.find entries n) sample_apps

let evaluated =
  lazy (List.map (fun e -> (e.Corpus.c_app.Spec.a_name, Eval.evaluate e)) (sample_entries ()))

let eval_of name = List.assoc name (Lazy.force evaluated)

(* ------------------------------------------------------------------ *)
(* Coverage                                                           *)
(* ------------------------------------------------------------------ *)

let test_static_counts_match_table1 () =
  List.iter
    (fun (name, ae) ->
      match ae.Eval.ae_row with
      | None -> ()
      | Some r ->
          let c = Eval.coverage ae in
          let sg, sp, su, sd = c.Eval.cr_static in
          let tg, _, _ = r.Synth.t_get
          and tp, _, _ = r.Synth.t_post
          and tu, _, _ = r.Synth.t_put
          and td, _, _ = r.Synth.t_delete in
          check Alcotest.(list int) (name ^ " static per method")
            [ tg; tp; tu; td ] [ sg; sp; su; sd ];
          (* Table 1 is reproduced cell-exactly: the manual and
             auto/source series and the #Pair column match the paper
             rows too. *)
          let mg, mp, mu, md = c.Eval.cr_manual in
          let _, tmg, _ = r.Synth.t_get
          and _, tmp, _ = r.Synth.t_post
          and _, tmu, _ = r.Synth.t_put
          and _, tmd, _ = r.Synth.t_delete in
          check Alcotest.(list int) (name ^ " manual per method")
            [ tmg; tmp; tmu; tmd ] [ mg; mp; mu; md ];
          let ag, ap, au, ad = c.Eval.cr_auto in
          let _, _, tag = r.Synth.t_get
          and _, _, tap = r.Synth.t_post
          and _, _, tau = r.Synth.t_put
          and _, _, tad = r.Synth.t_delete in
          check Alcotest.(list int) (name ^ " auto/source per method")
            [ tag; tap; tau; tad ] [ ag; ap; au; ad ];
          check Alcotest.int (name ^ " pairs") r.Synth.t_pairs c.Eval.cr_pairs)
    (Lazy.force evaluated)

let test_dynamic_counts_match_spec () =
  List.iter
    (fun (name, ae) ->
      let spec_visible policy =
        Spec.dynamically_visible ae.Eval.ae_app ~policy
        |> List.map (fun e -> e.Spec.e_id)
        |> List.sort_uniq compare
      in
      check Alcotest.(list string) (name ^ " manual coverage")
        (spec_visible `Manual)
        (Fuzz.observed_endpoints ae.Eval.ae_manual);
      check Alcotest.(list string) (name ^ " auto coverage")
        (spec_visible `Auto)
        (Fuzz.observed_endpoints ae.Eval.ae_auto))
    (Lazy.force evaluated)

let test_signature_validity () =
  (* §5.1: all signatures with corresponding traffic generate a valid
     match. *)
  List.iter
    (fun (name, ae) ->
      let matched, total = Eval.signature_validity ae ae.Eval.ae_full in
      check Alcotest.int (name ^ " all supported traffic matches") total matched;
      check Alcotest.bool (name ^ " non-empty traffic") true (total > 0))
    (Lazy.force evaluated)

let test_static_beats_fuzzing_on_closed () =
  (* The headline Table-1 claim: summed over closed-source apps,
     Extractocol finds more unique messages than manual fuzzing, which
     finds more than automatic fuzzing.  (Per-app exceptions exist in the
     paper too — e.g. Tumblr's automatic run saw more GETs than the
     manual session.) *)
  let totals =
    List.fold_left
      (fun (s, m, a) (_, ae) ->
        if ae.Eval.ae_app.Spec.a_closed then begin
          let total (x, y, z, w) = x + y + z + w in
          let cov = Eval.coverage ae in
          ( s + total cov.Eval.cr_static,
            m + total cov.Eval.cr_manual,
            a + total cov.Eval.cr_auto )
        end
        else (s, m, a))
      (0, 0, 0) (Lazy.force evaluated)
  in
  let s, m, a = totals in
  check Alcotest.bool "static > manual (closed total)" true (s > m);
  check Alcotest.bool "manual > auto (closed total)" true (m > a)

(* ------------------------------------------------------------------ *)
(* Case studies                                                       *)
(* ------------------------------------------------------------------ *)

let case_report ?scope name =
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries name) in
  let options = { Pipeline.default_options with Pipeline.op_scope = scope } in
  (Pipeline.analyze ~options (Lazy.force e.Corpus.c_apk)).Pipeline.an_report

let test_radio_reddit_table3 () =
  let report = case_report "radio reddit" in
  check Alcotest.int "six transactions" 6 (List.length report.Report.rp_transactions);
  let find frag =
    List.find_opt
      (fun tr ->
        let flat =
          String.concat ""
            (String.split_on_char '\\'
               (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri))
        in
        let rec has i =
          i + String.length frag <= String.length flat
          && (String.sub flat i (String.length frag) = frag || has (i + 1))
        in
        has 0)
      report.Report.rp_transactions
  in
  (* Save/unsave alternation in one signature. *)
  (match find "api/unsave" with
  | Some tr ->
      let r = Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri in
      check Alcotest.bool "alternation" true (String.contains r '|')
  | None -> Alcotest.fail "save transaction missing");
  (* The vote request depends on login's modhash and cookie. *)
  match find "api/vote" with
  | Some tr ->
      let dep_fields = List.map (fun d -> d.Txn.dep_to_field) tr.Report.tr_deps in
      check Alcotest.bool "uh dep" true (List.mem "query:uh" dep_fields);
      check Alcotest.bool "cookie dep" true (List.mem "header:Cookie" dep_fields)
  | None -> Alcotest.fail "vote transaction missing"

let test_ted_table4 () =
  let report = case_report "TED (case study)" in
  check Alcotest.int "eight transactions" 8 (List.length report.Report.rp_transactions);
  (* DB-mediated dependency: video fetch via db:talks. *)
  let db_mediated =
    List.exists
      (fun tr ->
        List.exists
          (fun (d : Txn.dep) -> d.Txn.dep_via = Some "db:talks")
          tr.Report.tr_deps)
      report.Report.rp_transactions
  in
  check Alcotest.bool "db-mediated dependency" true db_mediated;
  (* Figure 1: a dynamically-derived URI whose response feeds the player. *)
  let prefetch_chain =
    List.exists
      (fun tr ->
        tr.Report.tr_dynamic_uri
        && List.mem Msgsig.To_media_player tr.Report.tr_response.Msgsig.ps_consumers)
      report.Report.rp_transactions
  in
  check Alcotest.bool "figure-1 chain" true prefetch_chain

let test_kayak_table6_and_replay () =
  let report = case_report ~scope:"com.kayak" "Kayak (case study)" in
  (* The User-Agent header is identified (§5.3). *)
  let ua =
    List.exists
      (fun tr ->
        List.exists
          (fun (k, v) ->
            k = "User-Agent" && Strsig.to_regex v = "kayakandroidphone/8\\.1")
          tr.Report.tr_request.Msgsig.rs_headers)
      report.Report.rp_transactions
  in
  check Alcotest.bool "user-agent identified" true ua;
  check Alcotest.bool "replay retrieves fares" true
    (Replay.flight_search Case_studies.kayak report)

let test_diode_fig3 () =
  let ae = eval_of "Diode" in
  let listing =
    List.find
      (fun tr -> String.length (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri) > 80)
      ae.Eval.ae_report.Report.rp_transactions
  in
  let regex = Strsig.to_regex listing.Report.tr_request.Msgsig.rs_uri in
  List.iter
    (fun s ->
      check Alcotest.bool ("listing matches " ^ s) true
        (Regex.string_matches ~pattern:regex s))
    [
      "http://www.reddit.com/search/.json?q=a&sort=top";
      "http://www.reddit.com/r/pics/new.json?&";
    ]

let test_shared_dp_fig5 () =
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "SharedDP") in
  let apk = Lazy.force e.Corpus.c_apk in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  check Alcotest.int "two transactions from one DP" 2
    (List.length report.Report.rp_transactions);
  let merged =
    (Pipeline.analyze
       ~options:{ Pipeline.default_options with Pipeline.op_context_sensitive = false }
       apk)
      .Pipeline.an_report
  in
  check Alcotest.bool "context-insensitive merges" true
    (List.length merged.Report.rp_transactions < 2)

(* ------------------------------------------------------------------ *)
(* Obfuscation invariance (§5)                                        *)
(* ------------------------------------------------------------------ *)

let test_obfuscation_invariance () =
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "radio reddit") in
  let apk = Lazy.force e.Corpus.c_apk in
  let plain = (Pipeline.analyze apk).Pipeline.an_report in
  let obf_apk, _ = Obfuscator.obfuscate apk in
  let obf = (Pipeline.analyze obf_apk).Pipeline.an_report in
  let sigs r =
    List.map
      (fun tr -> Fmt.str "%a" Msgsig.pp_request_sig tr.Report.tr_request)
      r.Report.rp_transactions
    |> List.sort compare
  in
  check Alcotest.(list string) "identical signatures under obfuscation"
    (sigs plain) (sigs obf)

let test_library_deobfuscation () =
  (* §3.4: when library code is obfuscated, pre-process to recover the
     identifier map by signature-pattern similarity.  The adversarial
     rename kills the analysis; de-obfuscation restores it exactly. *)
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "radio reddit") in
  let apk = Lazy.force e.Corpus.c_apk in
  let plain = (Pipeline.analyze apk).Pipeline.an_report in
  let obf, truth = Obfuscator.obfuscate_libraries apk in
  let broken = (Pipeline.analyze obf).Pipeline.an_report in
  check Alcotest.int "obfuscated libraries defeat the models" 0
    (List.length broken.Report.rp_transactions);
  let restored, mapping = Extr_apk.Deobfuscator.deobfuscate obf in
  (* Every library class the app uses is recovered to its true name. *)
  List.iter
    (fun (c : Ir.cls) ->
      if c.Ir.c_library then begin
        let obf_name = Obfuscator.rename_class truth c.Ir.c_name in
        match List.assoc_opt obf_name mapping.Extr_apk.Deobfuscator.dm_classes with
        | Some known ->
            check Alcotest.string ("class " ^ obf_name) c.Ir.c_name known
        | None -> ()
      end)
    apk.Apk.program.Ir.p_classes;
  let rest = (Pipeline.analyze restored).Pipeline.an_report in
  let sigs r =
    List.map
      (fun tr -> Fmt.str "%a" Msgsig.pp_request_sig tr.Report.tr_request)
      r.Report.rp_transactions
    |> List.sort compare
  in
  check Alcotest.(list string) "analysis identical after de-obfuscation"
    (sigs plain) (sigs rest)

let test_multihop_async_iterations () =
  (* The §4 extension: a request part that crosses TWO asynchronous hops
     (handler 1 builds a literal fragment into field A; handler 2 derives
     field B from A; the click handler uses B).  One heuristic hop loses
     the hop-1 literal; two hops recover it. *)
  let module B = Extr_ir.Builder in
  let module Api = Extr_semantics.Api in
  let cls = "com.hop.Main" in
  let tim1 = "com.hop.T1" and tim2 = "com.hop.T2" and click = "com.hop.Click" in
  let act_ty = Ir.Obj cls in
  let fa = { Ir.fcls = cls; fname = "fa"; fty = Ir.Str } in
  let fb = { Ir.fcls = cls; fname = "fb"; fty = Ir.Str } in
  let holder_init c =
    B.mk_meth ~cls:c ~name:"<init>" ~params:[ B.local "a" act_ty ] ~ret:Ir.Void
      (fun b ->
        B.set_field b (Ir.this_var c)
          { Ir.fcls = c; fname = "act"; fty = act_ty }
          (Ir.Local (B.local "a" act_ty)))
  in
  let act_of b c =
    B.get_field b (Ir.this_var c) { Ir.fcls = c; fname = "act"; fty = act_ty }
  in
  let run1 =
    (* hop 2 source: fa = "zone=" + <input> *)
    B.mk_meth ~cls:tim1 ~name:"run" ~params:[] ~ret:Ir.Void (fun b ->
        let act = act_of b tim1 in
        let et = B.new_obj b Api.edit_text [] in
        let v =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str et Api.edit_text "getText" [])
        in
        let sb = B.new_obj b Api.string_builder [ B.vstr "zone=" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl v ]);
        let s =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        B.set_field b act fa (Ir.Local s))
  in
  let run2 =
    (* hop 1 source: fb = fa ^ "&v=2" *)
    B.mk_meth ~cls:tim2 ~name:"run" ~params:[] ~ret:Ir.Void (fun b ->
        let act = act_of b tim2 in
        let a = B.get_field b act fa in
        let sb = B.new_obj b Api.string_builder [] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl a ]);
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vstr "&v=2" ]);
        let s =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        B.set_field b act fb (Ir.Local s))
  in
  let on_click =
    B.mk_meth ~cls:click ~name:"onClick"
      ~params:[ B.local "v" (Ir.Obj Api.view) ]
      ~ret:Ir.Void
      (fun b ->
        let act = act_of b click in
        let frag = B.get_field b act fb in
        let sb =
          B.new_obj b Api.string_builder [ B.vstr "http://hop.example/q?" ]
        in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl frag ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  (* All three handlers are registered from DIFFERENT lifecycle methods,
     so no backward caller chain connects any two of them: only the
     setter-restart heuristic can bridge the hops, one field per pass. *)
  let on_start =
    B.mk_meth ~cls ~name:"onStart" ~params:[] ~ret:Ir.Void (fun b ->
        let this = Ir.this_var cls in
        let t = B.new_obj b Api.timer [] in
        let h1 = B.new_obj b tim1 [ Ir.Local this ] in
        B.call b (B.virtual_call t Api.timer "schedule" [ B.vl h1; B.vint 10 ]))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let this = Ir.this_var cls in
        let t = B.new_obj b Api.timer [] in
        let h2 = B.new_obj b tim2 [ Ir.Local this ] in
        B.call b (B.virtual_call t Api.timer "schedule" [ B.vl h2; B.vint 20 ]))
  in
  let on_resume =
    B.mk_meth ~cls ~name:"onResume" ~params:[] ~ret:Ir.Void (fun b ->
        let this = Ir.this_var cls in
        let lsn = B.new_obj b click [ Ir.Local this ] in
        let view =
          B.call_ret b (Ir.Obj Api.view)
            (B.virtual_call ~ret:(Ir.Obj Api.view) this Api.activity
               "findViewById" [ B.vint 1 ])
        in
        B.call b (B.virtual_call view Api.view "setOnClickListener" [ B.vl lsn ]))
  in
  let mk_holder c super cb =
    B.mk_cls ~super
      ~fields:[ B.mk_field "act" act_ty ]
      c
      [ holder_init c; cb ]
  in
  let program =
    {
      Ir.p_classes =
        [
          B.mk_cls ~super:Api.activity
            ~fields:[ B.mk_field "fa" Ir.Str; B.mk_field "fb" Ir.Str ]
            cls [ on_create; on_resume; on_start ];
          mk_holder tim1 Api.timer_task run1;
          mk_holder tim2 Api.timer_task run2;
          mk_holder click Api.on_click_listener on_click;
        ];
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.hop" ~activities:[ cls ] program in
  let uri_of iterations =
    let options =
      { Pipeline.default_options with Pipeline.op_async_iterations = iterations }
    in
    let report = (Pipeline.analyze ~options apk).Pipeline.an_report in
    match report.Report.rp_transactions with
    | [ tr ] -> Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri
    | _ -> "?"
  in
  let one_hop = uri_of 1 in
  let two_hops = uri_of 3 in
  let has frag s =
    let rec go i =
      i + String.length frag <= String.length s
      && (String.sub s i (String.length frag) = frag || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "hop-2 literal missed with one iteration" false
    (has "zone=" one_hop);
  check Alcotest.bool "hop-2 literal recovered with iterations" true
    (has "zone=" two_hops)

(* ------------------------------------------------------------------ *)
(* Byte accounting sanity (Table 2)                                    *)
(* ------------------------------------------------------------------ *)

let test_reflection_extension () =
  (* §4 limitation lifted for the constant-string case: a fetcher class
     instantiated and invoked purely through java.lang.reflect still
     yields its transaction, both statically and at runtime. *)
  let module B = Extr_ir.Builder in
  let module Api = Extr_semantics.Api in
  let fetcher = "com.refl.Fetcher" in
  let main = "com.refl.Main" in
  let init =
    B.mk_meth ~cls:fetcher ~name:"<init>" ~params:[] ~ret:Ir.Void (fun _ -> ())
  in
  let fetch =
    B.mk_meth ~cls:fetcher ~name:"fetch" ~params:[] ~ret:Ir.Void (fun b ->
        let client = B.new_obj b Api.default_http_client [] in
        let req = B.new_obj b Api.http_get [ B.vstr "https://refl/api?k=1" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
             "execute" [ B.vl req ]);
        B.return_void b)
  in
  let on_create =
    B.mk_meth ~cls:main ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let c =
          B.call_ret b (Ir.Obj Api.java_class)
            (B.static_call ~ret:(Ir.Obj Api.java_class) Api.java_class "forName"
               [ B.vstr fetcher ])
        in
        let o =
          B.call_ret b
            (Ir.Obj "java.lang.Object")
            (B.virtual_call ~ret:(Ir.Obj "java.lang.Object") c Api.java_class
               "newInstance" [])
        in
        let m =
          B.call_ret b (Ir.Obj Api.reflect_method)
            (B.virtual_call ~ret:(Ir.Obj Api.reflect_method) c Api.java_class
               "getMethod" [ B.vstr "fetch" ])
        in
        B.call b
          (B.virtual_call m Api.reflect_method "invoke" [ B.vl o ]);
        B.return_void b)
  in
  let apk =
    Apk.make ~package:"com.refl" ~activities:[ main ]
      {
        Ir.p_classes =
          [
            B.mk_cls fetcher [ init; fetch ];
            B.mk_cls ~super:Api.activity main [ on_create ];
          ]
          @ Api.library_classes;
        p_entries = [];
      }
  in
  (* Static extraction through the reflective call. *)
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  (match report.Report.rp_transactions with
  | [ tr ] ->
      check Alcotest.string "reflective URI extracted"
        "https://refl/api\\?k=1"
        (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri)
  | txs -> Alcotest.failf "expected 1 transaction, got %d" (List.length txs));
  (* Concrete execution through the same reflection. *)
  let net (req : Http.request) =
    check Alcotest.string "runtime reflective request"
      "https://refl/api?k=1"
      (Extr_httpmodel.Uri.to_string req.Http.req_uri);
    Http.response (Http.Text "ok")
  in
  let rt = Extr_runtime.Runtime.create ~net ~input:(fun () -> "") apk in
  ignore (Extr_runtime.Runtime.launch rt);
  check Alcotest.int "runtime fired the reflective fetch" 1
    (List.length (Extr_runtime.Runtime.captured_trace rt).Http.tr_entries)

let test_intent_resolution_extension () =
  (* §4 extension: intent-carried requests are missed under the paper
     configuration (deliberately) and recovered with op_intents. *)
  let entries = Corpus.table1 () in
  let e =
    Option.get
      (List.find_opt
         (fun (e : Corpus.entry) ->
           List.exists
             (fun (ep : Spec.endpoint) -> not ep.Spec.e_supported)
             e.Corpus.c_app.Spec.a_endpoints)
         entries)
  in
  let apk = Lazy.force e.Corpus.c_apk in
  let base =
    if e.Corpus.c_app.Spec.a_closed then Pipeline.default_options
    else Pipeline.open_source_options
  in
  let count options =
    List.length
      (Pipeline.analyze ~options apk).Pipeline.an_report.Report.rp_transactions
  in
  let supported =
    List.length (Spec.statically_visible e.Corpus.c_app)
  in
  let total = List.length e.Corpus.c_app.Spec.a_endpoints in
  check Alcotest.int "paper config misses intent endpoints" supported
    (count base);
  check Alcotest.int "intent resolution recovers them" total
    (count { base with Pipeline.op_intents = true })

let test_byte_accounting_sums () =
  let ae = eval_of "radio reddit" in
  let req, resp = Eval.byte_accounting ae ae.Eval.ae_full in
  check Alcotest.bool "request bytes classified" true
    (req.Eval.ba_k + req.Eval.ba_v + req.Eval.ba_n > 0);
  check Alcotest.bool "response bytes classified" true
    (resp.Eval.ba_k + resp.Eval.ba_v + resp.Eval.ba_n > 0);
  let k, v, n = Eval.account_percentages req in
  check (Alcotest.float 0.01) "percentages sum to 100" 100.0 (k +. v +. n)

(* ------------------------------------------------------------------ *)
(* Keyword shape (Figure 7)                                           *)
(* ------------------------------------------------------------------ *)

let test_response_keywords_subset_of_traffic () =
  (* The signature covers exactly the keys the app inspects, which is a
     subset of what is on the wire (§5.1). *)
  let ae = eval_of "radio reddit" in
  let static = Eval.static_keywords ae in
  let traffic = Eval.trace_keywords ae.Eval.ae_full in
  check Alcotest.bool "response keywords: signature <= traffic" true
    (static.Eval.kc_response <= traffic.Eval.kc_response)

let () =
  Alcotest.run "e2e"
    [
      ( "coverage",
        [
          tc "static matches table 1" test_static_counts_match_table1;
          tc "dynamic matches spec" test_dynamic_counts_match_spec;
          tc "signature validity" test_signature_validity;
          tc "static beats fuzzing" test_static_beats_fuzzing_on_closed;
        ] );
      ( "case-studies",
        [
          tc "radio reddit (table 3)" test_radio_reddit_table3;
          tc "TED (table 4, fig 1)" test_ted_table4;
          tc "Kayak (table 6, replay)" test_kayak_table6_and_replay;
          tc "Diode (fig 3)" test_diode_fig3;
          tc "SharedDP (fig 5)" test_shared_dp_fig5;
        ] );
      ( "robustness",
        [
          tc "obfuscation invariance" test_obfuscation_invariance;
          tc "library deobfuscation" test_library_deobfuscation;
          tc "multi-hop async iterations" test_multihop_async_iterations;
          tc "reflection extension" test_reflection_extension;
          tc "intent resolution extension" test_intent_resolution_extension;
          tc "byte accounting sums" test_byte_accounting_sums;
          tc "keywords subset" test_response_keywords_subset_of_traffic;
        ] );
    ]
