(* Runtime tests: the concrete Limple interpreter — values, control flow,
   library models, network capture — and the fuzzing policies against the
   simulated servers. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Uri = Extr_httpmodel.Uri
module Runtime = Extr_runtime.Runtime
module Rvalue = Extr_runtime.Rvalue
module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus
module Case_studies = Extr_corpus.Case_studies
module Server = Extr_server.Server
module Fuzz = Extr_fuzz.Fuzz

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let echo_server (req : Http.request) : Http.response =
  Http.response
    ~headers:[ ("x-endpoint", "echo") ]
    (Http.Json
       (Json.Obj
          [
            ("path", Json.Str req.Http.req_uri.Uri.path);
            ("method", Json.Str (Http.meth_to_string req.Http.req_meth));
            ("token", Json.Str "tok123");
          ]))

let run_main ?(net = echo_server) ?(input = fun () -> "42") build =
  let cls = "com.rt.Main" in
  let on_create = B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void build in
  let program =
    {
      Ir.p_classes =
        B.mk_cls ~super:Api.activity cls [ on_create ] :: Api.library_classes;
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.rt" ~activities:[ cls ] program in
  let rt = Runtime.create ~net ~input apk in
  ignore (Runtime.launch rt);
  rt

(* ------------------------------------------------------------------ *)
(* Core interpretation                                                *)
(* ------------------------------------------------------------------ *)

let test_arithmetic_and_branches () =
  (* if 5*3+2 > 10 then GET /big else GET /small *)
  let rt =
    run_main (fun b ->
        let n =
          B.define b Ir.Int
            (Ir.Binop (Ir.Mul, B.vint 5, B.vint 3))
        in
        let n2 = B.define b Ir.Int (Ir.Binop (Ir.Add, B.vl n, B.vint 2)) in
        let cond = B.define b Ir.Bool (Ir.Binop (Ir.Gt, B.vl n2, B.vint 10)) in
        let url = B.define b Ir.Str (Ir.Val (B.vstr "")) in
        B.ite b (B.vl cond)
          (fun b -> B.assign b url (Ir.Val (B.vstr "http://h/big")))
          (fun b -> B.assign b url (Ir.Val (B.vstr "http://h/small")));
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  let trace = Runtime.captured_trace rt in
  match trace.Http.tr_entries with
  | [ te ] ->
      check Alcotest.string "branch taken" "/big"
        te.Http.te_tx.Http.tx_request.Http.req_uri.Uri.path
  | l -> Alcotest.failf "expected one request, got %d" (List.length l)

let test_loop_builds_string () =
  let rt =
    run_main (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/x?" ] in
        let i = B.define b Ir.Int (Ir.Val (B.vint 0)) in
        B.while_ b
          (fun b -> B.vl (B.define b Ir.Bool (Ir.Binop (Ir.Lt, B.vl i, B.vint 3))))
          (fun b ->
            B.call b
              (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb
                 Api.string_builder "append" [ B.vstr "a" ]);
            B.assign b i (Ir.Binop (Ir.Add, B.vl i, B.vint 1)));
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  match (Runtime.captured_trace rt).Http.tr_entries with
  | [ te ] ->
      check Alcotest.string "three iterations" "http://h/x?aaa"
        (Uri.to_string te.Http.te_tx.Http.tx_request.Http.req_uri)
  | _ -> Alcotest.fail "one request expected"

let test_json_response_parsing () =
  (* Parse the echoed JSON and re-send its token as a query value. *)
  let rt =
    run_main (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/first")) in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        let resp =
          B.call_ret b (Ir.Obj Api.http_response)
            (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
               Api.http_client "execute" [ B.vl req ])
        in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let j = B.new_obj b Api.json_object [ B.vl body ] in
        let token =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "token" ])
        in
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/second?t=" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl token ]);
        let url2 =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req2 = B.new_obj b Api.http_get [ B.vl url2 ] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req2 ]))
  in
  match (Runtime.captured_trace rt).Http.tr_entries with
  | [ _; second ] ->
      check Alcotest.string "token flows into next request"
        "http://h/second?t=tok123"
        (Uri.to_string second.Http.te_tx.Http.tx_request.Http.req_uri)
  | l -> Alcotest.failf "expected two requests, got %d" (List.length l)

let test_edittext_input () =
  let rt =
    run_main ~input:(fun () -> "banana") (fun b ->
        let et = B.new_obj b Api.edit_text [] in
        let s =
          B.call_ret b Ir.Str (B.virtual_call ~ret:Ir.Str et Api.edit_text "getText" [])
        in
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/q?s=" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl s ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  match (Runtime.captured_trace rt).Http.tr_entries with
  | [ te ] ->
      check Alcotest.string "input used" "http://h/q?s=banana"
        (Uri.to_string te.Http.te_tx.Http.tx_request.Http.req_uri)
  | _ -> Alcotest.fail "one request expected"

let test_click_registration_and_fire () =
  let cls = "com.rt.Main" and lsn_cls = "com.rt.L" in
  let on_click =
    B.mk_meth ~cls:lsn_cls ~name:"onClick"
      ~params:[ B.local "v" (Ir.Obj Api.view) ]
      ~ret:Ir.Void
      (fun b ->
        let url = B.define b Ir.Str (Ir.Val (B.vstr "http://h/clicked")) in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        B.call b (B.virtual_call client Api.http_client "execute" [ B.vl req ]))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let lsn = B.new_obj b lsn_cls [] in
        let view =
          B.call_ret b (Ir.Obj Api.view)
            (B.virtual_call ~ret:(Ir.Obj Api.view) (Ir.this_var cls) Api.activity
               "findViewById" [ B.vint 1 ])
        in
        B.call b (B.virtual_call view Api.view "setOnClickListener" [ B.vl lsn ]))
  in
  let program =
    {
      Ir.p_classes =
        [
          B.mk_cls ~super:Api.activity cls [ on_create ];
          B.mk_cls ~super:Api.on_click_listener lsn_cls
            [
              B.mk_meth ~cls:lsn_cls ~name:"<init>" ~params:[] ~ret:Ir.Void
                (fun _ -> ());
              on_click;
            ];
        ]
        @ Api.library_classes;
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.rt" ~activities:[ cls ] program in
  let rt = Runtime.create ~net:echo_server ~input:(fun () -> "x") apk in
  ignore (Runtime.launch rt);
  check Alcotest.int "registration captured" 1 (List.length rt.Runtime.registrations);
  check Alcotest.int "nothing fired yet" 0
    (List.length (Runtime.captured_trace rt).Http.tr_entries);
  List.iter (Runtime.fire rt) rt.Runtime.registrations;
  check Alcotest.int "click fired request" 1
    (List.length (Runtime.captured_trace rt).Http.tr_entries)

let test_raw_socket_runtime () =
  let rt =
    run_main (fun b ->
        let sock = B.new_obj b Api.java_socket [ B.vstr "h.example"; B.vint 80 ] in
        let os =
          B.call_ret b (Ir.Obj Api.output_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.output_stream) sock Api.java_socket
               "getOutputStream" [])
        in
        B.call b
          (B.virtual_call os Api.output_stream "write"
             [ B.vstr "GET /raw/x HTTP/1.1\r\nHost: h.example\r\n\r\n" ]);
        let input =
          B.call_ret b (Ir.Obj Api.input_stream)
            (B.virtual_call ~ret:(Ir.Obj Api.input_stream) sock Api.java_socket
               "getInputStream" [])
        in
        ignore input)
  in
  match (Runtime.captured_trace rt).Http.tr_entries with
  | [ te ] ->
      check Alcotest.string "socket request reconstructed" "http://h.example/raw/x"
        (Uri.to_string te.Http.te_tx.Http.tx_request.Http.req_uri)
  | l -> Alcotest.failf "expected one request, got %d" (List.length l)

let test_fuel_exhaustion () =
  check Alcotest.bool "infinite loop trapped" true
    (try
       let _rt =
         run_main (fun b ->
             let l = B.fresh_label b in
             B.label b l;
             B.goto b l)
       in
       false
     with Runtime.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Server + fuzz                                                      *)
(* ------------------------------------------------------------------ *)

let test_server_template_matching () =
  let app = Case_studies.radio_reddit in
  let net = Server.make app in
  let resp =
    net
      (Http.request Http.GET
         (Uri.of_string "http://www.radioreddit.com/api/hiphop/status.json"))
  in
  check Alcotest.(option string) "endpoint matched" (Some "status")
    (Http.header "x-endpoint" resp.Http.resp_headers);
  let nf =
    net (Http.request Http.GET (Uri.of_string "http://www.radioreddit.com/nope"))
  in
  check Alcotest.int "unknown path 404" 404 nf.Http.resp_status

let test_server_response_includes_unread_fields () =
  let app = Case_studies.radio_reddit in
  let net = Server.make app in
  let resp =
    net
      (Http.request Http.GET
         (Uri.of_string "http://www.radioreddit.com/api/hiphop/status.json"))
  in
  match resp.Http.resp_body with
  | Http.Json j ->
      (* "album" is never parsed by the app but is on the wire (§5.1). *)
      check Alcotest.bool "album on the wire" true
        (List.mem "album" (Json.distinct_keys j))
  | _ -> Alcotest.fail "expected json"

let test_server_access_control () =
  let app = Case_studies.kayak in
  let net = Server.make app in
  let uri = Uri.of_string "https://www.kayak.com/k/authajax" in
  let denied = net (Http.request Http.POST uri) in
  check Alcotest.int "no UA rejected" 403 denied.Http.resp_status;
  let ok =
    net
      (Http.request
         ~headers:[ ("User-Agent", "kayakandroidphone/8.1") ]
         Http.POST uri)
  in
  check Alcotest.int "UA accepted" 200 ok.Http.resp_status

let test_fuzz_policies_differ () =
  let entry = Option.get (Corpus.find (Corpus.case_studies ()) "radio reddit") in
  let apk = Lazy.force entry.Corpus.c_apk in
  let auto = Fuzz.run entry.Corpus.c_app apk ~policy:`Auto in
  let manual = Fuzz.run entry.Corpus.c_app apk ~policy:`Manual in
  let auto_eps = Fuzz.observed_endpoints auto in
  let manual_eps = Fuzz.observed_endpoints manual in
  (* login is custom UI: manual only. *)
  check Alcotest.bool "login manual only" true
    (List.mem "login" manual_eps && not (List.mem "login" auto_eps));
  check Alcotest.bool "auto subset of manual" true
    (List.for_all (fun e -> List.mem e manual_eps) auto_eps)

let test_fuzz_trigger_labels () =
  let entry = Option.get (Corpus.find (Corpus.case_studies ()) "radio reddit") in
  let apk = Lazy.force entry.Corpus.c_apk in
  let trace = Fuzz.run entry.Corpus.c_app apk ~policy:`Full in
  let labels =
    List.map
      (fun (te : Http.trace_entry) -> Http.trigger_to_string te.Http.te_trigger)
      trace.Http.tr_entries
  in
  check Alcotest.bool "custom-ui label present" true
    (List.exists (fun l -> l = "custom-ui:login") labels)

let () =
  Alcotest.run "runtime"
    [
      ( "interp",
        [
          tc "arithmetic and branches" test_arithmetic_and_branches;
          tc "loop builds string" test_loop_builds_string;
          tc "json response parsing" test_json_response_parsing;
          tc "edittext input" test_edittext_input;
          tc "click registration" test_click_registration_and_fire;
          tc "raw socket" test_raw_socket_runtime;
          tc "fuel exhaustion" test_fuel_exhaustion;
        ] );
      ( "server",
        [
          tc "template matching" test_server_template_matching;
          tc "unread fields on wire" test_server_response_includes_unread_fields;
          tc "access control" test_server_access_control;
        ] );
      ( "fuzz",
        [
          tc "policies differ" test_fuzz_policies_differ;
          tc "trigger labels" test_fuzz_trigger_labels;
        ] );
    ]
