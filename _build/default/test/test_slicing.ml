(* Slicing tests: demarcation-point discovery, request/response slices,
   object-aware augmentation, slice fractions, scoping, and the
   asynchronous-event heuristic at the slicing level. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Callbacks = Extr_semantics.Callbacks
module Demarcation = Extr_semantics.Demarcation
module Slicer = Extr_slicing.Slicer
module Pipeline = Extr_extractocol.Pipeline
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(** Activity with one Apache GET, one noise method. *)
let fixture () =
  let cls = "com.t.A" in
  let fetch =
    B.mk_meth ~cls ~name:"fetch" ~params:[] ~ret:Ir.Void (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "http://h/a?x=" ] in
        let piece = B.define b Ir.Str (Ir.Val (B.vstr "1")) in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl piece ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        let resp =
          B.call_ret b (Ir.Obj Api.http_response)
            (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
               "execute" [ B.vl req ])
        in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let tv = B.new_obj b Api.text_view [] in
        B.call b (B.virtual_call tv Api.text_view "setText" [ B.vl body ]))
  in
  let noise =
    B.mk_meth ~cls ~name:"noise" ~params:[] ~ret:Ir.Void (fun b ->
        let a = B.define b Ir.Int (Ir.Val (B.vint 1)) in
        let c = B.define b Ir.Int (Ir.Binop (Ir.Mul, B.vl a, B.vint 3)) in
        ignore c)
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "fetch" []);
        B.call b (B.virtual_call (Ir.this_var cls) cls "noise" []))
  in
  let program =
    {
      Ir.p_classes =
        B.mk_cls ~super:Api.activity cls [ on_create; fetch; noise ]
        :: Api.library_classes;
      p_entries = [];
    }
  in
  let prog = Prog.of_program program in
  let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
  (prog, cg)

let test_dp_discovery () =
  let prog, cg = fixture () in
  ignore cg;
  let dps = Slicer.find_demarcation_points prog in
  check Alcotest.int "one demarcation point" 1 (List.length dps);
  match dps with
  | [ dp ] ->
      check Alcotest.string "it is the execute call"
        "HttpClient.execute(HttpUriRequest)"
        dp.Slicer.dp_info.Demarcation.dp_desc
  | _ -> ()

let test_dp_scope_filter () =
  let prog, _ = fixture () in
  check Alcotest.int "scope excludes" 0
    (List.length (Slicer.find_demarcation_points ~scope:"com.other" prog));
  check Alcotest.int "scope includes" 1
    (List.length (Slicer.find_demarcation_points ~scope:"com.t" prog))

let test_request_slice_contains_uri_code () =
  let prog, cg = fixture () in
  let slices = Slicer.run prog cg in
  match slices.Slicer.r_request with
  | [ sl ] ->
      (* The slice must include statements of fetch building the URI: at
         minimum the StringBuilder init/append and HttpGet init. *)
      check Alcotest.bool "non-trivial request slice" true
        (Ir.Stmt_set.cardinal sl.Slicer.sl_stmts >= 4)
  | _ -> Alcotest.fail "expected one request slice"

let test_response_slice_nonempty () =
  let prog, cg = fixture () in
  let slices = Slicer.run prog cg in
  match slices.Slicer.r_response with
  | [ sl ] ->
      check Alcotest.bool "response processing sliced" true
        (Ir.Stmt_set.cardinal sl.Slicer.sl_stmts >= 2)
  | _ -> Alcotest.fail "expected one response slice"

let test_noise_excluded () =
  let prog, cg = fixture () in
  let slices = Slicer.run prog cg in
  let union =
    List.fold_left
      (fun acc sl -> Ir.Stmt_set.union acc sl.Slicer.sl_stmts)
      Ir.Stmt_set.empty
      (slices.Slicer.r_request @ slices.Slicer.r_response)
  in
  let noise_mid = { Ir.id_cls = "com.t.A"; id_name = "noise" } in
  check Alcotest.bool "noise method untouched" false
    (Ir.Stmt_set.exists (fun s -> Ir.Method_id.equal s.Ir.sid_meth noise_mid) union)

let test_slice_fraction_below_one () =
  let prog, cg = fixture () in
  let slices = Slicer.run prog cg in
  let f = Slicer.slice_fraction slices in
  check Alcotest.bool "fraction in (0,1)" true (f > 0.0 && f < 1.0)

let test_augmentation_monotone () =
  let prog, cg = fixture () in
  let with_aug =
    Slicer.run ~options:{ Slicer.default_options with Slicer.opt_augmentation = true }
      prog cg
  in
  let without =
    Slicer.run
      ~options:{ Slicer.default_options with Slicer.opt_augmentation = false }
      prog cg
  in
  let size r =
    List.fold_left
      (fun acc sl -> acc + Ir.Stmt_set.cardinal sl.Slicer.sl_stmts)
      0 r.Slicer.r_response
  in
  check Alcotest.bool "augmentation only adds" true (size with_aug >= size without)

let test_diode_fraction_near_paper () =
  (* Figure 3: Diode's slices are 6.3% of the code; ours must land in the
     same ballpark. *)
  let entry = Option.get (Corpus.find (Corpus.case_studies ()) "Diode") in
  let apk = Lazy.force entry.Corpus.c_apk in
  let analysis = Pipeline.analyze ~options:Pipeline.open_source_options apk in
  let f = analysis.Pipeline.an_report.Extr_extractocol.Report.rp_slice_fraction in
  check Alcotest.bool "between 3% and 12%" true (f > 0.03 && f < 0.12)

(* Every demarcation-point class in the registry is discovered from a
   one-call program (the paper models 39 DPs over 16 classes; here each
   registry family gets a probe). *)
let dp_probe build =
  let cls = "com.t.Probe" in
  let m = B.mk_meth ~cls ~name:"go" ~params:[] ~ret:Ir.Void build in
  let prog =
    Prog.of_program
      {
        Ir.p_classes = B.mk_cls cls [ m ] :: Api.library_classes;
        p_entries = [];
      }
  in
  List.length (Slicer.find_demarcation_points prog)

let test_dp_registry_families () =
  check Alcotest.int "apache execute" 1
    (dp_probe (fun b ->
         let c = B.new_obj b Api.default_http_client [] in
         let r = B.new_obj b Api.http_get [ B.vstr "http://h/" ] in
         B.call b
           (B.virtual_call ~ret:(Ir.Obj Api.http_response) c Api.http_client
              "execute" [ B.vl r ])));
  check Alcotest.int "urlconn getInputStream" 1
    (dp_probe (fun b ->
         let u = B.new_obj b Api.java_url [ B.vstr "http://h/" ] in
         let conn =
           B.call_ret b
             (Ir.Obj Api.http_url_connection)
             (B.virtual_call
                ~ret:(Ir.Obj Api.http_url_connection)
                u Api.java_url "openConnection" [])
         in
         ignore
           (B.call_ret b (Ir.Obj Api.input_stream)
              (B.virtual_call ~ret:(Ir.Obj Api.input_stream) conn
                 Api.http_url_connection "getInputStream" []))));
  check Alcotest.int "volley add" 1
    (dp_probe (fun b ->
         let q = B.new_obj b Api.request_queue [] in
         let lsn = B.define b (Ir.Obj Api.volley_listener) (Ir.Val B.vnull) in
         let r =
           B.new_obj b Api.string_request
             [ B.vstr "GET"; B.vstr "http://h/"; B.vl lsn ]
         in
         B.call b (B.virtual_call q Api.request_queue "add" [ B.vl r ])));
  check Alcotest.int "okhttp execute" 1
    (dp_probe (fun b ->
         let c = B.new_obj b Api.okhttp_client [] in
         let call =
           B.call_ret b (Ir.Obj Api.okhttp_call)
             (B.virtual_call ~ret:(Ir.Obj Api.okhttp_call) c Api.okhttp_client
                "newCall" [ B.vnull ])
         in
         ignore
           (B.call_ret b (Ir.Obj Api.okhttp_response)
              (B.virtual_call
                 ~ret:(Ir.Obj Api.okhttp_response)
                 call Api.okhttp_call "execute" []))));
  check Alcotest.int "media player" 1
    (dp_probe (fun b ->
         let mp = B.new_obj b Api.media_player [] in
         B.call b
           (B.virtual_call mp Api.media_player "setDataSource"
              [ B.vstr "http://h/s" ])));
  check Alcotest.int "raw socket" 1
    (dp_probe (fun b ->
         let sk = B.new_obj b Api.java_socket [ B.vstr "h"; B.vint 80 ] in
         ignore
           (B.call_ret b (Ir.Obj Api.input_stream)
              (B.virtual_call ~ret:(Ir.Obj Api.input_stream) sk Api.java_socket
                 "getInputStream" []))));
  check Alcotest.int "no DP in plain code" 0
    (dp_probe (fun b ->
         let sb = B.new_obj b Api.string_builder [] in
         ignore
           (B.call_ret b Ir.Str
              (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" []))))

let test_request_response_slices_disjoint_roles () =
  (* The request slice contains the URI construction; the response slice
     contains the parse/display statements; both contain the DP. *)
  let prog, cg = fixture () in
  let r = Slicer.run prog cg in
  match (r.Slicer.r_request, r.Slicer.r_response) with
  | [ req ], [ resp ] ->
      let dp = (List.hd r.Slicer.r_dps).Slicer.dp_stmt in
      check Alcotest.bool "dp in request slice" true
        (Ir.Stmt_set.mem dp req.Slicer.sl_stmts);
      check Alcotest.bool "dp in response slice" true
        (Ir.Stmt_set.mem dp resp.Slicer.sl_stmts);
      check Alcotest.bool "slices overlap only partially" true
        (not (Ir.Stmt_set.equal req.Slicer.sl_stmts resp.Slicer.sl_stmts))
  | _, _ -> Alcotest.fail "expected exactly one slice pair"

let test_all_dp_stats () =
  let n_dps, n_classes = Demarcation.stats () in
  check Alcotest.bool "registry populated" true (n_dps >= 6 && n_classes >= 5)

let () =
  Alcotest.run "slicing"
    [
      ( "registry",
        [
          tc "all DP families discovered" test_dp_registry_families;
          tc "request/response roles" test_request_response_slices_disjoint_roles;
        ] );
      ( "demarcation",
        [
          tc "discovery" test_dp_discovery;
          tc "scope filter" test_dp_scope_filter;
          tc "registry stats" test_all_dp_stats;
        ] );
      ( "slices",
        [
          tc "request slice" test_request_slice_contains_uri_code;
          tc "response slice" test_response_slice_nonempty;
          tc "noise excluded" test_noise_excluded;
          tc "fraction" test_slice_fraction_below_one;
          tc "augmentation monotone" test_augmentation_monotone;
          tc "diode fraction (fig 3)" test_diode_fraction_near_paper;
        ] );
    ]
