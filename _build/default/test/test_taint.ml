(* Taint-engine tests: forward propagation (assignments, fields, calls,
   returns, library models, DB pseudo-stores) and backward propagation
   with inverted rules (LHS taints RHS, callee args to caller args). *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Callbacks = Extr_semantics.Callbacks
module Fact = Extr_taint.Fact
module Forward = Extr_taint.Forward
module Backward = Extr_taint.Backward

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mk_prog classes =
  Prog.of_program { Ir.p_classes = classes @ Api.library_classes; p_entries = [] }

let mid cls name = { Ir.id_cls = cls; id_name = name }
let sid cls name idx = { Ir.sid_meth = mid cls name; sid_idx = idx }

(** A method whose statement list we control exactly. *)
let raw_meth ?(params = []) ?(static = false) cls name body =
  {
    Ir.m_cls = cls;
    m_name = name;
    m_params = params;
    m_ret = Ir.Void;
    m_static = static;
    m_body = Array.of_list body;
  }

let v name ty = B.local name ty

(* ------------------------------------------------------------------ *)
(* Forward propagation                                                *)
(* ------------------------------------------------------------------ *)

let test_forward_assignment_chain () =
  let x = v "x" Ir.Str and y = v "y" Ir.Str and z = v "z" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign (Ir.Lvar y, Ir.Val (Ir.Local x));
        Ir.Assign (Ir.Lvar z, Ir.Val (Ir.Local y));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let cg = Callgraph.build prog in
  let eng = Forward.create prog cg in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  let touched = Forward.tainted_stmts eng in
  check Alcotest.bool "y = x touched" true (Ir.Stmt_set.mem (sid "C" "m" 1) touched);
  check Alcotest.bool "z = y touched" true (Ir.Stmt_set.mem (sid "C" "m" 2) touched)

let test_forward_kill_on_redefine () =
  let x = v "x" Ir.Str and y = v "y" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "clean"));
        Ir.Assign (Ir.Lvar y, Ir.Val (Ir.Local x));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  check Alcotest.bool "use after kill untainted" false
    (Ir.Stmt_set.mem (sid "C" "m" 2) (Forward.tainted_stmts eng))

let test_forward_through_fields () =
  let x = v "x" Ir.Str and o = v "o" (Ir.Obj "C") and y = v "y" Ir.Str in
  let f = { Ir.fcls = "C"; fname = "g"; fty = Ir.Str } in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign (Ir.Lvar o, Ir.New "C");
        Ir.Assign (Ir.Lfield (o, f), Ir.Val (Ir.Local x));
        Ir.Assign (Ir.Lvar y, Ir.IField (o, f));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  check Alcotest.bool "field load tainted" true
    (Ir.Stmt_set.mem (sid "C" "m" 3) (Forward.tainted_stmts eng))

let test_forward_interprocedural () =
  let p = v "p" Ir.Str and q = v "q" Ir.Str in
  let callee =
    raw_meth ~params:[ p ] "C" "callee"
      [ Ir.Assign (Ir.Lvar q, Ir.Val (Ir.Local p)); Ir.Return (Some (Ir.Local q)) ]
  in
  let x = v "x" Ir.Str and r = v "r" Ir.Str in
  let caller =
    raw_meth "C" "caller"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign
          ( Ir.Lvar r,
            Ir.Invoke
              (B.virtual_call ~ret:Ir.Str (Ir.this_var "C") "C" "callee"
                 [ Ir.Local x ]) );
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ callee; caller ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "caller" 0) [ Fact.local (mid "C" "caller") x ];
  Forward.run eng;
  let touched = Forward.tainted_stmts eng in
  check Alcotest.bool "callee body tainted" true
    (Ir.Stmt_set.mem (sid "C" "callee" 0) touched);
  (* Return taint flows back: the call-site definition becomes tainted. *)
  check Alcotest.bool "call site tainted" true
    (Ir.Stmt_set.mem (sid "C" "caller" 1) touched)

let test_forward_library_model_propagates () =
  let x = v "x" Ir.Str and sb = v "sb" (Ir.Obj Api.string_builder) and out = v "out" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign (Ir.Lvar sb, Ir.New Api.string_builder);
        Ir.InvokeStmt (B.special_call sb Api.string_builder "<init>" []);
        Ir.InvokeStmt
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ Ir.Local x ]);
        Ir.Assign
          ( Ir.Lvar out,
            Ir.Invoke (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" []) );
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  check Alcotest.bool "builder result tainted" true
    (Ir.Stmt_set.mem (sid "C" "m" 4) (Forward.tainted_stmts eng))

let test_forward_log_sanitizes () =
  let x = v "x" Ir.Str and y = v "y" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign
          ( Ir.Lvar y,
            Ir.Invoke (B.static_call ~ret:Ir.Void Api.android_log "d" [ B.vstr "t"; Ir.Local x ]) );
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  let facts = Forward.facts_after eng (sid "C" "m" 1) in
  check Alcotest.bool "log result untainted" false
    (Fact.local_tainted facts (mid "C" "m") y)

let test_forward_db_pseudo_store () =
  let x = v "x" Ir.Str
  and db = v "db" (Ir.Obj Api.sqlite_database)
  and cv = v "cv" (Ir.Obj Api.content_values)
  and cur = v "cur" (Ir.Obj Api.cursor)
  and out = v "out" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "seed"));
        Ir.Assign (Ir.Lvar db, Ir.New Api.sqlite_database);
        Ir.Assign (Ir.Lvar cv, Ir.New Api.content_values);
        Ir.InvokeStmt
          (B.virtual_call cv Api.content_values "put" [ B.vstr "c"; Ir.Local x ]);
        Ir.InvokeStmt
          (B.virtual_call db Api.sqlite_database "insert" [ B.vstr "t"; Ir.Local cv ]);
        Ir.Assign
          ( Ir.Lvar cur,
            Ir.Invoke
              (B.virtual_call ~ret:(Ir.Obj Api.cursor) db Api.sqlite_database
                 "query" [ B.vstr "t" ]) );
        Ir.Assign
          ( Ir.Lvar out,
            Ir.Invoke
              (B.virtual_call ~ret:Ir.Str cur Api.cursor "getString" [ B.vstr "c" ]) );
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Forward.create prog (Callgraph.build prog) in
  Forward.inject_after eng (sid "C" "m" 0) [ Fact.local (mid "C" "m") x ];
  Forward.run eng;
  let facts = Forward.facts_after eng (sid "C" "m" 6) in
  check Alcotest.bool "cursor read tainted via db store" true
    (Fact.local_tainted facts (mid "C" "m") out)

(* ------------------------------------------------------------------ *)
(* Backward propagation                                               *)
(* ------------------------------------------------------------------ *)

let test_backward_inverted_assignment () =
  let x = v "x" Ir.Str and y = v "y" Ir.Str and z = v "z" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "a"));
        Ir.Assign (Ir.Lvar y, Ir.Val (Ir.Local x));
        Ir.Assign (Ir.Lvar z, Ir.Val (Ir.Local y));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Backward.create prog (Callgraph.build prog) in
  (* z relevant at the end: its whole derivation chain joins the slice. *)
  Backward.inject_at eng (sid "C" "m" 3) [ Fact.local (mid "C" "m") z ];
  Backward.run eng;
  let touched = Backward.touched_stmts eng in
  check Alcotest.bool "z def" true (Ir.Stmt_set.mem (sid "C" "m" 2) touched);
  check Alcotest.bool "y def" true (Ir.Stmt_set.mem (sid "C" "m" 1) touched);
  check Alcotest.bool "x def" true (Ir.Stmt_set.mem (sid "C" "m" 0) touched)

let test_backward_irrelevant_excluded () =
  let x = v "x" Ir.Str and noise = v "noise" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar noise, Ir.Val (B.vstr "n"));
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "a"));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Backward.create prog (Callgraph.build prog) in
  Backward.inject_at eng (sid "C" "m" 2) [ Fact.local (mid "C" "m") x ];
  Backward.run eng;
  check Alcotest.bool "noise not in slice" false
    (Ir.Stmt_set.mem (sid "C" "m" 0) (Backward.touched_stmts eng))

let test_backward_library_inversion () =
  (* url = sb.toString(): relevant url makes sb relevant, then append's
     argument. *)
  let x = v "x" Ir.Str and sb = v "sb" (Ir.Obj Api.string_builder) and url = v "url" Ir.Str in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "piece"));
        Ir.Assign (Ir.Lvar sb, Ir.New Api.string_builder);
        Ir.InvokeStmt
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ Ir.Local x ]);
        Ir.Assign
          ( Ir.Lvar url,
            Ir.Invoke (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" []) );
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ m ] ] in
  let eng = Backward.create prog (Callgraph.build prog) in
  Backward.inject_at eng (sid "C" "m" 3) [ Fact.local (mid "C" "m") url ];
  Backward.run eng;
  let touched = Backward.touched_stmts eng in
  check Alcotest.bool "append in slice" true (Ir.Stmt_set.mem (sid "C" "m" 2) touched);
  check Alcotest.bool "piece def in slice" true
    (Ir.Stmt_set.mem (sid "C" "m" 0) touched)

let test_backward_callee_args_to_caller () =
  let p = v "p" Ir.Str in
  let callee =
    raw_meth ~params:[ p ] "C" "send"
      [
        Ir.InvokeStmt
          (B.virtual_call
             (B.local "this" (Ir.Obj "C"))
             Api.string_builder "append" [ Ir.Local p ]);
        Ir.Return None;
      ]
  in
  let x = v "x" Ir.Str in
  let caller =
    raw_meth "C" "caller"
      [
        Ir.Assign (Ir.Lvar x, Ir.Val (B.vstr "value"));
        Ir.InvokeStmt (B.virtual_call (Ir.this_var "C") "C" "send" [ Ir.Local x ]);
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls "C" [ callee; caller ] ] in
  let eng = Backward.create prog (Callgraph.build prog) in
  (* The parameter is relevant inside the callee. *)
  Backward.inject_at eng (sid "C" "send" 0) [ Fact.local (mid "C" "send") p ];
  Backward.run eng;
  check Alcotest.bool "caller argument def in slice" true
    (Ir.Stmt_set.mem (sid "C" "caller" 0) (Backward.touched_stmts eng))

let test_backward_field_fact_collection () =
  let this = Ir.this_var "C" in
  let x = v "x" Ir.Str and url = v "url" Ir.Str in
  let f = { Ir.fcls = "C"; fname = "frag"; fty = Ir.Str } in
  let m =
    raw_meth "C" "m"
      [
        Ir.Assign (Ir.Lvar x, Ir.IField (this, f));
        Ir.Assign (Ir.Lvar url, Ir.Val (Ir.Local x));
        Ir.Return None;
      ]
  in
  let prog = mk_prog [ B.mk_cls ~fields:[ B.mk_field "frag" Ir.Str ] "C" [ m ] ] in
  let eng = Backward.create prog (Callgraph.build prog) in
  Backward.inject_at eng (sid "C" "m" 1) [ Fact.local (mid "C" "m") url ];
  Backward.run eng;
  let fields = Fact.field_facts (Backward.all_facts eng) in
  check Alcotest.bool "heap field discovered for async heuristic" true
    (List.mem ("C", "frag") fields)

let () =
  Alcotest.run "taint"
    [
      ( "forward",
        [
          tc "assignment chain" test_forward_assignment_chain;
          tc "kill on redefine" test_forward_kill_on_redefine;
          tc "through fields" test_forward_through_fields;
          tc "interprocedural" test_forward_interprocedural;
          tc "library model" test_forward_library_model_propagates;
          tc "log sanitizes" test_forward_log_sanitizes;
          tc "db pseudo store" test_forward_db_pseudo_store;
        ] );
      ( "backward",
        [
          tc "inverted assignment" test_backward_inverted_assignment;
          tc "irrelevant excluded" test_backward_irrelevant_excluded;
          tc "library inversion" test_backward_library_inversion;
          tc "callee args to caller" test_backward_callee_args_to_caller;
          tc "field fact collection" test_backward_field_fact_collection;
        ] );
    ]
