(* Property-based tests over randomly generated Limple programs.

   A program generator composes library-usage "idioms" (Apache GET/POST
   fetches, JSON parsing, StringBuilder URI building, UI reads, SQLite
   writes) into random activity classes.  Properties: the textual printer
   and parser round-trip every generated program; ProGuard-style
   obfuscation preserves validity and entry points; library obfuscation
   followed by signature-pattern recovery round-trips every class the
   program uses; loop widening of string signatures is sound (the widened
   signature accepts pumped iterations) and stable (widening is
   idempotent once the repetition is found). *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Pp = Extr_ir.Pp
module Parser = Extr_ir.Parser
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Obfuscator = Extr_apk.Obfuscator
module Deobfuscator = Extr_apk.Deobfuscator
module Strsig = Extr_siglang.Strsig
module Regex = Extr_siglang.Regex
module Absval = Extr_extractocol.Absval

(* ------------------------------------------------------------------ *)
(* Program generator                                                  *)
(* ------------------------------------------------------------------ *)

(* Idioms emit self-sufficient library usage: each uses enough of an API
   family that its classes are recoverable from shape alone.  [n] makes
   literals unique across instantiations. *)
let idiom_apache_get n b =
  let client = B.new_obj b Api.default_http_client [] in
  let req =
    B.new_obj b Api.http_get [ B.vstr (Printf.sprintf "https://h%d/x" n) ]
  in
  let resp =
    B.call_ret b (Ir.Obj Api.http_response)
      (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
         "execute" [ B.vl req ])
  in
  let entity =
    B.call_ret b (Ir.Obj Api.http_entity)
      (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
         "getEntity" [])
  in
  let body =
    B.call_ret b Ir.Str
      (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
  in
  ignore body

let idiom_apache_post n b =
  let client = B.new_obj b Api.default_http_client [] in
  let req =
    B.new_obj b Api.http_post [ B.vstr (Printf.sprintf "https://h%d/y" n) ]
  in
  let pairs = B.new_obj b Api.array_list [] in
  let kv =
    B.new_obj b Api.name_value_pair [ B.vstr "k"; B.vstr (string_of_int n) ]
  in
  B.call b (B.virtual_call pairs Api.array_list "add" [ B.vl kv ]);
  let entity = B.new_obj b Api.form_entity [ B.vl pairs ] in
  B.call b (B.virtual_call req Api.http_request_base "setEntity" [ B.vl entity ]);
  B.call b
    (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
       "execute" [ B.vl req ])

let idiom_json_parse n b =
  let j =
    B.new_obj b Api.json_object
      [ B.vstr (Printf.sprintf "{\"f%d\": \"v\"}" n) ]
  in
  let v =
    B.call_ret b Ir.Str
      (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
         [ B.vstr (Printf.sprintf "f%d" n) ])
  in
  ignore v

let idiom_sb_build n b =
  let sb =
    B.new_obj b Api.string_builder [ B.vstr (Printf.sprintf "base%d-" n) ]
  in
  let sb2 =
    B.call_ret b (Ir.Obj Api.string_builder)
      (B.virtual_call
         ~ret:(Ir.Obj Api.string_builder)
         sb Api.string_builder "append" [ B.vstr "suffix" ])
  in
  let s =
    B.call_ret b Ir.Str
      (B.virtual_call ~ret:Ir.Str sb2 Api.string_builder "toString" [])
  in
  ignore s

let idiom_ui n b =
  let et = B.new_obj b Api.edit_text [] in
  let text =
    B.call_ret b Ir.Str (B.virtual_call ~ret:Ir.Str et Api.edit_text "getText" [])
  in
  let tv = B.new_obj b Api.text_view [] in
  B.call b (B.virtual_call tv Api.text_view "setText" [ B.vl text ]);
  ignore n

let idiom_sqlite n b =
  let db = B.new_obj b Api.sqlite_database [] in
  let cv = B.new_obj b Api.content_values [] in
  B.call b (B.virtual_call cv Api.content_values "put" [ B.vstr "c"; B.vstr "v" ]);
  B.call b
    (B.virtual_call db Api.sqlite_database "insert"
       [ B.vstr (Printf.sprintf "t%d" n); B.vl cv ])

let idiom_loop_build n b =
  (* A paging loop: StringBuilder grows by a constant chunk per iteration
     (the rep-widening shape), guarded by an integer counter. *)
  let sb =
    B.new_obj b Api.string_builder [ B.vstr (Printf.sprintf "list%d?" n) ]
  in
  let i = B.define b Ir.Int (Ir.Val (B.vint 0)) in
  B.while_ b
    (fun b -> B.vl (B.define b Ir.Bool (Ir.Binop (Ir.Lt, B.vl i, B.vint 3))))
    (fun b ->
      ignore
        (B.call_ret b (Ir.Obj Api.string_builder)
           (B.virtual_call
              ~ret:(Ir.Obj Api.string_builder)
              sb Api.string_builder "append" [ B.vstr "&p=1" ]));
      B.assign b i (Ir.Binop (Ir.Add, B.vl i, B.vint 1)));
  let s =
    B.call_ret b Ir.Str
      (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
  in
  ignore s

let idiom_reflect n b =
  (* Reflective dispatch with constant names (the lifted §4 case). *)
  let c =
    B.call_ret b (Ir.Obj Api.java_class)
      (B.static_call ~ret:(Ir.Obj Api.java_class) Api.java_class "forName"
         [ B.vstr (Printf.sprintf "com.gen.Target%d" n) ])
  in
  let o =
    B.call_ret b
      (Ir.Obj "java.lang.Object")
      (B.virtual_call ~ret:(Ir.Obj "java.lang.Object") c Api.java_class
         "newInstance" [])
  in
  let m =
    B.call_ret b (Ir.Obj Api.reflect_method)
      (B.virtual_call ~ret:(Ir.Obj Api.reflect_method) c Api.java_class
         "getMethod" [ B.vstr "run" ])
  in
  B.call b (B.virtual_call m Api.reflect_method "invoke" [ B.vl o ])

let idioms =
  [|
    ("get", idiom_apache_get);
    ("post", idiom_apache_post);
    ("json", idiom_json_parse);
    ("sb", idiom_sb_build);
    ("ui", idiom_ui);
    ("sqlite", idiom_sqlite);
    ("loop", idiom_loop_build);
    ("reflect", idiom_reflect);
  |]

(* A generated program: a list of (class index, idiom indices).  Branches
   and loops come from the ite/while combinators wrapped around idioms. *)
type gen_spec = { gs_classes : (int list * bool) list }

let gen_spec_gen =
  let open QCheck.Gen in
  let idiom_ids = int_range 0 (Array.length idioms - 1) in
  let cls = pair (list_size (int_range 1 4) idiom_ids) bool in
  map (fun cs -> { gs_classes = cs }) (list_size (int_range 1 3) cls)

let program_of_spec (spec : gen_spec) : Ir.program =
  let classes =
    List.mapi
      (fun ci (idiom_ids, branchy) ->
        let cls = Printf.sprintf "com.gen.C%d" ci in
        let run =
          B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
              List.iteri
                (fun k id ->
                  let _, idiom = idioms.(id) in
                  let n = (ci * 10) + k in
                  if branchy && k land 1 = 0 then
                    let flag = B.define b Ir.Bool (Ir.Val (B.vbool true)) in
                    B.ite b (B.vl flag)
                      (fun b -> idiom n b)
                      (fun b -> idiom (n + 1000) b)
                  else idiom n b)
                idiom_ids;
              B.return_void b)
        in
        B.mk_cls ~super:Api.activity cls [ run ])
      spec.gs_classes
  in
  { Ir.p_classes = classes @ Api.library_classes; p_entries = [] }

let apk_of_spec spec =
  let program = program_of_spec spec in
  let activities =
    List.filter_map
      (fun (c : Ir.cls) -> if c.Ir.c_library then None else Some c.Ir.c_name)
      program.Ir.p_classes
  in
  Apk.make ~package:"com.gen" ~activities program

let arbitrary_spec = QCheck.make ~print:(fun s ->
    String.concat ";"
      (List.map
         (fun (ids, br) ->
           Printf.sprintf "[%s]%s"
             (String.concat ","
                (List.map (fun i -> fst idioms.(i)) ids))
             (if br then "~branchy" else ""))
         s.gs_classes))
    gen_spec_gen

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~count:60 ~name:"printer/parser round-trip on generated apps"
    arbitrary_spec
    (fun spec ->
      let p = program_of_spec spec in
      let text = Pp.program_to_string p in
      let p' = Parser.parse_program text in
      Pp.program_to_string p' = text)

let prop_generated_validates =
  QCheck.Test.make ~count:60 ~name:"generated programs pass validation"
    arbitrary_spec
    (fun spec ->
      Prog.validate (Prog.of_program (program_of_spec spec)) = [])

let prop_obfuscation_preserves_validity =
  QCheck.Test.make ~count:60 ~name:"obfuscated programs stay valid"
    arbitrary_spec
    (fun spec ->
      let apk = apk_of_spec spec in
      let obf, _ = Obfuscator.obfuscate apk in
      Prog.validate (Prog.of_program obf.Apk.program) = []
      && List.length (Apk.entry_points obf)
         = List.length (Apk.entry_points apk))

let used_library_classes (p : Ir.program) =
  let used = Hashtbl.create 16 in
  List.iter
    (fun (c : Ir.cls) ->
      if not c.Ir.c_library then
        List.iter
          (fun (m : Ir.meth) ->
            Array.iter
              (fun stmt ->
                match Ir.stmt_invoke stmt with
                | Some i when Api.is_library_class i.Ir.iref.Ir.mcls ->
                    Hashtbl.replace used i.Ir.iref.Ir.mcls ()
                | Some _ | None -> ())
              m.Ir.m_body)
          c.Ir.c_methods)
    p.Ir.p_classes;
  used

let prop_deobfuscation_roundtrip =
  QCheck.Test.make ~count:40
    ~name:"library de-obfuscation recovers every used class" arbitrary_spec
    (fun spec ->
      let apk = apk_of_spec spec in
      let obf, truth = Obfuscator.obfuscate_libraries apk in
      let _, mapping = Deobfuscator.deobfuscate obf in
      let used = used_library_classes apk.Apk.program in
      Hashtbl.fold
        (fun cls () ok ->
          let obf_name = Obfuscator.rename_class truth cls in
          let got = List.assoc_opt obf_name mapping.Deobfuscator.dm_classes in
          if got <> Some cls then
            Printf.eprintf "MISMATCH %s -> %s\n%!" cls
              (Option.value got ~default:"-");
          ok && got = Some cls)
        used true)

(* ------------------------------------------------------------------ *)
(* CFG invariants on generated programs                               *)
(* ------------------------------------------------------------------ *)

module Cfg = Extr_cfg.Cfg

let app_methods spec =
  List.concat_map
    (fun (c : Ir.cls) -> if c.Ir.c_library then [] else c.Ir.c_methods)
    (program_of_spec spec).Ir.p_classes

let prop_cfg_blocks_partition =
  QCheck.Test.make ~count:60 ~name:"basic blocks partition the statements"
    arbitrary_spec
    (fun spec ->
      List.for_all
        (fun (m : Ir.meth) ->
          let cfg = Cfg.build m in
          let n = Array.length m.Ir.m_body in
          let covered = Array.make n 0 in
          Array.iter
            (fun (b : Cfg.block) ->
              for i = b.Cfg.b_first to b.Cfg.b_last do
                covered.(i) <- covered.(i) + 1
              done)
            cfg.Cfg.blocks;
          Array.for_all (fun c -> c = 1) covered
          && Array.for_all
               (fun (b : Cfg.block) ->
                 Array.for_all
                   (fun i ->
                     (i < b.Cfg.b_first || i > b.Cfg.b_last)
                     || cfg.Cfg.block_of_stmt.(i) = b.Cfg.b_id)
                   (Array.init n Fun.id))
               cfg.Cfg.blocks)
        (app_methods spec))

let prop_cfg_edge_symmetry =
  QCheck.Test.make ~count:60 ~name:"succ and pred edges agree"
    arbitrary_spec
    (fun spec ->
      List.for_all
        (fun (m : Ir.meth) ->
          let cfg = Cfg.build m in
          let ok = ref true in
          Array.iteri
            (fun a succs ->
              List.iter
                (fun b -> if not (List.mem a cfg.Cfg.preds.(b)) then ok := false)
                succs)
            cfg.Cfg.succs;
          Array.iteri
            (fun b preds ->
              List.iter
                (fun a -> if not (List.mem b cfg.Cfg.succs.(a)) then ok := false)
                preds)
            cfg.Cfg.preds;
          !ok)
        (app_methods spec))

let prop_cfg_entry_dominates =
  QCheck.Test.make ~count:60 ~name:"entry dominates every reachable block"
    arbitrary_spec
    (fun spec ->
      List.for_all
        (fun (m : Ir.meth) ->
          let cfg = Cfg.build m in
          let reach = Cfg.reachable cfg in
          let doms = Cfg.dominators cfg in
          Array.for_all Fun.id
            (Array.init (Cfg.n_blocks cfg) (fun b ->
                 (not reach.(b)) || List.mem 0 doms.(b))))
        (app_methods spec))

let prop_cfg_topo_respects_forward_edges =
  QCheck.Test.make ~count:60
    ~name:"topological order places forward edges forward" arbitrary_spec
    (fun spec ->
      List.for_all
        (fun (m : Ir.meth) ->
          let cfg = Cfg.build m in
          let order = Cfg.topological_order cfg in
          let pos = Hashtbl.create 16 in
          List.iteri (fun i b -> Hashtbl.replace pos b i) order;
          let back = (Cfg.loops cfg).Cfg.back_edges in
          let ok = ref true in
          Array.iteri
            (fun a succs ->
              List.iter
                (fun b ->
                  if not (List.mem (a, b) back) then
                    match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
                    | Some ia, Some ib -> if ia >= ib then ok := false
                    | _, _ -> () (* unreachable blocks are not ordered *))
                succs)
            cfg.Cfg.succs;
          !ok)
        (app_methods spec))

let prop_cfg_back_edge_dominance =
  QCheck.Test.make ~count:60 ~name:"loop headers dominate their latches"
    arbitrary_spec
    (fun spec ->
      List.for_all
        (fun (m : Ir.meth) ->
          let cfg = Cfg.build m in
          let doms = Cfg.dominators cfg in
          List.for_all
            (fun (latch, header) ->
              List.mem header cfg.Cfg.succs.(latch)
              && List.mem header doms.(latch))
            (Cfg.loops cfg).Cfg.back_edges)
        (app_methods spec))

(* ------------------------------------------------------------------ *)
(* Trace-archive round-trip                                            *)
(* ------------------------------------------------------------------ *)

module Http = Extr_httpmodel.Http
module Har = Extr_httpmodel.Har
module Json = Extr_httpmodel.Json
module Uri = Extr_httpmodel.Uri
module Xml = Extr_httpmodel.Xml
module Fuzz = Extr_fuzz.Fuzz
module Corpus = Extr_corpus.Corpus

let gen_trace =
  let open QCheck.Gen in
  let token =
    oneofl [ "api"; "v1"; "id"; "user"; "token"; "x1"; "q" ]
  in
  let gen_json_leaf =
    oneof
      [
        map (fun s -> Json.Str s) token;
        map (fun n -> Json.Int n) small_int;
        return (Json.Bool true);
        return Json.Null;
      ]
  in
  let gen_json =
    let* keys = list_size (int_range 0 3) token in
    let keys = List.sort_uniq compare keys in
    let* leaves = flatten_l (List.map (fun _ -> gen_json_leaf) keys) in
    return (Json.Obj (List.combine keys leaves))
  in
  let gen_body =
    oneof
      [
        return Http.No_body;
        (let* kvs = list_size (int_range 1 3) (pair token token) in
         (* Query keys must be unique for assoc-style round-trips. *)
         let kvs =
           List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs
         in
         return (Http.Query kvs));
        map (fun j -> Http.Json j) gen_json;
        map (fun s -> Http.Text s) token;
        map (fun s -> Http.Binary s) token;
        map (fun s -> Http.Xml (Xml.element "root" [ Xml.text s ])) token;
      ]
  in
  let gen_trigger =
    let* label = token in
    oneofl
      [
        Http.Ui_click label; Http.Ui_custom label; Http.Ui_action label;
        Http.Timer label; Http.Server_push label; Http.App_internal label;
      ]
  in
  let gen_entry =
    let* path = token and* q = token in
    let uri =
      Option.get
        (Uri.of_string_opt (Printf.sprintf "https://host.example/%s?k=%s" path q))
    in
    let* meth = oneofl [ Http.GET; Http.POST; Http.PUT; Http.DELETE ] in
    let* req_body = gen_body and* resp_body = gen_body in
    let* status = oneofl [ 200; 403; 404 ] in
    let* trigger = gen_trigger in
    return
      {
        Http.te_tx =
          {
            Http.tx_request =
              Http.request ~headers:[ ("User-Agent", "t/1") ] ~body:req_body
                meth uri;
            tx_response = Http.response ~status resp_body;
          };
        te_trigger = trigger;
      }
  in
  let* entries = list_size (int_range 0 6) gen_entry in
  return { Http.tr_app = "gen"; tr_entries = entries }

let prop_har_roundtrip =
  QCheck.Test.make ~count:200 ~name:"trace archive round-trips"
    (QCheck.make gen_trace)
    (fun trace ->
      match Har.of_string (Har.to_string trace) with
      | None -> false
      | Some trace' -> Har.to_string trace' = Har.to_string trace)

let prop_har_fuzz_traces =
  QCheck.Test.make ~count:1 ~name:"real fuzz traces round-trip"
    QCheck.unit
    (fun () ->
      let entries = Corpus.case_studies () in
      List.for_all
        (fun (e : Corpus.entry) ->
          let apk = Lazy.force e.Corpus.c_apk in
          let trace = Fuzz.run e.Corpus.c_app apk ~policy:`Full in
          match Har.of_string (Har.to_string trace) with
          | None -> false
          | Some trace' -> Har.to_string trace' = Har.to_string trace)
        entries)

(* ------------------------------------------------------------------ *)
(* Widening properties                                                *)
(* ------------------------------------------------------------------ *)

let gen_lit =
  QCheck.Gen.oneofl [ "a"; "xy"; "&p="; "/seg"; "12" ]

let gen_base_and_delta =
  QCheck.Gen.(pair gen_lit gen_lit)

let prop_widen_sound =
  (* widen(base, base·delta) accepts base, base·delta, base·delta·delta. *)
  QCheck.Test.make ~count:100 ~name:"widened signature accepts pumped loops"
    (QCheck.make gen_base_and_delta)
    (fun (base, delta) ->
      let s0 = Strsig.lit base in
      let s1 = Strsig.concat [ s0; Strsig.lit delta ] in
      let w = Absval.widen_sig s0 s1 in
      let re = Strsig.to_regex w in
      Regex.string_matches ~pattern:re base
      && Regex.string_matches ~pattern:re (base ^ delta)
      && Regex.string_matches ~pattern:re (base ^ delta ^ delta))

let prop_widen_stable =
  (* Re-widening with one more iteration is a no-op once rep is found. *)
  QCheck.Test.make ~count:100 ~name:"widening reaches a fixed point"
    (QCheck.make gen_base_and_delta)
    (fun (base, delta) ->
      let s0 = Strsig.lit base in
      let s1 = Strsig.concat [ s0; Strsig.lit delta ] in
      let w = Absval.widen_sig s0 s1 in
      let w' = Absval.widen_sig w (Strsig.concat [ w; Strsig.lit delta ]) in
      Strsig.equal w w')

let prop_strip_prefix =
  QCheck.Test.make ~count:100 ~name:"strip_prefix inverts concatenation"
    (QCheck.make gen_base_and_delta)
    (fun (base, delta) ->
      let s0 = Strsig.lit base in
      let s1 = Strsig.concat [ s0; Strsig.lit delta ] in
      match Absval.strip_prefix s0 s1 with
      | Some rest -> Strsig.equal rest (Strsig.lit delta)
      | None -> false)

let () =
  Alcotest.run "props"
    [
      ( "programs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pp_parse_roundtrip;
            prop_generated_validates;
            prop_obfuscation_preserves_validity;
            prop_deobfuscation_roundtrip;
          ] );
      ( "cfg",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cfg_blocks_partition;
            prop_cfg_edge_symmetry;
            prop_cfg_entry_dominates;
            prop_cfg_topo_respects_forward_edges;
            prop_cfg_back_edge_dominance;
          ] );
      ( "widening",
        List.map QCheck_alcotest.to_alcotest
          [ prop_widen_sound; prop_widen_stable; prop_strip_prefix ] );
      ( "trace-archive",
        List.map QCheck_alcotest.to_alcotest
          [ prop_har_roundtrip; prop_har_fuzz_traces ] );
    ]
