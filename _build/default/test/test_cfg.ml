(* Control-flow tests: basic blocks, edges, dominators, natural loops,
   topological order, statement-level flow, and call-graph construction
   including implicit callback edges. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Cfg = Extr_cfg.Cfg
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Callbacks = Extr_semantics.Callbacks

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let straight_line () =
  B.mk_meth ~cls:"C" ~name:"s" ~params:[] ~ret:Ir.Void (fun b ->
      let x = B.define b Ir.Int (Ir.Val (B.vint 1)) in
      let y = B.define b Ir.Int (Ir.Binop (Ir.Add, B.vl x, B.vint 2)) in
      ignore y)

let diamond () =
  B.mk_meth ~cls:"C" ~name:"d" ~params:[ B.local "c" Ir.Bool ] ~ret:Ir.Int
    (fun b ->
      let r = B.define b Ir.Int (Ir.Val (B.vint 0)) in
      B.ite b
        (B.vl (B.local "c" Ir.Bool))
        (fun b -> B.assign b r (Ir.Val (B.vint 1)))
        (fun b -> B.assign b r (Ir.Val (B.vint 2)));
      B.return_value b (B.vl r))

let looped () =
  B.mk_meth ~cls:"C" ~name:"l" ~params:[] ~ret:Ir.Int (fun b ->
      let i = B.define b Ir.Int (Ir.Val (B.vint 0)) in
      B.while_ b
        (fun b -> B.vl (B.define b Ir.Bool (Ir.Binop (Ir.Lt, B.vl i, B.vint 10))))
        (fun b -> B.assign b i (Ir.Binop (Ir.Add, B.vl i, B.vint 1)));
      B.return_value b (B.vl i))

(* ------------------------------------------------------------------ *)
(* Blocks and edges                                                   *)
(* ------------------------------------------------------------------ *)

let test_straight_line_single_block () =
  let cfg = Cfg.build (straight_line ()) in
  check Alcotest.int "one block" 1 (Cfg.n_blocks cfg)

let test_diamond_shape () =
  let cfg = Cfg.build (diamond ()) in
  (* entry, then, else, join — at least 4 blocks and a confluence with two
     forward predecessors. *)
  check Alcotest.bool ">= 4 blocks" true (Cfg.n_blocks cfg >= 4);
  let has_join =
    List.exists
      (fun b -> List.length (Cfg.forward_preds cfg b) = 2)
      (List.init (Cfg.n_blocks cfg) Fun.id)
  in
  check Alcotest.bool "join point exists" true has_join

let test_block_stmt_partition () =
  let m = diamond () in
  let cfg = Cfg.build m in
  let all =
    List.concat_map (fun b -> Cfg.block_stmts cfg b) (List.init (Cfg.n_blocks cfg) Fun.id)
  in
  check Alcotest.int "every statement in exactly one block"
    (Array.length m.Ir.m_body) (List.length all);
  check Alcotest.(list int) "statements in order" (List.init (Array.length m.Ir.m_body) Fun.id)
    (List.sort compare all)

(* ------------------------------------------------------------------ *)
(* Dominators, loops, topological order                                *)
(* ------------------------------------------------------------------ *)

let test_dominators_entry () =
  let cfg = Cfg.build (diamond ()) in
  let doms = Cfg.dominators cfg in
  Array.iteri
    (fun b dset ->
      if List.mem b (List.init (Cfg.n_blocks cfg) Fun.id) && dset <> [] then
        check Alcotest.bool "entry dominates all" true (List.mem 0 dset || b = 0))
    doms

let test_no_loops_in_diamond () =
  let cfg = Cfg.build (diamond ()) in
  let { Cfg.headers; latches; _ } = Cfg.loops cfg in
  check Alcotest.(list int) "no headers" [] headers;
  check Alcotest.(list int) "no latches" [] latches

let test_loop_detection () =
  let cfg = Cfg.build (looped ()) in
  let { Cfg.headers; latches; back_edges } = Cfg.loops cfg in
  check Alcotest.bool "header found" true (headers <> []);
  check Alcotest.bool "latch found" true (latches <> []);
  check Alcotest.bool "back edge found" true (back_edges <> [])

let test_topological_order () =
  let cfg = Cfg.build (diamond ()) in
  let order = Cfg.topological_order cfg in
  check Alcotest.int "covers reachable blocks" (Cfg.n_blocks cfg) (List.length order);
  (* Every forward edge respects the order. *)
  let position = Hashtbl.create 8 in
  List.iteri (fun i b -> Hashtbl.replace position b i) order;
  let ok = ref true in
  List.iteri
    (fun b succs ->
      ignore b;
      ignore succs)
    [];
  Array.iteri
    (fun b succs ->
      List.iter
        (fun s ->
          if
            Hashtbl.mem position b && Hashtbl.mem position s
            && not (List.mem (b, s) (Cfg.loops cfg).Cfg.back_edges)
          then if Hashtbl.find position b >= Hashtbl.find position s then ok := false)
        succs)
    cfg.Cfg.succs;
  check Alcotest.bool "forward edges respect order" true !ok

let test_topo_order_with_loop () =
  let cfg = Cfg.build (looped ()) in
  let order = Cfg.topological_order cfg in
  check Alcotest.int "all blocks ordered" (Cfg.n_blocks cfg) (List.length order)

(* ------------------------------------------------------------------ *)
(* Statement-level flow                                               *)
(* ------------------------------------------------------------------ *)

let test_stmt_successors () =
  let m = diamond () in
  let succs = Cfg.stmt_successors m in
  (* Return statements have no successors. *)
  Array.iteri
    (fun i s ->
      match s with
      | Ir.Return _ -> check Alcotest.(list int) "return has no succ" [] succs.(i)
      | _ -> ())
    m.Ir.m_body

let test_stmt_predecessors_inverse () =
  let m = looped () in
  let succs = Cfg.stmt_successors m in
  let preds = Cfg.stmt_predecessors m in
  Array.iteri
    (fun i ss ->
      List.iter
        (fun s -> check Alcotest.bool "pred inverse" true (List.mem i preds.(s)))
        ss)
    succs

let test_return_indices () =
  let m = diamond () in
  check Alcotest.int "one return" 1 (List.length (Cfg.return_indices m))

(* ------------------------------------------------------------------ *)
(* Call graph                                                         *)
(* ------------------------------------------------------------------ *)

let callgraph_program () =
  let callee =
    B.mk_meth ~cls:"C" ~name:"callee" ~params:[] ~ret:Ir.Int (fun b ->
        B.return_value b (B.vint 1))
  in
  let caller =
    B.mk_meth ~cls:"C" ~name:"caller" ~params:[] ~ret:Ir.Void (fun b ->
        let r =
          B.call_ret b Ir.Int
            (B.virtual_call ~ret:Ir.Int (Ir.this_var "C") "C" "callee" [])
        in
        ignore r)
  in
  { Ir.p_classes = [ B.mk_cls ~super:Api.java_object "C" [ callee; caller ] ]; p_entries = [] }

let test_direct_edge () =
  let prog = Prog.of_program (callgraph_program ()) in
  let cg = Callgraph.build prog in
  let sites = Callgraph.callsites cg { Ir.id_cls = "C"; id_name = "caller" } in
  check Alcotest.int "one call site" 1 (List.length sites);
  check Alcotest.bool "edge to callee" true
    (List.exists
       (fun cs ->
         List.mem { Ir.id_cls = "C"; id_name = "callee" } cs.Callgraph.cs_callees)
       sites);
  check Alcotest.int "callers of callee" 1
    (List.length (Callgraph.callers cg { Ir.id_cls = "C"; id_name = "callee" }))

let test_virtual_dispatch_multiple_targets () =
  let mk_cls name =
    B.mk_cls ~super:"Base" name
      [ B.mk_meth ~cls:name ~name:"go" ~params:[] ~ret:Ir.Void (fun _ -> ()) ]
  in
  let base = B.mk_cls "Base" [] in
  let caller =
    B.mk_meth ~cls:"M" ~name:"run" ~params:[ B.local "b" (Ir.Obj "Base") ]
      ~ret:Ir.Void
      (fun b ->
        B.call b (B.virtual_call (B.local "b" (Ir.Obj "Base")) "Base" "go" []))
  in
  let prog =
    Prog.of_program
      {
        Ir.p_classes = [ base; mk_cls "D1"; mk_cls "D2"; B.mk_cls "M" [ caller ] ];
        p_entries = [];
      }
  in
  let cg = Callgraph.build prog in
  let sites = Callgraph.callsites cg { Ir.id_cls = "M"; id_name = "run" } in
  let targets = List.concat_map (fun cs -> cs.Callgraph.cs_callees) sites in
  check Alcotest.int "CHA finds both overrides" 2 (List.length targets)

let test_implicit_callback_edge () =
  let task_cls = "T" in
  let dib =
    B.mk_meth ~cls:task_cls ~name:"doInBackground"
      ~params:[ B.local "u" Ir.Str ]
      ~ret:Ir.Str
      (fun b -> B.return_value b (B.vstr ""))
  in
  let caller =
    B.mk_meth ~cls:"M" ~name:"go" ~params:[] ~ret:Ir.Void (fun b ->
        let t = B.new_obj b task_cls [] in
        B.call b (B.virtual_call t Api.async_task "execute" [ B.vstr "u" ]))
  in
  let prog =
    Prog.of_program
      {
        Ir.p_classes =
          [
            B.mk_cls ~super:Api.async_task task_cls [ dib ];
            B.mk_cls "M" [ caller ];
          ]
          @ Api.library_classes;
        p_entries = [];
      }
  in
  let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
  let sites = Callgraph.callsites cg { Ir.id_cls = "M"; id_name = "go" } in
  let implicit =
    List.exists
      (fun cs ->
        cs.Callgraph.cs_implicit
        && List.mem { Ir.id_cls = task_cls; id_name = "doInBackground" }
             cs.Callgraph.cs_callees)
      sites
  in
  check Alcotest.bool "implicit AsyncTask edge" true implicit

let test_reachability () =
  let prog = Prog.of_program (callgraph_program ()) in
  let cg = Callgraph.build prog in
  let reach = Callgraph.reachable_from cg [ { Ir.id_cls = "C"; id_name = "caller" } ] in
  check Alcotest.bool "callee reachable" true
    (Ir.Method_set.mem { Ir.id_cls = "C"; id_name = "callee" } reach)

let () =
  Alcotest.run "cfg"
    [
      ( "blocks",
        [
          tc "straight line" test_straight_line_single_block;
          tc "diamond shape" test_diamond_shape;
          tc "statement partition" test_block_stmt_partition;
        ] );
      ( "analysis",
        [
          tc "dominators" test_dominators_entry;
          tc "diamond has no loops" test_no_loops_in_diamond;
          tc "loop detection" test_loop_detection;
          tc "topological order" test_topological_order;
          tc "topo order with loop" test_topo_order_with_loop;
        ] );
      ( "stmt-flow",
        [
          tc "successors" test_stmt_successors;
          tc "predecessors inverse" test_stmt_predecessors_inverse;
          tc "return indices" test_return_indices;
        ] );
      ( "callgraph",
        [
          tc "direct edge" test_direct_edge;
          tc "virtual dispatch" test_virtual_dispatch_multiple_targets;
          tc "implicit callback" test_implicit_callback_edge;
          tc "reachability" test_reachability;
        ] );
    ]
