test/test_robustness.ml: Alcotest Extr_apk Extr_extractocol Extr_httpmodel Extr_ir Extr_runtime Extr_semantics Extr_siglang List Printf String
