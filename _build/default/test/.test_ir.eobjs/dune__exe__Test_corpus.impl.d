test/test_corpus.ml: Alcotest Extr_apk Extr_corpus Extr_extractocol Extr_httpmodel Extr_ir Lazy List Option Printf String
