test/test_httpmodel.ml: Alcotest Extr_httpmodel List Printf QCheck QCheck_alcotest
