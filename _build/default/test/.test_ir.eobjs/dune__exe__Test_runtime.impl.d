test/test_runtime.ml: Alcotest Extr_apk Extr_corpus Extr_fuzz Extr_httpmodel Extr_ir Extr_runtime Extr_semantics Extr_server Lazy List Option
