test/test_extractocol.mli:
