test/test_e2e.ml: Alcotest Extr_apk Extr_corpus Extr_eval Extr_extractocol Extr_fuzz Extr_httpmodel Extr_ir Extr_runtime Extr_semantics Extr_siglang Fmt Lazy List Option String
