test/test_ir.ml: Alcotest Array Extr_apk Extr_ir Extr_semantics Hashtbl List Option String
