test/test_eval.ml: Alcotest Extr_corpus Extr_eval Extr_extractocol Extr_httpmodel Extr_siglang Fmt Lazy List Option String
