test/test_cfg.ml: Alcotest Array Extr_cfg Extr_ir Extr_semantics Fun Hashtbl List
