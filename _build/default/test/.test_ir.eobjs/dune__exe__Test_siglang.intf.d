test/test_siglang.mli:
