test/test_httpmodel.mli:
