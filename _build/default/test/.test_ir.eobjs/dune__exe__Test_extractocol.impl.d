test/test_extractocol.ml: Alcotest Extr_apk Extr_extractocol Extr_httpmodel Extr_ir Extr_semantics Extr_siglang List String
