test/test_slicing.ml: Alcotest Extr_cfg Extr_corpus Extr_extractocol Extr_ir Extr_semantics Extr_slicing Lazy List Option
