test/test_semantics.ml: Alcotest Array Extr_apk Extr_corpus Extr_ir Extr_semantics Hashtbl Lazy List Option Printf
