test/test_siglang.ml: Alcotest Char Extr_httpmodel Extr_siglang List QCheck QCheck_alcotest String Unix
