test/test_taint.ml: Alcotest Array Extr_cfg Extr_ir Extr_semantics Extr_taint List
