(* Signature-language tests: the Figure-4 intermediate language (string
   signatures), the regex engine, JSON/XML tree signatures, byte
   accounting, and QCheck properties tying them together. *)

module Strsig = Extr_siglang.Strsig
module Regex = Extr_siglang.Regex
module Jsonsig = Extr_siglang.Jsonsig
module Xmlsig = Extr_siglang.Xmlsig
module Msgsig = Extr_siglang.Msgsig
module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml
module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Strsig construction                                                *)
(* ------------------------------------------------------------------ *)

let test_concat_merges_literals () =
  let s = Strsig.concat [ Strsig.lit "a"; Strsig.lit "b"; Strsig.unknown ] in
  match s with
  | Strsig.Concat [ Strsig.Lit "ab"; Strsig.Unknown _ ] -> ()
  | _ -> Alcotest.fail ("unexpected shape " ^ Strsig.to_string s)

let test_concat_flattens () =
  let inner = Strsig.concat [ Strsig.lit "x"; Strsig.num ] in
  let s = Strsig.concat [ inner; Strsig.lit "y" ] in
  match s with
  | Strsig.Concat [ Strsig.Lit "x"; Strsig.Unknown Strsig.Hnum; Strsig.Lit "y" ] ->
      ()
  | _ -> Alcotest.fail "nested concat not flattened"

let test_alt_dedups () =
  let s = Strsig.alt [ Strsig.lit "a"; Strsig.lit "a"; Strsig.lit "b" ] in
  match s with
  | Strsig.Alt [ _; _ ] -> ()
  | _ -> Alcotest.fail "alt should dedup to two branches"

let test_alt_single_collapses () =
  check Alcotest.bool "singleton alt collapses" true
    (Strsig.equal (Strsig.alt [ Strsig.lit "a" ]) (Strsig.lit "a"))

let test_rep_idempotent () =
  let r = Strsig.rep (Strsig.lit "x") in
  check Alcotest.bool "rep of rep" true (Strsig.equal (Strsig.rep r) r)

(* ------------------------------------------------------------------ *)
(* Regex generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_regex_escaping () =
  check Alcotest.string "metacharacters escaped" "a\\.b\\?c=\\(1\\)"
    (Strsig.to_regex (Strsig.lit "a.b?c=(1)"))

let test_regex_forms () =
  check Alcotest.string "unknown" "(.*)" (Strsig.to_regex Strsig.unknown);
  check Alcotest.string "num" "([0-9]+)" (Strsig.to_regex Strsig.num);
  check Alcotest.string "alt" "(a|b)"
    (Strsig.to_regex (Strsig.alt [ Strsig.lit "a"; Strsig.lit "b" ]));
  check Alcotest.string "rep" "(x)*" (Strsig.to_regex (Strsig.rep (Strsig.lit "x")))

(* ------------------------------------------------------------------ *)
(* Regex engine                                                       *)
(* ------------------------------------------------------------------ *)

let m pattern s = Regex.string_matches ~pattern s

let test_regex_literals () =
  check Alcotest.bool "exact" true (m "abc" "abc");
  check Alcotest.bool "anchored" false (m "abc" "xabc");
  check Alcotest.bool "anchored end" false (m "abc" "abcx")

let test_regex_quantifiers () =
  check Alcotest.bool "star empty" true (m "a*" "");
  check Alcotest.bool "star many" true (m "a*" "aaaa");
  check Alcotest.bool "plus requires one" false (m "a+" "");
  check Alcotest.bool "plus many" true (m "a+" "aaa");
  check Alcotest.bool "opt zero" true (m "ab?c" "ac");
  check Alcotest.bool "opt one" true (m "ab?c" "abc");
  check Alcotest.bool "opt not two" false (m "ab?c" "abbc")

let test_regex_classes () =
  check Alcotest.bool "digit class" true (m "[0-9]+" "12345");
  check Alcotest.bool "digit class rejects" false (m "[0-9]+" "12a45");
  check Alcotest.bool "negated class" true (m "[^/]+" "abc");
  check Alcotest.bool "negated class rejects" false (m "[^/]+" "a/c");
  check Alcotest.bool "multi range" true (m "[a-zA-Z0-9_]+" "Az0_9")

let test_regex_alternation () =
  check Alcotest.bool "first branch" true (m "(save|unsave)" "save");
  check Alcotest.bool "second branch" true (m "(save|unsave)" "unsave");
  check Alcotest.bool "neither" false (m "(save|unsave)" "vote")

let test_regex_dot_and_escape () =
  check Alcotest.bool "dot any" true (m "a.c" "abc");
  check Alcotest.bool "escaped dot" false (m "a\\.c" "abc");
  check Alcotest.bool "escaped dot literal" true (m "a\\.c" "a.c");
  check Alcotest.bool "backslash-d" true (m "\\d+" "42")

let test_regex_wildcard_backtracking () =
  check Alcotest.bool "middle wildcard" true (m "a(.*)z" "a-lots-of-stuff-z");
  check Alcotest.bool "two wildcards" true (m "q=(.*)&sort=(.*)" "q=a&b&sort=up");
  check Alcotest.bool "no terminator" false (m "a(.*)z" "a-unterminated")

let test_regex_paper_example () =
  let p = "http://www\\.reddit\\.com/search/\\.json\\?q=(.*)&sort=(.*)" in
  check Alcotest.bool "paper Diode URI" true
    (m p "http://www.reddit.com/search/.json?q=ocaml&sort=hot")

let test_regex_linear_adversarial () =
  (* NFA simulation: no catastrophic backtracking on nested-star inputs. *)
  let pattern = "(a*)*b" in
  let input = String.make 28 'a' in
  let t0 = Unix.gettimeofday () in
  check Alcotest.bool "no match" false (m pattern input);
  check Alcotest.bool "linear time" true (Unix.gettimeofday () -. t0 < 1.0)

let test_regex_parse_error () =
  check Alcotest.bool "dangling quantifier rejected" true
    (try
       ignore (Regex.of_pattern "*a");
       false
     with Regex.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Matching with byte attribution                                      *)
(* ------------------------------------------------------------------ *)

let test_match_attr_simple () =
  let s = Strsig.concat [ Strsig.lit "id="; Strsig.unknown ] in
  match Strsig.byte_counts s "id=42" with
  | Some (const, wild) ->
      check Alcotest.int "const bytes" 3 const;
      check Alcotest.int "wild bytes" 2 wild
  | None -> Alcotest.fail "should match"

let test_match_attr_alt () =
  let s = Strsig.alt [ Strsig.lit "aa"; Strsig.lit "bbb" ] in
  check
    Alcotest.(option (pair int int))
    "alt branch" (Some (3, 0))
    (Strsig.byte_counts s "bbb")

let test_match_attr_num () =
  check Alcotest.bool "num accepts digits" true (Strsig.matches Strsig.num "123");
  check Alcotest.bool "num rejects alpha" false (Strsig.matches Strsig.num "12a")

let test_match_attr_rep () =
  let s = Strsig.concat [ Strsig.lit "x"; Strsig.rep (Strsig.lit "ab") ] in
  check Alcotest.bool "zero reps" true (Strsig.matches s "x");
  check Alcotest.bool "two reps" true (Strsig.matches s "xabab");
  check Alcotest.bool "partial rep" false (Strsig.matches s "xaba")

let test_keywords () =
  let s =
    Strsig.concat
      [ Strsig.lit "http://h/p?count="; Strsig.num; Strsig.lit "&after=" ]
  in
  check
    Alcotest.(list string)
    "words extracted"
    [ "after"; "count"; "h"; "http"; "p" ]
    (Strsig.keywords s)

(* ------------------------------------------------------------------ *)
(* Jsonsig                                                            *)
(* ------------------------------------------------------------------ *)

let jsig_fixture =
  Jsonsig.Jobj
    [
      ("status", Jsonsig.Jstr Strsig.unknown);
      ("count", Jsonsig.Jnum);
      ("data", Jsonsig.Jobj [ ("token", Jsonsig.Jstr Strsig.unknown) ]);
      ("items", Jsonsig.Jarr (Jsonsig.Jobj [ ("id", Jsonsig.Jnum) ]));
    ]

let test_jsonsig_admits () =
  let v =
    Json.of_string
      {|{"status":"ok","count":3,"data":{"token":"t1","extra":1},"items":[{"id":1},{"id":2}]}|}
  in
  check Alcotest.bool "admits with extra keys" true (Jsonsig.admits jsig_fixture v)

let test_jsonsig_rejects_missing_key () =
  let v = Json.of_string {|{"status":"ok"}|} in
  check Alcotest.bool "missing keys rejected" false (Jsonsig.admits jsig_fixture v)

let test_jsonsig_rejects_wrong_type () =
  let v =
    Json.of_string
      {|{"status":"ok","count":"three","data":{"token":"t"},"items":[]}|}
  in
  check Alcotest.bool "type mismatch rejected" false (Jsonsig.admits jsig_fixture v)

let test_jsonsig_keys () =
  check
    Alcotest.(list string)
    "keys"
    [ "count"; "data"; "id"; "items"; "status"; "token" ]
    (Jsonsig.distinct_keys jsig_fixture)

let test_jsonsig_merge () =
  let a = Jsonsig.Jobj [ ("x", Jsonsig.Jnum) ] in
  let b = Jsonsig.Jobj [ ("y", Jsonsig.Jbool) ] in
  match Jsonsig.merge a b with
  | Jsonsig.Jobj fields -> check Alcotest.int "keys merged" 2 (List.length fields)
  | _ -> Alcotest.fail "merge should stay an object"

let test_jsonsig_byte_account () =
  let s = Jsonsig.Jobj [ ("k", Jsonsig.Jstr Strsig.unknown) ] in
  let v = Json.Obj [ ("k", Json.Str "abcd"); ("noise", Json.Int 12345) ] in
  let bk, bv, bn = Jsonsig.byte_account s v in
  check Alcotest.bool "constants counted" true (bk > 0);
  check Alcotest.bool "value bytes counted" true (bv >= 4);
  check Alcotest.bool "uncovered noise counted" true (bn > 0)

let test_jsonsig_of_concrete () =
  let v = Json.of_string {|{"a":1,"b":"s","c":[{"d":true}]}|} in
  let s = Jsonsig.of_concrete v in
  check Alcotest.bool "inferred admits source" true (Jsonsig.admits s v)

(* ------------------------------------------------------------------ *)
(* Xmlsig                                                             *)
(* ------------------------------------------------------------------ *)

let xsig_fixture =
  Xmlsig.element "channel"
    ~attrs:[ ("version", Strsig.unknown) ]
    [
      Xmlsig.Celem (Xmlsig.element "title" [ Xmlsig.Ctext Strsig.unknown ]);
      Xmlsig.Crep (Xmlsig.element "item" [ Xmlsig.Ctext Strsig.unknown ]);
    ]

let test_xmlsig_admits () =
  let e =
    Xml.of_string
      {|<channel version="2.0"><title>t</title><item>a</item><item>b</item><skip/></channel>|}
  in
  check Alcotest.bool "admits" true (Xmlsig.admits xsig_fixture e)

let test_xmlsig_rejects_wrong_tag () =
  let e = Xml.of_string "<feed><title>t</title></feed>" in
  check Alcotest.bool "wrong root" false (Xmlsig.admits xsig_fixture e)

let test_xmlsig_keywords () =
  check
    Alcotest.(list string)
    "tags and attrs"
    [ "channel"; "item"; "title"; "version" ]
    (Xmlsig.distinct_keywords xsig_fixture)

let test_xmlsig_dtd () =
  let dtd = Xmlsig.to_dtd xsig_fixture in
  check Alcotest.bool "has element decl" true (contains dtd "<!ELEMENT channel");
  check Alcotest.bool "has attlist" true (contains dtd "<!ATTLIST channel version")

(* ------------------------------------------------------------------ *)
(* Msgsig                                                             *)
(* ------------------------------------------------------------------ *)

let req_sig =
  {
    Msgsig.rs_meth = Http.GET;
    rs_uri = Strsig.concat [ Strsig.lit "https://h.example/api?x="; Strsig.unknown ];
    rs_headers = [ ("User-Agent", Strsig.lit "app/1.0") ];
    rs_body = Msgsig.Bnone;
  }

let test_request_matches () =
  let req =
    Http.request
      ~headers:[ ("User-Agent", "app/1.0") ]
      Http.GET
      (Uri.of_string "https://h.example/api?x=42")
  in
  check Alcotest.bool "matches" true (Msgsig.request_matches req_sig req)

let test_request_rejects_wrong_method () =
  let req =
    Http.request
      ~headers:[ ("User-Agent", "app/1.0") ]
      Http.POST
      (Uri.of_string "https://h.example/api?x=42")
  in
  check Alcotest.bool "method mismatch" false (Msgsig.request_matches req_sig req)

let test_request_rejects_missing_header () =
  let req = Http.request Http.GET (Uri.of_string "https://h.example/api?x=1") in
  check Alcotest.bool "missing header" false (Msgsig.request_matches req_sig req)

let test_uri_query_keywords () =
  let sg =
    Strsig.concat
      [
        Strsig.lit "https://h/p?alpha="; Strsig.unknown; Strsig.lit "&beta=";
        Strsig.num;
      ]
  in
  check
    Alcotest.(list string)
    "query keys" [ "alpha"; "beta" ]
    (Msgsig.uri_query_keywords sg)

let test_body_byte_account_query () =
  let s = Msgsig.Bquery [ ("id", Strsig.unknown); ("uh", Strsig.unknown) ] in
  let b = Http.Query [ ("id", "t3_9"); ("uh", "hashhash"); ("junk", "zz") ] in
  let k, v, n = Msgsig.body_byte_account s b in
  check Alcotest.bool "keys constant" true (k > 0);
  check Alcotest.bool "values wild" true (v > 0);
  check Alcotest.bool "uncovered key noise" true (n > 0)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

(* Generator for random string signatures plus strings in their language. *)
let gen_sig_and_string =
  let open QCheck.Gen in
  let lit_gen = oneofl [ "api"; "/v1/"; "?q="; "&x="; "id"; ".json" ] in
  let rec gen depth =
    if depth = 0 then
      oneof
        [
          map (fun l -> (Strsig.lit l, l)) lit_gen;
          map (fun n -> (Strsig.num, string_of_int (abs n + 1))) small_int;
          return (Strsig.unknown, "anything-goes");
        ]
    else
      oneof
        [
          (let* a, sa = gen (depth - 1) in
           let* b, sb = gen (depth - 1) in
           return (Strsig.concat [ a; b ], sa ^ sb));
          (let* a, sa = gen (depth - 1) in
           let* b, _ = gen (depth - 1) in
           return (Strsig.alt [ a; b ], sa));
          gen 0;
        ]
  in
  gen 2

let prop_sig_matches_its_language =
  QCheck.Test.make ~count:200 ~name:"strsig accepts strings from its language"
    (QCheck.make gen_sig_and_string)
    (fun (sg, s) -> Strsig.matches sg s)

let prop_regex_agrees_with_sig =
  QCheck.Test.make ~count:200
    ~name:"compiled regex accepts what the signature accepts"
    (QCheck.make gen_sig_and_string)
    (fun (sg, s) -> Regex.string_matches ~pattern:(Strsig.to_regex sg) s)

let prop_literal_regex_roundtrip =
  QCheck.Test.make ~count:200 ~name:"escaped literal matches exactly itself"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 20))
    (fun s ->
      let s = String.map (fun c -> if Char.code c < 32 then 'x' else c) s in
      Regex.string_matches ~pattern:(Strsig.to_regex (Strsig.lit s)) s)

let prop_byte_counts_total =
  QCheck.Test.make ~count:200 ~name:"byte attribution covers every byte"
    (QCheck.make gen_sig_and_string)
    (fun (sg, s) ->
      match Strsig.byte_counts sg s with
      | Some (c, w) -> c + w = String.length s
      | None -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sig_matches_its_language;
      prop_regex_agrees_with_sig;
      prop_literal_regex_roundtrip;
      prop_byte_counts_total;
    ]

let () =
  Alcotest.run "siglang"
    [
      ( "strsig",
        [
          tc "concat merges literals" test_concat_merges_literals;
          tc "concat flattens" test_concat_flattens;
          tc "alt dedups" test_alt_dedups;
          tc "alt singleton" test_alt_single_collapses;
          tc "rep idempotent" test_rep_idempotent;
          tc "keywords" test_keywords;
        ] );
      ("regex-gen", [ tc "escaping" test_regex_escaping; tc "forms" test_regex_forms ]);
      ( "regex-engine",
        [
          tc "literals" test_regex_literals;
          tc "quantifiers" test_regex_quantifiers;
          tc "classes" test_regex_classes;
          tc "alternation" test_regex_alternation;
          tc "dot and escape" test_regex_dot_and_escape;
          tc "wildcard backtracking" test_regex_wildcard_backtracking;
          tc "paper example" test_regex_paper_example;
          tc "linear on adversarial input" test_regex_linear_adversarial;
          tc "parse error" test_regex_parse_error;
        ] );
      ( "attribution",
        [
          tc "simple" test_match_attr_simple;
          tc "alt" test_match_attr_alt;
          tc "num" test_match_attr_num;
          tc "rep" test_match_attr_rep;
        ] );
      ( "jsonsig",
        [
          tc "admits" test_jsonsig_admits;
          tc "missing key" test_jsonsig_rejects_missing_key;
          tc "wrong type" test_jsonsig_rejects_wrong_type;
          tc "keys" test_jsonsig_keys;
          tc "merge" test_jsonsig_merge;
          tc "byte account" test_jsonsig_byte_account;
          tc "of concrete" test_jsonsig_of_concrete;
        ] );
      ( "xmlsig",
        [
          tc "admits" test_xmlsig_admits;
          tc "wrong tag" test_xmlsig_rejects_wrong_tag;
          tc "keywords" test_xmlsig_keywords;
          tc "dtd" test_xmlsig_dtd;
        ] );
      ( "msgsig",
        [
          tc "request matches" test_request_matches;
          tc "wrong method" test_request_rejects_wrong_method;
          tc "missing header" test_request_rejects_missing_header;
          tc "uri query keywords" test_uri_query_keywords;
          tc "query byte account" test_body_byte_account_query;
        ] );
      ("properties", qcheck_tests);
    ]
