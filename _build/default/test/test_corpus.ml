(* Corpus tests: the Table-1 visibility allocation is exact, every
   generated APK is structurally valid, ground-truth helpers behave, and
   the case-study specs carry the structures the paper's tables need. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Http = Extr_httpmodel.Http
module Apk = Extr_apk.Apk
module Spec = Extr_corpus.Spec
module Synth = Extr_corpus.Synth
module Codegen = Extr_corpus.Codegen
module Corpus = Extr_corpus.Corpus
module Case_studies = Extr_corpus.Case_studies
module Pipeline = Extr_extractocol.Pipeline

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Allocation                                                         *)
(* ------------------------------------------------------------------ *)

let alloc_counts (a : Synth.alloc) =
  let static = a.Synth.al_all + a.Synth.al_sm + a.Synth.al_sa + a.Synth.al_s in
  let manual = a.Synth.al_all + a.Synth.al_sm + a.Synth.al_ma + a.Synth.al_m in
  let auto = a.Synth.al_all + a.Synth.al_sa + a.Synth.al_ma + a.Synth.al_a in
  (static, manual, auto)

let test_allocation_exact () =
  (* Every (E, M, A) triple in Table 1 must be reproduced exactly by the
     visibility allocation. *)
  List.iter
    (fun (r : Synth.row) ->
      List.iter
        (fun triple ->
          let got = alloc_counts (Synth.allocate triple) in
          check
            Alcotest.(triple int int int)
            (Printf.sprintf "%s %s" r.Synth.t_name "triple")
            triple got)
        [ r.Synth.t_get; r.Synth.t_post; r.Synth.t_put; r.Synth.t_delete ])
    (Synth.open_source_rows @ Synth.closed_source_rows)

let test_allocation_nonnegative () =
  List.iter
    (fun triple ->
      let a = Synth.allocate triple in
      List.iter
        (fun n -> check Alcotest.bool "non-negative" true (n >= 0))
        [
          a.Synth.al_all; a.Synth.al_sm; a.Synth.al_sa; a.Synth.al_s;
          a.Synth.al_ma; a.Synth.al_m; a.Synth.al_a;
        ])
    [ (5, 3, 1); (0, 4, 0); (7, 0, 0); (3, 10, 0); (12, 13, 15) ]

(* ------------------------------------------------------------------ *)
(* Spec-level ground truth per app                                     *)
(* ------------------------------------------------------------------ *)

let spec_counts app ~policy meth =
  Spec.dynamically_visible app ~policy
  |> List.filter (fun e -> e.Spec.e_meth = meth)
  |> List.length

let static_counts app meth =
  Spec.statically_visible app
  |> List.filter (fun e -> e.Spec.e_meth = meth)
  |> List.length

let test_synth_apps_match_rows () =
  List.iter
    (fun (r : Synth.row) ->
      let app = Synth.synthesize_app r in
      let eq meth (e, m, a) =
        check Alcotest.int
          (r.Synth.t_name ^ " static " ^ Http.meth_to_string meth)
          e (static_counts app meth);
        check Alcotest.int
          (r.Synth.t_name ^ " manual " ^ Http.meth_to_string meth)
          m
          (spec_counts app ~policy:`Manual meth);
        check Alcotest.int
          (r.Synth.t_name ^ " auto " ^ Http.meth_to_string meth)
          a
          (spec_counts app ~policy:`Auto meth)
      in
      eq Http.GET r.Synth.t_get;
      eq Http.POST r.Synth.t_post;
      eq Http.PUT r.Synth.t_put;
      eq Http.DELETE r.Synth.t_delete)
    (Synth.open_source_rows @ Synth.closed_source_rows)

let test_unique_endpoint_ids () =
  List.iter
    (fun (entry : Corpus.entry) ->
      let ids = List.map (fun e -> e.Spec.e_id) entry.Corpus.c_app.Spec.a_endpoints in
      check Alcotest.int
        (entry.Corpus.c_app.Spec.a_name ^ " unique ids")
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    (Corpus.table1 () @ Corpus.case_studies ())

let test_sresp_references_resolve () =
  (* Every Sresp dependency must point at an endpoint that stores the
     referenced path to the heap (otherwise codegen would read a field
     nobody writes). *)
  let heap_paths app =
    List.concat_map
      (fun e ->
        let rec walk path fields =
          List.concat_map
            (fun f ->
              match f with
              | Spec.Rleaf { key; use = Some Spec.Uheap; _ } ->
                  [ (e.Spec.e_id, path @ [ key ]) ]
              | Spec.Rleaf _ -> []
              | Spec.Robj { key; fields; _ } -> walk (path @ [ key ]) fields
              | Spec.Rarr { key; elem; _ } -> walk (path @ [ key; "[]" ]) elem)
            fields
        in
        match e.Spec.e_resp with
        | Spec.Rjson fields | Spec.Rxml (_, fields) -> walk [] fields
        | Spec.Rnone | Spec.Rtext | Spec.Rmedia -> [])
      app.Spec.a_endpoints
  in
  List.iter
    (fun (entry : Corpus.entry) ->
      let app = entry.Corpus.c_app in
      let stored = heap_paths app in
      let check_src where = function
        | Spec.Sresp (ep, path) ->
            check Alcotest.bool
              (Printf.sprintf "%s: %s references stored %s.%s" app.Spec.a_name
                 where ep (String.concat "." path))
              true
              (List.mem (ep, path) stored)
        | _ -> ()
      in
      List.iter
        (fun e ->
          List.iter (fun (k, v) -> check_src ("query " ^ k) v) e.Spec.e_query;
          List.iter (fun (k, v) -> check_src ("header " ^ k) v) e.Spec.e_headers;
          (match e.Spec.e_body with
          | Spec.Bnone -> ()
          | Spec.Bquery kvs | Spec.Bjson kvs | Spec.Bgson kvs ->
              List.iter (fun (k, v) -> check_src ("body " ^ k) v) kvs);
          List.iter
            (function Spec.Var v -> check_src "path" v | _ -> ())
            e.Spec.e_path)
        app.Spec.a_endpoints)
    (Corpus.table1 () @ Corpus.case_studies ())

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

let test_all_apks_validate () =
  List.iter
    (fun (entry : Corpus.entry) ->
      let apk = Lazy.force entry.Corpus.c_apk in
      let prog =
        Prog.of_program (Pipeline.with_library_classes apk.Apk.program)
      in
      let errors = Prog.validate prog in
      check Alcotest.int
        (entry.Corpus.c_app.Spec.a_name ^ " validates")
        0 (List.length errors))
    (Corpus.table1 () @ Corpus.case_studies ())

let test_corpus_size () =
  (* 14 open-source + 20 closed-source apps in the Table-1 set. *)
  let entries = Corpus.table1 () in
  check Alcotest.int "34 apps" 34 (List.length entries);
  check Alcotest.int "14 open" 14 (List.length (Corpus.open_source entries));
  check Alcotest.int "20 closed" 20 (List.length (Corpus.closed_source entries))

let test_trigger_visibility_rules () =
  let app = Case_studies.radio_reddit in
  let login = Option.get (Spec.find_endpoint app "login") in
  check Alcotest.bool "custom invisible to auto" false
    (Spec.trigger_visible app ~policy:`Auto login);
  check Alcotest.bool "custom visible to manual" true
    (Spec.trigger_visible app ~policy:`Manual login);
  let stream = Option.get (Spec.find_endpoint app "stream") in
  check Alcotest.bool "internal inherits parent" true
    (Spec.trigger_visible app ~policy:`Auto stream)

let test_keywords_ground_truth () =
  let app = Case_studies.radio_reddit in
  let status = Option.get (Spec.find_endpoint app "status") in
  let read = Spec.response_keywords ~only_read:true status in
  let all = Spec.response_keywords ~only_read:false status in
  (* The paper: 16 of 18 keywords are read ("album" and "score" are not). *)
  check Alcotest.bool "album unread" true
    ((not (List.mem "album" read)) && List.mem "album" all);
  check Alcotest.bool "score unread" true
    ((not (List.mem "score" read)) && List.mem "score" all);
  check Alcotest.bool "relay read" true (List.mem "relay" read)

let test_corpus_roundtrips_textually () =
  (* The generated bytecode survives the printer/parser round-trip even at
     corpus scale (Diode is the largest hand-authored app). *)
  List.iter
    (fun name ->
      let e = Option.get (Corpus.find (Corpus.case_studies ()) name) in
      let apk = Lazy.force e.Corpus.c_apk in
      let text = Extr_ir.Pp.program_to_string apk.Apk.program in
      let p' = Extr_ir.Parser.parse_program text in
      check Alcotest.string name text (Extr_ir.Pp.program_to_string p'))
    [ "Diode"; "TED (case study)" ]

let test_case_study_inventory () =
  check Alcotest.int "five case apps" 5 (List.length (Corpus.case_studies ()));
  check Alcotest.int "kayak categories" 9 (List.length Case_studies.kayak_categories)

let () =
  Alcotest.run "corpus"
    [
      ( "allocation",
        [
          tc "exact per row" test_allocation_exact;
          tc "non-negative" test_allocation_nonnegative;
        ] );
      ( "specs",
        [
          tc "synth apps match rows" test_synth_apps_match_rows;
          tc "unique endpoint ids" test_unique_endpoint_ids;
          tc "sresp references resolve" test_sresp_references_resolve;
          tc "trigger visibility" test_trigger_visibility_rules;
          tc "keyword ground truth" test_keywords_ground_truth;
        ] );
      ( "codegen",
        [
          tc "all apks validate" test_all_apks_validate;
          tc "corpus size" test_corpus_size;
          tc "case-study inventory" test_case_study_inventory;
          tc "textual round-trip at scale" test_corpus_roundtrips_textually;
        ] );
    ]
