(* Failure injection and pathological-input robustness: the pipeline must
   terminate and degrade gracefully on recursion, infinite loops, deep
   call chains, empty or entry-less apps, and malformed runtime data —
   real APKs contain all of these. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Runtime = Extr_runtime.Runtime

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let apk_of ?(entries = []) classes =
  let activities =
    List.filter_map
      (fun (c : Ir.cls) ->
        match c.Ir.c_super with
        | Some s when s = Api.activity -> Some c.Ir.c_name
        | Some _ | None -> None)
      classes
  in
  Apk.make ~package:"com.robust" ~activities
    { Ir.p_classes = classes @ Api.library_classes; p_entries = entries }

let tx_count apk =
  List.length (Pipeline.analyze apk).Pipeline.an_report.Report.rp_transactions

(* Fire one GET so every pathological app still has a protocol surface. *)
let emit_get b uri =
  let client = B.new_obj b Api.default_http_client [] in
  let req = B.new_obj b Api.http_get [ uri ] in
  B.call b
    (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
       "execute" [ B.vl req ])

(* ------------------------------------------------------------------ *)
(* Termination                                                        *)
(* ------------------------------------------------------------------ *)

let test_direct_recursion_terminates () =
  (* onCreate calls a method that recurses unconditionally before firing
     a request; the recursion guard must cut the cycle, and the request
     must still be extracted. *)
  let cls = "com.robust.Rec" in
  let spin =
    B.mk_meth ~cls ~name:"spin" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "spin" []);
        emit_get b (B.vstr "https://r/x");
        B.return_void b)
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "spin" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ spin; on_create ] ] in
  check Alcotest.int "request found despite recursion" 1 (tx_count apk)

let test_mutual_recursion_terminates () =
  let cls = "com.robust.Mut" in
  let a =
    B.mk_meth ~cls ~name:"a" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "b" []);
        B.return_void b)
  in
  let b_ =
    B.mk_meth ~cls ~name:"b" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "a" []);
        emit_get b (B.vstr "https://r/m");
        B.return_void b)
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "a" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ a; b_; on_create ] ] in
  check Alcotest.int "request found despite mutual recursion" 1 (tx_count apk)

let test_infinite_loop_bounded () =
  (* while(true) { sb.append(...) }: the interpreter's loop passes are
     bounded; analysis terminates and the loop-built URI is widened. *)
  let cls = "com.robust.Loop" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "https://r/l?" ] in
        B.while_ b
          (fun b -> B.vl (B.define b Ir.Bool (Ir.Val (B.vbool true))))
          (fun b ->
            ignore
              (B.call_ret b (Ir.Obj Api.string_builder)
                 (B.virtual_call
                    ~ret:(Ir.Obj Api.string_builder)
                    sb Api.string_builder "append" [ B.vstr "&x=1" ])));
        let uri =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        emit_get b (B.vl uri);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  match report.Report.rp_transactions with
  | [ tr ] ->
      let regex =
        Extr_siglang.Strsig.to_regex tr.Report.tr_request.Extr_siglang.Msgsig.rs_uri
      in
      check Alcotest.bool "loop part widened to a repetition" true
        (let rec contains i =
           i + 7 <= String.length regex
           && (String.sub regex i 7 = "(&x=1)*" || contains (i + 1))
         in
         contains 0)
  | txs -> Alcotest.failf "expected 1 transaction, got %d" (List.length txs)

let test_deep_call_chain_bounded () =
  (* A call chain deeper than io_max_depth: analysis terminates; the
     request at the bottom is out of reach (bounded inlining), which is a
     documented under-approximation, not a crash. *)
  let cls = "com.robust.Deep" in
  let depth = 40 in
  let meths =
    List.init depth (fun i ->
        B.mk_meth ~cls ~name:(Printf.sprintf "f%d" i) ~params:[] ~ret:Ir.Void
          (fun b ->
            (if i + 1 < depth then
               B.call b
                 (B.virtual_call (Ir.this_var cls) cls
                    (Printf.sprintf "f%d" (i + 1))
                    [])
             else emit_get b (B.vstr "https://r/deep"));
            B.return_void b))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "f0" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls (meths @ [ on_create ]) ] in
  (* Termination is the assertion; the count depends on the depth bound. *)
  let n = tx_count apk in
  check Alcotest.bool "terminates" true (n >= 0)

(* ------------------------------------------------------------------ *)
(* Degenerate apps                                                    *)
(* ------------------------------------------------------------------ *)

let test_empty_app () =
  let apk = apk_of [] in
  check Alcotest.int "no transactions" 0 (tx_count apk)

let test_app_without_entries () =
  (* A class with a request but no lifecycle entry and no registration:
     nothing executes, nothing is extracted. *)
  let cls = "com.robust.Orphan" in
  let m =
    B.mk_meth ~cls ~name:"fetch" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "https://r/o");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls cls [ m ] ] in
  check Alcotest.int "unreachable request not extracted" 0 (tx_count apk)

let test_unreachable_code_ignored () =
  let cls = "com.robust.Dead" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "https://r/live");
        B.return_void b;
        (* Statements after return are unreachable. *)
        emit_get b (B.vstr "https://r/dead");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  check Alcotest.int "only the live request" 1 (tx_count apk)

(* ------------------------------------------------------------------ *)
(* Runtime failure injection                                          *)
(* ------------------------------------------------------------------ *)

let test_runtime_error_responses () =
  (* A network that always answers 500 with garbage: the concrete runtime
     must finish the launch and record the failing transactions. *)
  let cls = "com.robust.Err" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let client = B.new_obj b Api.default_http_client [] in
        let req = B.new_obj b Api.http_get [ B.vstr "https://r/e" ] in
        let resp =
          B.call_ret b (Ir.Obj Api.http_response)
            (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
               Api.http_client "execute" [ B.vl req ])
        in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp
               Api.http_response "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString"
               [ B.vl entity ])
        in
        (* Parse the garbage as JSON and read a member: must not raise. *)
        let j = B.new_obj b Api.json_object [ B.vl body ] in
        let v =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "missing" ])
        in
        ignore v;
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let net (_ : Http.request) =
    Http.response ~status:500 (Http.Text "<<<not json>>>")
  in
  let rt = Runtime.create ~net ~input:(fun () -> "") apk in
  ignore (Runtime.launch rt);
  let trace = Runtime.captured_trace rt in
  check Alcotest.int "failing transaction captured" 1
    (List.length trace.Http.tr_entries);
  match trace.Http.tr_entries with
  | [ e ] ->
      check Alcotest.int "status recorded" 500
        e.Http.te_tx.Http.tx_response.Http.resp_status
  | _ -> Alcotest.fail "trace shape"

let test_runtime_malformed_uri () =
  (* The app builds a URI from user text that is not a URI at all: the
     runtime skips the request rather than crashing. *)
  let cls = "com.robust.BadUri" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "::this is not a uri::");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let net (_ : Http.request) = Http.response (Http.Text "ok") in
  let rt = Runtime.create ~net ~input:(fun () -> "") apk in
  ignore (Runtime.launch rt);
  let trace = Runtime.captured_trace rt in
  check Alcotest.int "no transaction for a malformed URI" 0
    (List.length trace.Http.tr_entries)

let () =
  Alcotest.run "robustness"
    [
      ( "termination",
        [
          tc "direct recursion" test_direct_recursion_terminates;
          tc "mutual recursion" test_mutual_recursion_terminates;
          tc "infinite loop widened" test_infinite_loop_bounded;
          tc "deep call chain" test_deep_call_chain_bounded;
        ] );
      ( "degenerate apps",
        [
          tc "empty app" test_empty_app;
          tc "no entries" test_app_without_entries;
          tc "unreachable code" test_unreachable_code_ignored;
        ] );
      ( "runtime failures",
        [
          tc "error responses" test_runtime_error_responses;
          tc "malformed uri" test_runtime_malformed_uri;
        ] );
    ]
