(* IR tests: builder combinators, printer/parser round-trip, structural
   validation, use/def queries, program lookups, and the ProGuard-style
   obfuscator. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Pp = Extr_ir.Pp
module Parser = Extr_ir.Parser
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Obfuscator = Extr_apk.Obfuscator

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let simple_meth () =
  B.mk_meth ~cls:"com.t.C" ~name:"m" ~params:[ B.local "x" Ir.Int ] ~ret:Ir.Int
    (fun b ->
      let y =
        B.define b Ir.Int (Ir.Binop (Ir.Add, B.vl (B.local "x" Ir.Int), B.vint 1))
      in
      B.return_value b (B.vl y))

let branchy_meth () =
  B.mk_meth ~cls:"com.t.C" ~name:"n" ~params:[ B.local "f" Ir.Bool ] ~ret:Ir.Str
    (fun b ->
      let s = B.define b Ir.Str (Ir.Val (B.vstr "a")) in
      B.ite b
        (B.vl (B.local "f" Ir.Bool))
        (fun b -> B.assign b s (Ir.Val (B.vstr "then")))
        (fun b -> B.assign b s (Ir.Val (B.vstr "else")));
      B.return_value b (B.vl s))

let simple_program () =
  let c =
    B.mk_cls ~super:Api.java_object "com.t.C" [ simple_meth (); branchy_meth () ]
  in
  { Ir.p_classes = [ c ]; p_entries = [ B.mref "com.t.C" "m" 1 ] }

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

let test_builder_fresh () =
  let b = B.create () in
  let v1 = B.fresh_var b Ir.Int and v2 = B.fresh_var b Ir.Str in
  check Alcotest.bool "distinct names" true (v1.Ir.vname <> v2.Ir.vname)

let test_builder_terminates_void () =
  let m = B.mk_meth ~cls:"C" ~name:"f" ~params:[] ~ret:Ir.Void (fun _ -> ()) in
  check Alcotest.bool "void body ends with return" true
    (match m.Ir.m_body.(Array.length m.Ir.m_body - 1) with
    | Ir.Return None -> true
    | _ -> false)

let test_builder_ite_shape () =
  let m = branchy_meth () in
  let count p = Array.to_list m.Ir.m_body |> List.filter p |> List.length in
  check Alcotest.int "one conditional branch" 1
    (count (function Ir.If _ -> true | _ -> false));
  check Alcotest.int "one goto" 1 (count (function Ir.Goto _ -> true | _ -> false))

let test_builder_while_shape () =
  let m =
    B.mk_meth ~cls:"C" ~name:"l" ~params:[] ~ret:Ir.Void (fun b ->
        let i = B.define b Ir.Int (Ir.Val (B.vint 0)) in
        B.while_ b
          (fun b -> B.vl (B.define b Ir.Bool (Ir.Binop (Ir.Lt, B.vl i, B.vint 3))))
          (fun b -> B.assign b i (Ir.Binop (Ir.Add, B.vl i, B.vint 1))))
  in
  let labels = Hashtbl.create 4 in
  Array.iteri
    (fun idx s -> match s with Ir.Lab l -> Hashtbl.replace labels l idx | _ -> ())
    m.Ir.m_body;
  let has_back_edge = ref false in
  Array.iteri
    (fun idx s ->
      match s with
      | Ir.Goto l when Hashtbl.find labels l < idx -> has_back_edge := true
      | _ -> ())
    m.Ir.m_body;
  check Alcotest.bool "back edge exists" true !has_back_edge

(* ------------------------------------------------------------------ *)
(* Use/def                                                            *)
(* ------------------------------------------------------------------ *)

let test_stmt_def_use () =
  let x = B.local "x" Ir.Int and y = B.local "y" Ir.Int in
  let s = Ir.Assign (Ir.Lvar x, Ir.Binop (Ir.Add, Ir.Local y, Ir.Const (Ir.Cint 1))) in
  check Alcotest.(option string) "def" (Some "x")
    (Option.map (fun v -> v.Ir.vname) (Ir.stmt_def s));
  check
    Alcotest.(list string)
    "uses" [ "y" ]
    (List.map (fun v -> v.Ir.vname) (Ir.stmt_uses s))

let test_field_store_uses_receiver () =
  let x = B.local "x" (Ir.Obj "C") and y = B.local "y" Ir.Str in
  let f = { Ir.fcls = "C"; fname = "g"; fty = Ir.Str } in
  let s = Ir.Assign (Ir.Lfield (x, f), Ir.Val (Ir.Local y)) in
  check Alcotest.(option string) "no local def" None
    (Option.map (fun v -> v.Ir.vname) (Ir.stmt_def s));
  check
    Alcotest.(list string)
    "receiver and value used" [ "x"; "y" ]
    (List.sort compare (List.map (fun v -> v.Ir.vname) (Ir.stmt_uses s)))

let test_stmt_invoke_extraction () =
  let s = Ir.InvokeStmt (B.static_call "C" "f" [ B.vint 1 ]) in
  check Alcotest.bool "invoke found" true (Ir.stmt_invoke s <> None);
  check Alcotest.bool "no invoke in nop" true (Ir.stmt_invoke Ir.Nop = None)

(* ------------------------------------------------------------------ *)
(* Printer / parser round-trip                                        *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let p = simple_program () in
  let text = Pp.program_to_string p in
  let p' = Parser.parse_program text in
  check Alcotest.string "round-trip is stable" text (Pp.program_to_string p')

let test_roundtrip_constructs () =
  let cls = "com.t.R" in
  let m =
    B.mk_meth ~cls ~name:"all" ~params:[ B.local "p" Ir.Str ] ~ret:Ir.Str
      (fun b ->
        let o = B.new_obj b Api.string_builder [ B.vstr "x\"y\n" ] in
        let n = B.define b Ir.Int (Ir.Val (B.vint (-3))) in
        let arr = B.define b (Ir.Arr Ir.Int) (Ir.NewArr (Ir.Int, B.vl n)) in
        B.emit b (Ir.Assign (Ir.Lelem (arr, B.vint 0), Ir.Val (B.vint 7)));
        let e = B.define b Ir.Int (Ir.AElem (arr, B.vint 0)) in
        let l = B.define b Ir.Int (Ir.ALen arr) in
        let sum = B.define b Ir.Int (Ir.Binop (Ir.Add, B.vl e, B.vl l)) in
        let f = { Ir.fcls = cls; fname = "fld"; fty = Ir.Int } in
        B.set_static b f (B.vl sum);
        let g = B.get_static b f in
        let cast = B.define b Ir.Int (Ir.Cast (Ir.Int, B.vl g)) in
        ignore cast;
        let s =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str o Api.string_builder "toString" [])
        in
        B.return_value b (B.vl s))
  in
  let c =
    B.mk_cls ~super:Api.java_object
      ~fields:[ B.mk_field ~static:true "fld" Ir.Int ]
      cls [ m ]
  in
  let p = { Ir.p_classes = [ c ]; p_entries = [] } in
  let text = Pp.program_to_string p in
  let p' = Parser.parse_program text in
  check Alcotest.string "all-constructs round trip" text (Pp.program_to_string p')

let test_parser_rejects_garbage () =
  check Alcotest.bool "garbage rejected" true
    (try
       ignore (Parser.parse_program "garbage ^^^");
       false
     with Parser.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Prog lookups and validation                                        *)
(* ------------------------------------------------------------------ *)

let test_prog_lookup () =
  let prog = Prog.of_program (simple_program ()) in
  check Alcotest.bool "class found" true (Prog.find_class prog "com.t.C" <> None);
  check Alcotest.bool "method found" true
    (Prog.find_method prog { Ir.id_cls = "com.t.C"; id_name = "m" } <> None);
  check Alcotest.bool "missing method" true
    (Prog.find_method prog { Ir.id_cls = "com.t.C"; id_name = "zz" } = None)

let test_subclass_resolution () =
  let base =
    B.mk_cls "com.t.Base"
      [ B.mk_meth ~cls:"com.t.Base" ~name:"go" ~params:[] ~ret:Ir.Void (fun _ -> ()) ]
  in
  let derived = B.mk_cls ~super:"com.t.Base" "com.t.Derived" [] in
  let prog = Prog.of_program { Ir.p_classes = [ base; derived ]; p_entries = [] } in
  check Alcotest.bool "subclass relation" true
    (Prog.is_subclass prog ~sub:"com.t.Derived" ~super:"com.t.Base");
  check Alcotest.bool "virtual resolution walks up" true
    (Prog.resolve_virtual prog ~cls:"com.t.Derived" ~mname:"go" <> None)

let test_validate_clean () =
  let prog = Prog.of_program (simple_program ()) in
  check Alcotest.int "no validation errors" 0 (List.length (Prog.validate prog))

let test_validate_bad_label () =
  let m =
    {
      Ir.m_cls = "C";
      m_name = "bad";
      m_params = [];
      m_ret = Ir.Void;
      m_static = false;
      m_body = [| Ir.Goto "nowhere"; Ir.Return None |];
    }
  in
  let prog =
    Prog.of_program { Ir.p_classes = [ B.mk_cls "C" [ m ] ]; p_entries = [] }
  in
  check Alcotest.bool "bad label detected" true (Prog.validate prog <> [])

let test_validate_undefined_local () =
  let ghost = B.local "ghost" Ir.Int in
  let m =
    {
      Ir.m_cls = "C";
      m_name = "bad";
      m_params = [];
      m_ret = Ir.Void;
      m_static = false;
      m_body = [| Ir.Return (Some (Ir.Local ghost)) |];
    }
  in
  let prog =
    Prog.of_program { Ir.p_classes = [ B.mk_cls "C" [ m ] ]; p_entries = [] }
  in
  check Alcotest.bool "undefined local detected" true (Prog.validate prog <> [])

let test_app_stmt_count () =
  let prog = Prog.of_program (simple_program ()) in
  check Alcotest.bool "counts statements" true (Prog.app_stmt_count prog > 0)

(* ------------------------------------------------------------------ *)
(* Obfuscator                                                         *)
(* ------------------------------------------------------------------ *)

let test_obfuscator_renames_app_classes () =
  let apk = Apk.make ~package:"com.t" (simple_program ()) in
  let obf, mapping = Obfuscator.obfuscate apk in
  let renamed = Obfuscator.rename_class mapping "com.t.C" in
  check Alcotest.bool "app class renamed" true (renamed <> "com.t.C");
  check Alcotest.bool "package prefix kept" true
    (String.length renamed > 6 && String.sub renamed 0 6 = "com.t.");
  check Alcotest.bool "renamed class present" true
    (List.exists (fun c -> c.Ir.c_name = renamed) obf.Apk.program.Ir.p_classes)

let test_obfuscator_preserves_library () =
  let lib = List.hd Api.library_classes in
  let program =
    { Ir.p_classes = lib :: (simple_program ()).Ir.p_classes; p_entries = [] }
  in
  let apk = Apk.make ~package:"com.t" program in
  let obf, _ = Obfuscator.obfuscate apk in
  check Alcotest.bool "library class untouched" true
    (List.exists (fun c -> c.Ir.c_name = lib.Ir.c_name) obf.Apk.program.Ir.p_classes)

let test_obfuscator_preserves_callbacks () =
  let cb =
    B.mk_meth ~cls:"com.t.L" ~name:"onClick"
      ~params:[ B.local "v" (Ir.Obj Api.view) ]
      ~ret:Ir.Void
      (fun _ -> ())
  in
  let program =
    {
      Ir.p_classes = [ B.mk_cls ~super:Api.on_click_listener "com.t.L" [ cb ] ];
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.t" program in
  let obf, _ = Obfuscator.obfuscate apk in
  let has_onclick =
    List.exists
      (fun c -> List.exists (fun m -> m.Ir.m_name = "onClick") c.Ir.c_methods)
      obf.Apk.program.Ir.p_classes
  in
  check Alcotest.bool "framework callback name preserved" true has_onclick

let test_obfuscated_validates () =
  let apk = Apk.make ~package:"com.t" (simple_program ()) in
  let obf, _ = Obfuscator.obfuscate apk in
  let prog = Prog.of_program obf.Apk.program in
  check Alcotest.int "obfuscated program validates" 0
    (List.length (Prog.validate prog))

(* ------------------------------------------------------------------ *)
(* Apk                                                                *)
(* ------------------------------------------------------------------ *)

let test_apk_resources () =
  let apk = Apk.make ~package:"com.t" ~resources:[ (7, "seven") ] (simple_program ()) in
  check Alcotest.(option string) "resource lookup" (Some "seven")
    (Apk.resource_string apk 7);
  check Alcotest.(option string) "missing resource" None (Apk.resource_string apk 8)

let test_apk_entry_points () =
  let on_create =
    B.mk_meth ~cls:"com.t.A" ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun _ -> ())
  in
  let program =
    {
      Ir.p_classes = [ B.mk_cls ~super:Api.activity "com.t.A" [ on_create ] ];
      p_entries = [];
    }
  in
  let apk = Apk.make ~package:"com.t" ~activities:[ "com.t.A" ] program in
  check Alcotest.int "lifecycle entries found" 1 (List.length (Apk.entry_points apk))

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          tc "fresh vars distinct" test_builder_fresh;
          tc "void termination" test_builder_terminates_void;
          tc "ite shape" test_builder_ite_shape;
          tc "while back edge" test_builder_while_shape;
        ] );
      ( "use-def",
        [
          tc "assign def/use" test_stmt_def_use;
          tc "field store receiver" test_field_store_uses_receiver;
          tc "invoke extraction" test_stmt_invoke_extraction;
        ] );
      ( "parser",
        [
          tc "round trip" test_roundtrip;
          tc "all constructs" test_roundtrip_constructs;
          tc "rejects garbage" test_parser_rejects_garbage;
        ] );
      ( "prog",
        [
          tc "lookups" test_prog_lookup;
          tc "subclass resolution" test_subclass_resolution;
          tc "validate clean" test_validate_clean;
          tc "validate bad label" test_validate_bad_label;
          tc "validate undefined local" test_validate_undefined_local;
          tc "stmt count" test_app_stmt_count;
        ] );
      ( "obfuscator",
        [
          tc "renames app classes" test_obfuscator_renames_app_classes;
          tc "preserves library" test_obfuscator_preserves_library;
          tc "preserves callbacks" test_obfuscator_preserves_callbacks;
          tc "obfuscated validates" test_obfuscated_validates;
        ] );
      ( "apk",
        [
          tc "resources" test_apk_resources;
          tc "entry points" test_apk_entry_points;
        ] );
    ]
