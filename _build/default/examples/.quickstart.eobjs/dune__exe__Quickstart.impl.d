examples/quickstart.ml: Extr_apk Extr_extractocol Extr_ir Extr_semantics Extr_siglang Fmt List String
