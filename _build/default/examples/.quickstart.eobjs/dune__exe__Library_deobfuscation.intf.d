examples/library_deobfuscation.mli:
