examples/library_deobfuscation.ml: Extr_apk Extr_corpus Extr_extractocol Extr_siglang Fmt Lazy List Option
