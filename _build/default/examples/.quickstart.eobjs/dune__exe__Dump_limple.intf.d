examples/dump_limple.mli:
