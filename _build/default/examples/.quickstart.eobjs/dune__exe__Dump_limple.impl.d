examples/dump_limple.ml: Array Extr_apk Extr_corpus Extr_ir Fmt Lazy Sys
