examples/protocol_testing.ml: Extr_corpus Extr_eval Extr_extractocol Extr_httpmodel Extr_server Extr_siglang Fmt Hashtbl Lazy List Option String
