examples/protocol_testing.mli:
