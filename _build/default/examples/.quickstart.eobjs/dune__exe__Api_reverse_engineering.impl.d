examples/api_reverse_engineering.ml: Extr_corpus Extr_eval Extr_extractocol Extr_httpmodel Extr_server Extr_siglang Fmt Lazy List Option
