examples/prefetcher.mli:
