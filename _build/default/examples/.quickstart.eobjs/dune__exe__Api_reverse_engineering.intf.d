examples/api_reverse_engineering.mli:
