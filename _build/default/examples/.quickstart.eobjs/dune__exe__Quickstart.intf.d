examples/quickstart.mli:
