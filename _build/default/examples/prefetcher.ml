(* Application acceleration (Figure 1, §2): use the extracted message
   dependencies to build a prefetcher.  When a TED talk is requested, its
   response embeds an advertisement URL that the app will fetch next and
   stream into the media player — Extractocol's dependency graph makes the
   prefetch opportunity explicit, so a proxy can fetch the ad while the
   first response is still in flight.

   Run with: dune exec examples/prefetcher.exe *)

module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Uri = Extr_httpmodel.Uri
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Txn = Extr_extractocol.Txn
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Regex = Extr_siglang.Regex
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Server = Extr_server.Server

(** A prefetch rule derived from the analysis: when a request matching
    [pf_trigger] receives its response, the value at [pf_path] in the body
    is a URL the client will request next. *)
type rule = {
  pf_trigger : Regex.t;
  pf_path : string list;
  pf_target_consumer : string;
}

(** Derive prefetch rules from the dependency graph: any transaction whose
    URI is dynamically derived from an earlier response yields a rule on
    that earlier transaction. *)
let rules_of_report (report : Report.t) : rule list =
  List.concat_map
    (fun tr ->
      List.filter_map
        (fun (d : Txn.dep) ->
          if d.Txn.dep_to_field = "uri" && d.Txn.dep_via = None then
            match
              List.find_opt
                (fun src -> src.Report.tr_id = d.Txn.dep_from_tx)
                report.Report.rp_transactions
            with
            | Some src ->
                Some
                  {
                    pf_trigger =
                      Regex.of_pattern
                        (Strsig.to_regex src.Report.tr_request.Msgsig.rs_uri);
                    pf_path =
                      List.filter (fun seg -> seg <> "[]") d.Txn.dep_from_path;
                    pf_target_consumer =
                      String.concat ","
                        (List.map Msgsig.consumer_to_string
                           tr.Report.tr_response.Msgsig.ps_consumers);
                  }
            | None -> None
          else None)
        tr.Report.tr_deps)
    report.Report.rp_transactions

(** The prefetching proxy: forwards requests, and when a response matches
    a rule, extracts the embedded URL and fetches it ahead of time. *)
let proxy ~(origin : Http.request -> Http.response) ~(rules : rule list) =
  let cache : (string, Http.response) Hashtbl.t = Hashtbl.create 8 in
  let prefetched = ref [] in
  let fetch (req : Http.request) : Http.response * bool =
    let key = Uri.to_string req.Http.req_uri in
    match Hashtbl.find_opt cache key with
    | Some resp -> (resp, true)
    | None ->
        let resp = origin req in
        (* Prefetch opportunities in this response? *)
        List.iter
          (fun rule ->
            if Regex.matches rule.pf_trigger key then
              match resp.Http.resp_body with
              | Http.Json j -> (
                  match Json.find_path rule.pf_path j with
                  | Some (Json.Str url) -> (
                      match Uri.of_string_opt url with
                      | Some uri ->
                          let ahead = origin (Http.request Http.GET uri) in
                          Hashtbl.replace cache url ahead;
                          prefetched := url :: !prefetched
                      | None -> ())
                  | _ -> ())
              | _ -> ())
          rules;
        (resp, false)
  in
  (fetch, prefetched)

let () =
  Fmt.pr "Prefetcher example (TED, Figure 1)@.";
  (* 1. Analyze the TED app. *)
  let entry =
    Option.get (Corpus.find (Corpus.case_studies ()) "TED (case study)")
  in
  let apk = Lazy.force entry.Corpus.c_apk in
  let analysis = Pipeline.analyze apk in
  let rules = rules_of_report analysis.Pipeline.an_report in
  Fmt.pr "derived %d prefetch rules from the dependency graph@." (List.length rules);
  List.iter
    (fun r ->
      Fmt.pr "  on response of %s: prefetch body.%s (feeds %s)@."
        (Regex.pattern r.pf_trigger)
        (String.concat "." r.pf_path)
        (if r.pf_target_consumer = "" then "app" else r.pf_target_consumer))
    rules;
  (* 2. Drive the ad-query flow through the prefetching proxy. *)
  let origin = Server.make entry.Corpus.c_app in
  let fetch, prefetched = proxy ~origin ~rules in
  let talk_req =
    Http.request Http.GET
      (Uri.of_string
         "https://app-api.ted.com/v1/talks/7/android_ad.json?api-key=ted-api-key-77aa21")
  in
  let _resp, _ = fetch talk_req in
  Fmt.pr "after the talk request, prefetched ahead of the client:@.";
  List.iter (Fmt.pr "  %s@.") !prefetched;
  (* 3. The client's follow-up is now a cache hit. *)
  match !prefetched with
  | url :: _ ->
      let follow = Http.request Http.GET (Uri.of_string url) in
      let _, hit = fetch follow in
      Fmt.pr "follow-up ad request served from prefetch cache: %b@." hit
  | [] -> Fmt.pr "no prefetch happened!@."
