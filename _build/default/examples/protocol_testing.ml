(* Protocol-test generation (§2): "Testing the protocol behavior is often
   cumbersome because it requires generating protocol messages exhaustively
   and protocol messages often have orderings due to their dependencies.
   Application protocol analysis can automate this process by generating
   messages exhaustively while following the dependency between message
   exchanges."

   This example turns the extracted dependency graph of radio reddit into a
   test schedule: transactions are topologically ordered so that producers
   (login, station status) run before consumers (save, vote), and each
   generated request carries the live values extracted from the recorded
   responses. *)

module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Txn = Extr_extractocol.Txn
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Corpus = Extr_corpus.Corpus
module Server = Extr_server.Server
module Replay = Extr_eval.Replay

(** Topological order of transactions along dependency edges (producers
    first); cycles would indicate an analysis bug and fail loudly. *)
let schedule (report : Report.t) : Report.transaction list =
  let txs = report.Report.rp_transactions in
  let deps_of tr =
    List.filter_map
      (fun (d : Txn.dep) ->
        if d.Txn.dep_from_tx <> tr.Report.tr_id then Some d.Txn.dep_from_tx
        else None)
      tr.Report.tr_deps
    |> List.sort_uniq compare
  in
  let placed = Hashtbl.create 16 in
  let order = ref [] in
  let rec place tr path =
    if List.mem tr.Report.tr_id path then failwith "dependency cycle";
    if not (Hashtbl.mem placed tr.Report.tr_id) then begin
      List.iter
        (fun id ->
          match List.find_opt (fun t -> t.Report.tr_id = id) txs with
          | Some producer -> place producer (tr.Report.tr_id :: path)
          | None -> ())
        (deps_of tr);
      Hashtbl.replace placed tr.Report.tr_id ();
      order := tr :: !order
    end
  in
  List.iter (fun tr -> place tr []) txs;
  List.rev !order

(** Extract the value a dependency refers to from a recorded response. *)
let dep_value (responses : (int * Http.response) list) (d : Txn.dep) :
    string option =
  match List.assoc_opt d.Txn.dep_from_tx responses with
  | Some { Http.resp_body = Http.Json j; _ } -> (
      let path = List.filter (fun seg -> seg <> "[]") d.Txn.dep_from_path in
      (* Arrays: dive into the first element where needed. *)
      let rec walk v = function
        | [] -> Some v
        | key :: rest -> (
            match v with
            | Json.Obj _ -> Option.bind (Json.member key v) (fun v' -> walk v' rest)
            | Json.List (x :: _) -> walk x (key :: rest)
            | _ -> None)
      in
      match walk j path with
      | Some (Json.Str s) -> Some s
      | Some v -> Some (Json.to_string v)
      | None -> None)
  | _ -> None

let () =
  Fmt.pr "Protocol-test generation (radio reddit)@.";
  let entry = Option.get (Corpus.find (Corpus.case_studies ()) "radio reddit") in
  let app = entry.Corpus.c_app in
  let report =
    (Pipeline.analyze (Lazy.force entry.Corpus.c_apk)).Pipeline.an_report
  in
  let plan = schedule report in
  Fmt.pr "test schedule (dependencies before dependents):@.";
  List.iter
    (fun tr ->
      Fmt.pr "  #%d %s %s@." tr.Report.tr_id
        (Http.meth_to_string tr.Report.tr_request.Msgsig.rs_meth)
        (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri))
    plan;
  (* Execute the schedule against the simulated service, threading live
     values along the dependency edges. *)
  let net = Server.make app in
  let responses = ref [] in
  let executed = ref 0 and ok = ref 0 in
  List.iter
    (fun tr ->
      (* Substitutions: for each dependency, pull the concrete value out of
         the recorded producer response. *)
      let subst =
        List.filter_map
          (fun (d : Txn.dep) ->
            match dep_value !responses d with
            | Some value -> (
                match String.index_opt d.Txn.dep_to_field ':' with
                | Some i ->
                    Some
                      ( String.sub d.Txn.dep_to_field (i + 1)
                          (String.length d.Txn.dep_to_field - i - 1),
                        value )
                | None -> None)
            | None -> None)
          tr.Report.tr_deps
      in
      (* Fully response-derived URIs (the media stream) are rebuilt from
         the producer's recorded value rather than the signature. *)
      let uri_override =
        List.find_map
          (fun (d : Txn.dep) ->
            if d.Txn.dep_to_field = "uri" then dep_value !responses d else None)
          tr.Report.tr_deps
      in
      let concrete_req =
        match uri_override with
        | Some url -> (
            match Extr_httpmodel.Uri.of_string_opt url with
            | Some uri ->
                Some (Http.request tr.Report.tr_request.Msgsig.rs_meth uri)
            | None -> None)
        | None -> Replay.request_of_sig ~subst tr.Report.tr_request
      in
      match concrete_req with
      | Some req ->
          incr executed;
          let resp = net req in
          responses := (tr.Report.tr_id, resp) :: !responses;
          if resp.Http.resp_status = 200 then incr ok;
          Fmt.pr "  #%d -> HTTP %d%s@." tr.Report.tr_id resp.Http.resp_status
            (if subst = [] then ""
             else
               " (with "
               ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) subst)
               ^ ")")
      | None -> Fmt.pr "  #%d skipped (fully dynamic URI)@." tr.Report.tr_id)
    plan;
  Fmt.pr "executed %d generated requests, %d succeeded@." !executed !ok
