(* Analyzing an app whose *library* classes were renamed (§3.4).

   ProGuard normally leaves framework and library classes alone, but
   repackaged or aggressively shrunk apps rename them too.  Then no
   demarcation point matches — `Lc.qcf(...)` says nothing about HTTP —
   and static protocol extraction goes blind.  The paper's answer is to
   compare "signature patterns" of the renamed classes against known
   library implementations; `Extr_apk.Deobfuscator` implements that:
   name-free usage profiles (argument/return shapes, static flags),
   return-class dataflow chains, builder fingerprints, superclass edges
   and preserved framework-callback names vote on each class's identity.

   This example takes radio reddit, renames its whole library surface,
   shows the pipeline finds nothing, recovers the mapping, and shows the
   recovered app produces the same six Table-3 transactions — including
   the modhash/cookie dependencies.

   Run with: dune exec examples/library_deobfuscation.exe *)

module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Msgsig = Extr_siglang.Msgsig
module Corpus = Extr_corpus.Corpus
module Obfuscator = Extr_apk.Obfuscator
module Deobfuscator = Extr_apk.Deobfuscator

let transactions apk =
  (Pipeline.analyze apk).Pipeline.an_report.Report.rp_transactions

let signatures apk =
  List.map
    (fun tr -> Fmt.str "%a" Msgsig.pp_request_sig tr.Report.tr_request)
    (transactions apk)
  |> List.sort_uniq compare

let () =
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "radio reddit") in
  let apk = Lazy.force e.Corpus.c_apk in

  Fmt.pr "=== 1. original app ===@.";
  let original = signatures apk in
  List.iter (Fmt.pr "  %s@.") original;

  Fmt.pr "@.=== 2. library surface renamed ===@.";
  let obf, truth = Obfuscator.obfuscate_libraries apk in
  Fmt.pr "  HttpPost is now called %S@."
    (Obfuscator.rename_class truth "org.apache.http.client.methods.HttpPost");
  Fmt.pr "  transactions found: %d (no demarcation point matches)@."
    (List.length (transactions obf));

  Fmt.pr "@.=== 3. signature-pattern recovery ===@.";
  let recovered, mapping = Deobfuscator.deobfuscate obf in
  Fmt.pr "  recovered %d classes, %d methods; e.g.@."
    (List.length mapping.Deobfuscator.dm_classes)
    (List.length mapping.Deobfuscator.dm_methods);
  List.iteri
    (fun i (obf_name, known) ->
      if i < 5 then Fmt.pr "    %-6s -> %s@." obf_name known)
    (List.sort compare mapping.Deobfuscator.dm_classes);

  Fmt.pr "@.=== 4. analysis of the recovered app ===@.";
  let restored = signatures recovered in
  List.iter (Fmt.pr "  %s@.") restored;
  if restored = original then
    Fmt.pr "@.recovered report identical to the original: true@."
  else begin
    Fmt.pr "@.recovered report identical to the original: FALSE@.";
    exit 1
  end
