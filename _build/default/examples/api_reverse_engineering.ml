(* Reverse-engineering a private REST API (§5.3, Tables 5 and 6).  The
   Kayak app's API used to be public; after it was privatized, the paper
   recovers the API syntax from the binary alone, then verifies it with a
   small replay client that retrieves flight fares — including the
   app-specific User-Agent header the server uses for access control.

   Run with: dune exec examples/api_reverse_engineering.exe *)

module Http = Extr_httpmodel.Http
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Corpus = Extr_corpus.Corpus
module Case_studies = Extr_corpus.Case_studies
module Replay = Extr_eval.Replay
module Server = Extr_server.Server

let () =
  Fmt.pr "Reverse-engineering the Kayak private API (§5.3)@.";
  (* 1. Analyze the binary, scoped to com.kayak classes. *)
  let entry = Option.get (Corpus.find (Corpus.case_studies ()) "Kayak (case study)") in
  let apk = Lazy.force entry.Corpus.c_apk in
  let options =
    { Pipeline.default_options with Pipeline.op_scope = Some "com.kayak" }
  in
  let analysis = Pipeline.analyze ~options apk in
  let report = analysis.Pipeline.an_report in
  Fmt.pr "recovered %d API transactions@."
    (List.length report.Report.rp_transactions);
  (* 2. The API surface, grouped by URI prefix (Table 5). *)
  Extr_eval.Tables.render_table5 Fmt.stdout report;
  (* 3. The flight-search signatures (Table 6). *)
  Extr_eval.Tables.render_table6 Fmt.stdout report;
  (* 4. Replay: build concrete requests from the signatures and drive the
     service — session, search, poll. *)
  let ok = Replay.flight_search Case_studies.kayak report in
  Fmt.pr "replay retrieved flight fares: %b@." ok;
  (* 5. The access control the paper found: without the app-specific
     User-Agent, the server rejects the session request. *)
  let net = Server.make Case_studies.kayak in
  let auth =
    List.find
      (fun tr ->
        Extr_eval.Tables.Str_replace.contains
          (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri)
          "kauthajax")
      report.Report.rp_transactions
  in
  (match Replay.request_of_sig auth.Report.tr_request with
  | Some req ->
      let no_ua = { req with Http.req_headers = [] } in
      let resp = net no_ua in
      Fmt.pr "request without User-Agent header rejected with HTTP %d@."
        resp.Http.resp_status
  | None -> Fmt.pr "could not concretize the authajax signature@.")
