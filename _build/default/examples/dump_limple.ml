(* Dump the textual Limple of a corpus app (also a quick way to eyeball
   what the code generator emits).  Usage: dump_limple "<app name>". *)
module Corpus = Extr_corpus.Corpus
module Apk = Extr_apk.Apk

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SharedDP" in
  let entries = Corpus.case_studies () @ Corpus.table1 () in
  match Corpus.find entries name with
  | None ->
      Fmt.epr "app %S not found@." name;
      exit 2
  | Some e ->
      let apk = Lazy.force e.Corpus.c_apk in
      print_string (Extr_ir.Pp.program_to_string apk.Apk.program)
