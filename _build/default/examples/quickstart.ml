(* Quickstart: build a tiny app with the Limple builder, analyze it with
   the Extractocol pipeline, and read the reconstructed transaction.

   Run with: dune exec examples/quickstart.exe *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig

(* 1. Write an Android-shaped program in the Limple IR: an activity whose
   onCreate fetches a JSON document and reads one field of it. *)
let apk =
  let cls = "com.example.quickstart.Main" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        (* url = "https://api.example.com/v1/greeting?lang=" + <user input> *)
        let sb =
          B.new_obj b Api.string_builder
            [ B.vstr "https://api.example.com/v1/greeting?lang=" ]
        in
        let input = B.new_obj b Api.edit_text [] in
        let lang =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str input Api.edit_text "getText" [])
        in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl lang ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        (* resp = new DefaultHttpClient().execute(new HttpGet(url)) *)
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        let resp =
          B.call_ret b (Ir.Obj Api.http_response)
            (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
               "execute" [ B.vl req ])
        in
        (* message = new JSONObject(body).getString("message") *)
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
               "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
        in
        let json = B.new_obj b Api.json_object [ B.vl body ] in
        let message =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str json Api.json_object "getString"
               [ B.vstr "message" ])
        in
        (* show it *)
        let tv = B.new_obj b Api.text_view [] in
        B.call b (B.virtual_call tv Api.text_view "setText" [ B.vl message ]))
  in
  let main = B.mk_cls ~super:Api.activity cls [ on_create ] in
  Apk.make ~package:"com.example.quickstart" ~activities:[ cls ]
    { Ir.p_classes = [ main ]; p_entries = [] }

(* 2. Analyze it: the pipeline slices the program from its demarcation
   points, interprets the slices into signatures, and pairs request with
   response. *)
let () =
  let analysis = Pipeline.analyze apk in
  let report = analysis.Pipeline.an_report in
  Fmt.pr "Extractocol quickstart@.";
  Fmt.pr "%a@." Report.pp report;
  (* 3. Use the signatures programmatically. *)
  List.iter
    (fun tr ->
      Fmt.pr "URI regex: %s@."
        (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri);
      Fmt.pr "response keys the app reads: %s@."
        (String.concat ", "
           (Msgsig.body_keywords tr.Report.tr_response.Msgsig.ps_body)))
    report.Report.rp_transactions
