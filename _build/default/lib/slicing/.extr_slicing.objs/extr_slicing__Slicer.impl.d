lib/slicing/slicer.ml: Array Extr_cfg Extr_ir Extr_semantics Extr_taint Hashtbl List String
