lib/slicing/slicer.mli: Extr_cfg Extr_ir Extr_semantics
