(** Program-level lookups: class hierarchy, method resolution (including
    virtual dispatch), and structural well-formedness validation. *)

open Types

type t

val of_program : program -> t

val find_class : t -> string -> cls option
val find_method : t -> method_id -> meth option
val find_method_ref : t -> method_ref -> meth option

val ancestry : t -> string -> string list
(** The superclass chain from a class upward, inclusive. *)

val is_subclass : t -> sub:string -> super:string -> bool

val resolve_virtual : t -> cls:string -> mname:string -> meth option
(** Closest ancestor (including the class itself) defining the method. *)

val subclasses : t -> string -> string list
(** All subclasses present in the program (inclusive) — CHA candidates. *)

val callees : t -> invoke -> meth list
(** CHA resolution of an invoke to concrete application methods; library
    methods are excluded (they are handled by semantic models). *)

val app_methods : t -> meth list
(** All methods of non-library classes. *)

val stmt_at : t -> stmt_id -> stmt option

val app_stmt_count : t -> int
(** Total statements over application methods (the Figure-3 slice-fraction
    denominator). *)

(** {1 Validation} *)

type validation_error = {
  ve_meth : method_id;
  ve_idx : int;
  ve_msg : string;
}

val pp_validation_error : Format.formatter -> validation_error -> unit

val validate : t -> validation_error list
(** Structural checks: branch targets defined, locals defined, constructed
    classes known. *)
