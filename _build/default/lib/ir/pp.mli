(** Textual Limple printer.

    The output is accepted by {!Parser}, so programs round-trip between
    in-memory and textual forms.  Method bodies declare every local with
    its type up front so the parser can reconstruct typed variables
    without inference. *)

open Types

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val pp_const : Format.formatter -> const -> unit
val pp_value : Format.formatter -> value -> unit

val binop_symbol : binop -> string
(** Surface syntax of a binary operator ([Add] is ["+"], …). *)

val pp_field_ref : Format.formatter -> field_ref -> unit
(** [<cls:fname:ty>] — the form {!Parser} reads back. *)

val pp_invoke : Format.formatter -> invoke -> unit
(** [virtual base.<cls.m:ret>(args)] (or [static <cls.m:ret>(args)]). *)

val pp_expr : Format.formatter -> expr -> unit
val pp_lhs : Format.formatter -> lhs -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val body_locals : meth -> var list
(** Locals referenced by a body, excluding parameters and [this], in
    first-occurrence order; these become the method's [local] preamble. *)

val pp_meth : Format.formatter -> meth -> unit
val pp_cls : Format.formatter -> cls -> unit

val pp_program : Format.formatter -> program -> unit
(** Entry declarations first, then every class. *)

val program_to_string : program -> string
val stmt_to_string : stmt -> string
