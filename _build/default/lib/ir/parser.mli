(** Recursive-descent parser for textual Limple, the inverse of {!Pp}.

    Intended for tests and hand-written example programs; the corpus code
    generator builds IR directly via {!Builder}.  [parse_program
    (Pp.program_to_string p)] reconstructs [p] up to statement-array
    identity (the round-trip property checked in [test_ir.ml]). *)

exception Parse_error of string
(** Raised on malformed input; the payload describes the offending token
    in context. *)

val parse_program : string -> Types.program
(** Parse a full program: [entry Cls.m;] declarations followed by
    [class]/[library class] definitions whose method bodies declare every
    local up front ([local ty name;]).

    @raise Parse_error on syntax errors, unknown types, or references to
    undeclared variables. *)
