(* Textual Limple printer.  The output is accepted by {!Parser}, so programs
   round-trip between in-memory and textual forms.  Method bodies declare
   every local with its type up front so the parser can reconstruct typed
   variables without inference. *)

open Types

let rec pp_ty fmt = function
  | Void -> Fmt.string fmt "void"
  | Int -> Fmt.string fmt "int"
  | Bool -> Fmt.string fmt "bool"
  | Str -> Fmt.string fmt "str"
  | Obj c -> Fmt.string fmt c
  | Arr t -> Fmt.pf fmt "%a[]" pp_ty t

let ty_to_string t = Fmt.str "%a" pp_ty t

let pp_const fmt = function
  | Cint n -> Fmt.int fmt n
  | Cbool b -> Fmt.bool fmt b
  | Cstr s -> Fmt.pf fmt "%S" s
  | Cnull -> Fmt.string fmt "null"

let pp_value fmt = function
  | Const c -> pp_const fmt c
  | Local v -> Fmt.string fmt v.vname

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let pp_field_ref fmt (f : field_ref) =
  Fmt.pf fmt "<%s:%s:%a>" f.fcls f.fname pp_ty f.fty

let pp_invoke fmt { ikind; iref; ibase; iargs } =
  let kind =
    match ikind with
    | Virtual -> "virtual"
    | Special -> "special"
    | Static -> "static"
  in
  let pp_args = Fmt.list ~sep:(Fmt.any ", ") pp_value in
  match ibase with
  | Some b ->
      Fmt.pf fmt "%s %s.<%s.%s:%a>(%a)" kind b.vname iref.mcls iref.mname
        pp_ty iref.mret pp_args iargs
  | None ->
      Fmt.pf fmt "%s <%s.%s:%a>(%a)" kind iref.mcls iref.mname pp_ty iref.mret
        pp_args iargs

let pp_expr fmt = function
  | Val v -> pp_value fmt v
  | Binop (op, a, b) ->
      Fmt.pf fmt "%a %s %a" pp_value a (binop_symbol op) pp_value b
  | New c -> Fmt.pf fmt "new %s" c
  | NewArr (t, n) -> Fmt.pf fmt "newarray %a[%a]" pp_ty t pp_value n
  | IField (x, f) -> Fmt.pf fmt "%s.%a" x.vname pp_field_ref f
  | SField f -> pp_field_ref fmt f
  | AElem (a, i) -> Fmt.pf fmt "%s[%a]" a.vname pp_value i
  | ALen a -> Fmt.pf fmt "lengthof %s" a.vname
  | Invoke i -> pp_invoke fmt i
  | Cast (t, v) -> Fmt.pf fmt "(%a) %a" pp_ty t pp_value v

let pp_lhs fmt = function
  | Lvar v -> Fmt.string fmt v.vname
  | Lfield (x, f) -> Fmt.pf fmt "%s.%a" x.vname pp_field_ref f
  | Lsfield f -> pp_field_ref fmt f
  | Lelem (a, i) -> Fmt.pf fmt "%s[%a]" a.vname pp_value i

let pp_stmt fmt = function
  | Assign (l, e) -> Fmt.pf fmt "%a = %a" pp_lhs l pp_expr e
  | InvokeStmt i -> pp_invoke fmt i
  | If (v, l) -> Fmt.pf fmt "if %a goto %s" pp_value v l
  | Goto l -> Fmt.pf fmt "goto %s" l
  | Lab l -> Fmt.pf fmt "label %s" l
  | Return None -> Fmt.string fmt "return"
  | Return (Some v) -> Fmt.pf fmt "return %a" pp_value v
  | Nop -> Fmt.string fmt "nop"

(** Locals referenced by a body, excluding parameters and [this]. *)
let body_locals (m : meth) =
  let seen = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace seen v.vname ()) m.m_params;
  if not m.m_static then Hashtbl.replace seen "this" ();
  let acc = ref [] in
  let visit v =
    if not (Hashtbl.mem seen v.vname) then begin
      Hashtbl.replace seen v.vname ();
      acc := v :: !acc
    end
  in
  Array.iter
    (fun s ->
      (match stmt_def s with Some v -> visit v | None -> ());
      List.iter visit (stmt_uses s))
    m.m_body;
  List.rev !acc

let pp_meth fmt (m : meth) =
  let pp_param fmt v = Fmt.pf fmt "%a %s" pp_ty v.vty v.vname in
  Fmt.pf fmt "  %s%a %s(%a) {@\n"
    (if m.m_static then "static " else "")
    pp_ty m.m_ret m.m_name
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    m.m_params;
  List.iter
    (fun v -> Fmt.pf fmt "    local %a %s;@\n" pp_ty v.vty v.vname)
    (body_locals m);
  Array.iter (fun s -> Fmt.pf fmt "    %a;@\n" pp_stmt s) m.m_body;
  Fmt.pf fmt "  }@\n"

let pp_field_decl fmt (f : field) =
  Fmt.pf fmt "  %sfield %a %s;@\n"
    (if f.f_static then "static " else "")
    pp_ty f.f_ty f.f_name

let pp_cls fmt (c : cls) =
  Fmt.pf fmt "%sclass %s%a {@\n"
    (if c.c_library then "library " else "")
    c.c_name
    Fmt.(option (any " extends " ++ string))
    c.c_super;
  List.iter (pp_field_decl fmt) c.c_fields;
  List.iter (pp_meth fmt) c.c_methods;
  Fmt.pf fmt "}@\n"

let pp_program fmt (p : program) =
  List.iter (fun e -> Fmt.pf fmt "entry %s.%s;@\n" e.mcls e.mname) p.p_entries;
  List.iter (pp_cls fmt) p.p_classes

let program_to_string p = Fmt.str "%a" pp_program p
let stmt_to_string s = Fmt.str "%a" pp_stmt s
