lib/ir/pp.pp.ml: Array Fmt Hashtbl List Types
