lib/ir/pp.pp.mli: Format Types
