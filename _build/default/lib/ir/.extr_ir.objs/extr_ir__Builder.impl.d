lib/ir/builder.pp.ml: Array List Printf Types
