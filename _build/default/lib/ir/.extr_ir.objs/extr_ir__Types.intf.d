lib/ir/types.pp.mli: Format Map Ppx_deriving_runtime Set
