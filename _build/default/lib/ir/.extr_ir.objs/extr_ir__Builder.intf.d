lib/ir/builder.pp.mli: Types
