lib/ir/prog.pp.ml: Array Format Hashtbl List Method_id Method_map Printf Types
