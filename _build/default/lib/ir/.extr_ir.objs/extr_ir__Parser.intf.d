lib/ir/parser.pp.mli: Types
