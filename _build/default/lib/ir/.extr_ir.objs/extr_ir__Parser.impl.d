lib/ir/parser.pp.ml: Array Buffer Hashtbl List Option Printf String Types
