lib/ir/types.pp.ml: Format List Map Option Ppx_deriving_runtime Set
