lib/ir/prog.pp.mli: Format Types
