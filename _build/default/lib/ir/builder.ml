(* Imperative construction of Limple method bodies.  Used by the corpus code
   generator and by tests; keeps statement emission, fresh-variable naming and
   label management in one place. *)

open Types

type t = {
  mutable rev_stmts : stmt list;
  mutable n_fresh : int;
  mutable n_labels : int;
}

let create () = { rev_stmts = []; n_fresh = 0; n_labels = 0 }

let emit b s = b.rev_stmts <- s :: b.rev_stmts

let fresh_var ?(prefix = "t") b ty =
  let v = { vname = Printf.sprintf "%s%d" prefix b.n_fresh; vty = ty } in
  b.n_fresh <- b.n_fresh + 1;
  v

let fresh_label ?(prefix = "L") b =
  let l = Printf.sprintf "%s%d" prefix b.n_labels in
  b.n_labels <- b.n_labels + 1;
  l

(* Value shorthands. *)
let vint n = Const (Cint n)
let vstr s = Const (Cstr s)
let vbool x = Const (Cbool x)
let vnull = Const Cnull
let vl v = Local v

let local name ty = { vname = name; vty = ty }

(* Method references.  Arity counts explicit arguments only (not the
   receiver). *)
let mref ?(ret = Void) cls name nargs = { mcls = cls; mname = name; mret = ret; nargs }

let virtual_call ?(ret = Void) base cls name args =
  {
    ikind = Virtual;
    iref = mref ~ret cls name (List.length args);
    ibase = Some base;
    iargs = args;
  }

let special_call ?(ret = Void) base cls name args =
  {
    ikind = Special;
    iref = mref ~ret cls name (List.length args);
    ibase = Some base;
    iargs = args;
  }

let static_call ?(ret = Void) cls name args =
  {
    ikind = Static;
    iref = mref ~ret cls name (List.length args);
    ibase = None;
    iargs = args;
  }

(* Emission helpers; each returns the defined variable where applicable. *)

let assign b v e = emit b (Assign (Lvar v, e))

let define ?prefix b ty e =
  let v = fresh_var ?prefix b ty in
  assign b v e;
  v

(** Allocate an object, run its [<init>] constructor, return the variable. *)
let new_obj ?prefix b cls args =
  let v = define ?prefix b (Obj cls) (New cls) in
  emit b (InvokeStmt (special_call v cls "<init>" args));
  v

let call b invoke = emit b (InvokeStmt invoke)

let call_ret ?prefix b ty invoke = define ?prefix b ty (Invoke invoke)

let set_field b obj fref v = emit b (Assign (Lfield (obj, fref), Val v))
let get_field ?prefix b obj fref = define ?prefix b fref.fty (IField (obj, fref))
let set_static b fref v = emit b (Assign (Lsfield fref, Val v))
let get_static ?prefix b fref = define ?prefix b fref.fty (SField fref)

let label b l = emit b (Lab l)
let goto b l = emit b (Goto l)
let if_goto b v l = emit b (If (v, l))
let return_value b v = emit b (Return (Some v))
let return_void b = emit b (Return None)

(** Structured conditional: [ite b cond then_ else_] emits
    [if cond goto Lthen; else_; goto Lend; Lthen: then_; Lend:]. *)
let ite b cond then_ else_ =
  let l_then = fresh_label b and l_end = fresh_label b in
  if_goto b cond l_then;
  else_ b;
  goto b l_end;
  label b l_then;
  then_ b;
  label b l_end

(** Structured loop: [while_ b header body] emits a natural loop whose
    continuation condition is recomputed by [header] each iteration. *)
let while_ b header body =
  let l_head = fresh_label b and l_end = fresh_label b and l_body = fresh_label b in
  label b l_head;
  let cond = header b in
  if_goto b cond l_body;
  goto b l_end;
  label b l_body;
  body b;
  goto b l_head;
  label b l_end

let finish b = Array.of_list (List.rev b.rev_stmts)

(** Assemble a method from a build function that receives the builder. *)
let mk_meth ?(static = false) ~cls ~name ~params ~ret build =
  let b = create () in
  build b;
  (* Guarantee the body is terminated. *)
  (match b.rev_stmts with
  | Return _ :: _ -> ()
  | _ -> if ret = Void then return_void b else return_value b vnull);
  {
    m_cls = cls;
    m_name = name;
    m_params = params;
    m_ret = ret;
    m_static = static;
    m_body = finish b;
  }

let mk_field ?(static = false) name ty = { f_name = name; f_ty = ty; f_static = static }

let mk_cls ?super ?(library = false) ?(fields = []) name methods =
  {
    c_name = name;
    c_super = super;
    c_fields = fields;
    c_methods = methods;
    c_library = library;
  }
