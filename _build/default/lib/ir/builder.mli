(** Imperative construction of Limple method bodies.

    Used by the corpus code generator and by tests; keeps statement
    emission, fresh-variable naming and label management in one place.
    The idiom is [mk_meth ~cls ~name ~params ~ret (fun b -> ...)] with the
    build function emitting statements through the helpers below. *)

open Types

type t
(** A method body under construction (mutable). *)

val create : unit -> t
val emit : t -> stmt -> unit

val fresh_var : ?prefix:string -> t -> ty -> var
(** A variable named [<prefix><n>] that no other [fresh_var] call on this
    builder returns again.  Default prefix ["t"]. *)

val fresh_label : ?prefix:string -> t -> string
(** A label unique within this builder.  Default prefix ["L"]. *)

(** {1 Value shorthands} *)

val vint : int -> value
val vstr : string -> value
val vbool : bool -> value
val vnull : value
val vl : var -> value

val local : string -> ty -> var

(** {1 Method references and invokes}

    Arity counts explicit arguments only (not the receiver). *)

val mref : ?ret:ty -> string -> string -> int -> method_ref
val virtual_call : ?ret:ty -> var -> string -> string -> value list -> invoke
val special_call : ?ret:ty -> var -> string -> string -> value list -> invoke
val static_call : ?ret:ty -> string -> string -> value list -> invoke

(** {1 Statement emission}

    Each returns the defined variable where applicable. *)

val assign : t -> var -> expr -> unit
val define : ?prefix:string -> t -> ty -> expr -> var

val new_obj : ?prefix:string -> t -> string -> value list -> var
(** Allocate an object, run its [<init>] constructor, return the
    variable. *)

val call : t -> invoke -> unit
val call_ret : ?prefix:string -> t -> ty -> invoke -> var
val set_field : t -> var -> field_ref -> value -> unit
val get_field : ?prefix:string -> t -> var -> field_ref -> var
val set_static : t -> field_ref -> value -> unit
val get_static : ?prefix:string -> t -> field_ref -> var
val label : t -> string -> unit
val goto : t -> string -> unit
val if_goto : t -> value -> string -> unit
val return_value : t -> value -> unit
val return_void : t -> unit

val ite : t -> value -> (t -> unit) -> (t -> unit) -> unit
(** Structured conditional: [ite b cond then_ else_] emits
    [if cond goto Lthen; else_; goto Lend; Lthen: then_; Lend:]. *)

val while_ : t -> (t -> value) -> (t -> unit) -> unit
(** Structured loop: [while_ b header body] emits a natural loop whose
    continuation condition is recomputed by [header] each iteration. *)

val finish : t -> stmt array
(** The statements emitted so far, in program order. *)

(** {1 Assembly} *)

val mk_meth :
  ?static:bool ->
  cls:string ->
  name:string ->
  params:var list ->
  ret:ty ->
  (t -> unit) ->
  meth
(** Assemble a method from a build function.  The body is terminated with
    an implicit [return] (void or [null]) when the build function does not
    end in one. *)

val mk_field : ?static:bool -> string -> ty -> field
val mk_cls : ?super:string -> ?library:bool -> ?fields:field list -> string -> meth list -> cls
