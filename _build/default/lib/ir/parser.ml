(* Recursive-descent parser for textual Limple, the inverse of {!Pp}.
   Intended for tests and hand-written example programs; the corpus code
   generator builds IR directly via {!Builder}. *)

open Types

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string  (** identifiers, possibly dotted: [com.example.Cls] *)
  | Tint of int
  | Tstring of string
  | Tpunct of string  (** one of the fixed punctuation/operator tokens *)
  | Teof

let punctuators =
  (* Longest first so the lexer is greedy. *)
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "[]"; "("; ")"; "{"; "}"; "[";
    "]"; "<"; ">"; ","; ";"; ":"; "="; "+"; "-"; "*"; "/"; "." ]

let lex (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '*' then begin
      (* Skip comments. *)
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then i := n
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '"' then begin
      (* String literal with OCaml-style escapes as produced by %S. *)
      let buf = Buffer.create 16 in
      incr i;
      let rec scan () =
        if !i >= n then fail "unterminated string literal"
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' ->
              (if !i + 1 >= n then fail "unterminated escape"
               else begin
                 (match src.[!i + 1] with
                 | 'n' -> Buffer.add_char buf '\n'
                 | 't' -> Buffer.add_char buf '\t'
                 | 'r' -> Buffer.add_char buf '\r'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '"' -> Buffer.add_char buf '"'
                 | ch -> Buffer.add_char buf ch);
                 i := !i + 2
               end);
              scan ()
          | ch ->
              Buffer.add_char buf ch;
              incr i;
              scan ()
      in
      scan ();
      toks := Tstring (Buffer.contents buf) :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      toks := Tint (int_of_string (String.sub src !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      toks := Tident (String.sub src !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let lp = String.length p in
            !i + lp <= n && String.sub src !i lp = p)
          punctuators
      in
      match matched with
      | Some p ->
          toks := Tpunct p :: !toks;
          i := !i + String.length p
      | None -> fail "unexpected character %C at offset %d" c !i
    end
  done;
  List.rev (Teof :: !toks)

(* ------------------------------------------------------------------ *)
(* Token stream                                                       *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> Teof | t :: _ -> t
let peek2 s = match s.toks with _ :: t :: _ -> t | _ -> Teof

let next s =
  match s.toks with
  | [] -> Teof
  | t :: rest ->
      s.toks <- rest;
      t

let expect_punct s p =
  match next s with
  | Tpunct q when q = p -> ()
  | t -> fail "expected %S, got %s" p (match t with
      | Tident x -> Printf.sprintf "ident %s" x
      | Tint n -> string_of_int n
      | Tstring x -> Printf.sprintf "string %S" x
      | Tpunct x -> Printf.sprintf "%S" x
      | Teof -> "eof")

let expect_ident s =
  match next s with
  | Tident x -> x
  | _ -> fail "expected identifier"

let accept_punct s p =
  match peek s with
  | Tpunct q when q = p ->
      ignore (next s);
      true
  | _ -> false

let accept_kw s kw =
  match peek s with
  | Tident x when x = kw ->
      ignore (next s);
      true
  | _ -> false

(* A dotted name: ident (. ident)*.  Returns the full dotted string. *)
let dotted_name s =
  let first = expect_ident s in
  let buf = Buffer.create 16 in
  Buffer.add_string buf first;
  let rec go () =
    match (peek s, peek2 s) with
    | Tpunct ".", Tident x ->
        ignore (next s);
        ignore (next s);
        Buffer.add_char buf '.';
        Buffer.add_string buf x;
        go ()
    | _ -> ()
  in
  go ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Types and values                                                   *)
(* ------------------------------------------------------------------ *)

let parse_ty s =
  let base =
    match dotted_name s with
    | "void" -> Void
    | "int" -> Int
    | "bool" -> Bool
    | "str" -> Str
    | name -> Obj name
  in
  let rec arr t = if accept_punct s "[]" then arr (Arr t) else t in
  arr base

(* Split a dotted method path into (class, method-name) at the last dot. *)
let split_last_dot path =
  match String.rindex_opt path '.' with
  | None -> fail "expected qualified name, got %s" path
  | Some k ->
      (String.sub path 0 k, String.sub path (k + 1) (String.length path - k - 1))

type env = { vars : (string, var) Hashtbl.t }

let lookup_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> fail "unknown local %s" name

let parse_value env s =
  match peek s with
  | Tint n ->
      ignore (next s);
      Const (Cint n)
  | Tstring str ->
      ignore (next s);
      Const (Cstr str)
  | Tpunct "-" ->
      ignore (next s);
      (match next s with
      | Tint n -> Const (Cint (-n))
      | _ -> fail "expected integer after -")
  | Tident "true" ->
      ignore (next s);
      Const (Cbool true)
  | Tident "false" ->
      ignore (next s);
      Const (Cbool false)
  | Tident "null" ->
      ignore (next s);
      Const Cnull
  | Tident name ->
      ignore (next s);
      Local (lookup_var env name)
  | _ -> fail "expected value"

(* <cls:fname:ty> *)
let parse_field_ref s =
  expect_punct s "<";
  let fcls = dotted_name s in
  expect_punct s ":";
  let fname = expect_ident s in
  expect_punct s ":";
  let fty = parse_ty s in
  expect_punct s ">";
  { fcls; fname; fty }

(* <cls.mname:ret>(args) following the kind and optional receiver.  The
   method name may be the constructor token "<init>". *)
let parse_invoke env s ikind ibase =
  expect_punct s "<";
  let path = dotted_name s in
  let mcls, mname =
    match (peek s, peek2 s) with
    | Tpunct ".", Tpunct "<" ->
        (* path.<init> *)
        ignore (next s);
        expect_punct s "<";
        let kw = expect_ident s in
        expect_punct s ">";
        (path, "<" ^ kw ^ ">")
    | _ -> split_last_dot path
  in
  expect_punct s ":";
  let mret = parse_ty s in
  expect_punct s ">";
  expect_punct s "(";
  let args = ref [] in
  if not (accept_punct s ")") then begin
    let rec go () =
      args := parse_value env s :: !args;
      if accept_punct s "," then go () else expect_punct s ")"
    in
    go ()
  end;
  let iargs = List.rev !args in
  {
    ikind;
    iref = { mcls; mname; mret; nargs = List.length iargs };
    ibase;
    iargs;
  }

let invoke_kind_of_kw = function
  | "virtual" -> Some Virtual
  | "special" -> Some Special
  | "static" -> Some Static
  | _ -> None

(* kind [recv.]<...>(...) *)
let parse_invoke_after_kw env s kind =
  match peek s with
  | Tpunct "<" -> parse_invoke env s kind None
  | Tident recv when peek2 s = Tpunct "." ->
      ignore (next s);
      expect_punct s ".";
      parse_invoke env s kind (Some (lookup_var env recv))
  | _ -> fail "expected invoke receiver or method reference"

let binop_of_symbol = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "/" -> Some Div
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "&&" -> Some And
  | "||" -> Some Or
  | _ -> None

let parse_expr env s =
  match peek s with
  | Tident kw when invoke_kind_of_kw kw <> None ->
      ignore (next s);
      let kind = Option.get (invoke_kind_of_kw kw) in
      Invoke (parse_invoke_after_kw env s kind)
  | Tident "new" ->
      ignore (next s);
      New (dotted_name s)
  | Tident "newarray" ->
      ignore (next s);
      let t = parse_ty s in
      expect_punct s "[";
      let v = parse_value env s in
      expect_punct s "]";
      NewArr (t, v)
  | Tident "lengthof" ->
      ignore (next s);
      ALen (lookup_var env (expect_ident s))
  | Tpunct "(" ->
      ignore (next s);
      let t = parse_ty s in
      expect_punct s ")";
      Cast (t, parse_value env s)
  | Tpunct "<" -> SField (parse_field_ref s)
  | Tident name
    when peek2 s = Tpunct "." && not (List.mem name [ "true"; "false"; "null" ])
    -> (
      (* Either x.<field ref> or a dotted constant misuse; fields only. *)
      ignore (next s);
      expect_punct s ".";
      match peek s with
      | Tpunct "<" -> IField (lookup_var env name, parse_field_ref s)
      | _ -> fail "expected field reference after %s." name)
  | Tident name when peek2 s = Tpunct "[" ->
      ignore (next s);
      expect_punct s "[";
      let i = parse_value env s in
      expect_punct s "]";
      AElem (lookup_var env name, i)
  | _ -> (
      let v = parse_value env s in
      match peek s with
      | Tpunct p when binop_of_symbol p <> None ->
          ignore (next s);
          let op = Option.get (binop_of_symbol p) in
          Binop (op, v, parse_value env s)
      | _ -> Val v)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let parse_stmt env s =
  match peek s with
  | Tident "nop" ->
      ignore (next s);
      Nop
  | Tident "label" ->
      ignore (next s);
      Lab (expect_ident s)
  | Tident "goto" ->
      ignore (next s);
      Goto (expect_ident s)
  | Tident "if" ->
      ignore (next s);
      let v = parse_value env s in
      if not (accept_kw s "goto") then fail "expected goto in if";
      If (v, expect_ident s)
  | Tident "return" ->
      ignore (next s);
      if peek s = Tpunct ";" then Return None else Return (Some (parse_value env s))
  | Tident kw when invoke_kind_of_kw kw <> None && peek2 s <> Tpunct "=" ->
      ignore (next s);
      let kind = Option.get (invoke_kind_of_kw kw) in
      InvokeStmt (parse_invoke_after_kw env s kind)
  | Tpunct "<" ->
      let f = parse_field_ref s in
      expect_punct s "=";
      Assign (Lsfield f, parse_expr env s)
  | Tident name -> (
      ignore (next s);
      match peek s with
      | Tpunct "=" ->
          ignore (next s);
          Assign (Lvar (lookup_var env name), parse_expr env s)
      | Tpunct "." ->
          ignore (next s);
          let f = parse_field_ref s in
          expect_punct s "=";
          Assign (Lfield (lookup_var env name, f), parse_expr env s)
      | Tpunct "[" ->
          ignore (next s);
          let i = parse_value env s in
          expect_punct s "]";
          expect_punct s "=";
          Assign (Lelem (lookup_var env name, i), parse_expr env s)
      | _ -> fail "expected assignment after %s" name)
  | _ -> fail "expected statement"

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

let parse_meth s ~cls ~static =
  let ret = parse_ty s in
  (* Constructors print as [<init>], which lexes as punctuation around an
     identifier rather than as one identifier. *)
  let name =
    if accept_punct s "<" then begin
      let n = expect_ident s in
      expect_punct s ">";
      "<" ^ n ^ ">"
    end
    else expect_ident s
  in
  expect_punct s "(";
  let params = ref [] in
  if not (accept_punct s ")") then begin
    let rec go () =
      let t = parse_ty s in
      let n = expect_ident s in
      params := { vname = n; vty = t } :: !params;
      if accept_punct s "," then go () else expect_punct s ")"
    in
    go ()
  end;
  let params = List.rev !params in
  expect_punct s "{";
  let env = { vars = Hashtbl.create 16 } in
  List.iter (fun v -> Hashtbl.replace env.vars v.vname v) params;
  if not static then
    Hashtbl.replace env.vars "this" { vname = "this"; vty = Obj cls };
  let stmts = ref [] in
  let rec go () =
    if accept_punct s "}" then ()
    else if accept_kw s "local" then begin
      let t = parse_ty s in
      let n = expect_ident s in
      Hashtbl.replace env.vars n { vname = n; vty = t };
      expect_punct s ";";
      go ()
    end
    else begin
      stmts := parse_stmt env s :: !stmts;
      expect_punct s ";";
      go ()
    end
  in
  go ();
  {
    m_cls = cls;
    m_name = name;
    m_params = params;
    m_ret = ret;
    m_static = static;
    m_body = Array.of_list (List.rev !stmts);
  }

let parse_cls s ~library =
  let name = dotted_name s in
  let super = if accept_kw s "extends" then Some (dotted_name s) else None in
  expect_punct s "{";
  let fields = ref [] and methods = ref [] in
  let rec go () =
    if accept_punct s "}" then ()
    else begin
      let static = accept_kw s "static" in
      if accept_kw s "field" then begin
        let t = parse_ty s in
        let n = expect_ident s in
        expect_punct s ";";
        fields := { f_name = n; f_ty = t; f_static = static } :: !fields
      end
      else methods := parse_meth s ~cls:name ~static :: !methods;
      go ()
    end
  in
  go ();
  {
    c_name = name;
    c_super = super;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_library = library;
  }

let parse_program (src : string) : program =
  let s = { toks = lex src } in
  let entries = ref [] and classes = ref [] in
  let rec go () =
    match peek s with
    | Teof -> ()
    | Tident "entry" ->
        ignore (next s);
        let path = dotted_name s in
        let mcls, mname = split_last_dot path in
        expect_punct s ";";
        entries := { mcls; mname; mret = Void; nargs = 0 } :: !entries;
        go ()
    | Tident "library" ->
        ignore (next s);
        if not (accept_kw s "class") then fail "expected class after library";
        classes := parse_cls s ~library:true :: !classes;
        go ()
    | Tident "class" ->
        ignore (next s);
        classes := parse_cls s ~library:false :: !classes;
        go ()
    | _ -> fail "expected entry or class declaration"
  in
  go ();
  { p_classes = List.rev !classes; p_entries = List.rev !entries }
