(** Limple: a typed three-address intermediate representation modelled
    after Jimple, the IR Extractocol operates on (paper §4).

    A program is a pool of classes; a class holds fields and methods; a
    method body is an array of statements addressed by index, with
    explicit labels for control flow. *)

type ty =
  | Void
  | Int
  | Bool
  | Str
  | Obj of string  (** class instance, by fully-qualified class name *)
  | Arr of ty
[@@deriving show { with_path = false }, eq, ord]

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cnull
[@@deriving show { with_path = false }, eq, ord]

type var = { vname : string; vty : ty }
[@@deriving show { with_path = false }, eq, ord]

(** Reference to a field, resolved by class and field name. *)
type field_ref = { fcls : string; fname : string; fty : ty }
[@@deriving show { with_path = false }, eq, ord]

(** Reference to a method signature.  Overloading is resolved by name and
    arity only, which is sufficient for Limple programs. *)
type method_ref = { mcls : string; mname : string; mret : ty; nargs : int }
[@@deriving show { with_path = false }, eq, ord]

type value = Const of const | Local of var
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq, ord]

type invoke_kind =
  | Virtual  (** dynamic dispatch on the receiver's runtime class *)
  | Special  (** constructors and super calls: static target *)
  | Static
[@@deriving show { with_path = false }, eq, ord]

type invoke = {
  ikind : invoke_kind;
  iref : method_ref;
  ibase : var option;  (** receiver; [None] for static calls *)
  iargs : value list;
}
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Val of value
  | Binop of binop * value * value
  | New of string  (** allocate an instance of the named class *)
  | NewArr of ty * value
  | IField of var * field_ref  (** [x.f] *)
  | SField of field_ref  (** [C.f] *)
  | AElem of var * value  (** [a[i]] *)
  | ALen of var
  | Invoke of invoke
  | Cast of ty * value
[@@deriving show { with_path = false }, eq, ord]

type lhs =
  | Lvar of var
  | Lfield of var * field_ref
  | Lsfield of field_ref
  | Lelem of var * value
[@@deriving show { with_path = false }, eq, ord]

type label = string [@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Assign of lhs * expr
  | InvokeStmt of invoke
  | If of value * label  (** branch to [label] when the value is true *)
  | Goto of label
  | Lab of label
  | Return of value option
  | Nop
[@@deriving show { with_path = false }, eq, ord]

type meth = {
  m_cls : string;
  m_name : string;
  m_params : var list;
  m_ret : ty;
  m_static : bool;
  m_body : stmt array;
}

type field = { f_name : string; f_ty : ty; f_static : bool }

type cls = {
  c_name : string;
  c_super : string option;
  c_fields : field list;
  c_methods : meth list;
  c_library : bool;
      (** [true] for classes that belong to a modelled library (HTTP,
          JSON, ...); their bodies are interpreted by semantic models
          rather than analyzed. *)
}

type program = {
  p_classes : cls list;
  p_entries : method_ref list;
      (** entry points, e.g. activity lifecycle methods *)
}

(** Identity of a method inside a program: class name + method name. *)
type method_id = { id_cls : string; id_name : string }
[@@deriving show { with_path = false }, eq, ord]

(** Identity of a statement inside a program. *)
type stmt_id = { sid_meth : method_id; sid_idx : int }
[@@deriving show { with_path = false }, eq, ord]

val method_id_of_meth : meth -> method_id
val method_id_of_ref : method_ref -> method_id
val ref_of_meth : meth -> method_ref

val this_var : string -> var
(** [this] receiver variable for instance methods of class [cls]. *)

(** Ordered method identities, usable as map/set keys. *)
module Method_id : sig
  type t = method_id

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** Ordered statement identities, usable as map/set keys. *)
module Stmt_id : sig
  type t = stmt_id

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Method_map : Map.S with type key = method_id
module Method_set : Set.S with type elt = method_id
module Stmt_set : Set.S with type elt = stmt_id
module Stmt_map : Map.S with type key = stmt_id

val value_uses : value -> var list
(** Variables read by a value. *)

val expr_uses : expr -> var list
(** Variables read by an expression, including invoke receivers and
    arguments. *)

val stmt_uses : stmt -> var list
(** Variables read by a statement (for [Assign], includes variables read
    on the left-hand side, e.g. the receiver of a field store). *)

val stmt_def : stmt -> var option
(** The local variable defined by a statement, if any. *)

val stmt_invoke : stmt -> invoke option
(** The invoke expression contained in a statement, if any. *)
