(* Limple: a typed three-address intermediate representation modelled after
   Jimple, the IR Extractocol operates on (paper §4).  A program is a pool of
   classes; a class holds fields and methods; a method body is an array of
   statements addressed by index, with explicit labels for control flow. *)

type ty =
  | Void
  | Int
  | Bool
  | Str
  | Obj of string  (** class instance, by fully-qualified class name *)
  | Arr of ty
[@@deriving show { with_path = false }, eq, ord]

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cnull
[@@deriving show { with_path = false }, eq, ord]

type var = { vname : string; vty : ty } [@@deriving show { with_path = false }, eq, ord]

(** Reference to a field, resolved by class and field name. *)
type field_ref = { fcls : string; fname : string; fty : ty }
[@@deriving show { with_path = false }, eq, ord]

(** Reference to a method signature.  Overloading is resolved by name and
    arity only, which is sufficient for Limple programs. *)
type method_ref = { mcls : string; mname : string; mret : ty; nargs : int }
[@@deriving show { with_path = false }, eq, ord]

type value =
  | Const of const
  | Local of var
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq, ord]

type invoke_kind =
  | Virtual    (** dynamic dispatch on the receiver's runtime class *)
  | Special    (** constructors and super calls: static target *)
  | Static
[@@deriving show { with_path = false }, eq, ord]

type invoke = {
  ikind : invoke_kind;
  iref : method_ref;
  ibase : var option;  (** receiver; [None] for static calls *)
  iargs : value list;
}
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Val of value
  | Binop of binop * value * value
  | New of string  (** allocate an instance of the named class *)
  | NewArr of ty * value
  | IField of var * field_ref  (** [x.f] *)
  | SField of field_ref  (** [C.f] *)
  | AElem of var * value  (** [a[i]] *)
  | ALen of var
  | Invoke of invoke
  | Cast of ty * value
[@@deriving show { with_path = false }, eq, ord]

type lhs =
  | Lvar of var
  | Lfield of var * field_ref
  | Lsfield of field_ref
  | Lelem of var * value
[@@deriving show { with_path = false }, eq, ord]

type label = string [@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Assign of lhs * expr
  | InvokeStmt of invoke
  | If of value * label  (** branch to [label] when the value is true *)
  | Goto of label
  | Lab of label
  | Return of value option
  | Nop
[@@deriving show { with_path = false }, eq, ord]

type meth = {
  m_cls : string;
  m_name : string;
  m_params : var list;
  m_ret : ty;
  m_static : bool;
  m_body : stmt array;
}

type field = { f_name : string; f_ty : ty; f_static : bool }

type cls = {
  c_name : string;
  c_super : string option;
  c_fields : field list;
  c_methods : meth list;
  c_library : bool;
      (** [true] for classes that belong to a modelled library (HTTP, JSON,
          ...); their bodies are interpreted by semantic models rather than
          analyzed. *)
}

type program = {
  p_classes : cls list;
  p_entries : method_ref list;  (** entry points, e.g. activity lifecycle methods *)
}

(** Identity of a method inside a program: class name + method name. *)
type method_id = { id_cls : string; id_name : string }
[@@deriving show { with_path = false }, eq, ord]

(** Identity of a statement inside a program. *)
type stmt_id = { sid_meth : method_id; sid_idx : int }
[@@deriving show { with_path = false }, eq, ord]

let method_id_of_meth (m : meth) = { id_cls = m.m_cls; id_name = m.m_name }
let method_id_of_ref (r : method_ref) = { id_cls = r.mcls; id_name = r.mname }

let ref_of_meth (m : meth) =
  {
    mcls = m.m_cls;
    mname = m.m_name;
    mret = m.m_ret;
    nargs = List.length m.m_params;
  }

(** [this] receiver variable for instance methods of class [cls]. *)
let this_var cls = { vname = "this"; vty = Obj cls }

module Method_id = struct
  type t = method_id

  let compare = compare_method_id
  let equal = equal_method_id
  let pp fmt { id_cls; id_name } = Format.fprintf fmt "%s.%s" id_cls id_name
  let to_string id = Format.asprintf "%a" pp id
end

module Stmt_id = struct
  type t = stmt_id

  let compare = compare_stmt_id
  let equal = equal_stmt_id

  let pp fmt { sid_meth; sid_idx } =
    Format.fprintf fmt "%a:%d" Method_id.pp sid_meth sid_idx

  let to_string id = Format.asprintf "%a" pp id
end

module Method_map = Map.Make (Method_id)
module Method_set = Set.Make (Method_id)
module Stmt_set = Set.Make (Stmt_id)
module Stmt_map = Map.Make (Stmt_id)

(** Variables read by a value. *)
let value_uses = function Const _ -> [] | Local v -> [ v ]

(** Variables read by an expression, including invoke receivers and args. *)
let expr_uses = function
  | Val v -> value_uses v
  | Binop (_, a, b) -> value_uses a @ value_uses b
  | New _ -> []
  | NewArr (_, n) -> value_uses n
  | IField (x, _) -> [ x ]
  | SField _ -> []
  | AElem (a, i) -> a :: value_uses i
  | ALen a -> [ a ]
  | Invoke { ibase; iargs; _ } ->
      Option.to_list ibase @ List.concat_map value_uses iargs
  | Cast (_, v) -> value_uses v

(** Variables read by a statement (for [Assign], includes variables read on
    the left-hand side, e.g. the receiver of a field store). *)
let stmt_uses = function
  | Assign (l, e) ->
      let lhs_uses =
        match l with
        | Lvar _ -> []
        | Lfield (x, _) -> [ x ]
        | Lsfield _ -> []
        | Lelem (a, i) -> a :: value_uses i
      in
      lhs_uses @ expr_uses e
  | InvokeStmt i -> expr_uses (Invoke i)
  | If (v, _) -> value_uses v
  | Goto _ | Lab _ | Nop -> []
  | Return v -> ( match v with None -> [] | Some v -> value_uses v)

(** The local variable defined by a statement, if any. *)
let stmt_def = function
  | Assign (Lvar v, _) -> Some v
  | Assign ((Lfield _ | Lsfield _ | Lelem _), _) -> None
  | InvokeStmt _ | If _ | Goto _ | Lab _ | Return _ | Nop -> None

(** The invoke expression contained in a statement, if any. *)
let stmt_invoke = function
  | Assign (_, Invoke i) -> Some i
  | InvokeStmt i -> Some i
  | Assign (_, (Val _ | Binop _ | New _ | NewArr _ | IField _ | SField _ | AElem _ | ALen _ | Cast _))
  | If _ | Goto _ | Lab _ | Return _ | Nop ->
      None
