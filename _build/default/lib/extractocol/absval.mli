(** Abstract values for the signature-building interpretation (§3.2).

    The signature builder "maintains data structures to reconstruct data
    operations encoded in the slice": strings carry their signature in
    the intermediate language, JSON/XML builders carry trees, and
    response-derived values carry provenance (which transaction, which
    field) so inter-transaction dependencies can be inferred (§3.3).

    Objects live in a functional heap carried by each execution state:
    aliases share an object id, branch states fork the heap and merge at
    confluence points — value merging is disjunction (§3.2), loop-header
    merging is widening with [rep]. *)

module Strsig = Extr_siglang.Strsig
module Jsonsig = Extr_siglang.Jsonsig

(** Provenance of a response-derived value: transaction id, the path of
    fields under which the value sat in the response body, and an
    optional mediator (e.g. a database table) the value travelled
    through. *)
type prov = { p_tx : int; p_path : string list; p_via : string option }

(** String abstraction: the signature, response provenance, privacy
    sources (gps/microphone), the structured signature when the string
    was serialized from a JSON builder, and per-key provenance for
    dependency recording. *)
type strinfo = {
  sg : Strsig.t;
  prov : prov list;
  srcs : string list;
  structured : Jsonsig.t option;
  kprov : (string * prov list) list;
}

(** Steps of a response cursor: how parsing code navigated into the
    body. *)
type step =
  | Sfield of string  (** JSON object field *)
  | Sindex  (** JSON array element *)
  | Schild of string  (** XML child element *)
  | Sattr of string  (** XML attribute *)
  | Stext  (** XML text content *)

type cursor = { cu_tx : int; cu_path : step list }

(** Object reference: identity plus class; slots live in the heap. *)
type obj = { o_id : int; o_cls : string }

type t =
  | Vtop
  | Vnull
  | Vbool of bool option
  | Vint of int option
  | Vstr of strinfo
  | Vobj of obj
  | Vlist of t list  (** immutable list snapshot stored inside object slots *)
  | Vpair of t * t
  | Vcursor of cursor  (** a position inside some response body *)

module SMap : Map.S with type key = string
module IMap : Map.S with type key = int

type slots = t SMap.t

type heap = slots IMap.t
(** The functional heap: object id → slots. *)

val empty_heap : heap

val halloc : heap ref -> string -> obj
(** Allocate an object in a heap ref; ids are globally unique. *)

val obj_slots : heap -> obj -> slots
val hslot : heap ref -> obj -> string -> t option
val hset : heap ref -> obj -> string -> t -> unit

(** {1 String helpers} *)

val str_of_sig :
  ?prov:prov list -> ?srcs:string list -> ?structured:Jsonsig.t -> Strsig.t -> t

val str_lit : string -> t
val str_unknown : t

val path_of_steps : step list -> string list
(** Render cursor steps as field names ([Sindex] is ["[]"], attributes
    are ["@name"], text content ["#text"]). *)

val prov_of_cursor : cursor -> prov
val plain_strinfo : Strsig.t -> strinfo

val strinfo_of : t -> strinfo
(** View any value as a string (the implicit [toString]): known ints and
    bools become literals, unknown ones hinted unknowns, cursors carry
    their provenance. *)

val str_concat : t -> t -> t
(** Abstract string concatenation: signatures append, provenance and
    privacy sources union. *)

(** {1 Heap-aware traversals} *)

val collect_prov : heap -> t -> prov list
(** All provenance records reachable inside a value (bounded depth). *)

val collect_srcs : heap -> t -> string list
(** All privacy-source tags reachable inside a value. *)

val equal_val : heap -> heap -> t -> t -> bool
(** Structural equality modulo object identity: two objects are equal
    when their classes and reachable slots agree (fresh allocation ids
    from separate interpretation passes must not defeat fixed-point
    checks). *)

(** {1 State merging} *)

val merge_strinfo : (Strsig.t -> Strsig.t -> Strsig.t) -> strinfo -> strinfo -> strinfo

val merge_val :
  combine_sig:(Strsig.t -> Strsig.t -> Strsig.t) ->
  heap ->
  heap ->
  heap ref ->
  t ->
  t ->
  t
(** Merge two values from two states into a result heap (mutated through
    the ref).  [combine_sig] is [Strsig.alt] at plain confluence points
    and the rep-widening combinator at loop headers. *)

val state_merger :
  combine_sig:(Strsig.t -> Strsig.t -> Strsig.t) ->
  heap ->
  heap ->
  (t -> t -> t) * (unit -> heap)
(** A stateful merger for joining two execution states (variable maps +
    heaps) at a confluence point.  Returns a value-merge function and a
    final-heap accessor; object graphs are merged id-wise with cycle
    protection.  The result heap starts from the first heap with
    second-heap-only ids union-ed in, and every object reached through
    merged values gets slot-wise merged contents. *)

(** {1 Loop widening of string signatures} *)

val sig_parts : Strsig.t -> Strsig.t list
(** The concat parts of a signature ([s] itself when not a concat). *)

val strip_prefix : Strsig.t -> Strsig.t -> Strsig.t option
(** [strip_prefix prefix s] strips [prefix] from the front of [s]'s
    concat parts; returns the remainder when [s] textually extends
    [prefix].  An existing literal repetition absorbs any number of
    copies of itself. *)

val widen_sig : Strsig.t -> Strsig.t -> Strsig.t
(** Widen a string signature at a loop header (§3.2: the loop-variant
    part is marked repeatable with [rep]; alternation explosion falls
    back to unknown). *)

val to_jsonsig : heap -> t -> Jsonsig.t
(** Convert an abstract value to a JSON-signature leaf/tree (used when a
    JSON builder is serialized into a request body). *)
