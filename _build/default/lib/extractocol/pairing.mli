(** Request-response pairing over slices (§3.3, Figure 5).  When multiple
    requests and responses share a demarcation point through code reuse,
    standard information-flow analysis cross-pairs them; Extractocol
    preprocesses the slices into disjoint sub-slices and pairs the request
    segment of each divergence head with its response segment. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Slicer = Extr_slicing.Slicer

type pair = {
  pr_dp : Slicer.dp_site;
  pr_head : Ir.method_id;  (** the divergence head owning both segments *)
  pr_request_segment : Ir.Stmt_set.t;
  pr_response_segment : Ir.Stmt_set.t;
}

val divergence_heads : Callgraph.t -> Slicer.dp_site -> Ir.method_id list
(** Walk the caller chain upward from the demarcation point's method while
    it is unique; where several callers exist, each is a head. *)

val pair_disjoint : Prog.t -> Callgraph.t -> Slicer.result -> pair list
(** One pair per divergence head, containing only the statements exclusive
    to that head's call-graph reach. *)

val pair_naive : Slicer.result -> (Slicer.dp_site * Slicer.dp_site) list
(** The Figure-5 failure mode: every request slice paired with every
    response slice that shares a demarcation-point method. *)
