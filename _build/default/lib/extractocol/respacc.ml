(* Response-body signature accumulation.  The forward (response) slice
   encodes which parts of the body the app actually parses; during the
   signature interpretation every cursor access (JSON getString/
   getJSONObject/..., XML getChild/getAttribute/...) is recorded here and
   the access tree is finally rendered as the response body signature.
   This reproduces the paper's observation that response signatures cover
   exactly the keywords the app inspects (§5.1). *)

module Strsig = Extr_siglang.Strsig
module Jsonsig = Extr_siglang.Jsonsig
module Xmlsig = Extr_siglang.Xmlsig
module Msgsig = Extr_siglang.Msgsig

type leaf_kind = Kstr | Knum | Kbool

type node = {
  mutable n_children : (string * node) list;  (** object fields / xml children *)
  mutable n_attrs : (string * node) list;  (** xml attributes *)
  mutable n_elem : node option;  (** array-element / repeated-child pattern *)
  mutable n_kinds : leaf_kind list;
  mutable n_text : bool;  (** xml text content read *)
}

let new_node () =
  { n_children = []; n_attrs = []; n_elem = None; n_kinds = []; n_text = false }

type body_kind = Bk_none | Bk_json | Bk_xml | Bk_text | Bk_opaque

type t = {
  mutable a_kind : body_kind;
  a_root : node;
}

let create () = { a_kind = Bk_none; a_root = new_node () }

let set_kind t k =
  (* Upgrades only: none → text → json/xml. *)
  match (t.a_kind, k) with
  | Bk_none, _ -> t.a_kind <- k
  | Bk_text, (Bk_json | Bk_xml) -> t.a_kind <- k
  | _, _ -> ()

(* Unconditional override: a media sink makes the body opaque no matter
   what other reads suggested. *)
let force_kind t k = t.a_kind <- k

(** Walk (or create) the node for a cursor path. *)
let node_at t (path : Absval.step list) : node =
  let rec go node = function
    | [] -> node
    | Absval.Sfield f :: rest | Absval.Schild f :: rest ->
        let child =
          match List.assoc_opt f node.n_children with
          | Some c -> c
          | None ->
              let c = new_node () in
              node.n_children <- node.n_children @ [ (f, c) ];
              c
        in
        go child rest
    | Absval.Sindex :: rest ->
        let elem =
          match node.n_elem with
          | Some e -> e
          | None ->
              let e = new_node () in
              node.n_elem <- Some e;
              e
        in
        go elem rest
    | Absval.Sattr a :: rest ->
        let attr =
          match List.assoc_opt a node.n_attrs with
          | Some c -> c
          | None ->
              let c = new_node () in
              node.n_attrs <- node.n_attrs @ [ (a, c) ];
              c
        in
        go attr rest
    | Absval.Stext :: rest ->
        node.n_text <- true;
        go node rest
  in
  go t.a_root path

(** Record a leaf read of the given kind at the cursor position. *)
let record_leaf t (cursor : Absval.cursor) kind =
  let node = node_at t cursor.Absval.cu_path in
  if not (List.mem kind node.n_kinds) then node.n_kinds <- kind :: node.n_kinds

(** Record structural navigation (getJSONObject / getChild / array). *)
let record_nav t (cursor : Absval.cursor) = ignore (node_at t cursor.Absval.cu_path)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let rec node_to_jsonsig (n : node) : Jsonsig.t =
  match (n.n_children, n.n_elem, n.n_kinds) with
  | [], None, [] -> Jsonsig.Jany
  | [], None, kinds ->
      let leaves =
        List.map
          (function
            | Kstr -> Jsonsig.Jstr Strsig.unknown
            | Knum -> Jsonsig.Jnum
            | Kbool -> Jsonsig.Jbool)
          kinds
      in
      Jsonsig.alt leaves
  | [], Some elem, _ -> Jsonsig.Jarr (node_to_jsonsig elem)
  | children, None, _ ->
      Jsonsig.Jobj (List.map (fun (k, c) -> (k, node_to_jsonsig c)) children)
  | children, Some elem, _ ->
      (* Both object fields and array access: disjunction of shapes. *)
      Jsonsig.alt
        [
          Jsonsig.Jobj (List.map (fun (k, c) -> (k, node_to_jsonsig c)) children);
          Jsonsig.Jarr (node_to_jsonsig elem);
        ]

let rec node_to_xmlsig tag (n : node) : Xmlsig.t =
  let attrs = List.map (fun (a, _) -> (a, Strsig.unknown)) n.n_attrs in
  let children =
    List.map (fun (c, cn) -> Xmlsig.Celem (node_to_xmlsig c cn)) n.n_children
  in
  let children =
    match n.n_elem with
    | Some e -> children @ [ Xmlsig.Crep (node_to_xmlsig "item" e) ]
    | None -> children
  in
  let children =
    if n.n_text then children @ [ Xmlsig.Ctext Strsig.unknown ] else children
  in
  { Xmlsig.xtag = tag; xattrs = attrs; xchildren = children }

(** Render the accumulated accesses as a response body signature. *)
let to_body_sig (t : t) : Msgsig.body_sig =
  match t.a_kind with
  | Bk_none -> Msgsig.Bnone
  | Bk_opaque -> Msgsig.Bopaque
  | Bk_text -> Msgsig.Btext Strsig.unknown
  | Bk_json -> Msgsig.Bjson (node_to_jsonsig t.a_root)
  | Bk_xml -> (
      (* The root child is the document element. *)
      match t.a_root.n_children with
      | [ (tag, n) ] -> Msgsig.Bxml (node_to_xmlsig tag n)
      | _ -> Msgsig.Bxml (node_to_xmlsig "root" t.a_root))
