(** Response-body signature accumulation.

    The forward (response) slice encodes which parts of the body the app
    actually parses; during the signature interpretation every cursor
    access (JSON getString/getJSONObject/..., XML getChild/getAttribute/
    ...) is recorded here and the access tree is finally rendered as the
    response body signature.  This reproduces the paper's observation
    that response signatures cover exactly the keywords the app inspects
    (§5.1). *)

module Msgsig = Extr_siglang.Msgsig

type leaf_kind = Kstr | Knum | Kbool

type body_kind = Bk_none | Bk_json | Bk_xml | Bk_text | Bk_opaque

type t
(** Mutable access tree for one transaction's response. *)

val create : unit -> t

val set_kind : t -> body_kind -> unit
(** Record what kind of body the parsing code implies.  Upgrades only:
    none → text → json/xml (a [getEntity]-to-string read must not
    downgrade a body later parsed as JSON). *)

val force_kind : t -> body_kind -> unit
(** Unconditional override: a media sink makes the body opaque no matter
    what other reads suggested. *)

val record_leaf : t -> Absval.cursor -> leaf_kind -> unit
(** Record a leaf read of the given kind at the cursor position. *)

val record_nav : t -> Absval.cursor -> unit
(** Record structural navigation (getJSONObject / getChild / array
    iteration) without a leaf read. *)

val to_body_sig : t -> Msgsig.body_sig
(** Render the accumulated accesses as a response body signature: a JSON
    signature tree, an XML signature (DTD-renderable), unknown text, or
    opaque. *)
