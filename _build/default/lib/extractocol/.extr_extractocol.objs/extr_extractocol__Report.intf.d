lib/extractocol/report.mli: Extr_httpmodel Extr_ir Extr_siglang Format Hashtbl Txn
