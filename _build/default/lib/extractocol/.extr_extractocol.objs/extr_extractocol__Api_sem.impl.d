lib/extractocol/api_sem.ml: Absval Extr_httpmodel Extr_ir Extr_semantics Extr_siglang Hashtbl List Option Respacc SMap String Txn
