lib/extractocol/pairing.mli: Extr_cfg Extr_ir Extr_slicing
