lib/extractocol/api_sem.mli: Absval Extr_httpmodel Extr_ir Extr_siglang Hashtbl Txn
