lib/extractocol/txn.mli: Extr_httpmodel Extr_ir Extr_siglang Format Respacc
