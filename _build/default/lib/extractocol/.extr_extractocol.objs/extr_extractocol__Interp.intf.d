lib/extractocol/interp.mli: Extr_apk Extr_cfg Extr_ir Extr_slicing Txn
