lib/extractocol/respacc.mli: Absval Extr_siglang
