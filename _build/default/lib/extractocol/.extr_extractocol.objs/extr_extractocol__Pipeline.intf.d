lib/extractocol/pipeline.mli: Extr_apk Extr_cfg Extr_ir Extr_slicing Pairing Report Txn
