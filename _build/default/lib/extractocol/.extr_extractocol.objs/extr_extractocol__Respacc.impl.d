lib/extractocol/respacc.ml: Absval Extr_siglang List
