lib/extractocol/absval.ml: Extr_siglang Hashtbl Int List Map Option String
