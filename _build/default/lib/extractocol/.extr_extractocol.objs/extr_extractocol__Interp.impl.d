lib/extractocol/interp.ml: Absval Api_sem Array Extr_apk Extr_cfg Extr_httpmodel Extr_ir Extr_semantics Extr_siglang Extr_slicing Fun Hashtbl List Map Option Printf Respacc String Txn
