lib/extractocol/report.ml: Buffer Extr_httpmodel Extr_ir Extr_siglang Fmt Hashtbl List Printf Respacc String Txn
