lib/extractocol/pipeline.ml: Extr_apk Extr_cfg Extr_ir Extr_semantics Extr_slicing Interp List Logs Pairing Report String Txn Unix
