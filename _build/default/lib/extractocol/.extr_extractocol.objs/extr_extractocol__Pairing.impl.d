lib/extractocol/pairing.ml: Extr_cfg Extr_ir Extr_semantics Extr_slicing List
