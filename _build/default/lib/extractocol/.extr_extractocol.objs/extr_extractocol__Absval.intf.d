lib/extractocol/absval.mli: Extr_siglang Map
