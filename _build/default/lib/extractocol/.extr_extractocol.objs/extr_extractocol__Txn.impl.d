lib/extractocol/txn.ml: Extr_httpmodel Extr_ir Extr_siglang Fmt List Respacc String
