(** Message-level signatures: what Extractocol outputs for each request
    and response (§1: signatures for URI, query string, request method,
    header, and body), plus matching of signatures against concrete
    traffic. *)

module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri

(** Body signatures for both directions. *)
type body_sig =
  | Bnone
  | Bquery of (string * Strsig.t) list  (** form/query-string body *)
  | Bjson of Jsonsig.t
  | Bxml of Xmlsig.t
  | Btext of Strsig.t
  | Bopaque  (** body exists but the slice reveals nothing about it *)

type request_sig = {
  rs_meth : Http.meth;
  rs_uri : Strsig.t;  (** full URI signature, query string included *)
  rs_headers : (string * Strsig.t) list;  (** app-set headers, e.g. User-Agent *)
  rs_body : body_sig;
}

(** Where response data flows after parsing (§2: media player, SQLite,
    UI, files, or retained in the heap for later requests). *)
type consumer =
  | To_media_player
  | To_database of string  (** table name *)
  | To_ui
  | To_file
  | To_heap

val consumer_to_string : consumer -> string

type response_sig = { ps_body : body_sig; ps_consumers : consumer list }

val body_sig_kind : body_sig -> string

(** {1 Printing} *)

val pp_body_sig : Format.formatter -> body_sig -> unit
val pp_request_sig : Format.formatter -> request_sig -> unit
val pp_response_sig : Format.formatter -> response_sig -> unit

(** {1 Matching against concrete traffic (§5.1 signature validity)} *)

val body_matches : body_sig -> Http.body -> bool

val request_matches : request_sig -> Http.request -> bool
(** Full request match: method equality, URI match through the compiled
    regex engine, required headers, and body. *)

val response_matches : response_sig -> Http.response -> bool

(** {1 Keyword extraction (Figure 7)} *)

val body_keywords : body_sig -> string list
(** Query-string keys, JSON keys, or XML tags/attributes of a body
    signature. *)

val uri_query_keywords : Strsig.t -> string list
(** Keys of [k=v] pairs appearing in the query-string portion of a URI
    signature's literals. *)

val request_body_keywords : request_sig -> string list
(** Body keywords plus URI query keys, deduplicated. *)

(** {1 Byte accounting (Table 2)} *)

val body_byte_account : body_sig -> Http.body -> int * int * int
(** [(r_k, r_v, r_n)] for a concrete body against a body signature. *)

val uri_byte_account : Strsig.t -> Uri.t -> int * int * int
(** Byte accounting of a concrete URI against the URI signature. *)
