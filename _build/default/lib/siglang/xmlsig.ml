(* XML body signatures.  The paper's tree representation allows rendering a
   signature as a Document Type Definition (DTD) for XML bodies; this module
   keeps the tree and provides both the DTD rendering and trace matching. *)

module Xml = Extr_httpmodel.Xml

type t = {
  xtag : string;
  xattrs : (string * Strsig.t) list;
  xchildren : child list;
}

and child =
  | Celem of t
  | Ctext of Strsig.t
  | Crep of t  (** the element may repeat (lists of items) *)

let rec equal a b =
  String.equal a.xtag b.xtag
  && List.length a.xattrs = List.length b.xattrs
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Strsig.equal v1 v2)
       a.xattrs b.xattrs
  && List.length a.xchildren = List.length b.xchildren
  && List.for_all2 equal_child a.xchildren b.xchildren

and equal_child c1 c2 =
  match (c1, c2) with
  | Celem a, Celem b | Crep a, Crep b -> equal a b
  | Ctext a, Ctext b -> Strsig.equal a b
  | (Celem _ | Ctext _ | Crep _), _ -> false

let element ?(attrs = []) tag children = { xtag = tag; xattrs = attrs; xchildren = children }

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let rec pp fmt e =
  let pp_attr fmt (k, v) = Fmt.pf fmt "%s=%s" k (Strsig.to_regex v) in
  Fmt.pf fmt "<%s%a>%a</%s>" e.xtag
    Fmt.(list ~sep:nop (any " " ++ pp_attr))
    e.xattrs
    Fmt.(list ~sep:nop pp_child)
    e.xchildren e.xtag

and pp_child fmt = function
  | Celem e -> pp fmt e
  | Ctext s -> Fmt.string fmt (Strsig.to_regex s)
  | Crep e -> Fmt.pf fmt "(%a)*" pp e

let to_string e = Fmt.str "%a" pp e

(** DTD rendering: one <!ELEMENT> declaration per distinct tag plus
    <!ATTLIST> for attributes (§1: the tree representation allows
    representing signatures as DTDs). *)
let to_dtd root =
  let buf = Buffer.create 256 in
  let seen = Hashtbl.create 8 in
  let rec visit e =
    if not (Hashtbl.mem seen e.xtag) then begin
      Hashtbl.replace seen e.xtag ();
      let content =
        match e.xchildren with
        | [] -> "EMPTY"
        | children ->
            let parts =
              List.map
                (function
                  | Celem c -> c.xtag
                  | Crep c -> c.xtag ^ "*"
                  | Ctext _ -> "#PCDATA")
                children
            in
            "(" ^ String.concat ", " parts ^ ")"
      in
      Buffer.add_string buf (Printf.sprintf "<!ELEMENT %s %s>\n" e.xtag content);
      List.iter
        (fun (attr, _) ->
          Buffer.add_string buf
            (Printf.sprintf "<!ATTLIST %s %s CDATA #REQUIRED>\n" e.xtag attr))
        e.xattrs;
      List.iter
        (function Celem c | Crep c -> visit c | Ctext _ -> ())
        e.xchildren
    end
  in
  visit root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Keywords and matching                                              *)
(* ------------------------------------------------------------------ *)

(** Tags and attribute names of the signature (Figure 7 keyword counting). *)
let rec keywords e =
  (e.xtag :: List.map fst e.xattrs)
  @ List.concat_map
      (function Celem c | Crep c -> keywords c | Ctext _ -> [])
      e.xchildren

let distinct_keywords e = List.sort_uniq String.compare (keywords e)

(** Does a concrete element belong to the signature's language?  Extra
    concrete attributes/children are allowed — apps ignore fields they do
    not parse. *)
let rec admits (s : t) (e : Xml.elem) =
  String.equal s.xtag e.tag
  && List.for_all
       (fun (k, vs) ->
         match List.assoc_opt k e.attrs with
         | Some v -> Strsig.matches vs v
         | None -> false)
       s.xattrs
  && admits_children s.xchildren e.children

and admits_children (spec : child list) (concrete : Xml.node list) =
  let concrete_elems =
    List.filter_map (function Xml.Elem e -> Some e | Xml.Text _ -> None) concrete
  in
  let concrete_text =
    List.filter_map (function Xml.Text t -> Some t | Xml.Elem _ -> None) concrete
  in
  List.for_all
    (function
      | Celem c -> List.exists (admits c) concrete_elems
      | Crep c ->
          (* Zero-or-more: all same-tag children must be admissible. *)
          List.for_all
            (fun e -> if String.equal e.Xml.tag c.xtag then admits c e else true)
            concrete_elems
      | Ctext ts -> List.exists (Strsig.matches ts) concrete_text)
    spec

(** Byte accounting for Table 2, mirroring {!Jsonsig.byte_account}:
    covered tags/attrs count to R_k, wildcard-matched values to R_v,
    uncovered subtrees to R_n. *)
let byte_account (s : t) (e : Xml.elem) =
  let bk = ref 0 and bv = ref 0 and bn = ref 0 in
  let text_bytes t = String.length (Xml.escape t) in
  let elem_size (e : Xml.elem) = String.length (Xml.to_string e) in
  let rec visit (s : t) (e : Xml.elem) =
    if not (String.equal s.xtag e.tag) then bn := !bn + elem_size e
    else begin
      (* Tag markup counts as constant. *)
      bk := !bk + (2 * String.length e.tag) + 5;
      List.iter
        (fun (k, v) ->
          match List.assoc_opt k s.xattrs with
          | Some vs -> (
              bk := !bk + String.length k + 4;
              match Strsig.byte_counts vs (Xml.escape v) with
              | Some (c, w) ->
                  bk := !bk + c;
                  bv := !bv + w
              | None -> bv := !bv + text_bytes v)
          | None -> bn := !bn + String.length k + 4 + text_bytes v)
        e.attrs;
      List.iter
        (function
          | Xml.Text t -> (
              let covered =
                List.find_map
                  (function Ctext ts -> Some ts | Celem _ | Crep _ -> None)
                  s.xchildren
              in
              match covered with
              | Some ts -> (
                  match Strsig.byte_counts ts (Xml.escape t) with
                  | Some (c, w) ->
                      bk := !bk + c;
                      bv := !bv + w
                  | None -> bv := !bv + text_bytes t)
              | None -> bn := !bn + text_bytes t)
          | Xml.Elem child -> (
              let covered =
                List.find_map
                  (function
                    | Celem c when String.equal c.xtag child.tag -> Some c
                    | Crep c when String.equal c.xtag child.tag -> Some c
                    | Celem _ | Crep _ | Ctext _ -> None)
                  s.xchildren
              in
              match covered with
              | Some c -> visit c child
              | None -> bn := !bn + elem_size child))
        e.children
    end
  in
  visit s e;
  (!bk, !bv, !bn)
