(** XML body signatures.  The tree representation allows rendering a
    signature as a Document Type Definition (§1); matching and byte
    accounting mirror {!Jsonsig}. *)

module Xml = Extr_httpmodel.Xml

type t = {
  xtag : string;
  xattrs : (string * Strsig.t) list;
  xchildren : child list;
}

and child =
  | Celem of t
  | Ctext of Strsig.t
  | Crep of t  (** the element may repeat (lists of items) *)

val equal : t -> t -> bool
val element : ?attrs:(string * Strsig.t) list -> string -> child list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_dtd : t -> string
(** Render as DTD declarations: one [<!ELEMENT>] per distinct tag plus
    [<!ATTLIST>] for attributes. *)

val keywords : t -> string list
(** Tags and attribute names (with duplicates). *)

val distinct_keywords : t -> string list
(** Sorted, deduplicated tags and attribute names (Figure 7). *)

val admits : t -> Xml.elem -> bool
(** Language membership; extra concrete attributes/children are allowed. *)

val byte_account : t -> Xml.elem -> int * int * int
(** [(r_k, r_v, r_n)] byte classification of a concrete element (Table 2). *)
