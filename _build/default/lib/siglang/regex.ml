(* A self-contained regular-expression engine for the signatures Extractocol
   emits.  Supports literals, escaped metacharacters, [.], character classes
   ([0-9], [^abc]), grouping, alternation and the * + ? quantifiers.
   Matching is whole-string (anchored), via Thompson NFA simulation — linear
   in input size, no catastrophic backtracking on adversarial traces. *)

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Syntax                                                             *)
(* ------------------------------------------------------------------ *)

type char_class = { negated : bool; ranges : (char * char) list }

type ast =
  | Empty
  | Char of char
  | Any
  | Class of char_class
  | Seq of ast * ast
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast

let class_mem cc c =
  let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) cc.ranges in
  if cc.negated then not inside else inside

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_class c =
  (* Called just after '['. *)
  let negated =
    if peek c = Some '^' then begin
      advance c;
      true
    end
    else false
  in
  let ranges = ref [] in
  let rec go () =
    match peek c with
    | None -> fail "unterminated character class"
    | Some ']' -> advance c
    | Some ch -> (
        advance c;
        let ch = if ch = '\\' then (
          match peek c with
          | Some e ->
              advance c;
              e
          | None -> fail "dangling escape in class")
          else ch
        in
        match peek c with
        | Some '-' when c.pos + 1 < String.length c.src && c.src.[c.pos + 1] <> ']' ->
            advance c;
            (match peek c with
            | Some hi ->
                advance c;
                ranges := (ch, hi) :: !ranges
            | None -> fail "unterminated range");
            go ()
        | _ ->
            ranges := (ch, ch) :: !ranges;
            go ())
  in
  go ();
  { negated; ranges = List.rev !ranges }

let rec parse_alt c =
  let left = parse_seq c in
  match peek c with
  | Some '|' ->
      advance c;
      Alt (left, parse_alt c)
  | _ -> left

and parse_seq c =
  let rec go acc =
    match peek c with
    | None | Some ')' | Some '|' -> acc
    | Some _ ->
        let atom = parse_postfix c in
        go (if acc = Empty then atom else Seq (acc, atom))
  in
  go Empty

and parse_postfix c =
  let atom = parse_atom c in
  let rec quantify a =
    match peek c with
    | Some '*' ->
        advance c;
        quantify (Star a)
    | Some '+' ->
        advance c;
        quantify (Plus a)
    | Some '?' ->
        advance c;
        quantify (Opt a)
    | _ -> a
  in
  quantify atom

and parse_atom c =
  match peek c with
  | None -> fail "expected atom"
  | Some '(' ->
      advance c;
      let inner = parse_alt c in
      (match peek c with
      | Some ')' -> advance c
      | _ -> fail "unbalanced parenthesis");
      inner
  | Some '[' ->
      advance c;
      Class (parse_class c)
  | Some '.' ->
      advance c;
      Any
  | Some '\\' -> (
      advance c;
      match peek c with
      | Some e ->
          advance c;
          (match e with
          | 'n' -> Char '\n'
          | 't' -> Char '\t'
          | 'r' -> Char '\r'
          | 'd' -> Class { negated = false; ranges = [ ('0', '9') ] }
          | 'w' ->
              Class
                {
                  negated = false;
                  ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ];
                }
          | e -> Char e)
      | None -> fail "dangling escape")
  | Some ('*' | '+' | '?') -> fail "dangling quantifier at %d" c.pos
  | Some ch ->
      advance c;
      Char ch

let parse (pattern : string) : ast =
  let c = { src = pattern; pos = 0 } in
  let ast = parse_alt c in
  if c.pos <> String.length pattern then fail "trailing input at %d" c.pos;
  ast

(* ------------------------------------------------------------------ *)
(* NFA compilation (Thompson construction)                             *)
(* ------------------------------------------------------------------ *)

type transition =
  | Eps of int
  | Cons of (char -> bool) * int  (** consume one admissible character *)

type nfa = { states : transition list array; start : int; accept : int }

let compile (ast : ast) : nfa =
  let transitions = ref [] in
  let n_states = ref 0 in
  let fresh () =
    let s = !n_states in
    incr n_states;
    s
  in
  let add_edge src tr = transitions := (src, tr) :: !transitions in
  (* Returns (entry, exit) state pair for the fragment. *)
  let rec build = function
    | Empty ->
        let s = fresh () in
        (s, s)
    | Char ch ->
        let s = fresh () and e = fresh () in
        add_edge s (Cons ((fun c -> c = ch), e));
        (s, e)
    | Any ->
        let s = fresh () and e = fresh () in
        add_edge s (Cons ((fun _ -> true), e));
        (s, e)
    | Class cc ->
        let s = fresh () and e = fresh () in
        add_edge s (Cons (class_mem cc, e));
        (s, e)
    | Seq (a, b) ->
        let sa, ea = build a in
        let sb, eb = build b in
        add_edge ea (Eps sb);
        (sa, eb)
    | Alt (a, b) ->
        let s = fresh () and e = fresh () in
        let sa, ea = build a in
        let sb, eb = build b in
        add_edge s (Eps sa);
        add_edge s (Eps sb);
        add_edge ea (Eps e);
        add_edge eb (Eps e);
        (s, e)
    | Star a ->
        let s = fresh () and e = fresh () in
        let sa, ea = build a in
        add_edge s (Eps sa);
        add_edge s (Eps e);
        add_edge ea (Eps sa);
        add_edge ea (Eps e);
        (s, e)
    | Plus a ->
        let sa, ea = build a in
        let e = fresh () in
        add_edge ea (Eps sa);
        add_edge ea (Eps e);
        (sa, e)
    | Opt a ->
        let s = fresh () and e = fresh () in
        let sa, ea = build a in
        add_edge s (Eps sa);
        add_edge s (Eps e);
        add_edge ea (Eps e);
        (s, e)
  in
  let start, accept = build ast in
  let states = Array.make !n_states [] in
  List.iter (fun (src, tr) -> states.(src) <- tr :: states.(src)) !transitions;
  { states; start; accept }

(* ------------------------------------------------------------------ *)
(* Simulation                                                         *)
(* ------------------------------------------------------------------ *)

let epsilon_closure nfa (set : bool array) =
  let stack = ref [] in
  Array.iteri (fun i b -> if b then stack := i :: !stack) set;
  let rec go () =
    match !stack with
    | [] -> ()
    | s :: rest ->
        stack := rest;
        List.iter
          (function
            | Eps t when not set.(t) ->
                set.(t) <- true;
                stack := t :: !stack
            | Eps _ | Cons _ -> ())
          nfa.states.(s);
        go ()
  in
  go ()

type t = { nfa : nfa; pattern : string }

let of_pattern pattern = { nfa = compile (parse pattern); pattern }

let pattern t = t.pattern

(** Whole-string (anchored) match. *)
let matches t s =
  let nfa = t.nfa in
  let n = Array.length nfa.states in
  let initial = Array.make n false in
  initial.(nfa.start) <- true;
  epsilon_closure nfa initial;
  let step cur ch =
    let next = Array.make n false in
    Array.iteri
      (fun i active ->
        if active then
          List.iter
            (function
              | Cons (admit, t) when admit ch -> next.(t) <- true
              | Cons _ | Eps _ -> ())
            nfa.states.(i))
      cur;
    epsilon_closure nfa next;
    next
  in
  let final = String.fold_left step initial s in
  final.(nfa.accept)

(** Convenience: compile-and-match in one step. *)
let string_matches ~pattern s = matches (of_pattern pattern) s
