lib/siglang/xmlsig.ml: Buffer Extr_httpmodel Fmt Hashtbl List Printf String Strsig
