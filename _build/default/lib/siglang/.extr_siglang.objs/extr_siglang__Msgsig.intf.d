lib/siglang/msgsig.mli: Extr_httpmodel Format Jsonsig Strsig Xmlsig
