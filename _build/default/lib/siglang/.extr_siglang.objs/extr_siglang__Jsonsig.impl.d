lib/siglang/jsonsig.ml: Extr_httpmodel Fmt List String Strsig
