lib/siglang/jsonsig.mli: Extr_httpmodel Format Strsig
