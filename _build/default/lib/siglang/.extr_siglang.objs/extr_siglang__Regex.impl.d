lib/siglang/regex.ml: Array List Printf String
