lib/siglang/msgsig.ml: Extr_httpmodel Fmt Jsonsig List Regex String Strsig Xmlsig
