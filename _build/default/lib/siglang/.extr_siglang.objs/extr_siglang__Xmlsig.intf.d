lib/siglang/xmlsig.mli: Extr_httpmodel Format Strsig
