lib/siglang/strsig.mli: Format
