lib/siglang/regex.mli:
