lib/siglang/strsig.ml: Array Buffer Fmt List String
