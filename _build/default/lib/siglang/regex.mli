(** A self-contained regular-expression engine for the signatures
    Extractocol emits.  Supports literals, escaped metacharacters, [.],
    character classes ([[0-9]], [[^abc]]), grouping, alternation and the
    [* + ?] quantifiers.  Matching is whole-string (anchored) via Thompson
    NFA simulation — linear in input size, with no catastrophic
    backtracking on adversarial traces. *)

exception Parse_error of string

type t
(** A compiled regular expression. *)

val of_pattern : string -> t
(** Compile a pattern.
    @raise Parse_error on malformed syntax (unbalanced groups, dangling
    quantifiers, unterminated classes). *)

val pattern : t -> string
(** The source pattern the expression was compiled from. *)

val matches : t -> string -> bool
(** Anchored (whole-string) match. *)

val string_matches : pattern:string -> string -> bool
(** Compile-and-match in one step. *)
