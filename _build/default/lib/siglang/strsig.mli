(** String signatures — the scalar fragment of the paper's intermediate
    language (Figure 4).  A signature describes the set of strings a
    program slice can produce: literals, unknowns (typed, for regex
    generation), concatenation, disjunction (branch confluences) and
    repetition (loops). *)

(** Type hint attached to an unknown, driving its regex form. *)
type hint =
  | Hany  (** arbitrary string: [.*] *)
  | Hnum  (** integer-valued: [[0-9]+] *)
  | Hbool  (** boolean-valued: [(true|false)] *)

type t =
  | Lit of string
  | Unknown of hint
  | Concat of t list
  | Alt of t list
  | Rep of t

(** {1 Smart constructors}

    These normalize as they build: concatenations flatten and merge
    adjacent literals, disjunctions flatten and deduplicate branches,
    repetitions absorb nested repetitions. *)

val empty : t
(** The empty-string literal. *)

val lit : string -> t
(** A string literal. *)

val unknown : t
(** An arbitrary unknown ([Hany]). *)

val num : t
(** A numeric unknown ([Hnum]). *)

val concat : t list -> t
(** Concatenation with flattening and literal merging. *)

val append : t -> t -> t
(** [append a b] is [concat [a; b]]. *)

val alt : t list -> t
(** Disjunction with duplicate elimination; used at confluence points of
    the control-flow graph (§3.2).  A singleton collapses to its branch. *)

val rep : t -> t
(** Repetition marker for loop-variant parts (§3.2); idempotent. *)

val equal : t -> t -> bool
(** Structural equality. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Regex compilation (§3.2)} *)

val regex_escape : string -> string
(** Escape regex metacharacters in a literal. *)

val to_regex : t -> string
(** Compile to a regular expression: repetitions become Kleene stars,
    disjunctions become [|], unknowns become [.*] / [[0-9]+] by type. *)

(** {1 Constant keywords (Figure 7)} *)

val literals : t -> string list
(** All literal fragments of the signature, in order. *)

val keywords : t -> string list
(** Maximal alphanumeric words inside literal fragments, deduplicated —
    the constant keywords counted when quantifying signature quality
    against packet traces (§5.1). *)

(** {1 Matching with byte attribution (Table 2)} *)

type attribution = [ `Const | `Wild ] array
(** Per-byte classification of a matched string: matched by a literal part
    ([`Const]) or by an unknown/repetition ([`Wild]). *)

val match_attr : t -> string -> attribution option
(** Backtracking whole-string match with byte attribution; [None] when the
    string is not in the signature's language. *)

val matches : t -> string -> bool
(** Whole-string membership test. *)

val byte_counts : t -> string -> (int * int) option
(** [(const_bytes, wild_bytes)] of a match; the two always sum to the
    string length. *)
