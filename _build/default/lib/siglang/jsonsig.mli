(** JSON body signatures — the tree-structured fragment of the signature
    language (Figure 4).  A signature is a tree whose leaves are literals,
    numbers, or typed unknowns; it can be rendered as JSON-schema-style
    text, matched against concrete bodies, and byte-accounted for
    Table 2. *)

module Json = Extr_httpmodel.Json

type t =
  | Jany  (** completely unconstrained value *)
  | Jnum
  | Jbool
  | Jstr of Strsig.t  (** string leaf whose content follows a string signature *)
  | Jconst_num of int
  | Jobj of (string * t) list  (** constant keys with value signatures *)
  | Jarr of t  (** homogeneous array (the paper's rep over array values) *)
  | Jalt of t list

val equal : t -> t -> bool

val alt : t list -> t
(** Disjunction with flattening and deduplication. *)

val merge : t -> t -> t
(** Key-wise merge of two signatures: shared object keys merge
    recursively, disjoint keys are kept (the slice may set them on
    different paths); incompatible shapes become a disjunction. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val keys : t -> string list
(** All object keys appearing in the signature (with duplicates). *)

val distinct_keys : t -> string list
(** Sorted, deduplicated keys — the Figure-7 constant keywords. *)

val admits : t -> Json.t -> bool
(** Language membership: every signature key must be present with an
    admissible value; extra concrete keys are allowed (apps ignore fields
    they do not parse). *)

val byte_account : t -> Json.t -> int * int * int
(** [(r_k, r_v, r_n)] byte classification of a concrete body (Table 2):
    constant keywords and covered structure, wildcard-matched values of
    known keys, and fully-unknown subtrees. *)

val of_concrete : Json.t -> t
(** Infer the shape signature of a concrete value (ground-truth helper). *)
