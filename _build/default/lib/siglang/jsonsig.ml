(* JSON body signatures: the tree-structured fragment of the paper's
   signature language (Figure 4: struct_str ::= json(obj), obj ::=
   key_value*, value ::= constant | obj | array).  Extractocol maintains
   signatures for JSON objects as trees whose leaves are string literals,
   numbers, or unknowns, and can render them as JSON-schema text. *)

module Json = Extr_httpmodel.Json

type t =
  | Jany  (** completely unconstrained value *)
  | Jnum
  | Jbool
  | Jstr of Strsig.t  (** string leaf whose content follows a string signature *)
  | Jconst_num of int
  | Jobj of (string * t) list  (** constant keys with value signatures *)
  | Jarr of t  (** homogeneous array (the paper's rep over array values) *)
  | Jalt of t list

let rec equal a b =
  match (a, b) with
  | Jany, Jany | Jnum, Jnum | Jbool, Jbool -> true
  | Jstr x, Jstr y -> Strsig.equal x y
  | Jconst_num x, Jconst_num y -> x = y
  | Jobj xs, Jobj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | Jarr x, Jarr y -> equal x y
  | Jalt xs, Jalt ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Jany | Jnum | Jbool | Jstr _ | Jconst_num _ | Jobj _ | Jarr _ | Jalt _), _ ->
      false

let alt branches =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Jalt inner :: rest -> flatten acc (inner @ rest)
    | b :: rest -> flatten (b :: acc) rest
  in
  let branches = flatten [] branches in
  let dedup =
    List.fold_left
      (fun acc b -> if List.exists (equal b) acc then acc else b :: acc)
      [] branches
    |> List.rev
  in
  match dedup with [] -> Jany | [ b ] -> b | bs -> Jalt bs

(** Merge two object signatures key-wise: shared keys merge recursively,
    disjoint keys are kept (the slice may set them on different paths). *)
let rec merge a b =
  match (a, b) with
  | Jobj xs, Jobj ys ->
      let keys =
        List.map fst xs @ List.filter (fun k -> not (List.mem_assoc k xs)) (List.map fst ys)
      in
      Jobj
        (List.map
           (fun k ->
             match (List.assoc_opt k xs, List.assoc_opt k ys) with
             | Some v1, Some v2 -> (k, merge v1 v2)
             | Some v, None | None, Some v -> (k, v)
             | None, None -> assert false)
           keys)
  | Jarr x, Jarr y -> Jarr (merge x y)
  | x, y when equal x y -> x
  | x, y -> alt [ x; y ]

(* ------------------------------------------------------------------ *)
(* Printing: JSON-schema-flavoured text                               *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | Jany -> Fmt.string fmt "?"
  | Jnum -> Fmt.string fmt "#num"
  | Jbool -> Fmt.string fmt "#bool"
  | Jstr (Strsig.Lit s) -> Fmt.pf fmt "%S" s
  | Jstr s -> Fmt.pf fmt "str<%s>" (Strsig.to_regex s)
  | Jconst_num n -> Fmt.int fmt n
  | Jobj fields ->
      let pp_field fmt (k, v) = Fmt.pf fmt "%S: %a" k pp v in
      Fmt.pf fmt "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp_field) fields
  | Jarr v -> Fmt.pf fmt "[%a*]" pp v
  | Jalt bs -> Fmt.pf fmt "(@[%a@])" (Fmt.list ~sep:(Fmt.any " | ") pp) bs

let to_string s = Fmt.str "%a" pp s

(* ------------------------------------------------------------------ *)
(* Keywords (Figure 7: constant keywords = JSON keys in the signature) *)
(* ------------------------------------------------------------------ *)

let rec keys = function
  | Jany | Jnum | Jbool | Jconst_num _ -> []
  | Jstr _ -> []
  | Jobj fields -> List.concat_map (fun (k, v) -> k :: keys v) fields
  | Jarr v -> keys v
  | Jalt bs -> List.concat_map keys bs

let distinct_keys s = List.sort_uniq String.compare (keys s)

(* ------------------------------------------------------------------ *)
(* Matching with byte attribution (Table 2)                            *)
(* ------------------------------------------------------------------ *)

(** The paper's Table 2 classifies response/request body bytes into:
    R_k — bytes matching constant keywords of the signature (keys and
    literal values), R_v — bytes of values whose key is covered by the
    signature but whose value is a wildcard, and R_n — bytes where both key
    and value are unconstrained (subtrees the app never inspects).
    Structural punctuation of covered containers counts toward R_k;
    punctuation of uncovered subtrees counts toward R_n. *)
type byte_account = { mutable bk : int; mutable bv : int; mutable bn : int }

let serialized_size (v : Json.t) = String.length (Json.to_string v)

(** Does the concrete value belong to the signature's language? *)
let rec admits (s : t) (v : Json.t) =
  match (s, v) with
  | Jany, _ -> true
  | Jnum, (Json.Int _ | Json.Float _) -> true
  | Jbool, Json.Bool _ -> true
  | Jconst_num n, Json.Int m -> n = m
  | Jstr ss, Json.Str text -> Strsig.matches ss text
  | Jstr ss, Json.Int n -> Strsig.matches ss (string_of_int n)
  | Jobj fields, Json.Obj concrete ->
      (* Every signature key must be present with an admissible value;
         extra concrete keys are allowed (apps ignore unknown fields). *)
      List.for_all
        (fun (k, sv) ->
          match List.assoc_opt k concrete with
          | Some cv -> admits sv cv
          | None -> false)
        fields
  | Jarr sv, Json.List items -> List.for_all (admits sv) items
  | Jalt bs, v -> List.exists (fun b -> admits b v) bs
  | (Jnum | Jbool | Jstr _ | Jconst_num _ | Jobj _ | Jarr _), _ -> false

let rec account (acc : byte_account) (s : t) (v : Json.t) =
  match (s, v) with
  | Jalt bs, v -> (
      match List.find_opt (fun b -> admits b v) bs with
      | Some b -> account acc b v
      | None -> acc.bn <- acc.bn + serialized_size v)
  | Jany, v -> acc.bn <- acc.bn + serialized_size v
  | Jnum, (Json.Int _ | Json.Float _) -> acc.bv <- acc.bv + serialized_size v
  | Jbool, Json.Bool _ -> acc.bv <- acc.bv + serialized_size v
  | Jconst_num _, Json.Int _ -> acc.bk <- acc.bk + serialized_size v
  | Jstr ss, Json.Str text -> (
      (* Attribute the quotes to the key side, the content per strsig. *)
      acc.bk <- acc.bk + 2;
      match Strsig.byte_counts ss (Json.escape_string text) with
      | Some (const, wild) ->
          acc.bk <- acc.bk + const;
          acc.bv <- acc.bv + wild
      | None -> acc.bv <- acc.bv + String.length (Json.escape_string text))
  | Jobj fields, Json.Obj concrete ->
      (* Braces, colons, commas and covered keys count as constants;
         uncovered fields count as noise. *)
      acc.bk <- acc.bk + 2 (* braces *) + max 0 (List.length concrete - 1) (* commas *);
      List.iter
        (fun (k, cv) ->
          match List.assoc_opt k fields with
          | Some sv ->
              acc.bk <- acc.bk + String.length k + 3 (* quotes + colon *);
              account acc sv cv
          | None ->
              acc.bn <-
                acc.bn + String.length k + 3 + serialized_size cv)
        concrete
  | Jarr sv, Json.List items ->
      acc.bk <- acc.bk + 2 + max 0 (List.length items - 1);
      List.iter (account acc sv) items
  | (Jnum | Jbool | Jconst_num _ | Jstr _ | Jobj _ | Jarr _), v ->
      (* Signature mismatch for this subtree: all noise. *)
      acc.bn <- acc.bn + serialized_size v

(** Byte accounting of a concrete JSON body against a signature. *)
let byte_account (s : t) (v : Json.t) =
  let acc = { bk = 0; bv = 0; bn = 0 } in
  account acc s v;
  (acc.bk, acc.bv, acc.bn)

(* ------------------------------------------------------------------ *)
(* Signature inference from concrete values (used by ground truth)     *)
(* ------------------------------------------------------------------ *)

let rec of_concrete (v : Json.t) : t =
  match v with
  | Json.Null -> Jany
  | Json.Bool _ -> Jbool
  | Json.Int _ | Json.Float _ -> Jnum
  | Json.Str _ -> Jstr Strsig.unknown
  | Json.List [] -> Jarr Jany
  | Json.List (x :: _) -> Jarr (of_concrete x)
  | Json.Obj fields -> Jobj (List.map (fun (k, v) -> (k, of_concrete v)) fields)
