(* String signatures: the scalar fragment of the paper's intermediate
   language (Figure 4).  A signature describes the set of strings a program
   slice can produce: string literals, unknowns (with a type hint used for
   regex generation: [0-9]+ for integers, .* for strings), concatenation,
   disjunction (confluence of branches) and repetition (loops). *)

type hint =
  | Hany  (** arbitrary string: regex [.*] *)
  | Hnum  (** integer-valued: regex [[0-9]+] *)
  | Hbool  (** boolean-valued: regex [(true|false)] *)

type t =
  | Lit of string
  | Unknown of hint
  | Concat of t list
  | Alt of t list
  | Rep of t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                 *)
(* ------------------------------------------------------------------ *)

let empty = Lit ""
let lit s = Lit s
let unknown = Unknown Hany
let num = Unknown Hnum

(** Flatten nested concatenations and merge adjacent literals. *)
let concat parts =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Concat inner :: rest -> flatten acc (inner @ rest)
    | Lit "" :: rest -> flatten acc rest
    | p :: rest -> flatten (p :: acc) rest
  in
  let rec merge = function
    | Lit a :: Lit b :: rest -> merge (Lit (a ^ b) :: rest)
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  match merge (flatten [] parts) with
  | [] -> Lit ""
  | [ p ] -> p
  | ps -> Concat ps

let append a b = concat [ a; b ]

let rec equal a b =
  match (a, b) with
  | Lit x, Lit y -> String.equal x y
  | Unknown h1, Unknown h2 -> h1 = h2
  | Concat xs, Concat ys | Alt xs, Alt ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Rep x, Rep y -> equal x y
  | (Lit _ | Unknown _ | Concat _ | Alt _ | Rep _), _ -> false

(** Disjunction with duplicate-branch elimination; used at confluence
    points of the control-flow graph (§3.2). *)
let alt branches =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Alt inner :: rest -> flatten acc (inner @ rest)
    | b :: rest -> flatten (b :: acc) rest
  in
  let branches = flatten [] branches in
  let dedup =
    List.fold_left
      (fun acc b -> if List.exists (equal b) acc then acc else b :: acc)
      [] branches
    |> List.rev
  in
  match dedup with [] -> Lit "" | [ b ] -> b | bs -> Alt bs

let rep s = match s with Lit "" -> Lit "" | Rep _ -> s | _ -> Rep s

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | Lit s -> Fmt.pf fmt "%S" s
  | Unknown Hany -> Fmt.string fmt "?str"
  | Unknown Hnum -> Fmt.string fmt "?num"
  | Unknown Hbool -> Fmt.string fmt "?bool"
  | Concat ps -> Fmt.pf fmt "(@[%a@])" (Fmt.list ~sep:(Fmt.any " . ") pp) ps
  | Alt bs -> Fmt.pf fmt "(@[%a@])" (Fmt.list ~sep:(Fmt.any " | ") pp) bs
  | Rep s -> Fmt.pf fmt "rep{%a}" pp s

let to_string s = Fmt.str "%a" pp s

(* ------------------------------------------------------------------ *)
(* Regex compilation (§3.2: repetitions become Kleene stars,           *)
(* disjunctions become |, unknowns become .* or [0-9]+)                *)
(* ------------------------------------------------------------------ *)

let regex_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '\\'
      | '^' | '$' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_regex = function
  | Lit s -> regex_escape s
  | Unknown Hany -> "(.*)"
  | Unknown Hnum -> "([0-9]+)"
  | Unknown Hbool -> "(true|false)"
  | Concat ps -> String.concat "" (List.map to_regex ps)
  | Alt bs -> "(" ^ String.concat "|" (List.map to_regex bs) ^ ")"
  | Rep s -> "(" ^ to_regex s ^ ")*"

(* ------------------------------------------------------------------ *)
(* Constant keywords (Figure 7 counts constant keywords in signatures) *)
(* ------------------------------------------------------------------ *)

(** All literal fragments of the signature. *)
let rec literals = function
  | Lit s -> [ s ]
  | Unknown _ -> []
  | Concat ps | Alt ps -> List.concat_map literals ps
  | Rep s -> literals s

(** Constant keywords: maximal alphanumeric words inside literal fragments.
    Used to quantify signature quality against packet traces (§5.1). *)
let keywords s =
  let split_words text =
    let words = ref [] and buf = Buffer.create 8 in
    let flush () =
      if Buffer.length buf > 0 then begin
        words := Buffer.contents buf :: !words;
        Buffer.clear buf
      end
    in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> Buffer.add_char buf c
        | _ -> flush ())
      text;
    flush ();
    List.rev !words
  in
  List.concat_map split_words (literals s) |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Matching with byte attribution (Table 2)                            *)
(* ------------------------------------------------------------------ *)

(** Byte-level attribution of a concrete string against a signature:
    [`Const] bytes were matched by literal parts, [`Wild] bytes by
    unknown/repetition parts.  [None] when the signature does not match. *)
type attribution = [ `Const | `Wild ] array

let hint_admits hint text =
  match hint with
  | Hany -> true
  | Hnum -> text <> "" && String.for_all (fun c -> c >= '0' && c <= '9') text
  | Hbool -> text = "true" || text = "false"

(** Backtracking matcher.  [match_attr sig s] returns the attribution of
    each byte of [s], or [None] when [s] is not in the signature's
    language.  Wildcards are matched lazily with backtracking, which is
    sufficient for the signature shapes the extractor emits. *)
let match_attr (signature : t) (s : string) : attribution option =
  let n = String.length s in
  let attr = Array.make n `Wild in
  (* [go sig pos k] attempts to match [sig] starting at [pos]; on success
     calls continuation [k] with the end position. *)
  let rec go sg pos k =
    match sg with
    | Lit l ->
        let ll = String.length l in
        if pos + ll <= n && String.sub s pos ll = l then begin
          for i = pos to pos + ll - 1 do
            attr.(i) <- `Const
          done;
          k (pos + ll)
        end
        else false
    | Unknown hint ->
        (* Try successively longer spans (shortest first keeps constants
           anchored). *)
        let rec try_len len =
          if pos + len > n then false
          else begin
            let text = String.sub s pos len in
            if hint_admits hint text || (len = 0 && hint = Hany) then begin
              for i = pos to pos + len - 1 do
                attr.(i) <- `Wild
              done;
              if k (pos + len) then true else try_len (len + 1)
            end
            else try_len (len + 1)
          end
        in
        try_len 0
    | Concat ps ->
        let rec chain parts pos k =
          match parts with
          | [] -> k pos
          | p :: rest -> go p pos (fun pos' -> chain rest pos' k)
        in
        chain ps pos k
    | Alt bs -> List.exists (fun b -> go b pos k) bs
    | Rep inner ->
        (* Zero or more repetitions of [inner]. *)
        let rec iterate pos =
          if k pos then true
          else go inner pos (fun pos' -> if pos' > pos then iterate pos' else false)
        in
        iterate pos
  in
  if go signature 0 (fun pos -> pos = n) then Some attr else None

let matches signature s = match_attr signature s <> None

(** Fraction helpers for Table 2: counts of const-attributed and
    wild-attributed bytes. *)
let byte_counts signature s =
  match match_attr signature s with
  | None -> None
  | Some attr ->
      let const = Array.fold_left (fun acc a -> if a = `Const then acc + 1 else acc) 0 attr in
      Some (const, Array.length attr - const)
